"""Live telemetry: snapshot deltas, samplers, the bus, sinks, recorder.

The contract under test (docs/live-telemetry.md):

- ``snapshot_delta`` produces a valid snapshot that, merged onto the
  previous state, reproduces the current state — for all four
  instrument kinds — and omits unchanged instruments;
- ``TelemetrySampler`` emits keyframe-first incremental frames on a
  simulated-time cadence, buffers events, and prices to nothing when
  disabled;
- ``TelemetryBus`` folds frames associatively, so the merged fleet
  view is independent of how the same work was sharded across
  workers; gauges sum across workers instead of newest-wins;
- the flight-recorder ring is bounded and its dump round-trips
  through ``parse_telemetry_jsonl``;
- the JSONL sink and the Prometheus textfile reuse (and parse back
  through) the PR 2 exporters.
"""

import io
import json
import math

import pytest

from repro.obs.export import parse_prometheus
from repro.obs.live import (
    DEFAULT_TELEMETRY_INTERVAL_S,
    JsonlTelemetrySink,
    TelemetryBus,
    TelemetryError,
    TelemetrySampler,
    parse_telemetry_jsonl,
    validate_frame,
    write_prometheus_textfile,
)
from repro.obs.registry import MetricsRegistry, snapshot_delta


def build_registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("c", help="a counter").inc(3)
    registry.gauge("g", help="a gauge").set(7.0)
    registry.histogram("h", help="a histogram", buckets=(1e-6, 1e-5, 1e-4))
    registry.get("h").observe(5e-6)
    registry.timeseries("ts", help="a timeseries").sample(0.0, 1.0)
    return registry


# -- snapshot_delta ----------------------------------------------------------


def test_snapshot_delta_round_trips_every_kind():
    registry = build_registry()
    previous = registry.snapshot()
    registry.counter("c").inc(5)
    registry.gauge("g").set(2.5)
    registry.get("h").observe(3e-5)
    registry.get("h").observe(2.0)  # overflow bucket
    registry.timeseries("ts").sample(1.0, 4.0)
    current = registry.snapshot()

    delta = snapshot_delta(current, previous)
    receiver = MetricsRegistry(enabled=True)
    receiver.merge_snapshot(previous)
    receiver.merge_snapshot(delta)
    assert receiver.snapshot() == current


def test_snapshot_delta_omits_unchanged_instruments():
    registry = build_registry()
    previous = registry.snapshot()
    registry.counter("c").inc()
    delta = snapshot_delta(registry.snapshot(), previous)
    assert list(delta) == ["c"]
    assert delta["c"]["value"] == 1.0


def test_snapshot_delta_against_empty_is_keyframe():
    registry = build_registry()
    current = registry.snapshot()
    assert snapshot_delta(current, {}) == current


def test_snapshot_delta_rejects_kind_change():
    before = {"x": {"kind": "counter", "help": "", "value": 1.0}}
    after = {"x": {"kind": "gauge", "help": "", "value": 1.0}}
    with pytest.raises(TypeError, match="changed kind"):
        snapshot_delta(after, before)


def test_snapshot_delta_timeseries_redownsample_falls_back_to_full():
    registry = MetricsRegistry(enabled=True)
    series = registry.timeseries("ts", help="", capacity=8)
    for i in range(6):
        series.sample(float(i), float(i))
    previous = registry.snapshot()
    # Overflow capacity so the stream re-downsamples (stride changes):
    # the delta cannot be replayed as an append and must carry the
    # full sample set.
    for i in range(6, 20):
        series.sample(float(i), float(i))
    current = registry.snapshot()
    delta = snapshot_delta(current, previous)
    assert delta["ts"] == current["ts"]


# -- validate_frame ----------------------------------------------------------


def make_frame(**overrides):
    frame = {
        "v": 1,
        "worker": 0,
        "seq": 0,
        "t": 0.001,
        "metrics": {"live.completions": {"kind": "counter", "value": 1.0}},
        "events": [],
    }
    frame.update(overrides)
    return frame


def test_validate_frame_accepts_well_formed():
    assert validate_frame(make_frame()) == make_frame()


@pytest.mark.parametrize(
    "overrides",
    [
        {"v": 2},
        {"worker": -1},
        {"worker": True},
        {"seq": "0"},
        {"t": -0.5},
        {"metrics": [1]},
        {"metrics": {"x": {"kind": "mystery"}}},
        {"events": {}},
        {"events": [{"no_kind": 1}]},
    ],
)
def test_validate_frame_rejects_malformed(overrides):
    with pytest.raises(TelemetryError):
        validate_frame(make_frame(**overrides))


def test_validate_frame_rejects_non_dict():
    with pytest.raises(TelemetryError):
        validate_frame([1, 2, 3])


# -- TelemetrySampler --------------------------------------------------------


def test_sampler_first_frame_is_keyframe_with_full_instrument_set():
    sampler = TelemetrySampler(3, interval_s=1e-3, queue_depth_fn=lambda: 4.0)
    sampler.completions.inc(2)
    frames = sampler.flush(5e-4)
    assert len(frames) == 1
    frame = validate_frame(frames[0])
    assert frame["worker"] == 3 and frame["seq"] == 0
    assert set(frame["metrics"]) == {
        "live.completions", "live.dispatches", "live.losses",
        "live.rejects", "live.redispatches", "live.latency_s",
        "live.queue_depth",
    }


def test_sampler_cadence_and_idle_skip():
    sampler = TelemetrySampler(0, interval_s=1e-3)
    sampler.maybe_sample(5e-4)  # before the first boundary
    assert sampler.drain() == []
    sampler.maybe_sample(1e-3)
    assert len(sampler.drain()) == 1
    # A long idle gap emits one frame and skips ahead, not a burst.
    sampler.maybe_sample(0.0105)
    frames = sampler.drain()
    assert len(frames) == 1
    assert math.isclose(sampler._next_sample_t, 0.011)


def test_sampler_frames_are_incremental_and_seq_numbered():
    sampler = TelemetrySampler(0, interval_s=1e-3)
    sampler.completions.inc(4)
    first = sampler.flush(1e-3)[0]
    sampler.completions.inc(6)
    second = sampler.flush(2e-3)[0]
    assert (first["seq"], second["seq"]) == (0, 1)
    assert first["metrics"]["live.completions"]["value"] == 4.0
    assert second["metrics"]["live.completions"]["value"] == 6.0


def test_sampler_buffers_events_into_next_frame_only():
    sampler = TelemetrySampler(0, interval_s=1e-3)
    sampler.record_event("fault:crash", server=2, t=4e-4)
    first = sampler.flush(1e-3)[0]
    assert first["events"] == [{"kind": "fault:crash", "server": 2, "t": 4e-4}]
    second = sampler.flush(2e-3)[0]
    assert second["events"] == []


def test_disabled_sampler_is_inert():
    sampler = TelemetrySampler(0, interval_s=0.0)
    assert not sampler.enabled
    sampler.completions.inc(100)
    sampler.record_event("fault:crash")
    sampler.maybe_sample(10.0)
    assert sampler.sample(10.0) is None
    assert sampler.flush(10.0) == []


def test_default_interval_is_one_simulated_millisecond():
    assert DEFAULT_TELEMETRY_INTERVAL_S == 1e-3


# -- TelemetryBus ------------------------------------------------------------


def synthetic_workload():
    """Deterministic stream of (latency_s, queue_depth) work items."""
    return [((i % 13 + 1) * 2e-6, float(i % 5)) for i in range(200)]


def shard_and_ingest(num_workers):
    """Shard the same workload over N workers; return the fed bus."""
    bus = TelemetryBus()
    samplers = []
    for worker_id in range(num_workers):
        depth = {"value": 0.0}
        sampler = TelemetrySampler(
            worker_id, interval_s=1e-3,
            queue_depth_fn=lambda depth=depth: depth["value"],
        )
        samplers.append((sampler, depth))
    for i, (latency, depth_value) in enumerate(synthetic_workload()):
        sampler, depth = samplers[i % num_workers]
        sampler.completions.inc()
        sampler.latency.observe(latency)
        depth["value"] = depth_value
        sampler.maybe_sample((i + 1) * 1e-4)
    for worker_id, (sampler, _depth) in enumerate(samplers):
        bus.ingest_all(sampler.flush(0.021))
    return bus


@pytest.mark.parametrize("num_workers", [2, 4])
def test_fleet_fold_is_worker_count_independent(num_workers):
    reference = shard_and_ingest(1).fleet_registry().snapshot()
    sharded = shard_and_ingest(num_workers).fleet_registry().snapshot()
    assert sharded["live.completions"] == reference["live.completions"]
    histogram, base = sharded["live.latency_s"], reference["live.latency_s"]
    # Bucket counts are integers and must match exactly; the float
    # 'sum' accumulates in shard order, so it matches to rounding only.
    assert histogram["counts"] == base["counts"]
    assert histogram["overflow"] == base["overflow"]
    assert histogram["count"] == base["count"]
    assert histogram["sum"] == pytest.approx(base["sum"], rel=1e-12)


def test_fleet_gauges_sum_across_workers():
    bus = TelemetryBus()
    for worker_id, depth in ((0, 3.0), (1, 8.0)):
        bus.ingest(make_frame(
            worker=worker_id,
            metrics={"live.queue_depth": {"kind": "gauge", "help": "", "value": depth}},
        ))
    assert bus.fleet_summary()["queue_depth"] == 11.0


def test_fleet_summary_counts_frames_and_events():
    bus = shard_and_ingest(2)
    summary = bus.fleet_summary()
    assert summary["workers"] == 2
    assert summary["frames"] == bus.frames_seen > 0
    assert summary["completions"] == 200.0
    assert summary["p99_us"] > 0


def test_bus_events_are_tagged_with_worker_and_time():
    bus = TelemetryBus()
    bus.ingest(make_frame(
        worker=5, t=0.002, metrics={},
        events=[{"kind": "fault:straggler", "server": 1}],
    ))
    event = bus.events[-1]
    assert event["worker"] == 5 and event["t"] == 0.002
    assert event["kind"] == "fault:straggler"


def test_bus_rejects_invalid_frames():
    bus = TelemetryBus()
    with pytest.raises(TelemetryError):
        bus.ingest(make_frame(v=99))
    assert bus.frames_seen == 0


def test_bus_fans_frames_out_to_consumers():
    bus = TelemetryBus()
    seen = []
    bus.subscribe(seen.append)
    frame = make_frame()
    bus.ingest(frame)
    assert seen == [frame]


def test_flight_ring_is_bounded_and_keeps_newest(tmp_path):
    bus = TelemetryBus(ring_frames=4)
    for seq in range(10):
        bus.ingest(make_frame(seq=seq, t=seq * 1e-3, metrics={}))
    window = bus.flight_window(0)
    assert [frame["seq"] for frame in window] == [6, 7, 8, 9]
    assert bus.flight_window(42) == []


def test_flight_recorder_dump_round_trips(tmp_path):
    bus = shard_and_ingest(2)
    bus.no_telemetry_workers.add(7)
    path = str(tmp_path / "flight.jsonl")
    bus.dump_flight_recorder(path, reason="test-crash")
    lines = open(path).read().splitlines()
    header = json.loads(lines[0])
    assert header["record"] == "flight-recorder"
    assert header["reason"] == "test-crash"
    assert header["workers"] == [0, 1]
    assert header["no_telemetry_workers"] == [7]
    assert sum(header["frames"].values()) == len(lines) - 1
    frames = parse_telemetry_jsonl(open(path).read())
    assert len(frames) == len(lines) - 1
    assert all(validate_frame(frame) for frame in frames)


# -- sinks -------------------------------------------------------------------


def test_jsonl_sink_round_trips_through_parser(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    bus = TelemetryBus()
    sink = JsonlTelemetrySink(path)
    bus.subscribe(sink)
    frames = [make_frame(seq=i, t=i * 1e-3) for i in range(5)]
    bus.ingest_all(frames)
    sink.close()
    assert sink.frames == 5
    assert parse_telemetry_jsonl(open(path).read()) == frames


def test_jsonl_sink_accepts_streams_without_closing_them():
    stream = io.StringIO()
    sink = JsonlTelemetrySink(stream)
    sink(make_frame())
    sink.close()
    assert not stream.closed
    assert parse_telemetry_jsonl(stream.getvalue()) == [make_frame()]


def test_parse_telemetry_jsonl_rejects_malformed_lines():
    with pytest.raises(TelemetryError):
        parse_telemetry_jsonl(json.dumps(make_frame(v=3)))


def test_prometheus_textfile_parses_back(tmp_path):
    bus = shard_and_ingest(2)
    path = str(tmp_path / "fleet.prom")
    write_prometheus_textfile(bus, path)
    parsed = {record["name"]: record for record in parse_prometheus(open(path).read())}
    assert parsed["live.completions"]["value"] == 200.0
    assert "live.latency_s" in parsed
