"""Tests for service policies and the ready set."""

import pytest

from repro.core.policies import (
    RoundRobinPolicy,
    StrictPriorityPolicy,
    WeightedRoundRobinPolicy,
    policy_by_name,
)
from repro.core.ready_set import HardwareReadySet, SoftwareReadySet
from repro.sim.clock import Clock


def mask(*qids):
    value = 0
    for qid in qids:
        value |= 1 << qid
    return value


# -- round robin -----------------------------------------------------------------


def test_rr_cycles_through_ready_qids():
    policy = RoundRobinPolicy(8)
    ready = mask(1, 4, 6)
    order = [policy.take(ready) for _ in range(6)]
    assert order == [1, 4, 6, 1, 4, 6]


def test_rr_selected_gets_lowest_priority_next():
    policy = RoundRobinPolicy(4)
    assert policy.take(mask(0, 1)) == 0
    # 0 was served: even though still ready, 1 goes first now.
    assert policy.take(mask(0, 1)) == 1
    assert policy.take(mask(0, 1)) == 0


def test_rr_empty_returns_none_and_reset():
    policy = RoundRobinPolicy(4)
    assert policy.take(0) is None
    policy.take(mask(2))
    policy.reset()
    assert policy.take(mask(0, 2)) == 0  # priority back at bit 0


# -- weighted round robin -----------------------------------------------------------


def test_wrr_serves_weight_consecutive_rounds():
    policy = WeightedRoundRobinPolicy(8, weights={1: 3})
    ready = mask(1, 5)
    order = [policy.take(ready) for _ in range(6)]
    assert order == [1, 1, 1, 5, 1, 1]


def test_wrr_moves_on_when_queue_runs_dry():
    policy = WeightedRoundRobinPolicy(8, weights={1: 10})
    assert policy.take(mask(1, 5)) == 1
    # Queue 1 went empty: even with budget left, priority must move.
    assert policy.take(mask(5)) == 5


def test_wrr_default_weight_behaves_like_rr():
    wrr = WeightedRoundRobinPolicy(8)
    rr = RoundRobinPolicy(8)
    ready = mask(0, 3, 7)
    assert [wrr.take(ready) for _ in range(6)] == [rr.take(ready) for _ in range(6)]


def test_wrr_weight_share_matches_configuration():
    policy = WeightedRoundRobinPolicy(4, weights={0: 3, 1: 1})
    ready = mask(0, 1)
    served = [policy.take(ready) for _ in range(400)]
    share = served.count(0) / len(served)
    assert share == pytest.approx(0.75, abs=0.02)


def test_wrr_validation():
    with pytest.raises(ValueError):
        WeightedRoundRobinPolicy(4, weights={9: 1})
    with pytest.raises(ValueError):
        WeightedRoundRobinPolicy(4, weights={0: 0})
    with pytest.raises(ValueError):
        WeightedRoundRobinPolicy(4, default_weight=0)


def test_wrr_reset():
    policy = WeightedRoundRobinPolicy(4, weights={2: 5})
    policy.take(mask(2))
    policy.reset()
    assert policy.take(mask(0, 2)) == 0


# -- strict priority ---------------------------------------------------------------


def test_strict_always_lowest_qid():
    policy = StrictPriorityPolicy(8)
    ready = mask(2, 5, 7)
    assert [policy.take(ready) for _ in range(3)] == [2, 2, 2]
    assert policy.take(mask(7)) == 7


def test_strict_starves_high_qids():
    # The paper's caveat: strict priority starves low-priority queues.
    policy = StrictPriorityPolicy(4)
    served = [policy.take(mask(0, 3)) for _ in range(100)]
    assert served.count(3) == 0


def test_policy_by_name():
    assert isinstance(policy_by_name("rr", 8), RoundRobinPolicy)
    assert isinstance(policy_by_name("wrr", 8), WeightedRoundRobinPolicy)
    assert isinstance(policy_by_name("strict-priority", 8), StrictPriorityPolicy)
    with pytest.raises(ValueError):
        policy_by_name("fifo", 8)


# -- ready set ---------------------------------------------------------------------


def make_hw(capacity=16):
    return HardwareReadySet(capacity, RoundRobinPolicy(capacity))


def test_activate_select_take_clears_bit():
    ready_set = make_hw()
    ready_set.activate(3)
    assert ready_set.is_ready(3)
    assert ready_set.select_and_take() == 3
    assert not ready_set.is_ready(3)
    assert ready_set.select_and_take() is None


def test_ready_set_respects_policy_order():
    ready_set = make_hw()
    for qid in (2, 5, 9):
        ready_set.activate(qid)
    assert [ready_set.select_and_take() for _ in range(3)] == [2, 5, 9]


def test_disable_masks_selection():
    ready_set = make_hw()
    ready_set.activate(1)
    ready_set.activate(2)
    ready_set.disable(1)
    assert not ready_set.is_enabled(1)
    assert ready_set.select_and_take() == 2
    assert ready_set.select_and_take() is None  # 1 is masked
    assert ready_set.is_ready(1)  # but still ready
    ready_set.enable(1)
    assert ready_set.select_and_take() == 1


def test_deactivate():
    ready_set = make_hw()
    ready_set.activate(4)
    ready_set.deactivate(4)
    assert ready_set.select_and_take() is None


def test_ready_count_and_counters():
    ready_set = make_hw()
    ready_set.activate(0)
    ready_set.activate(1)
    assert ready_set.ready_count == 2
    ready_set.select_and_take()
    assert ready_set.activations == 2
    assert ready_set.selections == 1


def test_qid_bounds():
    ready_set = make_hw(capacity=4)
    with pytest.raises(ValueError):
        ready_set.activate(4)
    with pytest.raises(ValueError):
        ready_set.disable(-1)


def test_capacity_policy_width_check():
    with pytest.raises(ValueError):
        HardwareReadySet(16, RoundRobinPolicy(8))
    with pytest.raises(ValueError):
        HardwareReadySet(0, RoundRobinPolicy(1))


def test_hardware_selection_cost_is_constant():
    ready_set = make_hw(capacity=1024)
    clock = Clock()
    baseline = ready_set.selection_cycles(clock)
    for qid in range(0, 1024, 3):
        ready_set.activate(qid)
    assert ready_set.selection_cycles(clock) == baseline
    # 12.25 ns at 3 GHz ~ 37 cycles.
    assert baseline == pytest.approx(36.75)


def test_software_selection_cost_scales_with_ready_count():
    ready_set = SoftwareReadySet(1024, RoundRobinPolicy(1024))
    clock = Clock()
    idle_cost = ready_set.selection_cycles(clock)
    for qid in range(512):
        ready_set.activate(qid)
    busy_cost = ready_set.selection_cycles(clock)
    assert busy_cost > idle_cost
    assert busy_cost >= 512 * 6
