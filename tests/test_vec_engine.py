"""repro.vec: sweep-point validation, batch engine sanity, numpy gate."""

import pytest

from repro.vec import MissingNumpyError, numpy_available, numpy_version

np = pytest.importorskip("numpy")

from repro.vec.arrays import (  # noqa: E402
    MECH_HYPERPLANE,
    MECH_SPINNING,
    SweepPoint,
    compile_points,
)
from repro.vec.backend import latency_grid, peak_grid, vec_provenance  # noqa: E402


# -- SweepPoint validation ---------------------------------------------------


def test_sweep_point_rejects_unknowns_with_choices_listed():
    with pytest.raises(ValueError, match="workload"):
        SweepPoint("no-such-workload", "FB", 100)
    with pytest.raises(ValueError, match="FB"):
        SweepPoint("packet-encapsulation", "XX", 100)
    with pytest.raises(ValueError, match="spinning"):
        SweepPoint("packet-encapsulation", "FB", 100, mechanism="dpdk")
    with pytest.raises(ValueError, match="load"):
        SweepPoint("packet-encapsulation", "FB", 100, load=1.5)
    with pytest.raises(ValueError, match="num_queues"):
        SweepPoint("packet-encapsulation", "FB", 0)


def test_sweep_point_closed_vs_open():
    closed = SweepPoint("packet-encapsulation", "FB", 100)
    opened = SweepPoint("packet-encapsulation", "FB", 100, load=0.5)
    assert closed.closed_loop and not opened.closed_loop


def test_compile_points_shapes():
    points = [
        SweepPoint("packet-encapsulation", shape, count, mechanism=mechanism)
        for shape in ("FB", "PC")
        for count in (1, 200)
        for mechanism in ("spinning", "hyperplane")
    ]
    grid = compile_points(points)
    assert grid.num_points == len(points)
    assert grid.num_lanes >= grid.num_points
    assert set(np.unique(grid.mech)) <= {MECH_SPINNING, MECH_HYPERPLANE}
    assert np.all(grid.mean_service > 0)


# -- batch engine ------------------------------------------------------------


def _closed_points():
    return [
        SweepPoint("packet-encapsulation", shape, count, mechanism=mechanism)
        for shape in ("FB", "SQ")
        for count in (1, 400)
        for mechanism in ("spinning", "hyperplane")
    ]


def test_peak_grid_is_deterministic_and_positive():
    points = _closed_points()
    a = peak_grid(points, seed=7)
    b = peak_grid(points, seed=7)
    c = peak_grid(points, seed=8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.all(a > 0)


def test_peak_grid_shows_the_fig8_scan_penalty():
    """Spinning throughput must fall with queue count; HyperPlane holds."""
    points = [
        SweepPoint("packet-encapsulation", "SQ", count, mechanism=mechanism)
        for count in (1, 1000)
        for mechanism in ("spinning", "hyperplane")
    ]
    spin_1, hp_1, spin_1000, hp_1000 = peak_grid(points, seed=0)
    assert spin_1000 < 0.5 * spin_1
    assert hp_1000 > 0.5 * hp_1
    assert hp_1000 > 2.0 * spin_1000


def test_latency_grid_orders_load_levels():
    points = [
        SweepPoint(
            "packet-encapsulation", "FB", 400, mechanism="hyperplane", load=load
        )
        for load in (0.2, 0.8)
    ]
    res = latency_grid(points, seed=0)
    assert res.p99_us[1] > res.p99_us[0]
    assert np.all(res.mean_us <= res.p99_us)
    assert np.all(res.p50_us <= res.p99_us)


def test_backend_entry_points_reject_mixed_grids():
    closed = SweepPoint("packet-encapsulation", "FB", 100)
    opened = SweepPoint("packet-encapsulation", "FB", 100, load=0.5)
    with pytest.raises(ValueError, match="closed"):
        peak_grid([opened])
    with pytest.raises(ValueError, match="load"):
        latency_grid([closed])


def test_vec_runs_feed_ambient_metrics_registry():
    from repro.obs import MetricsRegistry
    from repro.obs.runtime import active_registry

    registry = MetricsRegistry(enabled=True)
    with active_registry(registry):
        peak_grid(_closed_points(), seed=0)
    assert registry.counter("vec.points_total").value >= len(_closed_points())
    assert registry.counter("vec.tasks_total").value > 0


# -- numpy gate --------------------------------------------------------------


def test_numpy_reported_available_here():
    assert numpy_available()
    assert numpy_version() != "absent"


def test_missing_numpy_paths(monkeypatch):
    import repro.vec as vec

    monkeypatch.setattr(vec, "_np", None)
    assert not vec.numpy_available()
    assert vec.numpy_version() == "absent"
    with pytest.raises(MissingNumpyError, match="pip install"):
        vec.require_numpy()


def test_vec_provenance_records_numpy_version():
    info = vec_provenance(backend="vec")
    assert info["backend"] == "vec"
    assert info["numpy"] == np.__version__
    assert "oracle" not in info or info["oracle"] is None
