"""Surrogate fit/predict quality and the fail-loud oracle validation."""

import time

import pytest

np = pytest.importorskip("numpy")

from repro.vec.arrays import SweepPoint, compile_points  # noqa: E402
from repro.vec.backend import latency_grid, peak_grid  # noqa: E402
from repro.vec.oracle import P99_RTOL, THROUGHPUT_RTOL  # noqa: E402
from repro.vec.surrogate import (  # noqa: E402
    LatencySurrogate,
    OracleReport,
    SurrogateValidationError,
    ThroughputSurrogate,
    validate_against_oracle,
)

SEED = 0


def _closed_grid():
    points = [
        SweepPoint(workload, shape, count, mechanism=mechanism)
        for workload in ("packet-encapsulation", "crypto-forwarding")
        for shape in ("FB", "PC", "NC", "SQ")
        for count in (1, 200, 1000)
        for mechanism in ("spinning", "hyperplane")
    ]
    return compile_points(points)


def _open_grid():
    points = [
        SweepPoint(
            "packet-encapsulation", shape, 400,
            mechanism=mechanism, num_cores=4, cluster_cores=cluster, load=load,
        )
        for shape in ("FB", "PC")
        for mechanism in ("spinning", "hyperplane")
        for cluster in (1, 2)
        for load in (0.2, 0.5, 0.8)
    ]
    return compile_points(points)


# -- fitting -----------------------------------------------------------------


def test_throughput_surrogate_fits_vec_output_tightly():
    grid = _closed_grid()
    observed = peak_grid(grid, seed=SEED)
    surrogate = ThroughputSurrogate()
    assert not surrogate.fitted
    fit = surrogate.fit(grid, observed)
    assert surrogate.fitted
    assert fit.metric == "throughput_mtps"
    assert fit.num_points == grid.num_points
    # The analytic seed already captures the scan-cost mechanism; the
    # fitted correction must land well inside the oracle tolerance on
    # its own training grid or it could never validate.
    assert fit.max_rel_error < THROUGHPUT_RTOL
    predicted = surrogate.predict(grid)
    assert predicted.shape == (grid.num_points,)
    assert np.all(predicted > 0)


def test_latency_surrogate_fits_vec_output():
    grid = _open_grid()
    observed = latency_grid(grid, seed=SEED)
    surrogate = LatencySurrogate()
    fit = surrogate.fit(grid, observed.p99_us)
    assert fit.metric == "p99_us"
    # Tail surrogates are rougher than throughput ones: the linear
    # correction tracks the bulk of the grid (mean residual well inside
    # the contract) but individual shared-cluster spinning points can
    # stray further — which is exactly why publishing surrogate numbers
    # requires the validate_against_oracle() gate, not the training fit.
    assert fit.mean_rel_error < P99_RTOL
    assert fit.max_rel_error < 2 * P99_RTOL
    predicted = surrogate.predict(grid)
    # Predictions never fall under the physical floor (service time).
    assert np.all(predicted >= grid.mean_service * 1e6 - 1e-9)


def test_surrogate_guards():
    grid = _closed_grid()
    surrogate = ThroughputSurrogate()
    with pytest.raises(RuntimeError, match="fit"):
        surrogate.predict(grid)
    with pytest.raises(ValueError, match="one entry per grid point"):
        surrogate.fit(grid, [1.0])
    with pytest.raises(ValueError, match="positive"):
        surrogate.fit(grid, [0.0] * grid.num_points)
    with pytest.raises(ValueError, match="open-loop"):
        LatencySurrogate().fit(grid, [1.0] * grid.num_points)


# -- oracle validation -------------------------------------------------------


def test_validate_against_oracle_passes_a_good_fit():
    grid = _closed_grid()
    surrogate = ThroughputSurrogate()
    surrogate.fit(grid, peak_grid(grid, seed=SEED))
    report = validate_against_oracle(
        surrogate, grid, samples=2, seed=SEED,
        target_completions=600, max_seconds=2.0,
    )
    assert isinstance(report, OracleReport)
    assert report.passed
    assert report.metric == "throughput_mtps"
    assert len(report.sample_indices) == 2
    payload = report.to_dict()
    assert payload["passed"] is True
    assert payload["tolerance"] == THROUGHPUT_RTOL


def test_validate_against_oracle_fails_a_misfit_surrogate_loudly():
    """A deliberately mis-fit surrogate must raise, not quietly pass."""
    grid = _closed_grid()
    surrogate = ThroughputSurrogate()
    surrogate.fit(grid, peak_grid(grid, seed=SEED))
    # Corrupt the fitted coefficients: 5x the seconds-per-task slope.
    surrogate._theta = surrogate._theta * 5.0
    with pytest.raises(SurrogateValidationError) as excinfo:
        validate_against_oracle(
            surrogate, grid, samples=2, seed=SEED,
            target_completions=600, max_seconds=2.0,
        )
    report = excinfo.value.report
    assert not report.passed
    assert report.max_rel_error > THROUGHPUT_RTOL
    assert "tolerance" in str(excinfo.value)


def test_validate_raw_predictions_without_a_surrogate():
    grid = _closed_grid()
    observed = peak_grid(grid, seed=SEED)
    report = validate_against_oracle(
        None, grid, predictions=observed, metric="throughput_mtps",
        samples=2, seed=SEED, target_completions=600, max_seconds=2.0,
    )
    assert report.passed
    with pytest.raises(ValueError, match="metric"):
        validate_against_oracle(None, grid, predictions=observed)
    with pytest.raises(ValueError, match="unknown metric"):
        validate_against_oracle(
            None, grid, predictions=observed, metric="jitter_us"
        )


# -- the point of surrogates: dense grids for free ---------------------------


def test_fitted_surrogate_regenerates_1000_point_grid_fast():
    """Fit once, then sweep a 1296-point design space in seconds."""
    small = _closed_grid()
    surrogate = ThroughputSurrogate()
    surrogate.fit(small, peak_grid(small, seed=SEED))

    counts = [1 + 16 * i for i in range(63)]  # 1..993, 63 values
    dense_points = [
        SweepPoint(workload, shape, count, mechanism=mechanism)
        for workload in ("packet-encapsulation", "crypto-forwarding")
        for shape in ("FB", "PC", "NC", "SQ")
        for count in counts
        for mechanism in ("spinning", "hyperplane")
    ]
    assert len(dense_points) >= 1000
    t0 = time.perf_counter()
    dense = compile_points(dense_points)
    predicted = surrogate.predict(dense)
    elapsed = time.perf_counter() - t0
    assert elapsed < 10.0, f"dense sweep took {elapsed:.1f}s (budget 10s)"
    assert predicted.shape == (len(dense_points),)
    assert np.all(predicted > 0)
