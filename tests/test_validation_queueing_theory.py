"""Validation: the discrete-event simulator against closed-form queueing.

A HyperPlane data plane with negligible notification overhead is, to
first order, an M/M/c queue (Poisson arrivals, exponential service, c
cores, one shared queue pool). These tests pin the simulator's waiting
times to the Erlang-C closed forms — the strongest available ground
truth for the queueing substrate.
"""

import pytest

from repro.core.runner import run_hyperplane
from repro.queueing.theory import mmc_mean_wait, mm1_mean_wait
from repro.sdp.config import SDPConfig
from repro.workloads.service import workload_by_name

SPEC = workload_by_name("packet-encapsulation")
SERVICE = SPEC.mean_service_seconds


def observed_mean_wait(num_cores: int, load: float, seed: int = 0) -> float:
    """Simulated mean latency minus the no-wait baseline (overheads +
    service), isolating the queueing delay."""
    def run(the_load):
        config = SDPConfig(
            num_queues=max(8, num_cores * 2),
            num_cores=num_cores,
            cluster_cores=num_cores,
            workload=SPEC,
            shape="FB",
            seed=seed,
        )
        return run_hyperplane(
            config, load=the_load, target_completions=12000, max_seconds=4.0
        ).latency.mean

    # The zero-load run measures service + fixed notification overheads.
    baseline = run(0.02)
    return run(load) - baseline


@pytest.mark.parametrize("load", [0.5, 0.7])
def test_single_core_matches_mm1(load):
    observed = observed_mean_wait(1, load)
    # The fixed per-item overhead (~0.1 us) slightly raises utilisation;
    # compare against theory at the effective load.
    effective = load * 1.08
    expected = mm1_mean_wait(effective / SERVICE, 1.0 / SERVICE)
    assert observed == pytest.approx(expected, rel=0.30)


def test_four_cores_match_mmc():
    load = 0.6
    observed = observed_mean_wait(4, load)
    effective = load * 1.08
    expected = mmc_mean_wait(4 * effective / SERVICE, 1.0 / SERVICE, 4)
    assert observed == pytest.approx(expected, rel=0.35)


def test_pooling_gain_matches_theory_direction():
    # Four pooled cores must wait far less than one core at the same
    # per-core load — and the measured ratio should be of the same order
    # as Erlang-C predicts.
    load = 0.6
    single = observed_mean_wait(1, load)
    pooled = observed_mean_wait(4, load)
    theory_ratio = mm1_mean_wait(load / SERVICE, 1.0 / SERVICE) / mmc_mean_wait(
        4 * load / SERVICE, 1.0 / SERVICE, 4
    )
    measured_ratio = single / pooled
    assert measured_ratio > 2.0
    assert measured_ratio == pytest.approx(theory_ratio, rel=0.6)
