"""Tests for the memory hierarchy wiring and cost-model extraction."""

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.costmodel import (
    CostModel,
    derive_cost_model,
    empty_poll_cost_curve,
    interpolate_poll_cost,
)
from repro.mem.hierarchy import MemConfig, MemoryHierarchy


def small_config(cores=2):
    return MemConfig(num_cores=cores)


def test_first_access_is_dram_then_l1():
    hierarchy = MemoryHierarchy(small_config())
    first = hierarchy.read(0, 0x1000)
    assert first.level == "DRAM"
    second = hierarchy.read(0, 0x1000)
    assert second.level == "L1" and second.hit


def test_cross_core_write_read_is_remote():
    hierarchy = MemoryHierarchy(small_config())
    hierarchy.write(0, 0x1000)
    result = hierarchy.read(1, 0x1000)
    assert result.level == "remote-L1"


def test_write_invalidates_remote_l1_structurally():
    hierarchy = MemoryHierarchy(small_config())
    hierarchy.read(0, 0x1000)
    hierarchy.read(1, 0x1000)
    hierarchy.write(0, 0x1000)
    # Core 1's structural copy must be gone: its next read refills.
    result = hierarchy.read(1, 0x1000)
    assert not result.hit


def test_llc_hit_after_capacity_eviction():
    # Tiny L1 so lines fall out quickly but stay in the big LLC.
    config = MemConfig(
        num_cores=1,
        l1=CacheConfig(size_bytes=2 * 64 * 2, ways=2),  # 4 lines
        llc_per_core=CacheConfig.llc_per_core(),
    )
    hierarchy = MemoryHierarchy(config)
    addresses = [i * 64 for i in range(16)]
    for addr in addresses:
        hierarchy.read(0, addr)
    result = hierarchy.read(0, addresses[0])
    assert result.level == "LLC"
    hierarchy.check_invariants()


def test_snooper_passthrough():
    hierarchy = MemoryHierarchy(small_config())
    seen = []
    hierarchy.add_snooper(lambda line: True, lambda l, c, k: seen.append((l, c)))
    hierarchy.write(0, 0x2000)
    assert seen and seen[0] == (0x2000, 0)


def test_llc_total_capacity_scales_with_cores():
    config = MemConfig(num_cores=16)
    assert config.llc_total_bytes == 16 * 1024 * 1024


def test_reset_stats():
    hierarchy = MemoryHierarchy(small_config())
    hierarchy.read(0, 0)
    hierarchy.reset_stats()
    assert hierarchy.l1s[0].stats.accesses == 0
    assert hierarchy.llc.stats.accesses == 0


# -- cost model ---------------------------------------------------------------


def test_poll_cost_curve_has_l1_cliff():
    curve = empty_poll_cost_curve([64, 512, 1024], MemConfig(num_cores=1))
    assert curve[64] == curve[512]  # all L1-resident (512-line L1)
    assert curve[1024] > curve[512]  # beyond L1: LLC-level cost


def test_poll_cost_curve_resident_fraction_raises_cost():
    full = empty_poll_cost_curve([1024], MemConfig(num_cores=1), 1.0)
    half = empty_poll_cost_curve([1024], MemConfig(num_cores=1), 0.5)
    assert half[1024] > full[1024]


def test_poll_cost_curve_validation():
    with pytest.raises(ValueError):
        empty_poll_cost_curve([0])
    with pytest.raises(ValueError):
        empty_poll_cost_curve([1], llc_doorbell_resident_fraction=1.5)


def test_interpolation_between_points():
    curve = {10: 10.0, 20: 30.0}
    assert interpolate_poll_cost(curve, 10) == 10.0
    assert interpolate_poll_cost(curve, 15) == pytest.approx(20.0)
    assert interpolate_poll_cost(curve, 5) == 10.0
    assert interpolate_poll_cost(curve, 50) == 30.0


def test_derive_cost_model_matches_latency_config():
    config = MemConfig()
    model = derive_cost_model(config)
    lat = config.latencies
    assert model.l1_hit == lat.l1_hit
    assert model.llc_hit == lat.directory_lookup + lat.llc_hit
    assert model.dram == lat.directory_lookup + lat.dram
    # 0.5 us at 3 GHz.
    assert model.c1_wakeup == 1500


def test_cost_model_scaled():
    model = CostModel()
    scaled = model.scaled(2.0)
    assert scaled.dram == 2 * model.dram
    assert scaled.l1_hit == model.l1_hit  # L1 untouched


def test_cost_ordering_is_physical():
    model = derive_cost_model()
    assert model.l1_hit < model.llc_hit < model.dram
    assert model.llc_hit < model.remote_transfer < model.dram


def test_llc_set_count_rounds_up_for_non_power_of_two_cores():
    # 3 cores x 1 MB = 3 MB aggregate, which is not a power-of-two set
    # count; real indexed caches need one, so the LLC rounds up to the
    # next power of two (4 MB of sets).
    hierarchy = MemoryHierarchy(MemConfig(num_cores=3))
    llc = hierarchy.llc
    assert llc.num_sets & (llc.num_sets - 1) == 0
    assert llc.size_bytes == 4 * 1024 * 1024
    # Power-of-two core counts keep the exact aggregate capacity.
    assert MemoryHierarchy(MemConfig(num_cores=4)).llc.size_bytes == 4 * 1024 * 1024
    assert MemoryHierarchy(MemConfig(num_cores=1)).llc.size_bytes == 1 * 1024 * 1024
