"""Differential tests for the rack fast path vs. the frozen reference.

The fast rack (:mod:`repro.cluster.rack`) must be *bit-identical* to the
pre-fast-path stack preserved in :mod:`repro.cluster._reference`: same
client metrics (exact latency sample lists included), same per-server
stats, and the same RNG stream positions — draw-for-draw equivalence,
not just distributional. These tests fuzz that contract across the
notification x balancer x fault x fleet-size grid and pin the
supporting caches (interned weight tables, flow->queue memo, the
unrolled P² estimator) against their reference counterparts.
"""

import random

import pytest

from repro.cluster import tables
from repro.cluster._reference import (
    ReferenceClusterServer,
    ReferenceP2Quantile,
    ReferenceRack,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.rack import Rack
from repro.sdp import locality
from repro.sdp.quantiles import P2Quantile


@pytest.fixture(autouse=True)
def _fresh_interned_state():
    tables.clear_tables()
    locality.clear_shared_curves()
    yield
    tables.clear_tables()
    locality.clear_shared_curves()


def _run_rack(rack_cls, config_kwargs, load=0.7, duration=0.002, warmup=0.0005):
    tables.clear_tables()
    rack = rack_cls(ClusterConfig(**config_kwargs))
    rack.attach_open_loop(load=load)
    rack.run(duration=duration, warmup=warmup)
    return rack


def _state(rack):
    """Everything the bit-identicality contract covers."""
    return (
        rack.metrics.fingerprint(),
        tuple(rack.metrics.latency._samples),
        rack.metrics.dispatched,
        rack.metrics.rejected,
        rack.metrics.redispatched,
        rack.generated,
        tuple((s.dispatched, s.completed_ok, s.lost) for s in rack.servers),
        rack.streams.stream("cluster.arrivals").getstate(),
        rack.streams.stream("cluster.flows").getstate(),
        rack.streams.stream("cluster.balancer").getstate(),
        tuple(
            s.system.streams.stream("service").getstate() for s in rack.servers
        ),
    )


def _assert_pair_identical(config_kwargs, load=0.7, duration=0.002, warmup=0.0005):
    ref = _run_rack(ReferenceRack, config_kwargs, load, duration, warmup)
    fast = _run_rack(Rack, config_kwargs, load, duration, warmup)
    assert _state(fast) == _state(ref)
    return fast, ref


# -- differential fuzz: the full scenario grid -------------------------------

BALANCERS = ("rss", "round-robin", "least-loaded", "p2c")
PROFILES = ("none", "crash", "straggler")


@pytest.mark.parametrize("notification", ("spinning", "hyperplane"))
@pytest.mark.parametrize("balancer", BALANCERS)
@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("num_servers", (1, 4))
def test_fast_rack_matches_reference(notification, balancer, profile, num_servers):
    _assert_pair_identical(
        dict(
            num_servers=num_servers,
            notification=notification,
            balancer=balancer,
            fault_profile=profile,
            queues_per_server=8,
            num_flows=32,
            flow_skew=0.5,
            seed=11 + num_servers,
        )
    )


@pytest.mark.parametrize(
    "notification, balancer, profile",
    [
        ("spinning", "rss", "none"),
        ("spinning", "rss", "crash"),
        ("spinning", "round-robin", "straggler"),
        ("hyperplane", "p2c", "none"),
    ],
)
def test_fast_rack_matches_reference_16_servers(notification, balancer, profile):
    _assert_pair_identical(
        dict(
            num_servers=16,
            notification=notification,
            balancer=balancer,
            fault_profile=profile,
            queues_per_server=8,
            num_flows=64,
            flow_skew=0.3,
            seed=29,
        ),
        duration=0.0015,
        warmup=0.0005,
    )


def test_tiny_capacity_overload_rejections_identical():
    """queue_capacity=2 under 1.4x load: thousands of rejections force
    the balancer clamp and the sweep's delivery-pull fallback paths."""
    fast, ref = _assert_pair_identical(
        dict(
            num_servers=4,
            notification="spinning",
            balancer="rss",
            queues_per_server=8,
            num_flows=32,
            flow_skew=0.5,
            queue_capacity=2,
            seed=5,
        ),
        load=1.4,
    )
    assert fast.metrics.rejected > 0


# -- satellite: queue_for_flow cache -----------------------------------------


@pytest.mark.parametrize("shape", ("FB", "SQ"))
@pytest.mark.parametrize("skewed_seed", (3, 17))
def test_queue_for_flow_matches_reference(shape, skewed_seed):
    config = ClusterConfig(
        num_servers=2,
        notification="spinning",
        queues_per_server=16,
        num_flows=64,
        shape=shape,
        seed=skewed_seed,
    )
    fast = Rack(config)
    ref = ReferenceRack(config)
    for index in range(config.num_servers):
        for flow in range(config.num_flows):
            assert fast.servers[index].queue_for_flow(flow) == ref.servers[
                index
            ].queue_for_flow(flow)


def test_queue_for_flow_is_memoised():
    config = ClusterConfig(
        num_servers=1, notification="spinning", queues_per_server=8, num_flows=16
    )
    server = Rack(config).servers[0]
    assert server._flow_queue_map == {}
    first = server.queue_for_flow(7)
    assert server._flow_queue_map == {7: first}
    # A poisoned memo entry being returned proves the hit path is taken.
    server._flow_queue_map[7] = (first + 1) % config.queues_per_server
    assert server.queue_for_flow(7) == server._flow_queue_map[7]


def test_queue_for_flow_stable_across_crash_restart_epochs():
    config_kwargs = dict(
        num_servers=2,
        notification="spinning",
        queues_per_server=8,
        num_flows=32,
        flow_skew=0.5,
        seed=13,
    )
    rack = Rack(ClusterConfig(**config_kwargs))
    server = rack.servers[0]
    before = {flow: server.queue_for_flow(flow) for flow in range(32)}
    rack.attach_open_loop(load=0.5)
    rack.sim.schedule(0.0004, lambda _=None: rack.crash_server(0))
    rack.sim.schedule(0.0008, lambda _=None: rack.restart_server(0))
    rack.run(duration=0.0015, warmup=0.0)
    assert server.epoch > 0
    after = {flow: server.queue_for_flow(flow) for flow in range(32)}
    assert after == before
    reference = ReferenceRack(ClusterConfig(**config_kwargs)).servers[0]
    assert after == {flow: reference.queue_for_flow(flow) for flow in range(32)}


# -- satellite: interned cumulative-weight tables ----------------------------


def test_homogeneous_servers_share_one_weight_table():
    rack = Rack(
        ClusterConfig(num_servers=4, notification="spinning", queues_per_server=16)
    )
    first = rack.servers[0]._weight_table
    assert all(server._weight_table is first for server in rack.servers)
    # Distinct per-server seeds mean distinct flow memos on that table.
    maps = [id(server._flow_queue_map) for server in rack.servers]
    assert len(set(maps)) == len(maps)


def test_same_seed_servers_share_the_flow_memo():
    class SameSeedConfig(ClusterConfig):
        def server_config(self, index):
            base = super().server_config(index)
            base.seed = 123
            return base

    rack = Rack(
        SameSeedConfig(num_servers=2, notification="spinning", queues_per_server=8)
    )
    assert rack.servers[0]._flow_queue_map is rack.servers[1]._flow_queue_map


def test_heterogeneous_server_overrides_get_their_own_table():
    class LopsidedConfig(ClusterConfig):
        """Index 0 runs a different queue count than the rest."""

        def server_config(self, index):
            base = super().server_config(index)
            if index == 0:
                base.num_queues = 4
            return base

    rack = Rack(
        LopsidedConfig(num_servers=3, notification="spinning", queues_per_server=8)
    )
    odd, rest = rack.servers[0], rack.servers[1:]
    assert all(s._weight_table is rest[0]._weight_table for s in rest)
    assert odd._weight_table is not rest[0]._weight_table
    assert odd._weight_table.num_queues == 4
    for server in rack.servers:
        for flow in range(16):
            qid = server.queue_for_flow(flow)
            assert 0 <= qid < server.config.num_queues
            assert qid == server._weight_table.compute(server.config.seed, flow)


# -- satellite: unrolled P² estimator ----------------------------------------


def _p2_streams():
    rng = random.Random(99)
    yield "uniform", [rng.random() for _ in range(400)]
    yield "exponential", [rng.expovariate(1e5) for _ in range(400)]
    yield "heavy-tail", [rng.paretovariate(1.3) for _ in range(400)]
    yield "constant", [1.0] * 50
    yield "sorted", sorted(rng.random() for _ in range(200))
    yield "reversed", sorted((rng.random() for _ in range(200)), reverse=True)
    yield "duplicates", [rng.choice((0.1, 0.2, 0.3)) for _ in range(300)]


@pytest.mark.parametrize("quantile", (0.5, 0.99, 0.999))
def test_unrolled_p2_bitwise_matches_reference(quantile):
    for name, values in _p2_streams():
        fast = P2Quantile(quantile)
        ref = ReferenceP2Quantile(quantile)
        for value in values:
            fast.add(value)
            ref.add(value)
            assert fast.value == ref.value, name
        assert fast.count == ref.count
        assert list(fast._heights) == list(ref._heights), name
        assert list(fast._positions) == list(ref._positions), name
        assert list(fast._desired) == list(ref._desired), name


# -- satellite: repro-bench --compare ----------------------------------------


def _report(mode, **rates):
    return {
        "schema": 1,
        "mode": mode,
        "scenarios": {
            sid: {
                "wall_seconds": 1.0,
                "events": rate,
                "events_per_sec": float(rate),
            }
            for sid, rate in rates.items()
        },
    }


def test_diff_reports_speedups_and_regressions():
    from repro.bench import diff_reports, format_diff

    old = _report("quick", a=100, b=100, c=100, gone=50)
    new = _report("quick", a=300, b=70, c=90, added=10)
    rows, regressions = diff_reports(old, new, threshold=0.25)
    by_id = {row["scenario"]: row for row in rows}
    assert by_id["a"]["speedup"] == 3.0 and not by_id["a"]["regression"]
    assert by_id["b"]["regression"] and regressions == ["b"]
    assert not by_id["c"]["regression"]  # -10% is inside the 25% gate
    assert by_id["gone"]["note"] == "only in OLD"
    assert by_id["added"]["note"] == "only in NEW"
    table = format_diff(rows, 0.25)
    assert "REGRESSION" in table and "3.00x" in table


def test_diff_reports_rejects_mode_mismatch():
    from repro.bench import diff_reports

    with pytest.raises(ValueError, match="mode"):
        diff_reports(_report("quick", a=1), _report("full", a=1))


def test_compare_cli_exits_nonzero_on_gate_breach(tmp_path, capsys):
    import json

    from repro.bench.__main__ import main

    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_report("quick", a=100, b=100)))
    new.write_text(json.dumps(_report("quick", a=100, b=40)))
    assert main(["--compare", str(old), str(new)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    new.write_text(json.dumps(_report("quick", a=120, b=110)))
    assert main(["--compare", str(old), str(new)]) == 0


def test_cluster_scenarios_registered():
    from repro.bench import SCENARIOS

    assert SCENARIOS["cluster_spin16"].default
    assert SCENARIOS["cluster_grid_row"].default
