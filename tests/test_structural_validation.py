"""Structural-mode tests: real coherence under the notification protocol,
and cross-validation of the fast models against the execution-driven one."""

import pytest

from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.structural import (
    StructuralHyperPlane,
    StructuralHyperPlaneCore,
    StructuralMachine,
    StructuralSpinningCore,
)

SERVICE = 1.4e-6


def spin_machine(num_queues=8, rate=5e4, max_items=150, **kwargs):
    machine = StructuralMachine(
        num_queues=num_queues, mean_service_seconds=SERVICE, **kwargs
    )
    StructuralSpinningCore(machine)
    machine.start_producers(total_rate=rate, max_items=max_items)
    return machine


def hp_machine(num_queues=8, rate=5e4, max_items=150, **kwargs):
    machine = StructuralMachine(
        num_queues=num_queues, mean_service_seconds=SERVICE, **kwargs
    )
    accelerator = StructuralHyperPlane(machine)
    core = StructuralHyperPlaneCore(machine, accelerator)
    machine.start_producers(total_rate=rate, max_items=max_items)
    return machine, accelerator, core


# -- basic operation ----------------------------------------------------------------


def test_structural_spinning_completes_all_items():
    machine = spin_machine()
    metrics = machine.run(duration=0.02, target_completions=150)
    assert metrics.latency.count == 150


def test_structural_hyperplane_completes_all_items():
    machine, accelerator, core = hp_machine()
    metrics = machine.run(duration=0.02, target_completions=150)
    assert metrics.latency.count == 150
    accelerator.check_no_lost_wakeups(
        {core.servicing} if core.servicing is not None else frozenset()
    )


def test_monitoring_set_sees_real_getm_transactions():
    machine, accelerator, _core = hp_machine(max_items=50)
    machine.run(duration=0.01, target_completions=50)
    # Every armed-doorbell producer write snooped at the directory.
    assert accelerator.monitoring.snoop_hits >= 50 * 0.5
    # Consumer decrements while disarmed count as misses, not wake-ups.
    assert accelerator.monitoring.snoop_misses > 0


def test_hyperplane_halts_between_arrivals():
    machine, _accelerator, _core = hp_machine(rate=2e4, max_items=60)
    metrics = machine.run(duration=0.02, target_completions=60)
    activity = metrics.activities[machine.consumer_core(0)]
    assert activity.halt_fraction > 0.5
    assert activity.wakeups >= 30


def test_spinning_polls_continuously():
    machine = spin_machine(rate=2e4, max_items=60)
    core = StructuralSpinningCore.__new__(StructuralSpinningCore)  # placeholder
    machine2 = StructuralMachine(num_queues=8, mean_service_seconds=SERVICE)
    spinner = StructuralSpinningCore(machine2)
    machine2.start_producers(total_rate=2e4, max_items=60)
    metrics = machine2.run(duration=0.02, target_completions=60)
    assert spinner.polls > 1000  # many empty polls between arrivals
    assert metrics.activities[machine2.consumer_core(0)].halt_fraction == 0.0


# -- false sharing / spurious wake-ups ---------------------------------------------------


def test_false_sharing_causes_spurious_wakeups_that_verify_filters():
    machine, accelerator, core = hp_machine(
        num_queues=4, rate=8e4, max_items=200, false_sharing=True
    )
    metrics = machine.run(duration=0.02, target_completions=200)
    # Ring-head writes on armed doorbell lines activated queues early;
    # QWAIT-VERIFY filtered them and nothing was lost.
    assert core.spurious_filtered > 0
    assert metrics.latency.count == 200


def test_no_false_sharing_no_spurious_wakeups():
    machine, accelerator, core = hp_machine(
        num_queues=4, rate=8e4, max_items=200, false_sharing=False
    )
    metrics = machine.run(duration=0.02, target_completions=200)
    assert core.spurious_filtered == 0
    assert metrics.latency.count == 200


# -- cross-validation against the fast models ----------------------------------------------


def test_structural_confirms_hyperplane_latency_is_queue_count_independent():
    def mean_latency(num_queues):
        machine, _a, _c = hp_machine(num_queues=num_queues, rate=3e4, max_items=120)
        return machine.run(duration=0.03, target_completions=120).latency.mean

    few = mean_latency(2)
    many = mean_latency(32)
    assert many == pytest.approx(few, rel=0.15)


def test_structural_confirms_spinning_latency_grows_with_queue_count():
    # At feasible structural scale (tens of queues) the full 32 KB L1
    # hides the effect, so shrink the L1 to surface the capacity-driven
    # poll-miss mechanism the 1000-queue fast sweeps rely on.
    from repro.mem.cache import CacheConfig
    from repro.mem.hierarchy import MemConfig

    small_l1 = MemConfig(num_cores=2, l1=CacheConfig(size_bytes=1024, ways=2))

    def mean_latency(num_queues):
        machine = spin_machine(
            num_queues=num_queues, rate=3e4, max_items=120, mem_config=small_l1
        )
        return machine.run(duration=0.03, target_completions=120).latency.mean

    few = mean_latency(2)  # 2 doorbell lines: fits the 16-line L1
    many = mean_latency(64)  # 64 lines: every poll misses
    assert many > 1.2 * few


def test_structural_and_fast_spinning_agree_on_zero_load_latency():
    # Same scenario both ways: 16 queues, light load, deterministic
    # service. The fast model's cost curves were derived from the same
    # structural hierarchy, so means should agree within tens of percent.
    machine = spin_machine(num_queues=16, rate=3e4, max_items=200)
    structural = machine.run(duration=0.05, target_completions=200).latency.mean

    fast = run_spinning(
        SDPConfig(
            num_queues=16, workload="packet-encapsulation", shape="FB",
            seed=0, service_scv=0.0,
        ),
        load=3e4 * SERVICE,
        target_completions=200,
        max_seconds=1.0,
    ).latency.mean
    assert structural == pytest.approx(fast, rel=0.4)


def test_structural_and_fast_hyperplane_agree_on_zero_load_latency():
    machine, _a, _c = hp_machine(num_queues=16, rate=3e4, max_items=200)
    structural = machine.run(duration=0.05, target_completions=200).latency.mean

    fast = run_hyperplane(
        SDPConfig(
            num_queues=16, workload="packet-encapsulation", shape="FB",
            seed=0, service_scv=0.0,
        ),
        load=3e4 * SERVICE,
        target_completions=200,
        max_seconds=1.0,
    ).latency.mean
    assert structural == pytest.approx(fast, rel=0.4)


def test_structural_machine_validation():
    with pytest.raises(ValueError):
        StructuralMachine(num_queues=0)
    with pytest.raises(ValueError):
        StructuralMachine(num_queues=1, num_producers=0)
