"""Tests for the kernel calibration harness."""

import pytest

from repro.workloads.calibration import (
    build_kernel_drivers,
    calibration_report,
    measure_kernels,
)
from repro.workloads.service import WORKLOADS

HEAVY = ("crypto-forwarding", "erasure-coding", "raid-protection")
LIGHT = ("packet-encapsulation", "packet-steering", "request-dispatching")


def test_drivers_cover_all_six_workloads():
    drivers = build_kernel_drivers()
    assert set(drivers) == set(WORKLOADS)
    for driver in drivers.values():
        driver()  # every kernel runs without error


def test_drivers_do_real_work():
    drivers = build_kernel_drivers(seed=1)
    encapsulated = drivers["packet-encapsulation"]()
    assert isinstance(encapsulated, bytes) and len(encapsulated) > 40
    ciphertext = drivers["crypto-forwarding"]()
    assert isinstance(ciphertext, bytes) and len(ciphertext) % 16 == 0


@pytest.fixture(scope="module")
def timings():
    return measure_kernels(iterations=30, repeats=2)


def test_heavy_kernels_cost_more_in_both_columns(timings):
    for heavy in HEAVY:
        for light in LIGHT:
            assert (
                timings[heavy].seconds_per_item > timings[light].seconds_per_item
            ), f"{heavy} measured cheaper than {light}"
            assert (
                timings[heavy].configured_mean_us > 0
                and timings[light].configured_mean_us > 0
            )
    # Configured means preserve the same heavy/light split.
    slowest_light = max(WORKLOADS[name].mean_service_us for name in LIGHT)
    for heavy in HEAVY:
        assert WORKLOADS[heavy].mean_service_us > slowest_light


def test_timings_are_positive_and_annotated(timings):
    for name, timing in timings.items():
        assert timing.seconds_per_item > 0
        assert timing.measured_us == pytest.approx(timing.seconds_per_item * 1e6)
        assert timing.configured_mean_us == WORKLOADS[name].mean_service_us


def test_report_format(timings):
    report = calibration_report(timings)
    for name in WORKLOADS:
        assert name in report
    assert "ratio" in report
