"""Tests for the ``python -m repro.sdp`` command-line interface."""

import json

import pytest

from repro.sdp.__main__ import build_parser, main


def test_cli_peak_run(capsys):
    assert main(
        [
            "--system", "hyperplane", "--queues", "32", "--shape", "SQ",
            "--peak", "--completions", "500", "--max-seconds", "1.0",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "hyperplane" in out


def test_cli_load_run_json(capsys):
    assert main(
        [
            "--system", "spinning", "--queues", "16", "--load", "0.4",
            "--completions", "400", "--max-seconds", "1.0", "--json",
        ]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["label"] == "spinning/scale-out"
    assert payload["throughput_mtps"] > 0
    assert payload["completed"] >= 400


def test_cli_all_systems(capsys):
    for system in ("spinning", "mwait", "interrupts", "hyperplane"):
        assert main(
            [
                "--system", system, "--queues", "8", "--load", "0.3",
                "--completions", "200", "--max-seconds", "1.0", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] >= 200


def test_cli_multicore_and_policy(capsys):
    assert main(
        [
            "--system", "hyperplane", "--queues", "16", "--cores", "4",
            "--cluster-cores", "4", "--policy", "wrr", "--load", "0.5",
            "--completions", "400", "--max-seconds", "1.0",
        ]
    ) == 0
    assert "scale-up-4" in capsys.readouterr().out


def test_cli_requires_load_or_peak():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--queues", "8"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--load", "0.5", "--peak"])


def test_cli_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--system", "magic", "--load", "0.5"])
