"""End-to-end tests of the shared runtime and the spinning data plane."""

import pytest

from repro.sdp.config import SDPConfig
from repro.sdp.locality import LocalityModel
from repro.sdp.runner import run_spinning
from repro.sdp.system import Cluster, DataPlaneSystem
from repro.mem.costmodel import derive_cost_model
from repro.queueing.locks import SpinLock
from repro.sdp.organizations import ClusterPlan
from repro.sim import Simulator


def small_config(**overrides):
    defaults = dict(num_queues=8, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return SDPConfig(**defaults)


# -- cluster ready-mask mechanics ------------------------------------------------


def make_cluster(num_queues=8):
    config = small_config(num_queues=num_queues)
    system = DataPlaneSystem(config)
    return system, system.clusters[0]


def test_next_ready_none_when_empty():
    _system, cluster = make_cluster()
    assert cluster.next_ready(0) is None


def test_next_ready_ahead_and_wrap():
    system, cluster = make_cluster()
    cluster.ready_mask = 0b00100100  # queues 2 and 5
    assert cluster.next_ready(0) == (2, 2)
    assert cluster.next_ready(3) == (5, 2)
    assert cluster.next_ready(6) == (2, 4)  # wraps: 6,7 then 0,1 skipped
    assert cluster.next_ready(2) == (2, 0)


def test_notify_ready_sets_mask_and_pulses():
    system, cluster = make_cluster()
    event = cluster.arrival_event
    system.doorbells[3].producer_increment()  # fires hook -> notify_ready
    assert cluster.ready_mask & (1 << 3)
    # No waiters: no pulse, same event object.
    assert cluster.arrival_event is event


def test_pulse_wakes_waiters():
    system, cluster = make_cluster()
    woken = []
    event = cluster.arrival_event
    event.add_callback(lambda v: woken.append(v))
    system.doorbells[1].producer_increment()
    assert cluster.arrival_event is not event
    system.sim.run()
    assert woken == [1]


def test_refresh_ready_follows_occupancy():
    system, cluster = make_cluster()
    from repro.queueing.taskqueue import WorkItem

    system.queues[0].enqueue(WorkItem(0, 0, 0.0, 1e-6))
    cluster.refresh_ready(0)
    assert cluster.ready_mask & 1
    system.queues[0].dequeue(0.0)
    cluster.refresh_ready(0)
    assert not (cluster.ready_mask & 1)


# -- locality model ---------------------------------------------------------------


def test_locality_resident_fraction():
    model = LocalityModel(derive_cost_model())
    assert model.llc_resident_fraction(10) == 1.0
    assert 0.0 < model.llc_resident_fraction(10_000) < 0.2


def test_poll_cost_monotone_in_queue_count():
    model = LocalityModel(derive_cost_model())
    costs = [model.empty_poll_cost(n, 1000) for n in (8, 64, 256, 1000)]
    assert all(a <= b for a, b in zip(costs, costs[1:]))
    assert costs[-1] > costs[0]


def test_idle_polls_cheaper_than_loaded():
    model = LocalityModel(derive_cost_model())
    assert model.empty_poll_cost(200, 1000, idle=True) < model.empty_poll_cost(200, 1000)


def test_task_stall_grows_with_footprint():
    model = LocalityModel(derive_cost_model())
    assert model.task_data_stall_cycles(10) == 0.0
    assert model.task_data_stall_cycles(1000) > model.task_data_stall_cycles(500) > 0.0


def test_poll_cost_validation():
    model = LocalityModel(derive_cost_model())
    with pytest.raises(ValueError):
        model.empty_poll_cost(0)


# -- end-to-end spinning runs -----------------------------------------------------


def test_open_loop_run_completes_work():
    metrics = run_spinning(
        small_config(), load=0.3, target_completions=300, max_seconds=1.0
    )
    assert metrics.latency.count >= 300
    assert metrics.throughput_mtps > 0
    # Latency at 30% load is a few service times at most.
    assert metrics.latency.mean_us < 20.0


def test_closed_loop_peak_near_service_rate():
    metrics = run_spinning(
        small_config(shape="SQ"), closed_loop=True, target_completions=1000,
        max_seconds=1.0,
    )
    ideal = 1.0 / 1.4  # Mtask/s for 1.4 us encapsulation
    assert 0.5 * ideal < metrics.throughput_mtps <= ideal


def test_same_seed_is_deterministic():
    a = run_spinning(small_config(seed=5), load=0.4, target_completions=200, max_seconds=1.0)
    b = run_spinning(small_config(seed=5), load=0.4, target_completions=200, max_seconds=1.0)
    assert a.latency.mean == b.latency.mean
    assert a.latency.count == b.latency.count


def test_different_seeds_differ():
    a = run_spinning(small_config(seed=1), load=0.4, target_completions=200, max_seconds=1.0)
    b = run_spinning(small_config(seed=2), load=0.4, target_completions=200, max_seconds=1.0)
    assert a.latency.mean != b.latency.mean


def test_multicore_scale_out_completes():
    config = small_config(num_queues=16, num_cores=4, cluster_cores=1)
    metrics = run_spinning(config, load=0.5, target_completions=500, max_seconds=1.0)
    assert metrics.latency.count >= 500
    busy = [a for a in metrics.activities if a.busy_cycles > 0]
    assert len(busy) == 4  # every core did work


def test_multicore_scale_up_completes_with_sync_costs():
    config = small_config(num_queues=16, num_cores=4, cluster_cores=4)
    metrics = run_spinning(config, load=0.5, target_completions=500, max_seconds=1.0)
    assert metrics.latency.count >= 500
    # The shared-cluster lock saw traffic.
    # (reach into the run by re-running with a system handle)


def test_spinning_idle_accounts_useless_instructions():
    metrics = run_spinning(
        small_config(), load=0.02, target_completions=50, max_seconds=2.0
    )
    chip = metrics.chip_activity
    assert chip.useless_instructions > chip.useful_instructions
    assert chip.halted_cycles == 0  # spinning never halts


def test_zero_load_latency_grows_with_queue_count():
    few = run_spinning(
        small_config(num_queues=4, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    many = run_spinning(
        small_config(num_queues=1000, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    assert many.latency.mean > 3.0 * few.latency.mean
    assert many.latency.p99 > many.latency.mean * 1.5


def test_run_validation():
    with pytest.raises(ValueError):
        run_spinning(small_config())  # neither load nor closed loop
    with pytest.raises(ValueError):
        run_spinning(small_config(), load=0.5, closed_loop=True)


def test_system_invariants_after_run():
    config = small_config(num_queues=32)
    system = DataPlaneSystem(config)
    system.attach_open_loop(load=0.5)
    from repro.sdp.spinning import build_spinning_cores

    build_spinning_cores(system)
    system.run(duration=0.01, warmup=0.001)
    system.check_invariants()


def test_config_validation():
    with pytest.raises(ValueError):
        SDPConfig(num_queues=0)
    with pytest.raises(ValueError):
        SDPConfig(num_queues=4, num_cores=4, cluster_cores=3)
    with pytest.raises(ValueError):
        SDPConfig(num_queues=4, imbalance=1.0)
    config = SDPConfig(num_queues=4, num_cores=4, cluster_cores=2)
    assert config.num_clusters == 2
    assert config.organization == "scale-up-2"
    assert SDPConfig(num_queues=4).organization == "scale-out"
