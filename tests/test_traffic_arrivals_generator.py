"""Tests for arrival processes and work-item generators."""

import random

import pytest

from repro.mem.address import DoorbellRegion
from repro.queueing import Doorbell, TaskQueue
from repro.sim import Simulator
from repro.traffic.arrivals import DeterministicArrivals, PoissonArrivals, load_to_rate
from repro.traffic.generator import ClosedLoopRefill, OpenLoopGenerator
from repro.traffic.shapes import FullyBalanced, SingleQueue


def make_queues(n, capacity=1000):
    return [TaskQueue(q, Doorbell(q, q * 64), capacity=capacity) for q in range(n)]


def test_poisson_mean_rate():
    arrivals = PoissonArrivals(1000.0, random.Random(0))
    samples = [arrivals.next_interarrival() for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(1e-3, rel=0.05)
    assert arrivals.rate == 1000.0


def test_deterministic_interval():
    arrivals = DeterministicArrivals(4.0)
    assert arrivals.next_interarrival() == 0.25


def test_rate_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0, random.Random(0))
    with pytest.raises(ValueError):
        DeterministicArrivals(-1.0)


def test_load_to_rate():
    # 50% load, 2 us service, 4 cores => 1M tasks/s.
    assert load_to_rate(0.5, 2e-6, servers=4) == pytest.approx(1.0e6)
    with pytest.raises(ValueError):
        load_to_rate(0.0, 1e-6)
    with pytest.raises(ValueError):
        load_to_rate(0.5, 0.0)


def test_open_loop_generates_bounded_items():
    sim = Simulator()
    queues = make_queues(4)
    generator = OpenLoopGenerator(
        sim,
        queues,
        FullyBalanced(),
        DeterministicArrivals(1e6),
        service_sampler=lambda: 1e-6,
        rng=random.Random(0),
        max_items=50,
    )
    sim.run()
    assert generator.generated == 50
    assert sum(len(q) for q in queues) == 50
    # Arrival times are stamped with sim time.
    assert queues[0].peek_arrival_time() is not None


def test_open_loop_counts_drops():
    sim = Simulator()
    queues = make_queues(1, capacity=10)
    generator = OpenLoopGenerator(
        sim,
        queues,
        SingleQueue(),
        DeterministicArrivals(1e6),
        service_sampler=lambda: 1e-6,
        rng=random.Random(0),
        max_items=25,
    )
    sim.run()
    assert generator.dropped == 15
    assert len(queues[0]) == 10


def test_closed_loop_prefills_hot_queues():
    sim = Simulator()
    queues = make_queues(10)
    refill = ClosedLoopRefill(
        sim, queues, SingleQueue(), service_sampler=lambda: 1e-6, depth=3
    )
    assert len(queues[0]) == 3
    assert all(len(queues[q]) == 0 for q in range(1, 10))
    assert refill.generated == 3


def test_closed_loop_replaces_dequeued_items():
    sim = Simulator()
    queues = make_queues(2)
    refill = ClosedLoopRefill(
        sim, queues, SingleQueue(), service_sampler=lambda: 1e-6, depth=2
    )
    queues[0].dequeue(0.0)
    refill.notify_dequeue(0)
    assert len(queues[0]) == 2
    # Cold queues are not refilled.
    refill.notify_dequeue(1)
    assert len(queues[1]) == 0


def test_closed_loop_depth_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClosedLoopRefill(sim, make_queues(1), SingleQueue(), lambda: 1e-6, depth=0)
