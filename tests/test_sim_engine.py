"""Tests for the discrete-event scheduler."""

import math

import pytest

from repro.sim import SimulationError, Simulator


def test_events_dispatch_in_time_order():
    sim = Simulator()
    hits = []
    sim.schedule(2.0, hits.append, "late")
    sim.schedule(1.0, hits.append, "early")
    sim.schedule(3.0, hits.append, "last")
    sim.run()
    assert hits == ["early", "late", "last"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    hits = []
    for label in "abc":
        sim.schedule(1.0, hits.append, label)
    sim.run()
    assert hits == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(0.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.5]
    assert sim.now == 0.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(5.0, hits.append, 5)
    sim.run(until=2.0)
    assert hits == [1]
    assert sim.now == 2.0
    sim.run()
    assert hits == [1, 5]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_max_events_bounds_dispatch():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(max_events=3)
    assert hits == [0, 1, 2]


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.schedule_at(4.0, marker.append, "x"))
    marker = []
    sim.run()
    assert sim.now == 4.0
    assert marker == ["x"]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == math.inf
    sim.schedule(7.0, lambda: None)
    sim.schedule(4.0, lambda: None)
    assert sim.peek() == 4.0


def test_pending_counts_heap():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0


def test_timeout_event_fires_with_value():
    sim = Simulator()
    event = sim.timeout(1.5, value="done")
    assert not event.triggered
    sim.run()
    assert event.triggered
    assert event.value == "done"


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    hits = []

    def chain(depth):
        hits.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_events_dispatched_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_dispatched == 5


def test_reentrant_run_rejected():
    sim = Simulator()
    failures = []

    def recurse():
        try:
            sim.run()
        except SimulationError:
            failures.append(True)

    sim.schedule(1.0, recurse)
    sim.run()
    assert failures == [True]


def test_determinism_same_schedule_same_trace():
    def trace():
        sim = Simulator()
        hits = []
        for i in range(50):
            sim.schedule((i * 37 % 11) / 10.0, hits.append, i)
        sim.run()
        return hits

    assert trace() == trace()
