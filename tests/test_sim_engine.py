"""Tests for the discrete-event scheduler."""

import math

import pytest

from repro.sim import SimulationError, Simulator


def test_events_dispatch_in_time_order():
    sim = Simulator()
    hits = []
    sim.schedule(2.0, hits.append, "late")
    sim.schedule(1.0, hits.append, "early")
    sim.schedule(3.0, hits.append, "last")
    sim.run()
    assert hits == ["early", "late", "last"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    hits = []
    for label in "abc":
        sim.schedule(1.0, hits.append, label)
    sim.run()
    assert hits == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(0.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.5]
    assert sim.now == 0.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(5.0, hits.append, 5)
    sim.run(until=2.0)
    assert hits == [1]
    assert sim.now == 2.0
    sim.run()
    assert hits == [1, 5]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_max_events_bounds_dispatch():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(max_events=3)
    assert hits == [0, 1, 2]


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.schedule_at(4.0, marker.append, "x"))
    marker = []
    sim.run()
    assert sim.now == 4.0
    assert marker == ["x"]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == math.inf
    sim.schedule(7.0, lambda: None)
    sim.schedule(4.0, lambda: None)
    assert sim.peek() == 4.0


def test_pending_counts_heap():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0


def test_timeout_event_fires_with_value():
    sim = Simulator()
    event = sim.timeout(1.5, value="done")
    assert not event.triggered
    sim.run()
    assert event.triggered
    assert event.value == "done"


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    hits = []

    def chain(depth):
        hits.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_events_dispatched_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_dispatched == 5


def test_reentrant_run_rejected():
    sim = Simulator()
    failures = []

    def recurse():
        try:
            sim.run()
        except SimulationError:
            failures.append(True)

    sim.schedule(1.0, recurse)
    sim.run()
    assert failures == [True]


def test_determinism_same_schedule_same_trace():
    def trace():
        sim = Simulator()
        hits = []
        for i in range(50):
            sim.schedule((i * 37 % 11) / 10.0, hits.append, i)
        sim.run()
        return hits

    assert trace() == trace()


# -- schedule_at diagnostics -------------------------------------------------


def test_schedule_at_error_reports_when_and_now():
    # The error must name the absolute time the caller passed and the
    # current clock, not an internal delay value.
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match=r"when=1\.5.*now=2\.0"):
        sim.schedule_at(1.5, lambda: None)


def test_schedule_at_nan_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_at(float("nan"), lambda: None)


# -- until / max_events interplay --------------------------------------------


def test_until_and_max_events_whichever_trips_first():
    # max_events trips first: clock stays at the last dispatched event.
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(until=100.0, max_events=3)
    assert hits == [0, 1, 2]
    assert sim.now == 3.0

    # until trips first: clock lands exactly on the bound.
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(until=4.5, max_events=100)
    assert hits == [0, 1, 2, 3]
    assert sim.now == 4.5


def test_peek_and_pending_consistent_after_each_bound():
    sim = Simulator()
    for i in range(6):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(max_events=2)
    assert sim.now == 2.0
    assert sim.pending == 4
    assert sim.peek() == 3.0
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert sim.pending == 2
    assert sim.peek() == 5.0
    sim.run()
    assert sim.pending == 0
    assert sim.peek() == math.inf


def test_event_exactly_at_until_bound_fires():
    sim = Simulator()
    hits = []
    sim.schedule(2.0, hits.append, "on-bound")
    sim.schedule(2.0 + 1e-9, hits.append, "past-bound")
    sim.run(until=2.0)
    assert hits == ["on-bound"]
    assert sim.now == 2.0


def test_tie_break_stable_across_fast_forward_boundary():
    # Events tied at a time past an idle fast-forward (run(until=...)
    # with an empty window) must still fire in insertion order.
    def trace(pre_run):
        sim = Simulator()
        hits = []
        for label in "abc":
            sim.schedule(5.0, hits.append, label)
        if pre_run:
            sim.run(until=4.0)  # fast-forward through the idle window
            assert sim.now == 4.0
        sim.run()
        return hits

    assert trace(pre_run=True) == trace(pre_run=False) == ["a", "b", "c"]


def test_run_until_property_exposed_during_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(sim.run_until))
    sim.run(until=5.0)
    assert seen == [5.0]
    assert sim.run_until == math.inf  # cleared outside run()
    sim2 = Simulator()
    sim2.schedule(1.0, lambda: seen.append(sim2.run_until))
    sim2.run()
    assert seen[-1] == math.inf  # unbounded run


# -- stop() ------------------------------------------------------------------


def test_stop_halts_after_inflight_callback_and_resumes():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, lambda: (hits.append(2), sim.stop()))
    sim.schedule(3.0, hits.append, 3)
    sim.run()
    assert hits == [1, 2]
    assert sim.now == 2.0
    assert sim.pending == 1
    sim.run()  # a later run resumes from the remaining queue
    assert hits == [1, 2, 3]


# -- cancellable handles -----------------------------------------------------


def test_handle_cancel_prevents_callback():
    sim = Simulator()
    hits = []
    handle = sim.schedule_handle(1.0, hits.append, "x")
    assert handle.cancel() is True
    assert handle.cancel() is False  # idempotent
    sim.run()
    assert hits == []
    # The dead entry still counts as a dispatched event: accounting
    # follows the dispatch loop, not the callback body.
    assert sim.events_dispatched == 1


def test_handle_fires_when_not_cancelled():
    sim = Simulator()
    hits = []
    handle = sim.schedule_handle(1.0, hits.append, "x")
    sim.run()
    assert hits == ["x"]
    assert handle.cancel() is False  # already fired


# -- calendar backend --------------------------------------------------------


def test_calendar_backend_matches_heap_trace():
    import random

    def trace(backend, seed):
        rng = random.Random(seed)
        sim = Simulator(backend=backend)
        hits = []

        def record(i):
            hits.append((round(sim.now, 12), i))
            if i < 200:
                sim.schedule(rng.random() * 1e-3, record, i + 100)

        for i in range(40):
            sim.schedule(rng.random() * 1e-3, record, i)
        sim.run()
        return hits

    for seed in range(5):
        assert trace("heap", seed) == trace("calendar", seed)


def test_calendar_backend_bounds_and_stop():
    sim = Simulator(backend="calendar")
    hits = []
    for i in range(8):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(max_events=2)
    assert hits == [0, 1] and sim.now == 2.0
    sim.run(until=4.5)
    assert hits == [0, 1, 2, 3] and sim.now == 4.5
    assert sim.pending == 4 and sim.peek() == 5.0
    sim.run()
    assert hits == list(range(8))


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        Simulator(backend="fibheap")
