"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CacheConfig, SetAssociativeCache


def make_cache(size=1024, ways=2, line=64):
    return SetAssociativeCache(size_bytes=size, ways=ways, line_bytes=line)


def test_miss_then_hit():
    cache = make_cache()
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_different_offsets_hit():
    cache = make_cache()
    cache.access(0x100)
    assert cache.access(0x13F) is True  # same 64B line
    assert cache.access(0x140) is False  # next line


def test_lru_eviction_order():
    # 2-way cache: third distinct line in one set evicts the LRU one.
    cache = make_cache(size=256, ways=2, line=64)  # 2 sets
    set_stride = 2 * 64  # lines mapping to set 0 are 128B apart
    a, b, c = 0, set_stride, 2 * set_stride
    cache.access(a)
    cache.access(b)
    cache.access(a)  # a is now MRU
    cache.access(c)  # evicts b (LRU)
    assert cache.last_evicted == b
    assert cache.contains(a)
    assert not cache.contains(b)
    assert cache.contains(c)


def test_invalidate():
    cache = make_cache()
    cache.access(0x100)
    assert cache.invalidate(0x100) is True
    assert cache.invalidate(0x100) is False
    assert not cache.contains(0x100)
    assert cache.stats.invalidations == 1


def test_flush_preserves_stats():
    cache = make_cache()
    cache.access(0x0)
    cache.flush()
    assert cache.resident_lines() == 0
    assert cache.stats.misses == 1


def test_capacity_lines():
    cache = make_cache(size=32 * 1024, ways=4)
    assert cache.capacity_lines == 512


def test_geometry_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(size_bytes=1000, ways=3)  # not whole sets
    with pytest.raises(ValueError):
        SetAssociativeCache(size_bytes=3 * 64 * 2, ways=2)  # 3 sets, not pow2


def test_table1_configs():
    l1 = CacheConfig.l1d()
    llc = CacheConfig.llc_per_core()
    assert l1.size_bytes == 32 * 1024 and l1.ways == 4
    assert llc.size_bytes == 1024 * 1024 and llc.ways == 16
    assert l1.build("x").capacity_lines == 512


def test_hit_rate():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_stats_reset():
    cache = make_cache()
    cache.access(0)
    cache.stats.reset()
    assert cache.stats.accesses == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300))
def test_property_residency_never_exceeds_capacity(addresses):
    cache = make_cache(size=512, ways=2, line=64)
    for addr in addresses:
        cache.access(addr)
        assert cache.resident_lines() <= cache.capacity_lines
    # The most recent access is always resident.
    assert cache.contains(addresses[-1])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=200))
def test_property_hits_plus_misses_equals_accesses(addresses):
    cache = make_cache()
    for addr in addresses:
        cache.access(addr)
    assert cache.stats.accesses == len(addresses)
    assert cache.stats.hits + cache.stats.misses == len(addresses)


def test_last_evicted_readable_before_any_access():
    # Regression: last_evicted used to be created lazily inside
    # access(), so inspecting a fresh cache raised AttributeError.
    cache = make_cache()
    assert cache.last_evicted is None
    cache.access(0x100)
    assert cache.last_evicted is None  # first fill evicts nothing
