"""Guards for the simulation-core fast paths.

Three optimisations trade event count or repeated derivation work for
speed while promising *identical results*; these tests hold them to it:

- the cost-curve memo (:mod:`repro.mem.costmodel`) must return the same
  curve and replay the same ``mem.*`` metrics as a fresh derivation;
- structural spin batching (:mod:`repro.structural.spinning`) must be
  bit-identical to the per-poll-event loop it replaces;
- the bench harness regression gate must actually gate.
"""

import json

import pytest

from repro.mem.costmodel import (
    clear_curve_cache,
    curve_cache_info,
    empty_poll_cost_curve,
)
from repro.mem.hierarchy import MemConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import active_registry


@pytest.fixture(autouse=True)
def _fresh_curve_cache():
    clear_curve_cache()
    yield
    clear_curve_cache()


def _mem_series(registry):
    return sorted(
        (record["name"], record["value"])
        for record in registry.collect()
        if record["name"].startswith("mem.") and record["type"] == "counter"
    )


# -- cost-curve memo ---------------------------------------------------------


def test_curve_cache_hit_returns_equal_curve():
    counts = (1, 4, 16, 64)
    cfg = MemConfig(num_cores=1)
    first = empty_poll_cost_curve(counts, cfg, 0.8)
    second = empty_poll_cost_curve(counts, cfg, 0.8)
    assert first == second
    assert second is not first  # callers get a private copy
    info = curve_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1


def test_curve_cache_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_CURVE_CACHE", "0")
    counts = (1, 4)
    uncached = empty_poll_cost_curve(counts)
    assert curve_cache_info() == {"entries": 0, "hits": 0, "misses": 0}
    monkeypatch.delenv("REPRO_CURVE_CACHE")
    assert empty_poll_cost_curve(counts) == uncached


def test_curve_cache_distinguishes_inputs():
    # Different resident fractions are distinct cache entries, never a
    # false hit — even when the resulting curves happen to coincide.
    empty_poll_cost_curve((1, 4), llc_doorbell_resident_fraction=1.0)
    empty_poll_cost_curve((1, 4), llc_doorbell_resident_fraction=0.5)
    info = curve_cache_info()
    assert info["misses"] == 2 and info["entries"] == 2 and info["hits"] == 0


def test_curve_cache_hit_replays_identical_metrics():
    counts = (1, 8, 64, 512)
    miss_registry = MetricsRegistry(enabled=True)
    with active_registry(miss_registry):
        derived = empty_poll_cost_curve(counts, llc_doorbell_resident_fraction=0.9)
    hit_registry = MetricsRegistry(enabled=True)
    with active_registry(hit_registry):
        cached = empty_poll_cost_curve(counts, llc_doorbell_resident_fraction=0.9)
    assert cached == derived
    assert curve_cache_info()["hits"] == 1
    miss_series = _mem_series(miss_registry)
    assert miss_series == _mem_series(hit_registry)
    assert any(name == "mem.l1.hits" and value > 0 for name, value in miss_series)
    # The hit-rate gauges the CI metrics smoke asserts on exist either way.
    assert hit_registry.get("mem.l1.hit_rate").read() > 0


def test_system_build_uses_curve_cache():
    from repro.sdp import locality
    from repro.sdp.config import SDPConfig
    from repro.sdp.system import DataPlaneSystem

    locality.clear_shared_curves()
    DataPlaneSystem(SDPConfig(num_queues=64, seed=1))
    misses = curve_cache_info()["misses"]
    assert misses > 0
    DataPlaneSystem(SDPConfig(num_queues=64, seed=2))  # same geometry, new seed
    info = curve_cache_info()
    # The second build derives nothing new: the fleet-interned curves
    # (repro.sdp.locality._SHARED_CURVES) satisfy it before the
    # derivation layer is even consulted.
    assert info["misses"] == misses
    assert locality._SHARED_CURVES


# -- structural spin batching ------------------------------------------------


def _run_structural(max_batch, consumers=1, producers=1, false_sharing=False, seed=5):
    import repro.structural.spinning as spinning
    from repro.structural.machine import StructuralMachine
    from repro.structural.spinning import StructuralSpinningCore

    original = spinning.MAX_BATCH_POLLS
    spinning.MAX_BATCH_POLLS = max_batch
    try:
        machine = StructuralMachine(
            num_queues=8,
            num_producers=producers,
            num_consumers=consumers,
            seed=seed,
            shape="FB",
            false_sharing=false_sharing,
        )
        cores = [StructuralSpinningCore(machine, i) for i in range(consumers)]
        machine.start_producers(total_rate=1e5, max_items=120)
        metrics = machine.run(duration=0.05, target_completions=120)
    finally:
        spinning.MAX_BATCH_POLLS = original
    return {
        "now": machine.sim.now,
        "completed": metrics.completed,
        "latency_count": metrics.latency.count,
        "latency_mean": metrics.latency.mean,
        "latency_p99": metrics.latency.p99,
        "measure_end": metrics.measure_end,
        "polls": tuple(core.polls for core in cores),
        "activities": tuple(
            (a.busy_cycles, a.useless_instructions, a.useful_instructions, a.tasks)
            for a in metrics.activities
        ),
        "l1_hits": sum(l1.stats.hits for l1 in machine.hierarchy.l1s),
        "l1_misses": sum(l1.stats.misses for l1 in machine.hierarchy.l1s),
        "llc_hits": machine.hierarchy.llc.stats.hits,
        "llc_misses": machine.hierarchy.llc.stats.misses,
        "coherence": tuple(
            sorted(
                (kind.name, count)
                for kind, count in machine.hierarchy.directory.transactions.items()
            )
        ),
        "events": machine.sim.events_dispatched,
    }


def test_spin_batching_bit_identical_to_per_poll():
    # MAX_BATCH_POLLS=1 is the per-poll-event reference behaviour.
    reference = _run_structural(max_batch=1)
    batched = _run_structural(max_batch=4096)
    events_ref = reference.pop("events")
    events_batched = batched.pop("events")
    assert batched == reference
    # ... and the batching actually collapsed events.
    assert events_batched < events_ref / 10


def test_spin_batching_bit_identical_with_contending_consumers():
    reference = _run_structural(
        max_batch=1, consumers=2, producers=2, false_sharing=True, seed=11
    )
    batched = _run_structural(
        max_batch=4096, consumers=2, producers=2, false_sharing=True, seed=11
    )
    reference.pop("events")
    batched.pop("events")
    assert batched == reference


# -- bench harness -----------------------------------------------------------


def test_bench_quick_report_shape(tmp_path):
    from repro.bench import format_report, run_bench

    report = run_bench(quick=True, scenario_ids=["engine_dispatch", "process_wake"])
    assert report["mode"] == "quick"
    assert set(report["scenarios"]) == {"engine_dispatch", "process_wake"}
    for measured in report["scenarios"].values():
        assert measured["wall_seconds"] > 0
        assert measured["events"] > 0
        assert measured["events_per_sec"] > 0
    json.dumps(report)  # JSON-serialisable as written to BENCH_engine.json
    assert "engine_dispatch" in format_report(report)


def test_bench_unknown_scenario_rejected():
    from repro.bench import run_bench

    with pytest.raises(ValueError):
        run_bench(quick=True, scenario_ids=["no_such_scenario"])


def _report(rates, mode="quick"):
    return {
        "mode": mode,
        "scenarios": {
            sid: {"events_per_sec": rate, "wall_seconds": 1.0, "events": rate}
            for sid, rate in rates.items()
        },
    }


def test_compare_reports_flags_regressions_only():
    from repro.bench import compare_reports

    baseline = _report({"a": 1000.0, "b": 1000.0, "c": 0.0})
    current = _report({"a": 800.0, "b": 700.0, "c": 500.0, "d": 1.0})
    failures = compare_reports(current, baseline, threshold=0.25)
    # a dropped 20% (within threshold), b dropped 30% (fails), c has no
    # usable baseline rate, d is new — only b may fail.
    assert len(failures) == 1 and failures[0].startswith("b:")
    assert compare_reports(current, baseline, threshold=0.5) == []


def test_compare_reports_refuses_cross_mode():
    from repro.bench import compare_reports

    with pytest.raises(ValueError):
        compare_reports(_report({"a": 1.0}, mode="quick"), _report({"a": 1.0}, mode="full"))


def test_committed_baselines_match_schema():
    from repro.bench import BENCH_SCHEMA_VERSION

    for path, mode in (
        ("benchmarks/perf/BENCH_engine.json", "full"),
        ("benchmarks/perf/BENCH_quick_baseline.json", "quick"),
    ):
        with open(path) as handle:
            report = json.load(handle)
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert report["mode"] == mode
        assert report["scenarios"]
    with open("benchmarks/perf/BENCH_engine.json") as handle:
        full = json.load(handle)
    # The committed before/after record must show the headline speedup.
    assert full["speedup_vs_before"]["fig8_shapes_1000"] >= 3.0


# -- instrumented experiments stay parallel ----------------------------------


def test_run_experiment_metrics_identical_across_worker_counts(monkeypatch):
    from repro.experiments.registry import run_experiment

    def signature(processes):
        monkeypatch.setenv("REPRO_PROCESSES", str(processes))
        registry = MetricsRegistry(enabled=True)
        result = run_experiment("fig9a", fast=True, seed=0, metrics=registry)
        series = sorted(
            (record["name"], record["value"])
            for record in registry.collect()
            if record["type"] == "counter"
        )
        return result.rows, series

    rows_serial, counters_serial = signature(1)
    rows_parallel, counters_parallel = signature(3)
    assert rows_serial == rows_parallel
    assert counters_serial == counters_parallel
    assert any(name == "sim.events_total" for name, _ in counters_serial)
