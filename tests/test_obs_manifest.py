"""Run-manifest capture, validation, and result-JSON round-trips."""

import json

import pytest

from repro.experiments.base import RESULT_SCHEMA_VERSION, ExperimentResult
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_digest,
    env_overrides,
    manifest_problems,
    validate_manifest,
)


def sample_manifest() -> RunManifest:
    return RunManifest.capture(
        experiment_id="fig9a",
        config={"fast": True, "seed": 7, "panel": "a"},
        root_seed=7,
        started_at=1700000000.0,
        wall_seconds=1.5,
        sim_events=4242,
        metrics_enabled=True,
    )


def test_capture_fills_derived_fields():
    manifest = sample_manifest()
    assert manifest.schema == MANIFEST_SCHEMA_VERSION
    assert manifest.config_hash == config_digest("fig9a", manifest.config)
    assert manifest.repro_version  # whatever the package says, non-empty


def test_config_digest_is_stable_and_order_independent():
    a = config_digest("x", {"fast": True, "seed": 1})
    b = config_digest("x", {"seed": 1, "fast": True})
    assert a == b
    assert config_digest("x", {"fast": False, "seed": 1}) != a
    assert config_digest("y", {"fast": True, "seed": 1}) != a


def test_manifest_roundtrips_through_dict_and_json():
    manifest = sample_manifest()
    assert RunManifest.from_dict(manifest.to_dict()) == manifest
    assert RunManifest.from_dict(json.loads(manifest.to_json())) == manifest


def test_validate_accepts_good_manifest():
    data = sample_manifest().to_dict()
    assert validate_manifest(data) is data
    assert manifest_problems(data) == []


def test_validation_catches_missing_fields():
    data = sample_manifest().to_dict()
    del data["config_hash"]
    assert any("config_hash" in problem for problem in manifest_problems(data))


def test_validation_catches_type_errors():
    data = sample_manifest().to_dict()
    data["sim_events"] = "many"
    assert any("sim_events" in problem for problem in manifest_problems(data))


def test_validation_rejects_bool_masquerading_as_int():
    data = sample_manifest().to_dict()
    data["root_seed"] = True  # bool is an int subclass; must be rejected
    assert any("root_seed" in problem for problem in manifest_problems(data))


def test_validation_catches_hash_mismatch():
    data = sample_manifest().to_dict()
    data["config"]["seed"] = 8  # config edited after hashing
    assert any("config_hash" in problem for problem in manifest_problems(data))


def test_validation_rejects_future_schema():
    data = sample_manifest().to_dict()
    data["schema"] = MANIFEST_SCHEMA_VERSION + 1
    with pytest.raises(ValueError):
        validate_manifest(data)


def test_validation_rejects_non_dict():
    assert manifest_problems([1, 2, 3])


# -- environment overrides ---------------------------------------------------


def test_env_overrides_keep_only_repro_keys_sorted():
    environ = {
        "REPRO_PROCESSES": "4",
        "PATH": "/usr/bin",
        "REPRO_CURVE_CACHE": "0",
        "HOME": "/root",
    }
    assert env_overrides(environ) == {
        "REPRO_CURVE_CACHE": "0",
        "REPRO_PROCESSES": "4",
    }


def test_capture_records_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "2")
    manifest = sample_manifest()
    assert manifest.env_overrides["REPRO_PROCESSES"] == "2"
    # An explicit environ bypasses os.environ entirely.
    pinned = RunManifest.capture(
        experiment_id="fig9a",
        config={"fast": True},
        root_seed=0,
        wall_seconds=0.1,
        environ={"REPRO_CURVE_CACHE": "1", "TERM": "dumb"},
    )
    assert pinned.env_overrides == {"REPRO_CURVE_CACHE": "1"}


def test_backend_and_vec_provenance_roundtrip_and_validate():
    oracle = {
        "metric": "throughput_mtps",
        "sample_indices": [3, 17],
        "rel_errors": [0.021, 0.034],
        "max_rel_error": 0.034,
        "tolerance": 0.12,
        "passed": True,
    }
    manifest = RunManifest.capture(
        experiment_id="fig8",
        config={"fast": True, "backend": "surrogate"},
        root_seed=0,
        wall_seconds=0.2,
        backend="surrogate",
        vec={"backend": "surrogate", "numpy": "1.26.4", "oracle": oracle},
    )
    data = manifest.to_dict()
    assert manifest_problems(data) == []
    restored = RunManifest.from_dict(data)
    assert restored == manifest
    assert restored.backend == "surrogate"
    assert restored.vec["oracle"]["sample_indices"] == [3, 17]
    # Parser round-trip through JSON (what --metrics-out writes).
    assert RunManifest.from_dict(json.loads(manifest.to_json())).vec == manifest.vec
    # Manifests from event-backend runs and older builds omit both
    # fields and still validate/load.
    legacy = {k: v for k, v in data.items() if k not in ("backend", "vec")}
    assert manifest_problems(legacy) == []
    assert RunManifest.from_dict(legacy).backend is None
    assert RunManifest.from_dict(legacy).vec is None
    # Present-and-mistyped fields are rejected.
    assert any(
        "backend" in problem
        for problem in manifest_problems(dict(data, backend=3))
    )
    assert any(
        "vec" in problem
        for problem in manifest_problems(dict(data, vec="numpy"))
    )


def test_event_backend_manifest_omits_vec_record():
    manifest = RunManifest.capture(
        experiment_id="fig9a",
        config={"fast": True},
        root_seed=0,
        wall_seconds=0.1,
    )
    data = manifest.to_dict()
    assert "backend" not in data and "vec" not in data
    assert manifest_problems(data) == []


def test_env_overrides_roundtrip_and_validate():
    manifest = RunManifest.capture(
        experiment_id="fig9a",
        config={"fast": True},
        root_seed=0,
        wall_seconds=0.1,
        environ={"REPRO_PROCESSES": "8"},
    )
    data = manifest.to_dict()
    assert manifest_problems(data) == []
    assert RunManifest.from_dict(data) == manifest
    # Manifests from builds predating env_overrides still validate/load.
    legacy = {k: v for k, v in data.items() if k != "env_overrides"}
    assert manifest_problems(legacy) == []
    assert RunManifest.from_dict(legacy).env_overrides == {}
    # But a present-and-mistyped field is rejected.
    bad = dict(data, env_overrides="REPRO_PROCESSES=8")
    assert any("env_overrides" in problem for problem in manifest_problems(bad))


# -- ExperimentResult serialisation -----------------------------------------


def test_result_roundtrips_manifest():
    result = ExperimentResult("fig9a", "title", rows=[{"x": 1}], notes=["n"])
    result.manifest = sample_manifest()
    payload = result.to_json()
    assert json.loads(payload)["schema"] == RESULT_SCHEMA_VERSION
    restored = ExperimentResult.from_json(payload)
    assert restored.manifest == result.manifest
    assert restored.rows == result.rows


def test_result_tolerates_schema1_payload_without_optional_keys():
    # Pre-observability archives: no schema key, no rows/notes/manifest.
    restored = ExperimentResult.from_json(
        json.dumps({"experiment_id": "old", "title": "Old"})
    )
    assert restored.rows == []
    assert restored.notes == []
    assert restored.manifest is None


def test_result_rejects_unknown_schema():
    payload = json.dumps(
        {"schema": RESULT_SCHEMA_VERSION + 1, "experiment_id": "x", "title": "t"}
    )
    with pytest.raises(ValueError):
        ExperimentResult.from_json(payload)
