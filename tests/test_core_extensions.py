"""Tests for the optional HyperPlane behaviours: batching, in-order
(flow-stateful) mode, and NUMA work stealing."""

import pytest

from repro.core.dataplane import build_hyperplane
from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.system import DataPlaneSystem


def config(**overrides):
    defaults = dict(num_queues=16, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return SDPConfig(**defaults)


# -- batching ----------------------------------------------------------------------


def test_batching_completes_all_work():
    metrics = run_hyperplane(
        config(shape="SQ"), closed_loop=True, batch_size=4,
        target_completions=1000, max_seconds=1.0,
    )
    assert metrics.latency.count >= 1000


def test_batching_reduces_qwait_overhead_under_backlog():
    # With a deep backlog on one queue, batching amortises the QWAIT +
    # VERIFY + RECONSIDER path over several items.
    single = run_hyperplane(
        config(shape="SQ"), closed_loop=True, batch_size=1,
        target_completions=2000, max_seconds=1.5,
    )
    batched = run_hyperplane(
        config(shape="SQ"), closed_loop=True, batch_size=4,
        target_completions=2000, max_seconds=1.5,
    )
    assert batched.throughput_mtps > single.throughput_mtps


def test_batch_never_exceeds_queue_depth():
    # Closed loop keeps depth at 4; batch_size far larger must still work
    # and keep doorbell/ring agreement (checked by system invariants).
    metrics = run_hyperplane(
        config(), closed_loop=True, batch_size=64,
        target_completions=800, max_seconds=1.0,
    )
    assert metrics.latency.count >= 800


def test_invalid_batch_size():
    system = DataPlaneSystem(config())
    with pytest.raises(ValueError):
        build_hyperplane(system, batch_size=0)


# -- in-order (flow-stateful) mode ------------------------------------------------------


def test_in_order_completes_work():
    metrics = run_hyperplane(
        config(num_cores=2, cluster_cores=2), load=0.5, in_order=True,
        target_completions=800, max_seconds=1.0,
    )
    assert metrics.latency.count >= 800


def test_in_order_forbids_intra_queue_concurrency():
    # SQ traffic, 4 cores sharing the single hot queue: in-order mode
    # must serialise service (only one core may hold the queue at once),
    # so a single queue cannot use more than one core's worth of
    # capacity.
    metrics = run_hyperplane(
        config(num_queues=4, num_cores=4, cluster_cores=4, shape="SQ"),
        closed_loop=True,
        in_order=True,
        target_completions=1500,
        max_seconds=1.5,
    )
    single_core_ideal = 1.0 / 1.4
    assert metrics.throughput_mtps <= 1.1 * single_core_ideal


def test_concurrent_mode_uses_all_cores_on_one_queue():
    # The default (lines 18/19 un-swapped) drains one queue with many
    # cores — the HoL-avoidance property of Section III-B.
    metrics = run_hyperplane(
        config(num_queues=4, num_cores=4, cluster_cores=4, shape="SQ"),
        closed_loop=True,
        in_order=False,
        target_completions=3000,
        max_seconds=1.5,
    )
    single_core_ideal = 1.0 / 1.4
    assert metrics.throughput_mtps > 2.0 * single_core_ideal


# -- work stealing -------------------------------------------------------------------


def test_work_stealing_rebalances_skewed_load():
    # Scale-out with all hot traffic on cluster 0's queues: without
    # stealing, cores 1-3 idle; with stealing they help.
    base = dict(
        num_queues=16, num_cores=4, cluster_cores=1, shape="SQ", seed=0,
        workload="packet-encapsulation",
    )
    without = run_hyperplane(
        SDPConfig(**base), closed_loop=True, target_completions=2000, max_seconds=1.5
    )
    with_steal = run_hyperplane(
        SDPConfig(**base), closed_loop=True, work_stealing=True,
        target_completions=2000, max_seconds=1.5,
    )
    assert with_steal.throughput_mtps > 1.5 * without.throughput_mtps


def test_work_stealing_counts_steals():
    system = DataPlaneSystem(
        config(num_queues=8, num_cores=2, cluster_cores=1, shape="SQ")
    )
    accelerator, cores = build_hyperplane(system, work_stealing=True)
    system.attach_closed_loop(depth=4)
    system.run(duration=0.002, warmup=0.0)
    thief = next(c for c in cores if c.cluster.plan.cluster_id != 0)
    assert thief.steals > 0


def test_stolen_queue_ownership_stays_home():
    # After a steal, RECONSIDER must re-activate the queue in its *home*
    # cluster's ready set, not the thief's.
    system = DataPlaneSystem(
        config(num_queues=8, num_cores=2, cluster_cores=1, shape="SQ")
    )
    accelerator, _cores = build_hyperplane(system, work_stealing=True)
    home = system.cluster_of_queue[0]
    system.doorbells[0].producer_increment()
    system.doorbells[0].producer_increment()
    other = next(c for c in system.clusters if c is not home)
    qid = accelerator.qwait_steal(other)
    assert qid == 0
    system.queues  # (queue untouched: steal only moves the notification)
    accelerator.qwait_reconsider(0)
    assert accelerator.ready_set_of(home).is_ready(0)
    assert not accelerator.ready_set_of(other).is_ready(0)


def test_steal_returns_none_when_nothing_anywhere():
    system = DataPlaneSystem(config(num_cores=2, cluster_cores=1))
    accelerator, _cores = build_hyperplane(system, work_stealing=True)
    assert accelerator.qwait_steal(system.clusters[0]) is None
