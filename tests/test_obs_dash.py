"""repro-dash: sparklines, the pure renderer, and the paint loop.

The renderer is a pure function of the bus, so every visual assertion
here is a string assertion; the Dashboard consumer is driven through a
StringIO with ``interactive=False`` so no TTY (and no ANSI control
sequences) is involved.
"""

import io

import pytest

from repro.obs.dash import (
    SPARK_GLYPHS,
    Dashboard,
    DashboardQuit,
    main,
    render_dashboard,
    sparkline,
)
from repro.obs.live import TelemetryBus


def make_frame(worker=0, seq=0, t=1e-3, completions=10.0, depth=4.0, events=()):
    return {
        "v": 1,
        "worker": worker,
        "seq": seq,
        "t": t,
        "metrics": {
            "live.completions": {"kind": "counter", "help": "", "value": completions},
            "live.queue_depth": {"kind": "gauge", "help": "", "value": depth},
        },
        "events": list(events),
    }


def fed_bus(num_workers=2, frames=6):
    bus = TelemetryBus()
    for seq in range(frames):
        for worker in range(num_workers):
            # completions is a per-frame *delta* of 1, so the fleet
            # total is frames x workers.
            bus.ingest(make_frame(
                worker=worker, seq=seq, t=(seq + 1) * 1e-3,
                completions=1.0, depth=float(worker),
            ))
    return bus


# -- sparkline ---------------------------------------------------------------


def test_sparkline_scales_to_window_max():
    line = sparkline([0.0, 1.0, 2.0, 4.0], width=4)
    assert len(line) == 4
    assert line[0] == SPARK_GLYPHS[0]
    assert line[-1] == SPARK_GLYPHS[-1]
    assert all(glyph in SPARK_GLYPHS for glyph in line)


def test_sparkline_keeps_only_last_width_values():
    assert sparkline([9.0] * 50, width=8) == SPARK_GLYPHS[-1] * 8


def test_sparkline_flat_on_zero_and_empty_windows():
    assert sparkline([0.0, 0.0, 0.0]) == SPARK_GLYPHS[0] * 3
    assert sparkline([]) == ""


def test_sparkline_clamps_negative_values():
    assert sparkline([-5.0, 10.0], width=2) == SPARK_GLYPHS[0] + SPARK_GLYPHS[-1]


# -- render_dashboard --------------------------------------------------------


def test_render_shows_fleet_header_and_worker_rows():
    text = render_dashboard(fed_bus(num_workers=2))
    lines = text.splitlines()
    assert lines[0].startswith("repro-dash")
    assert "workers=2" in lines[0]
    assert "done=12" in lines[1]  # 6 frames x 1 completion x 2 workers
    worker_rows = [line for line in lines if line.startswith("w")]
    assert len(worker_rows) == 2
    assert all(" thr " in row and " q " in row and " p99 " in row
               for row in worker_rows)
    assert lines[-1] == "q = quit"


def test_render_includes_recent_events():
    bus = fed_bus()
    bus.ingest(make_frame(
        worker=1, seq=99, t=0.0071,
        events=[{"kind": "fault:straggler", "server": 3, "magnitude": 4.0}],
    ))
    text = render_dashboard(bus)
    assert "events:" in text
    assert "fault:straggler" in text
    assert "server=3" in text
    assert "w1" in text


def test_render_on_empty_bus_is_just_the_header():
    text = render_dashboard(TelemetryBus())
    assert "workers=0" in text
    assert not any(line.startswith("w0") for line in text.splitlines())


# -- Dashboard consumer ------------------------------------------------------


def test_dashboard_paints_plain_blocks_off_tty():
    out = io.StringIO()
    dashboard = Dashboard(out=out, fps=0.0, interactive=False)
    dashboard.attach(fed_bus())
    dashboard.paint()
    text = out.getvalue()
    assert "\x1b[" not in text
    assert "repro-dash" in text


def test_dashboard_repaints_throttled_by_fps():
    out = io.StringIO()
    dashboard = Dashboard(out=out, fps=1e-9, interactive=False)
    bus = TelemetryBus()
    dashboard.attach(bus)
    for seq in range(20):
        bus.ingest(make_frame(seq=seq, t=(seq + 1) * 1e-3))
    # The first frame paints; later frames land inside the min period.
    assert dashboard.paints == 1


def test_dashboard_final_repaints_only_after_frames():
    out = io.StringIO()
    dashboard = Dashboard(out=out, fps=0.0, interactive=False)
    dashboard.attach(TelemetryBus())
    dashboard.final()
    assert dashboard.paints == 0
    dashboard.attach(fed_bus())
    dashboard.final()
    assert dashboard.paints == 1


def test_dashboard_interactive_repaint_homes_cursor():
    out = io.StringIO()
    dashboard = Dashboard(out=out, fps=0.0, interactive=True)
    dashboard.attach(fed_bus())
    dashboard.paint()
    dashboard.paint()
    text = out.getvalue()
    assert text.startswith("\x1b[2J\x1b[H")  # full clear on first paint
    assert "\x1b[H\x1b[J" in text  # home + clear-below after


def test_dashboard_quit_is_an_exception_type():
    with pytest.raises(DashboardQuit):
        raise DashboardQuit()


# -- CLI ---------------------------------------------------------------------


def test_main_rejects_bad_worker_count(capsys):
    assert main(["--servers", "2", "--workers", "5"]) == 2
    assert "workers=5" in capsys.readouterr().err


def test_main_rejects_negative_interval(capsys):
    assert main(["--interval", "-1"]) == 2
    assert "telemetry_interval_s" in capsys.readouterr().err
