"""Tests for one-shot events and combinators."""

import pytest

from repro.sim.events import Event, all_of, any_of


def test_trigger_sets_state_and_value():
    event = Event("e")
    assert not event.triggered
    event.trigger(42)
    assert event.triggered
    assert event.value == 42


def test_double_trigger_is_an_error():
    event = Event("e")
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_callbacks_fire_in_registration_order():
    event = Event()
    order = []
    event.add_callback(lambda v: order.append(("first", v)))
    event.add_callback(lambda v: order.append(("second", v)))
    event.trigger("x")
    assert order == [("first", "x"), ("second", "x")]


def test_callback_on_triggered_event_runs_immediately():
    event = Event()
    event.trigger(7)
    seen = []
    event.add_callback(seen.append)
    assert seen == [7]


def test_remove_callback():
    event = Event()
    seen = []
    callback = seen.append
    event.add_callback(callback)
    assert event.remove_callback(callback)
    assert not event.remove_callback(callback)
    event.trigger(1)
    assert seen == []


def test_waiter_count():
    event = Event()
    event.add_callback(lambda v: None)
    event.add_callback(lambda v: None)
    assert event.waiter_count == 2
    event.trigger()
    assert event.waiter_count == 0


def test_any_of_fires_on_first():
    events = [Event(str(i)) for i in range(3)]
    combined = any_of(events)
    events[1].trigger("b")
    assert combined.triggered
    assert combined.value == (1, "b")
    # Later triggers are ignored, not errors.
    events[0].trigger("a")
    assert combined.value == (1, "b")


def test_all_of_waits_for_every_event():
    events = [Event(str(i)) for i in range(3)]
    combined = all_of(events)
    events[2].trigger("c")
    events[0].trigger("a")
    assert not combined.triggered
    events[1].trigger("b")
    assert combined.triggered
    assert combined.value == ["a", "b", "c"]


def test_all_of_empty_triggers_immediately():
    combined = all_of([])
    assert combined.triggered
    assert combined.value == []


def test_any_of_with_already_triggered_member():
    first = Event()
    first.trigger("now")
    combined = any_of([first, Event()])
    assert combined.triggered
    assert combined.value == (0, "now")
