"""Tests for the metrics registry, instruments, and the disabled path."""

import gc
import sys

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMESERIES,
    MetricsRegistry,
    Timeseries,
    validate_metric_name,
)
from repro.obs.runtime import active_registry, get_active_registry


# -- naming -----------------------------------------------------------------


def test_valid_names_pass():
    for name in ("sim.events_total", "sdp.core0.busy_cycles", "x", "a.b.c_d9"):
        assert validate_metric_name(name) == name


@pytest.mark.parametrize(
    "name", ["", "Sdp.queue", "sdp..queue", ".sdp", "sdp.", "sdp:queue", "sdp queue"]
)
def test_invalid_names_rejected(name):
    with pytest.raises(ValueError):
        validate_metric_name(name)


def test_registry_rejects_bad_name_at_creation():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("Not.Valid")


# -- instruments ------------------------------------------------------------


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("sim.events_total")
    counter.inc()
    counter.inc(41.0)
    assert registry.as_dict()["sim.events_total"]["value"] == 42.0


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a.b") is registry.counter("a.b")


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("a.b")
    with pytest.raises(TypeError):
        registry.gauge("a.b")


def test_pull_gauge_reads_source_at_collect_time():
    registry = MetricsRegistry()
    state = {"depth": 0}
    registry.gauge("sim.heap_depth", fn=lambda: state["depth"])
    state["depth"] = 7
    assert registry.as_dict()["sim.heap_depth"]["value"] == 7.0


def test_pull_gauge_rebinds_to_newest_source():
    # One metric name, many short-lived systems: last registration wins.
    registry = MetricsRegistry()
    registry.gauge("sdp.completions", fn=lambda: 1.0)
    registry.gauge("sdp.completions", fn=lambda: 2.0)
    assert registry.as_dict()["sdp.completions"]["value"] == 2.0


def test_histogram_buckets_cumulative_and_quantile():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 0.7, 5.0, 50.0, 5000.0):
        histogram.observe(value)
    record = histogram.record()
    assert record["buckets"] == [[1.0, 2], [10.0, 3], [100.0, 4]]
    assert record["count"] == 5
    assert record["sum"] == pytest.approx(5056.2)
    assert histogram.quantile(0.5) == 10.0


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("lat", buckets=(2.0, 1.0))


def test_default_buckets_are_sorted_and_span_latency_range():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-7)
    assert DEFAULT_BUCKETS[-1] >= 0.05


def test_timeseries_downsamples_instead_of_truncating():
    series = Timeseries("q", capacity=8)
    for i in range(100):
        series.sample(float(i), float(i))
    # Never exceeds capacity, covers the whole run, stride doubled.
    assert series.count < 8
    assert series.stride > 1
    times = [t for t, _ in series.samples]
    assert times == sorted(times)
    assert times[-1] > 90.0


def test_timeseries_minimum_capacity():
    with pytest.raises(ValueError):
        Timeseries("q", capacity=4)


def test_collect_is_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("z.last")
    registry.counter("a.first")
    assert [record["name"] for record in registry.collect()] == ["a.first", "z.last"]


# -- disabled path -----------------------------------------------------------


def test_disabled_registry_hands_out_shared_nulls():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a.b") is NULL_COUNTER
    assert registry.gauge("a.b") is NULL_GAUGE
    assert registry.histogram("a.b") is NULL_HISTOGRAM
    assert registry.timeseries("a.b") is NULL_TIMESERIES
    assert len(registry) == 0 and registry.collect() == []


def test_null_instruments_discard_everything():
    NULL_COUNTER.inc(5)
    NULL_GAUGE.set(5)
    NULL_HISTOGRAM.observe(5)
    NULL_TIMESERIES.sample(1.0, 5.0)
    assert NULL_COUNTER.value == 0.0
    assert NULL_GAUGE.value == 0.0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_TIMESERIES.count == 0


def test_null_record_path_allocates_nothing():
    # The zero-cost-when-disabled guarantee: exercising every null
    # instrument's hot-path method must not allocate a single block.
    counter, gauge = NULL_COUNTER, NULL_GAUGE
    histogram, series = NULL_HISTOGRAM, NULL_TIMESERIES

    def pump(rounds: int) -> None:
        for _ in range(rounds):
            counter.inc()
            gauge.set(1.0)
            histogram.observe(1.0)
            series.sample(1.0, 1.0)

    deltas = []
    gc.disable()
    try:
        # First pass warms interpreter caches (bytecode specialization
        # allocates once); steady state must allocate exactly nothing.
        for _ in range(3):
            gc.collect()
            before = sys.getallocatedblocks()
            pump(1000)
            deltas.append(sys.getallocatedblocks() - before)
    finally:
        gc.enable()
    assert deltas[-1] == 0, deltas


def test_disabled_registry_is_never_ambient():
    disabled = MetricsRegistry(enabled=False)
    with active_registry(disabled):
        assert get_active_registry() is None


def test_active_registry_scopes_and_restores():
    outer = MetricsRegistry(enabled=True)
    inner = MetricsRegistry(enabled=True)
    assert get_active_registry() is None
    with active_registry(outer):
        assert get_active_registry() is outer
        with active_registry(inner):
            assert get_active_registry() is inner
        assert get_active_registry() is outer
    assert get_active_registry() is None


# -- snapshot / merge --------------------------------------------------------


def test_counter_snapshot_merge_sums():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("m.count", help="h").inc(3)
    b.counter("m.count").inc(4)
    a.merge_snapshot(b.snapshot())
    assert a.get("m.count").value == 7.0


def test_gauge_merge_freezes_newest_value():
    a, b = MetricsRegistry(), MetricsRegistry()
    source = {"v": 10.0}
    a.gauge("m.level", fn=lambda: source["v"])
    b.gauge("m.level").set(42.0)
    a.merge_snapshot(b.snapshot())
    source["v"] = 99.0  # old pull binding must be gone
    assert a.get("m.level").read() == 42.0


def test_histogram_merge_adds_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    bounds = (1.0, 2.0, 4.0)
    for value in (0.5, 1.5, 100.0):
        a.histogram("m.lat", buckets=bounds).observe(value)
    for value in (0.7, 3.0):
        b.histogram("m.lat", buckets=bounds).observe(value)
    a.merge_snapshot(b.snapshot())
    h = a.get("m.lat")
    assert h.count == 5
    assert h.counts == [2, 1, 1] and h.overflow == 1
    assert h.sum == 0.5 + 1.5 + 100.0 + 0.7 + 3.0


def test_histogram_merge_rejects_mismatched_bounds():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("m.lat", buckets=(1.0, 2.0))
    b.histogram("m.lat", buckets=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge_snapshot(b.snapshot())


def test_merge_rejects_kind_conflicts():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("m.x")
    b.gauge("m.x")
    with pytest.raises(TypeError):
        a.merge_snapshot(b.snapshot())


def test_timeseries_merge_interleaves_by_time_and_recaps():
    a, b = MetricsRegistry(), MetricsRegistry()
    ts_a = a.timeseries("m.depth", capacity=8)
    ts_b = b.timeseries("m.depth", capacity=8)
    for t in (0.1, 0.3, 0.5):
        ts_a.sample(t, 1.0)
    for t in (0.2, 0.4):
        ts_b.sample(t, 2.0)
    a.merge_snapshot(b.snapshot())
    merged = a.get("m.depth")
    assert [t for t, _ in merged.samples] == sorted(t for t, _ in merged.samples)
    assert merged.count == 5
    # Merging more than capacity re-downsamples instead of overflowing.
    c = MetricsRegistry()
    ts_c = c.timeseries("m.depth", capacity=8)
    for i in range(7):
        ts_c.sample(1.0 + i * 0.01, 3.0)
    a.merge_snapshot(c.snapshot())
    assert a.get("m.depth").count < 8
    assert a.get("m.depth").stride > 1


def test_merge_creates_missing_instruments():
    a, b = MetricsRegistry(), MetricsRegistry()
    b.counter("m.new", help="created by merge").inc(5)
    b.histogram("m.h", buckets=(1.0,)).observe(0.5)
    b.timeseries("m.t", capacity=16).sample(0.0, 1.0)
    a.merge_snapshot(b.snapshot())
    assert a.get("m.new").value == 5.0
    assert a.get("m.new").help == "created by merge"
    assert a.get("m.h").count == 1
    assert a.get("m.t").count == 1


def test_snapshot_is_plain_data():
    import json

    registry = MetricsRegistry()
    registry.counter("m.c").inc()
    registry.gauge("m.g", fn=lambda: 3.0)
    registry.histogram("m.h").observe(1e-6)
    registry.timeseries("m.t").sample(0.0, 1.0)
    snap = registry.snapshot()
    json.dumps(snap)  # picklable/serialisable by construction
    assert snap["m.g"]["value"] == 3.0  # pull gauge frozen at read()


def test_merge_registry_convenience():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("m.c").inc(1)
    b.counter("m.c").inc(2)
    a.merge(b)
    assert a.get("m.c").value == 3.0
