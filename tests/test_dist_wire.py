"""Wire protocol: framing, RPC semantics, and metric snapshots on the wire.

The load-bearing contract here is the one the coordinator's merge step
relies on: a :class:`repro.obs.MetricsRegistry` snapshot survives the
JSON frame round-trip for every instrument kind, and folding worker
snapshots yields the same registry whatever the worker count was.
"""

import socket
import threading

import pytest

from repro.dist.wire import (
    Channel,
    ChannelClosed,
    ChannelTimeout,
    ProtocolError,
    RemoteError,
    decode_body,
    encode_frame,
)
from repro.obs import MetricsRegistry


def channel_pair():
    left, right = socket.socketpair()
    return Channel(left, name="left"), Channel(right, name="right")


# -- framing ------------------------------------------------------------------


def test_frame_roundtrip_preserves_floats_exactly():
    message = {"type": "step_ok", "t": 0.1 + 0.2, "values": [1e-7, 3.5e9]}
    frame = encode_frame(message)
    assert decode_body(frame[4:]) == message


def test_partial_and_coalesced_frames_reassemble():
    a, b = channel_pair()
    try:
        # Two frames in one send, then one frame split across sends.
        msgs = [{"type": "x", "i": i} for i in range(3)]
        b.sock.sendall(encode_frame(msgs[0]) + encode_frame(msgs[1]))
        frame = encode_frame(msgs[2])
        b.sock.sendall(frame[:3])
        b.sock.sendall(frame[3:])
        assert [a.recv(timeout=2) for _ in range(3)] == msgs
    finally:
        a.close()
        b.close()


def test_undecodable_and_untyped_frames_rejected():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_body(b"\xff\xfe not json")
    with pytest.raises(ProtocolError, match="typed"):
        decode_body(b'{"no_type": 1}')
    with pytest.raises(ProtocolError, match="typed"):
        decode_body(b"[1, 2]")


def test_peer_close_raises_channel_closed():
    a, b = channel_pair()
    b.close()
    with pytest.raises(ChannelClosed):
        a.recv(timeout=2)
    a.close()


def test_recv_timeout_raises_channel_timeout():
    a, b = channel_pair()
    try:
        with pytest.raises(ChannelTimeout):
            a.recv(timeout=0.05)
    finally:
        a.close()
        b.close()


# -- RPC semantics ------------------------------------------------------------


def test_rpc_skips_heartbeats_and_matches_seq():
    a, b = channel_pair()

    def worker():
        request = b.recv(timeout=5)
        b.send({"type": "heartbeat", "sim_now": 0.001})
        b.send({"type": "heartbeat", "sim_now": 0.002})
        b.send({"type": "step_ok", "seq": request["seq"], "done": True})

    thread = threading.Thread(target=worker)
    thread.start()
    try:
        beats = []
        reply = a.rpc(
            {"type": "step"}, "step_ok", timeout=5,
            on_heartbeat=lambda hb: beats.append(hb["sim_now"]),
        )
        assert reply["done"] is True
        assert beats == [0.001, 0.002]
    finally:
        thread.join()
        a.close()
        b.close()


def test_rpc_retries_same_seq_and_drops_stale_replies():
    a, b = channel_pair()
    seen = []

    def worker():
        # First delivery: stay silent past the timeout, forcing a retry;
        # then answer the retry, then answer the *first* delivery late
        # (the stale duplicate a real at-most-once worker could emit).
        first = b.recv(timeout=5)
        second = b.recv(timeout=5)
        seen.extend([first["seq"], second["seq"]])
        b.send({"type": "step_ok", "seq": second["seq"], "n": 1})
        nxt = b.recv(timeout=5)
        b.send({"type": "step_ok", "seq": nxt["seq"] - 1, "n": "stale"})
        b.send({"type": "step_ok", "seq": nxt["seq"], "n": 2})

    thread = threading.Thread(target=worker)
    thread.start()
    try:
        reply = a.rpc({"type": "step"}, "step_ok", timeout=0.2, retries=2)
        assert reply["n"] == 1
        assert seen[0] == seen[1]  # the retry re-sent the same seq
        reply = a.rpc({"type": "step"}, "step_ok", timeout=5)
        assert reply["n"] == 2  # the stale frame was dropped, not returned
    finally:
        thread.join()
        a.close()
        b.close()


def test_rpc_surfaces_remote_errors():
    a, b = channel_pair()

    def worker():
        b.recv(timeout=5)
        b.send({"type": "error", "traceback": "ZeroDivisionError: boom"})

    thread = threading.Thread(target=worker)
    thread.start()
    try:
        with pytest.raises(RemoteError, match="boom"):
            a.rpc({"type": "step"}, "step_ok", timeout=5)
    finally:
        thread.join()
        a.close()
        b.close()


# -- metric snapshots across the wire ----------------------------------------


def build_registry(events):
    """A registry exercising all four instrument kinds."""
    registry = MetricsRegistry(enabled=True)
    for time, value in events:
        registry.counter("dist.test_counter", help="c").inc(value)
        registry.gauge("dist.test_gauge", help="g").set(value)
        registry.histogram(
            "dist.test_hist", help="h", buckets=(1.0, 10.0, 100.0)
        ).observe(value)
        registry.timeseries("dist.test_series", help="t").sample(time, value)
    return registry


EVENTS = [(i * 1e-4, float(v)) for i, v in enumerate([3, 7, 0.5, 42, 150, 9, 2])]


def wire_roundtrip(snapshot):
    """Snapshot -> collected frame -> bytes -> snapshot, as workers do."""
    frame = encode_frame({"type": "collected", "snapshot": snapshot})
    return decode_body(frame[4:])["snapshot"]


def merged_over_workers(num_workers):
    """Shard EVENTS over N per-worker registries, merge via the wire."""
    shards = [EVENTS[w::num_workers] for w in range(num_workers)]
    coordinator = MetricsRegistry(enabled=True)
    for shard in shards:
        coordinator.merge_snapshot(wire_roundtrip(build_registry(shard).snapshot()))
    return coordinator


def test_snapshot_roundtrips_all_instrument_kinds_through_the_wire():
    registry = build_registry(EVENTS)
    restored = MetricsRegistry(enabled=True)
    restored.merge_snapshot(wire_roundtrip(registry.snapshot()))

    assert restored.counter("dist.test_counter").value == pytest.approx(
        sum(v for _, v in EVENTS)
    )
    assert restored.gauge("dist.test_gauge").read() == EVENTS[-1][1]
    hist = restored.get("dist.test_hist")
    original = registry.get("dist.test_hist")
    assert hist.counts == original.counts
    assert hist.overflow == original.overflow
    assert hist.sum == pytest.approx(original.sum)
    series = restored.get("dist.test_series")
    assert [tuple(s) for s in series.samples] == [
        tuple(s) for s in registry.get("dist.test_series").samples
    ]


def test_merge_is_worker_count_independent():
    # The coordinator folds per-node snapshots in worker-id order; the
    # result must not depend on how many workers the fleet had.
    single = merged_over_workers(1)
    for workers in (2, 3, 4, 7):
        sharded = merged_over_workers(workers)
        assert sharded.counter("dist.test_counter").value == pytest.approx(
            single.counter("dist.test_counter").value
        )
        assert sharded.get("dist.test_hist").counts == single.get(
            "dist.test_hist"
        ).counts
        assert sharded.get("dist.test_hist").sum == pytest.approx(
            single.get("dist.test_hist").sum
        )
        # Timeseries interleave by simulated time: same sample set.
        assert sorted(
            tuple(s) for s in sharded.get("dist.test_series").samples
        ) == sorted(tuple(s) for s in single.get("dist.test_series").samples)


def test_oversized_frame_rejected():
    import repro.dist.wire as wire

    big = {"type": "x", "blob": "a" * 100}
    original = wire.MAX_FRAME_BYTES
    wire.MAX_FRAME_BYTES = 50
    try:
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(big)
    finally:
        wire.MAX_FRAME_BYTES = original
