"""Tests for the MWAIT and interrupt notification baselines."""

import pytest

from repro.core.runner import run_hyperplane
from repro.sdp import SDPConfig, run_interrupts, run_mwait, run_spinning
from repro.sdp.interrupts import InterruptController, build_interrupt_cores
from repro.sdp.system import DataPlaneSystem


def config(**overrides):
    defaults = dict(num_queues=64, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return SDPConfig(**defaults)


# -- MWAIT ------------------------------------------------------------------------


def test_mwait_completes_work():
    metrics = run_mwait(config(), load=0.4, target_completions=500, max_seconds=1.5)
    assert metrics.latency.count >= 500


def test_mwait_halts_when_idle_unlike_spinning():
    mwait = run_mwait(config(), load=0.05, target_completions=150, max_seconds=2.0)
    spin = run_spinning(config(), load=0.05, target_completions=150, max_seconds=2.0)
    assert mwait.chip_activity.halt_fraction > 0.7
    assert spin.chip_activity.halt_fraction == 0.0
    # And commits orders of magnitude fewer useless instructions.
    assert (
        mwait.chip_activity.useless_instructions
        < spin.chip_activity.useless_instructions / 50
    )


def test_mwait_still_scans_like_spinning():
    # The paper's point: halting fixes energy, not latency — the MWAIT
    # plane's latency still grows with queue count like spinning's.
    few = run_mwait(
        config(num_queues=4, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    many = run_mwait(
        config(num_queues=1000, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    assert many.latency.mean > 5 * few.latency.mean


def test_mwait_peak_matches_spinning():
    # At saturation MWAIT never halts; throughput equals spinning's.
    mwait = run_mwait(
        config(shape="SQ"), closed_loop=True, target_completions=1500, max_seconds=1.5
    )
    spin = run_spinning(
        config(shape="SQ"), closed_loop=True, target_completions=1500, max_seconds=1.5
    )
    assert mwait.throughput_mtps == pytest.approx(spin.throughput_mtps, rel=0.05)


def test_mwait_multicore():
    metrics = run_mwait(
        config(num_cores=4, cluster_cores=4), load=0.5,
        target_completions=800, max_seconds=1.5,
    )
    assert metrics.latency.count >= 800


# -- interrupts ----------------------------------------------------------------------


def test_interrupts_complete_work():
    metrics = run_interrupts(config(), load=0.4, target_completions=500, max_seconds=1.5)
    assert metrics.latency.count >= 500


def test_interrupts_are_queue_scalable_at_zero_load():
    few = run_interrupts(
        config(num_queues=4, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    many = run_interrupts(
        config(num_queues=1000, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    # The vector names the queue: latency does not grow with count.
    assert many.latency.mean < 1.5 * few.latency.mean


def test_interrupt_overhead_dominates_low_load_latency_vs_hyperplane():
    irq = run_interrupts(
        config(service_scv=0.0), load=0.01, target_completions=200, max_seconds=3.0
    )
    hyper = run_hyperplane(
        config(service_scv=0.0), load=0.01, target_completions=200, max_seconds=3.0
    )
    # ~1.3 us of kernel path per wake-up.
    assert irq.latency.mean_us - hyper.latency.mean_us > 0.8


def test_interrupt_coalescing_counts():
    system = DataPlaneSystem(config(shape="SQ"))
    cores = build_interrupt_cores(system)
    system.attach_closed_loop(depth=4)
    system.run(duration=0.002, warmup=0.0)
    controller = cores[0].controller
    # Backlogged queue: one delivery, then the drain coalesces refills.
    assert controller.delivered >= 1
    assert controller.coalesced > 10
    assert controller.delivered < controller.coalesced


def test_interrupt_saturation_converges_to_polling():
    # NAPI at saturation = polling a known-ready ring: throughput within
    # a few percent of HyperPlane's.
    irq = run_interrupts(
        config(shape="SQ"), closed_loop=True, target_completions=1500, max_seconds=1.5
    )
    hyper = run_hyperplane(
        config(shape="SQ"), closed_loop=True, target_completions=1500, max_seconds=1.5
    )
    assert irq.throughput_mtps == pytest.approx(hyper.throughput_mtps, rel=0.1)


def test_interrupt_unmask_race_is_closed():
    # Open-loop at moderate load long enough that arrival-vs-unmask races
    # occur; nothing may be stranded (system invariants + completions).
    metrics = run_interrupts(
        config(num_queues=8), load=0.7, target_completions=2000, max_seconds=2.0
    )
    assert metrics.latency.count >= 2000


def test_controller_single_waiter():
    system = DataPlaneSystem(config())
    controller = InterruptController(system, system.clusters[0])
    controller.wait()
    with pytest.raises(RuntimeError):
        controller.wait()
