"""Tests for the experiment harness and the DPDK case study."""

import pytest

from repro.dpdk.casestudy import BASE_RTT_US, DPDK_TASK, DpdkCaseStudy
from repro.experiments.base import ExperimentResult
from repro.experiments.hwcost import (
    HwCostConfig,
    costs_for,
    ready_set_depth,
    ready_set_gate_count,
    run,
)
from repro.experiments.registry import REGISTRY, run_experiment

PAPER_EXPERIMENT_IDS = {
    "fig3a", "fig3b", "fig3c", "fig8", "fig9a", "fig9b", "fig10a", "fig10b",
    "fig11a", "fig11b", "fig12a", "fig12b", "fig13", "hwcost", "headline",
}


def test_registry_covers_every_paper_artifact():
    assert PAPER_EXPERIMENT_IDS <= set(REGISTRY)
    # Beyond-paper experiments ride alongside, never displace, them.
    assert set(REGISTRY) - PAPER_EXPERIMENT_IDS == {"cluster_scaleout", "dist_replay"}


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_result_table_formatting():
    result = ExperimentResult("x", "Title")
    result.rows.append({"a": 1, "b": 2.5})
    result.rows.append({"a": 10, "c": "text"})
    result.notes.append("a note")
    table = result.format_table(float_digits=1)
    assert "Title" in table
    assert "2.5" in table
    assert "* a note" in table
    assert result.columns == ["a", "b", "c"]


def test_result_series_extraction():
    result = ExperimentResult("x", "t")
    result.rows = [{"q": 1, "v": 10.0}, {"q": 2, "v": 20.0}]
    assert result.series("q", "v") == {1: 10.0, 2: 20.0}


def test_empty_result_table():
    assert "(no rows)" in ExperimentResult("x", "t").format_table()


# -- hardware cost model -------------------------------------------------------------


def test_hwcost_anchors_match_paper():
    costs = costs_for(1024)
    assert costs.ready_set_area == pytest.approx(0.13)
    assert costs.ready_set_latency_ns == pytest.approx(12.25)
    assert costs.monitoring_area == pytest.approx(0.21)
    assert costs.chip_area_overhead == pytest.approx(0.0026, abs=0.0002)
    assert costs.single_core_power_fraction == pytest.approx(0.062)
    assert costs.chip_power_overhead == pytest.approx(0.062 / 16)


def test_hwcost_scales_sublinearly_in_latency():
    # Brent-Kung depth is logarithmic: doubling entries adds ~2 stages.
    assert ready_set_depth(2048) <= ready_set_depth(1024) + 2
    assert ready_set_gate_count(2048) > ready_set_gate_count(1024)


def test_hwcost_experiment_runs():
    result = run(HwCostConfig(fast=True))
    assert len(result.rows) == 3
    assert any("0.26" in note or "0.25" in note for note in result.notes)


def test_hwcost_validation():
    with pytest.raises(ValueError):
        ready_set_gate_count(0)


# -- DPDK case study -------------------------------------------------------------------


def test_dpdk_task_parameters():
    assert DPDK_TASK.mean_service_us == pytest.approx(0.5)
    assert DPDK_TASK.scv == 0.0


def test_dpdk_roundtrip_includes_wire_time():
    study = DpdkCaseStudy(target_completions=200, max_seconds=2.0)
    avg, p99 = study.roundtrip(num_queues=1)
    assert avg > BASE_RTT_US
    assert p99 >= avg * 0.99


def test_dpdk_throughput_degrades_for_sq():
    study = DpdkCaseStudy(target_completions=600, max_seconds=2.0)
    small = study.peak_throughput(1, "SQ")
    large = study.peak_throughput(600, "SQ")
    assert large < small / 5


def test_dpdk_latency_grows_with_queue_count():
    study = DpdkCaseStudy(target_completions=300, max_seconds=3.0)
    avg_small, _ = study.roundtrip(num_queues=1)
    avg_large, p99_large = study.roundtrip(num_queues=512)
    assert avg_large > 2 * avg_small
    assert p99_large > 1.3 * avg_large


def test_dpdk_cdf_widens():
    study = DpdkCaseStudy(target_completions=400, max_seconds=3.0)
    narrow = study.latency_cdf(1)
    wide = study.latency_cdf(256)

    def spread(cdf):
        return cdf[-1][0] - cdf[0][0]

    assert spread(wide) > spread(narrow)


# -- result serialisation ---------------------------------------------------------------


def test_result_json_roundtrip():
    result = ExperimentResult("x", "Title")
    result.rows = [{"queues": 1, "value": 2.5}, {"queues": 2, "value": 5.0}]
    result.notes = ["a note"]
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.experiment_id == "x"
    assert restored.rows == result.rows
    assert restored.notes == result.notes
    assert restored.series("queues", "value") == {1: 2.5, 2: 5.0}


def test_cli_json_export(tmp_path):
    from repro.experiments.__main__ import main

    assert main(["hwcost", "--json", str(tmp_path)]) == 0
    payload = (tmp_path / "hwcost.json").read_text()
    restored = ExperimentResult.from_json(payload)
    assert restored.experiment_id == "hwcost"
    assert restored.rows


def test_cli_list():
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0


# -- parallel sweep helper -----------------------------------------------------------


def _square(x):
    return x * x


def test_parallel_map_preserves_order_inline():
    from repro.experiments.parallel import parallel_map

    assert parallel_map(_square, [3, 1, 2], processes=1) == [9, 1, 4]


def test_parallel_map_across_processes():
    from repro.experiments.parallel import parallel_map

    points = list(range(12))
    assert parallel_map(_square, points, processes=2) == [x * x for x in points]


def test_parallel_map_simulation_points_deterministic():
    from repro.experiments.parallel import parallel_map
    from repro.experiments.fig8_peak_throughput import peak_point

    point = ("packet-encapsulation", "SQ", 64, 0, 400)
    inline = parallel_map(_peak_star, [point], processes=1)
    forked = parallel_map(_peak_star, [point, point], processes=2)
    assert forked[0] == forked[1] == inline[0]


def _peak_star(args):
    from repro.experiments.fig8_peak_throughput import peak_point

    return peak_point(*args)


def test_default_processes_positive():
    from repro.experiments.parallel import default_processes

    assert default_processes() >= 1
