"""Tests for metrics recorders and cluster planning."""

import pytest

from repro.sdp.metrics import CoreActivity, LatencyRecorder, RunMetrics
from repro.sdp.organizations import plan_clusters


# -- latency recorder ----------------------------------------------------------


def test_recorder_mean_and_percentiles():
    recorder = LatencyRecorder()
    for value in range(1, 101):
        recorder.record(now=1.0, latency=value * 1e-6)
    assert recorder.mean_us == pytest.approx(50.5)
    assert recorder.percentile(50) == pytest.approx(50.5e-6)
    assert recorder.p99_us == pytest.approx(99.01, rel=0.01)


def test_recorder_warmup_discards_early_samples():
    recorder = LatencyRecorder(warmup_time=10.0)
    recorder.record(now=5.0, latency=100e-6)
    recorder.record(now=15.0, latency=1e-6)
    assert recorder.count == 1
    assert recorder.mean_us == pytest.approx(1.0)


def test_recorder_empty_is_zero():
    recorder = LatencyRecorder()
    assert recorder.mean == 0.0
    assert recorder.p99 == 0.0
    assert recorder.cdf() == []


def test_recorder_validation():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(0.0, -1.0)
    with pytest.raises(ValueError):
        recorder.percentile(0.0)
    with pytest.raises(ValueError):
        recorder.percentile(100.0)


def test_recorder_cdf_monotone_and_complete():
    recorder = LatencyRecorder()
    for value in (5, 1, 9, 3, 7):
        recorder.record(1.0, value * 1e-6)
    cdf = recorder.cdf(points=5)
    fractions = [f for _, f in cdf]
    assert fractions == sorted(fractions)
    assert cdf[-1][1] == 1.0
    latencies = [l for l, _ in cdf]
    assert latencies == sorted(latencies)


# -- core activity ----------------------------------------------------------------


def test_activity_ipc_split():
    activity = CoreActivity(
        busy_cycles=1000.0,
        halted_cycles=1000.0,
        useful_instructions=600.0,
        useless_instructions=400.0,
    )
    assert activity.ipc == pytest.approx(0.5)
    assert activity.useful_ipc == pytest.approx(0.3)
    assert activity.useless_ipc == pytest.approx(0.2)
    assert activity.halt_fraction == pytest.approx(0.5)


def test_activity_zero_cycles_safe():
    activity = CoreActivity()
    assert activity.ipc == 0.0
    assert activity.halt_fraction == 0.0


def test_activity_merge():
    a = CoreActivity(busy_cycles=10, useful_instructions=5, tasks=1)
    b = CoreActivity(busy_cycles=20, useless_instructions=8, wakeups=2)
    merged = a.merge(b)
    assert merged.busy_cycles == 30
    assert merged.useful_instructions == 5
    assert merged.useless_instructions == 8
    assert merged.tasks == 1 and merged.wakeups == 2


def test_run_metrics_throughput():
    recorder = LatencyRecorder()
    for _ in range(100):
        recorder.record(1.0, 1e-6)
    metrics = RunMetrics(
        latency=recorder, activities=[CoreActivity()], measure_start=0.0, measure_end=1e-3
    )
    assert metrics.throughput == pytest.approx(1e5)
    assert metrics.throughput_mtps == pytest.approx(0.1)
    summary = metrics.summary()
    assert summary["completed"] == 100.0


def test_run_metrics_empty_window():
    metrics = RunMetrics(latency=LatencyRecorder(), activities=[])
    assert metrics.throughput == 0.0


# -- cluster planning ---------------------------------------------------------------


def test_scale_out_partitions_are_disjoint_and_complete():
    plans = plan_clusters(num_queues=40, num_cores=4, cluster_cores=1)
    assert len(plans) == 4
    all_queues = sorted(q for plan in plans for q in plan.queue_ids)
    assert all_queues == list(range(40))
    assert [plan.core_ids for plan in plans] == [(0,), (1,), (2,), (3,)]


def test_scale_up_single_cluster():
    plans = plan_clusters(num_queues=10, num_cores=4, cluster_cores=4)
    assert len(plans) == 1
    assert plans[0].core_ids == (0, 1, 2, 3)
    assert plans[0].queue_ids == tuple(range(10))


def test_scale_up_2_clusters():
    plans = plan_clusters(num_queues=8, num_cores=4, cluster_cores=2)
    assert len(plans) == 2
    assert plans[0].core_ids == (0, 1)
    assert plans[1].core_ids == (2, 3)


def test_hot_queues_dealt_fairly():
    hot = list(range(0, 40, 2))  # 20 hot queues
    plans = plan_clusters(40, 4, 1, hot_queue_ids=hot)
    hot_set = set(hot)
    shares = [sum(1 for q in plan.queue_ids if q in hot_set) for plan in plans]
    assert shares == [5, 5, 5, 5]


def test_imbalance_moves_hot_share_to_cluster_zero():
    hot = list(range(0, 400, 5))  # 80 hot queues
    balanced = plan_clusters(400, 4, 1, hot_queue_ids=hot)
    skewed = plan_clusters(400, 4, 1, hot_queue_ids=hot, imbalance=0.10)
    hot_set = set(hot)

    def hot_count(plan):
        return sum(1 for q in plan.queue_ids if q in hot_set)

    assert hot_count(skewed[0]) > hot_count(balanced[0])
    assert hot_count(skewed[-1]) < hot_count(balanced[-1])
    # Total conserved.
    assert sum(map(hot_count, skewed)) == 80


def test_plan_validation():
    with pytest.raises(ValueError):
        plan_clusters(10, 4, 3)  # cluster size does not divide cores
    with pytest.raises(ValueError):
        plan_clusters(2, 4, 1)  # more clusters than queues
    with pytest.raises(ValueError):
        plan_clusters(10, 2, 1, imbalance=1.5)
