"""Golden-number regression tests.

Simulations are deterministic for a given seed, so these canonical
configurations are pinned to their recorded outcomes with a small
tolerance (covering float-ordering differences across Python builds,
not model changes). If a deliberate model change moves a number, update
the golden value *and* re-validate EXPERIMENTS.md — these tests exist
to make silent drift impossible, not to freeze the models.

Recorded with seed 42 on the calibrated models (see docs/modeling.md).
"""

import pytest

from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_interrupts, run_mwait, run_spinning

GOLDEN = {
    "spin_sq200_peak_mtps": 0.12207,
    "hp_sq200_peak_mtps": 0.69167,
    "spin_fb512_zeroload_avg_us": 18.3026,
    "hp_fb512_zeroload_avg_us": 1.7823,
    "hp_fb400_4c_load50_p99_us": 6.9251,
    "spin_fb400_4c_load50_p99_us": 40.6246,
    "mwait_sq200_peak_mtps": 0.12207,
    "irq_fb64_zeroload_avg_us": 2.7706,
}

TOLERANCE = 0.02  # 2%


def config(**overrides):
    defaults = dict(
        num_queues=200, workload="packet-encapsulation", shape="SQ", seed=42
    )
    defaults.update(overrides)
    return SDPConfig(**defaults)


def test_golden_spinning_sq_peak():
    measured = run_spinning(
        config(), closed_loop=True, target_completions=2000, max_seconds=2.0
    ).throughput_mtps
    assert measured == pytest.approx(GOLDEN["spin_sq200_peak_mtps"], rel=TOLERANCE)


def test_golden_hyperplane_sq_peak():
    measured = run_hyperplane(
        config(), closed_loop=True, target_completions=2000, max_seconds=2.0
    ).throughput_mtps
    assert measured == pytest.approx(GOLDEN["hp_sq200_peak_mtps"], rel=TOLERANCE)


def test_golden_mwait_peak_equals_spinning():
    measured = run_mwait(
        config(), closed_loop=True, target_completions=2000, max_seconds=2.0
    ).throughput_mtps
    assert measured == pytest.approx(GOLDEN["mwait_sq200_peak_mtps"], rel=TOLERANCE)


def test_golden_zero_load_latencies():
    spin = run_spinning(
        config(num_queues=512, shape="FB", service_scv=0.0),
        load=0.01, target_completions=300, max_seconds=5.0,
    ).latency.mean_us
    hyper = run_hyperplane(
        config(num_queues=512, shape="FB", service_scv=0.0),
        load=0.01, target_completions=300, max_seconds=5.0,
    ).latency.mean_us
    assert spin == pytest.approx(GOLDEN["spin_fb512_zeroload_avg_us"], rel=TOLERANCE)
    assert hyper == pytest.approx(GOLDEN["hp_fb512_zeroload_avg_us"], rel=TOLERANCE)


def test_golden_multicore_tails():
    def p99(runner):
        return runner(
            config(num_queues=400, shape="FB", num_cores=4, cluster_cores=4),
            load=0.5, target_completions=4000, max_seconds=2.0,
        ).latency.p99_us

    assert p99(run_hyperplane) == pytest.approx(
        GOLDEN["hp_fb400_4c_load50_p99_us"], rel=TOLERANCE
    )
    assert p99(run_spinning) == pytest.approx(
        GOLDEN["spin_fb400_4c_load50_p99_us"], rel=TOLERANCE
    )


def test_golden_interrupt_latency():
    measured = run_interrupts(
        config(num_queues=64, shape="FB", service_scv=0.0),
        load=0.01, target_completions=300, max_seconds=5.0,
    ).latency.mean_us
    assert measured == pytest.approx(GOLDEN["irq_fb64_zeroload_avg_us"], rel=TOLERANCE)


def test_golden_ratios_tell_the_paper_story():
    # Derived directly from the goldens: the headline directions.
    assert GOLDEN["hp_sq200_peak_mtps"] > 5 * GOLDEN["spin_sq200_peak_mtps"]
    assert (
        GOLDEN["spin_fb512_zeroload_avg_us"]
        > 10 * GOLDEN["hp_fb512_zeroload_avg_us"]
    )
    assert (
        GOLDEN["spin_fb400_4c_load50_p99_us"]
        > 5 * GOLDEN["hp_fb400_4c_load50_p99_us"]
    )
