"""End-to-end live telemetry through the multi-process fleet.

The load-bearing guarantees (docs/live-telemetry.md):

- a run with telemetry attached is **bit-exact** with one without, on
  both transports — frames observe the fleet, they never steer it;
- the fleet's live completion counter agrees with the merged per-node
  accounting, so the streamed view is the truth, not an estimate;
- a crashed worker's last frames survive coordinator-side: the fault
  record carries its flight-recorder window and the bus dumps a
  post-mortem file referenced from ``run.info`` (and the manifest);
- heartbeat replies surface their *full* payload to ``on_heartbeat``
  (the regression that used to drop everything but the timestamp).
"""

import socket
import threading

import pytest

from repro.cluster import ClusterConfig
from repro.dist import DistOptions, TELEMETRY_CAPABILITY, run_cluster_dist
from repro.dist.coordinator import WorkerHandle, WorkerPool
from repro.dist.wire import Channel
from repro.obs.live import TelemetryBus, parse_telemetry_jsonl, validate_frame

LOAD = 0.25
DURATION = 0.012
WARMUP = 0.004


def small_config(**overrides):
    defaults = dict(
        num_servers=4,
        notification="hyperplane",
        balancer="rss",
        queues_per_server=64,
        num_flows=64,
        flow_skew=0.3,
        seed=11,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def run_fleet(telemetry=None, **options):
    return run_cluster_dist(
        small_config(),
        load=LOAD,
        duration=DURATION,
        warmup=WARMUP,
        options=DistOptions(workers=2, **options),
        telemetry=telemetry,
    )


# -- bit-exactness and accounting --------------------------------------------


@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_telemetry_is_bit_exact_and_streams_frames(transport):
    plain = run_fleet(transport=transport)
    bus = TelemetryBus()
    observed = run_fleet(telemetry=bus, transport=transport)

    assert observed.metrics.fingerprint() == plain.metrics.fingerprint()
    assert bus.frames_seen > 0
    assert bus.worker_ids() == [0, 1]
    for view in bus.workers.values():
        for frame in view.frames:
            validate_frame(frame)

    info = observed.info["telemetry"]
    assert info["frames"] == bus.frames_seen
    assert info["workers"] == [0, 1]
    assert "telemetry" not in plain.info


def test_fleet_live_completions_match_merged_node_accounting():
    bus = TelemetryBus()
    run = run_fleet(telemetry=bus)
    completed = sum(
        server.get("completed_ok", 0)
        for node in run.nodes
        for server in node.get("per_server", {}).values()
    )
    assert completed > 0
    assert bus.fleet_summary()["completions"] == completed


# -- crash + flight recorder -------------------------------------------------


def test_worker_crash_attaches_flight_window_and_dumps(tmp_path):
    bus = TelemetryBus()
    run = run_fleet(
        telemetry=bus,
        crash_worker=1,
        crash_worker_at=WARMUP + 0.002,
        flight_recorder_dir=str(tmp_path),
    )
    assert run.partial
    fault = run.worker_faults[0]
    assert fault["worker_id"] == 1
    window = fault["telemetry"]
    assert isinstance(window, list) and window
    assert all(frame["worker"] == 1 for frame in window)
    assert window == bus.flight_window(1)

    path = run.info["flight_recorder"]
    assert path.startswith(str(tmp_path))
    frames = parse_telemetry_jsonl(open(path).read())
    assert frames
    # The dump holds both workers' rings; the dead worker's window is
    # a suffix-complete subset of what the file retained for it.
    assert {frame["worker"] for frame in frames} == {0, 1}


def test_worker_crash_without_bus_marks_no_telemetry():
    run = run_fleet(crash_worker=1, crash_worker_at=WARMUP + 0.002)
    assert run.partial
    assert run.worker_faults[0]["telemetry"] == "no_telemetry"
    assert "flight_recorder" not in run.info


# -- heartbeat payload passthrough (regression) ------------------------------


class _FakeProcess:
    def poll(self):
        return 0

    def kill(self):
        pass

    def wait(self):
        return 0


def test_broadcast_surfaces_full_heartbeat_payload():
    """broadcast() used to keep only the heartbeat timestamp; telemetry
    frames (and any future health data) must reach the callback whole."""
    coord_sock, worker_sock = socket.socketpair()
    coordinator = Channel(coord_sock, name="coord")
    worker = Channel(worker_sock, name="worker0")
    pool = WorkerPool.__new__(WorkerPool)
    pool.transport = "unix"
    pool._tempdir = None
    pool._listener = None
    pool.handles = [
        WorkerHandle(
            worker_id=0, servers=[0], process=_FakeProcess(),
            channel=coordinator, caps=(TELEMETRY_CAPABILITY,),
        )
    ]
    frame = {
        "v": 1, "worker": 0, "seq": 0, "t": 0.0015,
        "metrics": {"live.completions": {"kind": "counter", "value": 3.0}},
        "events": [],
    }

    def serve():
        request = worker.recv(timeout=5.0)
        worker.send({
            "type": "heartbeat", "worker_id": 0, "t": 1.5,
            "telemetry": [frame],
        })
        worker.send({
            "type": "step_ok", "seq": request["seq"], "worker_id": 0,
            "t": 2.0, "windows": [],
        })

    thread = threading.Thread(target=serve)
    thread.start()
    heartbeats = []
    try:
        replies, died = WorkerPool.broadcast(
            pool,
            {0: {"type": "step", "windows": []}},
            "step_ok",
            timeout_s=5.0,
            retries=0,
            backoff_s=0.01,
            on_heartbeat=lambda handle, reply: heartbeats.append(
                (handle.worker_id, reply)
            ),
        )
    finally:
        thread.join()
        coordinator.close()
        worker.close()

    assert not died and 0 in replies
    assert len(heartbeats) == 1
    worker_id, payload = heartbeats[0]
    assert worker_id == 0
    assert payload["t"] == 1.5
    assert payload["telemetry"] == [frame]


def test_broadcast_without_callback_still_tracks_liveness():
    coord_sock, worker_sock = socket.socketpair()
    coordinator = Channel(coord_sock, name="coord")
    worker = Channel(worker_sock, name="worker0")
    pool = WorkerPool.__new__(WorkerPool)
    pool.transport = "unix"
    pool._tempdir = None
    pool._listener = None
    handle = WorkerHandle(
        worker_id=0, servers=[0], process=_FakeProcess(), channel=coordinator
    )
    pool.handles = [handle]

    def serve():
        request = worker.recv(timeout=5.0)
        worker.send({"type": "heartbeat", "worker_id": 0, "t": 3.25})
        worker.send({
            "type": "step_ok", "seq": request["seq"], "worker_id": 0,
            "t": 4.0, "windows": [],
        })

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        replies, died = WorkerPool.broadcast(
            pool, {0: {"type": "step", "windows": []}}, "step_ok",
            timeout_s=5.0, retries=0, backoff_s=0.01,
        )
    finally:
        thread.join()
        coordinator.close()
        worker.close()
    assert not died and 0 in replies
    assert handle.last_heartbeat_t == 3.25


# -- experiment threading ----------------------------------------------------


def test_run_experiment_threads_telemetry_flags(tmp_path):
    from repro.experiments.registry import run_experiment

    out = str(tmp_path / "telemetry.jsonl")
    result = run_experiment(
        "dist_replay", fast=True, backend="dist", workers=2,
        telemetry_out=out,
    )
    frames = parse_telemetry_jsonl(open(out).read())
    assert frames
    telemetry_info = result.dist_info["telemetry"]
    assert telemetry_info["frames"] == len(frames)
    assert result.manifest.to_dict()["dist"]["telemetry"]["frames"] == len(frames)


def test_run_experiment_rejects_telemetry_on_non_dist_experiment():
    from repro.experiments.base import UsageError
    from repro.experiments.registry import run_experiment

    with pytest.raises(UsageError, match="telemetry"):
        run_experiment("fig8", telemetry=True)


def test_cluster_scaleout_rejects_telemetry_off_dist_backend():
    from repro.experiments.base import UsageError
    from repro.experiments.cluster_scaleout import ClusterScaleoutConfig

    with pytest.raises(UsageError, match="backend='dist'"):
        ClusterScaleoutConfig(telemetry=True)


def test_dist_options_validate_telemetry_interval():
    with pytest.raises(ValueError, match="telemetry_interval_s"):
        DistOptions(telemetry_interval_s=-1.0)
