"""Trace exporters: schema-valid Chrome JSON, collapsed stacks, JSONL.

Round-trip contracts: the Chrome payload validates against the
event-format schema; `parse_collapsed` inverts the collapsed-stack
aggregation text; `parse_spans_jsonl` inverts `spans_to_jsonl` exactly,
non-ASCII attributes included.
"""

import json

import pytest

from repro.obs.trace import CATEGORIES, Span, Tracer, breakdown_sum
from repro.obs.trace_export import (
    TRACE_EXPORTERS,
    chrome_instant,
    chrome_slice,
    chrome_trace_problems,
    parse_collapsed,
    parse_spans_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    to_collapsed,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_exports,
)


def sample_tracer() -> Tracer:
    """Two traces: one with children + cycles + a non-ASCII attribute."""
    tracer = Tracer(seed=0)
    root = tracer.begin("request", 1.0e-6, item_id=7, flow="flöw-βeta")
    wait = tracer.begin("queue.wait", 1.0e-6, parent=root)
    wait.add_event(1.2e-6, "doorbell_ready", qid=3)
    tracer.end(wait, 1.5e-6)
    service = tracer.begin("service", 1.5e-6, parent=root)
    tracer.end(service, 2.0e-6)
    tracer.end(root, 2.0e-6)
    root.attribute_cycles(3000.0, notify_wait=600.0, queueing=900.0, service=1500.0)

    solo = tracer.begin("request", 4.0e-6, item_id=8)
    tracer.end(solo, 5.0e-6)
    solo.attribute_cycles(3000.0, service=3000.0)
    return tracer


# -- Chrome trace events ------------------------------------------------------


def test_chrome_trace_is_schema_valid_and_complete():
    tracer = sample_tracer()
    payload = to_chrome_trace(tracer)
    assert validate_chrome_trace(payload) is payload
    assert payload["displayTimeUnit"] == "ns"
    # Survives JSON serialisation (what the file actually holds).
    assert chrome_trace_problems(json.loads(json.dumps(payload))) == []

    events = payload["traceEvents"]
    slices = [event for event in events if event["ph"] == "X"]
    instants = [event for event in events if event["ph"] == "i"]
    assert len(slices) == 4  # every ended span
    assert len(instants) == 1  # the doorbell_ready event
    assert instants[0]["name"] == "doorbell_ready"
    assert instants[0]["args"] == {"qid": 3}

    root_slice = next(s for s in slices if "cycles" in s.get("args", {}))
    assert root_slice["ts"] == 1.0  # microseconds
    assert root_slice["dur"] == pytest.approx(1.0)
    assert root_slice["args"]["item_id"] == 7
    assert breakdown_sum(root_slice["args"]["cycles"]) == 3000.0
    # Children share the root's track and point at it.
    child_slice = next(s for s in slices if s["name"] == "queue.wait")
    assert child_slice["tid"] == root_slice["tid"]
    assert child_slice["args"]["parent_id"] == root_slice["args"]["span_id"]


def test_chrome_validation_catches_malformed_events():
    assert chrome_trace_problems([]) != []
    assert chrome_trace_problems({}) == ["missing or non-list 'traceEvents'"]
    bad = {
        "traceEvents": [
            {"ph": "Q", "name": "x", "ts": 0},           # unknown phase
            {"ph": "X", "name": "x", "ts": -1, "dur": 1},  # negative ts
            {"ph": "X", "name": "x", "ts": 0},           # slice without dur
            {"ph": "i", "name": "x", "ts": 0, "s": "z"},  # bad scope
            {"ph": "X", "ts": 0, "dur": 1},              # no name
            "not-an-object",
        ]
    }
    problems = chrome_trace_problems(bad)
    assert len(problems) == 6
    with pytest.raises(ValueError, match="invalid chrome trace"):
        validate_chrome_trace(bad)


def test_chrome_helpers_omit_empty_args():
    assert "args" not in chrome_instant("x", 1.0, tid=0)
    assert "args" not in chrome_slice("x", 1.0, 2.0, tid=0)
    assert chrome_instant("x", 1.0, tid=0, args={"a": 1})["args"] == {"a": 1}


def test_write_chrome_trace_roundtrips_through_file(tmp_path):
    tracer = sample_tracer()
    path = tmp_path / "out.trace.json"
    count = write_chrome_trace(tracer, str(path))
    loaded = json.loads(path.read_text())
    assert chrome_trace_problems(loaded) == []
    assert count == len(loaded["traceEvents"]) == 5


# -- collapsed stacks ---------------------------------------------------------


def test_collapsed_cycles_weights_are_the_breakdown():
    tracer = sample_tracer()
    stacks = parse_collapsed(to_collapsed(tracer, weight="cycles"))
    # Only spans with cycle breakdowns contribute; leaves are categories.
    assert stacks[("request", "notify_wait")] == 600.0
    assert stacks[("request", "queueing")] == 900.0
    # Both roots carry service cycles; identical stacks aggregate.
    assert stacks[("request", "service")] == 1500.0 + 3000.0
    assert all(frames[-1] in CATEGORIES for frames in stacks)
    # Total collapsed weight == total attributed cycles.
    assert sum(stacks.values()) == pytest.approx(6000.0)


def test_collapsed_us_weights_are_self_time():
    tracer = sample_tracer()
    stacks = parse_collapsed(to_collapsed(tracer, weight="us"))
    assert stacks[("request", "queue.wait")] == pytest.approx(0.5)
    assert stacks[("request", "service")] == pytest.approx(0.5)
    # The instrumented root's time is fully covered by its children, so
    # it has no self-time line; the solo request keeps its full 1 us.
    assert stacks[("request",)] == pytest.approx(1.0)


def test_collapsed_output_is_deterministic_and_parses():
    tracer = sample_tracer()
    text = to_collapsed(tracer)
    assert text == to_collapsed(tracer)
    assert text.endswith("\n")
    assert parse_collapsed("") == {}
    with pytest.raises(ValueError):
        parse_collapsed("justoneword\n")
    with pytest.raises(ValueError):
        to_collapsed(tracer, weight="seconds")


# -- JSONL --------------------------------------------------------------------


def test_jsonl_roundtrip_is_lossless_including_non_ascii():
    tracer = sample_tracer()
    text = spans_to_jsonl(tracer)
    # ensure_ascii: the byte stream stays ASCII whatever attributes hold.
    assert text == text.encode("ascii").decode("ascii")
    restored = parse_spans_jsonl(text)
    assert len(restored) == len(tracer.spans)
    for original, back in zip(tracer.spans, restored):
        assert back.to_dict() == original.to_dict()
        assert back.events == original.events
    flow = next(s for s in restored if "flow" in s.attributes)
    assert flow.attributes["flow"] == "flöw-βeta"  # escaped, not mangled
    # Writer/parser compose to identity once more (fixpoint).
    assert spans_to_jsonl(restored) == text


def test_jsonl_parser_skips_blank_lines():
    tracer = sample_tracer()
    text = "\n\n" + spans_to_jsonl(tracer) + "\n\n"
    assert len(parse_spans_jsonl(text)) == len(tracer.spans)


# -- file convenience ---------------------------------------------------------


def test_write_trace_exports_writes_all_formats(tmp_path):
    tracer = sample_tracer()
    paths = write_trace_exports(tracer, str(tmp_path), "fig9a")
    assert set(paths) == set(TRACE_EXPORTERS) == {
        "trace.json", "collapsed", "spans.jsonl",
    }
    assert chrome_trace_problems(
        json.loads((tmp_path / "fig9a.trace.json").read_text())
    ) == []
    assert parse_collapsed((tmp_path / "fig9a.collapsed").read_text())
    restored = parse_spans_jsonl((tmp_path / "fig9a.spans.jsonl").read_text())
    assert [span.to_dict() for span in restored] == [
        span.to_dict() for span in tracer.spans
    ]


def test_exporters_accept_plain_span_lists():
    spans = sample_tracer().spans
    assert to_chrome_trace(spans) == to_chrome_trace(sample_tracer())
    assert to_collapsed(spans) == to_collapsed(sample_tracer())
    assert spans_to_jsonl(spans) == spans_to_jsonl(sample_tracer())


def test_open_spans_are_skipped_by_chrome_and_collapsed():
    tracer = Tracer(seed=0)
    tracer.begin("request", 0.0)  # never ended, never retained
    ended = tracer.begin("request", 1.0e-6)
    tracer.end(ended, 2.0e-6)
    still_open = Span(trace_id=99, span_id=99, name="open", start=0.0)
    spans = tracer.spans + [still_open]
    assert len(to_chrome_trace(spans)["traceEvents"]) == 1
    assert "open" not in to_collapsed(spans, weight="us")
