"""Model-based property test of the notification protocol.

Drives the real components (Cuckoo monitoring set + PPA ready set,
composed exactly as the accelerator composes them) with random event
sequences — producer writes, QWAIT selections, VERIFY/RECONSIDER,
spurious line writes — and checks them step by step against a tiny
reference model whose correctness is obvious. The central safety
property: **a non-empty queue is never invisible** (it is ready, held by
a consumer, or its count only exceeds zero in states from which
RECONSIDER/VERIFY provably re-activates it).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitoring_set import CuckooMonitoringSet
from repro.core.policies import RoundRobinPolicy
from repro.core.ready_set import HardwareReadySet

NUM_QUEUES = 6


class ReferenceModel:
    """The obviously-correct spec of one queue's notification state."""

    def __init__(self, num_queues):
        self.count = [0] * num_queues  # doorbell counter
        self.armed = [True] * num_queues
        self.ready = [False] * num_queues
        self.held = [False] * num_queues  # selected, pre-RECONSIDER

    def producer_write(self, qid):
        self.count[qid] += 1
        if self.armed[qid]:
            self.armed[qid] = False
            self.ready[qid] = True

    def qwait(self, qid):
        assert self.ready[qid]
        self.ready[qid] = False
        self.held[qid] = True

    def verify(self, qid):
        assert self.held[qid]
        if self.count[qid] == 0:
            self.armed[qid] = True
            self.held[qid] = False
            return False
        return True

    def dequeue(self, qid):
        assert self.held[qid] and self.count[qid] > 0
        self.count[qid] -= 1

    def reconsider(self, qid):
        assert self.held[qid]
        self.held[qid] = False
        if self.count[qid] == 0:
            self.armed[qid] = True
        else:
            self.ready[qid] = True

class RealComposition:
    """The production components wired the way the accelerator wires them."""

    def __init__(self, num_queues, seed):
        self.monitoring = CuckooMonitoringSet(capacity=64, ways=4, seed=seed)
        self.ready_set = HardwareReadySet(num_queues, RoundRobinPolicy(num_queues))
        self.count = [0] * num_queues
        self.tags = {}
        for qid in range(num_queues):
            tag = 0x1000 + qid * 64
            assert self.monitoring.insert(tag, qid)
            self.tags[qid] = tag

    def producer_write(self, qid):
        self.count[qid] += 1
        woken = self.monitoring.snoop_write(self.tags[qid])
        if woken is not None:
            self.ready_set.activate(woken)

    def qwait(self):
        return self.ready_set.select_and_take()

    def verify(self, qid):
        if self.count[qid] == 0:
            self.monitoring.arm(self.tags[qid])
            return False
        return True

    def dequeue(self, qid):
        self.count[qid] -= 1

    def reconsider(self, qid):
        if self.count[qid] == 0:
            self.monitoring.arm(self.tags[qid])
        else:
            self.ready_set.activate(qid)

    def is_armed(self, qid):
        return self.monitoring.is_armed(self.tags[qid])


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100),
    script=st.lists(
        st.tuples(
            st.sampled_from(["write", "service"]),
            st.integers(min_value=0, max_value=NUM_QUEUES - 1),
        ),
        min_size=1,
        max_size=120,
    ),
)
def test_protocol_composition_matches_reference(seed, script):
    real = RealComposition(NUM_QUEUES, seed)
    spec = ReferenceModel(NUM_QUEUES)

    for action, qid in script:
        if action == "write":
            real.producer_write(qid)
            spec.producer_write(qid)
        else:
            # A full consumer service round: QWAIT -> VERIFY ->
            # dequeue -> RECONSIDER (the atomic instructions collapse to
            # single steps here, which is exactly their semantics).
            selected = real.qwait()
            if selected is None:
                # Spec must agree nothing is ready.
                assert not any(spec.ready)
                continue
            spec.qwait(selected)
            real_has = real.verify(selected)
            spec_has = spec.verify(selected)
            assert real_has == spec_has
            if not real_has:
                continue
            real.dequeue(selected)
            spec.dequeue(selected)
            real.reconsider(selected)
            spec.reconsider(selected)

        # Lock-step state agreement after every event.
        assert real.count == spec.count
        for q in range(NUM_QUEUES):
            assert real.ready_set.is_ready(q) == spec.ready[q], f"queue {q} ready"
            assert real.is_armed(q) == spec.armed[q], f"queue {q} armed"

    # Global liveness: drain everything; nothing may be stranded.
    for _ in range(sum(real.count) + NUM_QUEUES):
        selected = real.qwait()
        if selected is None:
            break
        if real.verify(selected):
            real.dequeue(selected)
            real.reconsider(selected)
    assert sum(real.count) == 0, "items stranded: lost wake-up"
    # And at quiescence every queue is armed again, watching for arrivals.
    assert all(real.is_armed(q) for q in range(NUM_QUEUES))


@settings(max_examples=100, deadline=None)
@given(
    writes=st.lists(st.integers(min_value=0, max_value=NUM_QUEUES - 1), max_size=60),
    spurious=st.lists(st.integers(min_value=0, max_value=NUM_QUEUES - 1), max_size=20),
)
def test_spurious_writes_never_lose_or_duplicate_work(writes, spurious):
    """Spurious activations (false sharing) are filtered by VERIFY and
    re-arm correctly: total serviced == total written, always."""
    real = RealComposition(NUM_QUEUES, seed=1)
    for qid in spurious:
        # A write transaction on the doorbell line with no enqueue.
        woken = real.monitoring.snoop_write(real.tags[qid])
        if woken is not None:
            real.ready_set.activate(woken)
    for qid in writes:
        real.producer_write(qid)
    serviced = 0
    for _ in range(len(writes) + len(spurious) + NUM_QUEUES):
        selected = real.qwait()
        if selected is None:
            break
        if real.verify(selected):
            real.dequeue(selected)
            real.reconsider(selected)
            serviced += 1
    assert serviced == len(writes)
    assert sum(real.count) == 0
