"""Tests for address helpers and the doorbell region."""

import pytest

from repro.mem.address import (
    CACHE_LINE_BYTES,
    AddressAllocator,
    DoorbellRegion,
    line_address,
    line_offset,
)


def test_line_address_and_offset():
    assert line_address(0) == 0
    assert line_address(63) == 0
    assert line_address(64) == 64
    assert line_address(130) == 128
    assert line_offset(130) == 2


def test_region_allocates_line_spaced_doorbells():
    region = DoorbellRegion(base=0x1000, size_bytes=4096)
    first = region.allocate()
    second = region.allocate()
    assert first == 0x1000
    assert second - first == CACHE_LINE_BYTES
    assert region.allocated_count == 2


def test_region_capacity_and_exhaustion():
    region = DoorbellRegion(base=0, size_bytes=256)  # 4 lines
    assert region.capacity == 4
    for _ in range(4):
        region.allocate()
    with pytest.raises(MemoryError):
        region.allocate()


def test_region_free_and_reuse():
    region = DoorbellRegion(base=0, size_bytes=256)
    addr = region.allocate()
    region.free(addr)
    assert region.allocate() == addr


def test_region_free_unallocated_rejected():
    region = DoorbellRegion(base=0, size_bytes=256)
    with pytest.raises(ValueError):
        region.free(0)


def test_region_contains():
    region = DoorbellRegion(base=0x1000, size_bytes=256)
    assert region.contains(0x1000)
    assert region.contains(0x10FF)
    assert not region.contains(0x1100)
    assert not region.contains(0xFFF)


def test_packed_doorbells_share_lines():
    region = DoorbellRegion(base=0, size_bytes=256, doorbells_per_line=4)
    addrs = [region.allocate() for _ in range(5)]
    assert line_address(addrs[0]) == line_address(addrs[3])
    assert line_address(addrs[4]) != line_address(addrs[0])
    assert region.capacity == 16


def test_packed_free_slot_roundtrip():
    region = DoorbellRegion(base=0, size_bytes=256, doorbells_per_line=2)
    addrs = [region.allocate() for _ in range(4)]
    region.free(addrs[2])
    assert region.allocate() == addrs[2]


def test_unaligned_base_rejected():
    with pytest.raises(ValueError):
        DoorbellRegion(base=7)


def test_bad_packing_rejected():
    with pytest.raises(ValueError):
        DoorbellRegion(doorbells_per_line=0)
    with pytest.raises(ValueError):
        DoorbellRegion(doorbells_per_line=64)


def test_allocator_keeps_regions_disjoint():
    region = DoorbellRegion(base=0x1000_0000, size_bytes=1 << 20)
    allocator = AddressAllocator(base=0x4000_0000, doorbell_region=region)
    addr = allocator.allocate(4096)
    assert not region.contains(addr)


def test_allocator_alignment():
    allocator = AddressAllocator()
    addr = allocator.allocate(10, align=256)
    assert addr % 256 == 0
    second = allocator.allocate(10, align=256)
    assert second > addr


def test_allocator_rejects_bad_input():
    allocator = AddressAllocator()
    with pytest.raises(ValueError):
        allocator.allocate(0)
    with pytest.raises(ValueError):
        allocator.allocate(8, align=3)
    with pytest.raises(ValueError):
        AddressAllocator(base=0x1000_0000)  # inside default doorbell region
