"""The dist fast path: backoff, window batching, and the v2 wire codec.

These are the PR-8 contracts layered on top of the PR-7 runtime:

- ``backoff_delay`` grows exponentially with jitter and a cap, and
  ``Channel.rpc`` actually sleeps those growing delays between retries;
- ``take_window`` half-open boundary semantics (a record exactly on the
  bound belongs to the *next* window, and the one-record lookahead is
  never lost across consecutive windows);
- the binary wire format v2 round-trips every step/step_ok shape to the
  same decoded message the JSON v1 path produces (fuzzed);
- ``DistOptions`` validates the new ``wire`` / ``lookahead`` /
  ``backoff_cap_s`` knobs, and the ``--workers`` / ``--transport`` CLI
  boundary keeps the listed-choices UsageError -> exit 2 contract.
"""

import random
import socket

import pytest

from repro.dist.coordinator import DistOptions
from repro.dist.replay import TraceRecord, take_window
from repro.dist.wire import (
    Channel,
    ChannelTimeout,
    backoff_delay,
    decode_body,
    encode_frame,
)


def channel_pair():
    left, right = socket.socketpair()
    return Channel(left, name="left"), Channel(right, name="right")


# -- exponential backoff ------------------------------------------------------


def test_backoff_delay_grows_and_caps():
    rng = random.Random(7)
    raws = [backoff_delay(a, base_s=0.05, cap_s=2.0, rng=rng) for a in range(12)]
    # Jitter bounds: every delay lands in [raw/2, raw].
    for attempt, delay in enumerate(raws):
        raw = min(2.0, 0.05 * 2.0 ** attempt)
        assert raw / 2 <= delay <= raw
    # Growth dominates jitter: the lower bound for attempt n+1 equals
    # the upper bound for attempt n, so the sequence of bounds (and the
    # capped tail) is non-decreasing.
    assert max(raws) <= 2.0
    assert raws[-1] >= 1.0  # capped region: raw == cap_s == 2.0
    # The uncapped prefix doubles: compare de-jittered raws exactly.
    for attempt in range(5):
        assert 0.05 * 2.0 ** attempt == min(2.0, 0.05 * 2.0 ** attempt)


def test_backoff_delay_rejects_negative_attempt():
    with pytest.raises(ValueError):
        backoff_delay(-1)


def test_rpc_sleeps_growing_backoff_between_retries(monkeypatch):
    import repro.dist.wire as wire

    slept = []
    monkeypatch.setattr(wire.time, "sleep", slept.append)
    left, right = channel_pair()
    try:
        # Nobody ever replies: every attempt times out, and the sleeps
        # between attempts are the capped exponential schedule.
        with pytest.raises(ChannelTimeout):
            left.rpc(
                {"type": "step", "windows": []},
                expect="step_ok",
                timeout=0.01,
                retries=6,
                backoff_s=0.05,
                backoff_cap_s=0.4,
            )
    finally:
        left.close()
        right.close()
    assert len(slept) == 6
    for attempt, delay in enumerate(slept):
        raw = min(0.4, 0.05 * 2.0 ** attempt)
        assert raw / 2 <= delay <= raw
    # Observable growth: the later (capped) delays are strictly larger
    # than the first, and nothing exceeds the cap.
    assert min(slept[3:]) > slept[0]
    assert max(slept) <= 0.4


# -- take_window boundary semantics -------------------------------------------


def _records(*times):
    return iter([TraceRecord(time=t, flow=0) for t in times])


def test_take_window_excludes_record_exactly_on_bound():
    pending = []
    source = _records(0.1, 0.2, 0.3)
    window = take_window(pending, source, until=0.2)
    assert [r.time for r in window] == [0.1]
    # The 0.2 record was read ahead and parked, not dropped.
    assert [r.time for r in pending] == [0.2]
    window = take_window(pending, source, until=0.3)
    assert [r.time for r in window] == [0.2]
    window = take_window(pending, source, until=0.4)
    assert [r.time for r in window] == [0.3]
    assert take_window(pending, source, until=99.0) == []


def test_take_window_lookahead_survives_empty_windows():
    pending = []
    source = _records(0.5)
    for bound in (0.1, 0.2, 0.3, 0.4, 0.5):
        assert take_window(pending, source, until=bound) == []
        assert len(pending) <= 1
    window = take_window(pending, source, until=0.6)
    assert [r.time for r in window] == [0.5]
    assert pending == []


def test_take_window_never_buffers_more_than_one_record():
    pending = []
    seen = []

    def counting_source():
        for i in range(10):
            record = TraceRecord(time=i * 0.01, flow=i)
            seen.append(record)
            yield record

    source = counting_source()
    window = take_window(pending, source, until=0.035)
    assert [r.flow for r in window] == [0, 1, 2, 3]
    # Exactly one record beyond the bound has been pulled.
    assert len(seen) == 5 and len(pending) == 1


# -- wire v2 <-> v1 fuzz ------------------------------------------------------


def roundtrip(message, wire_version):
    frame = encode_frame(message, wire_version=wire_version)
    return decode_body(frame[4:])


def fuzz_step(rng):
    windows = []
    for _ in range(rng.randrange(4)):
        dispatches = []
        for _ in range(rng.randrange(5)):
            record = {
                "id": rng.randrange(2 ** 53),
                "t": rng.random() * 10,
                "flow": rng.randrange(2 ** 31),
                "server": rng.randrange(2 ** 16),
            }
            if rng.random() < 0.5:
                record["arr"] = rng.random()
            if rng.random() < 0.5:
                record["svc"] = rng.random() * 1e-5
            dispatches.append(record)
        faults = []
        if rng.random() < 0.3:
            faults.append({
                "kind": rng.choice(["crash", "restart", "slow", "link"]),
                "server": rng.randrange(8),
                "time": rng.random(),
                "magnitude": rng.random() * 4,
            })
        windows.append({
            "until": rng.random() * 10,
            "dispatches": dispatches,
            "faults": faults,
        })
    message = {"type": "step", "seq": rng.randrange(2 ** 31), "windows": windows}
    if rng.random() < 0.3:
        message["collect"] = {"measure_end": rng.random() * 10}
    return message


def fuzz_telemetry_frame(rng):
    """One schema-valid live-telemetry frame (see repro.obs.live)."""
    metrics = {}
    if rng.random() < 0.8:
        metrics["live.completions"] = {
            "kind": "counter", "help": "c", "value": float(rng.randrange(1000)),
        }
    if rng.random() < 0.5:
        metrics["live.queue_depth"] = {
            "kind": "gauge", "help": "g", "value": rng.random() * 64,
        }
    if rng.random() < 0.5:
        count = rng.randrange(50)
        metrics["live.latency_s"] = {
            "kind": "histogram", "help": "h",
            "bounds": [1e-6, 1e-5, 1e-4],
            "counts": [rng.randrange(20) for _ in range(3)],
            "overflow": rng.randrange(5),
            "sum": rng.random() * 1e-3,
            "count": count,
        }
    events = []
    if rng.random() < 0.3:
        events.append({
            "kind": rng.choice(["fault:crash", "fault:straggler"]),
            "server": rng.randrange(8),
            "t": rng.random(),
        })
    return {
        "v": 1,
        "worker": rng.randrange(64),
        "seq": rng.randrange(2 ** 31),
        "t": rng.random() * 100,
        "metrics": metrics,
        "events": events,
    }


def fuzz_step_ok(rng):
    windows = []
    for _ in range(rng.randrange(4)):
        windows.append({
            "completions": [
                [rng.randrange(2 ** 53), rng.random(), rng.random() * 1e-4,
                 rng.randrange(2 ** 16)]
                for _ in range(rng.randrange(4))
            ],
            "losses": [
                [rng.randrange(2 ** 53), rng.random(), rng.randrange(2 ** 16)]
                for _ in range(rng.randrange(3))
            ],
            "rejects": [
                [rng.randrange(2 ** 53), rng.random(), rng.randrange(2 ** 16)]
                for _ in range(rng.randrange(3))
            ],
            "redispatches": [
                [rng.randrange(2 ** 53), rng.random(), rng.randrange(2 ** 31),
                 rng.random(), rng.random() * 1e-5]
                for _ in range(rng.randrange(3))
            ],
        })
    message = {
        "type": "step_ok",
        "seq": rng.randrange(2 ** 31),
        "worker_id": rng.randrange(64),
        "t": rng.random() * 100,
        "windows": windows,
    }
    if rng.random() < 0.3:
        message["collected"] = {
            "type": "collected",
            "worker_id": message["worker_id"],
            "node": {"sim_events": rng.randrange(10 ** 9)},
            "metrics": None,
        }
    if rng.random() < 0.4:
        # Piggybacked live-telemetry frames ride a length-prefixed JSON
        # trailer on the v2 wire; both paths must agree, with or
        # without a collected payload in front.
        message["telemetry"] = [
            fuzz_telemetry_frame(rng) for _ in range(rng.randrange(1, 4))
        ]
    return message


@pytest.mark.parametrize("fuzzer", [fuzz_step, fuzz_step_ok])
def test_wire_v2_roundtrip_matches_v1_fuzzed(fuzzer):
    rng = random.Random(2024)
    for _ in range(200):
        message = fuzzer(rng)
        via_v1 = roundtrip(message, wire_version=1)
        via_v2 = roundtrip(message, wire_version=2)
        assert via_v2 == via_v1, message


def test_wire_v2_frames_are_binary_and_smaller_on_hot_messages():
    rng = random.Random(5)
    message = fuzz_step(rng)
    while not any(w["dispatches"] for w in message["windows"]):
        message = fuzz_step(rng)
    v1 = encode_frame(message, wire_version=1)
    v2 = encode_frame(message, wire_version=2)
    assert v2[4:5] == b"\x00"  # binary magic: never a valid JSON start
    assert v1[4:5] != b"\x00"
    assert len(v2) < len(v1)


def test_wire_v2_leaves_cold_messages_as_json():
    message = {"type": "hello", "worker_id": 3, "wire": ["v1", "v2"]}
    assert encode_frame(message, wire_version=2) == encode_frame(
        message, wire_version=1
    )


def test_truncated_v2_frame_raises_protocol_error():
    from repro.dist.wire import ProtocolError

    message = fuzz_step(random.Random(11))
    body = encode_frame(message, wire_version=2)[4:]
    with pytest.raises(ProtocolError):
        decode_body(body[: len(body) // 2] if len(body) > 20 else body[:5])


# -- DistOptions validation ---------------------------------------------------


def test_dist_options_validates_wire_and_lookahead():
    assert DistOptions(wire="v1").wire == "v1"
    assert DistOptions(lookahead=5).lookahead == 5
    with pytest.raises(ValueError, match="wire"):
        DistOptions(wire="v3")
    with pytest.raises(ValueError, match="lookahead"):
        DistOptions(lookahead=0)
    with pytest.raises(ValueError, match="backoff"):
        DistOptions(backoff_cap_s=0.0)


# -- CLI boundary: --workers / --transport ------------------------------------


def test_workers_out_of_range_is_listed_choices_usage_error():
    from repro.experiments.base import UsageError
    from repro.experiments.cluster_scaleout import ClusterScaleoutConfig
    from repro.experiments.dist_replay import DistReplayConfig

    for bad in (0, -1, 9):
        with pytest.raises(UsageError, match="expected one of"):
            DistReplayConfig(workers=bad, servers=8)
    for bad in (0, -2, 65):
        with pytest.raises(UsageError, match="expected one of"):
            ClusterScaleoutConfig(workers=bad)
    # In-range values construct fine (the per-point cap handles the rest).
    assert DistReplayConfig(workers=4, servers=4).workers == 4
    assert ClusterScaleoutConfig(workers=64).workers == 64


@pytest.mark.parametrize("workers", [0, -1, 9])
def test_cli_workers_out_of_range_exits_2(capsys, workers):
    from repro.experiments.__main__ import main

    code = main(["dist_replay", "--workers", str(workers)])
    assert code == 2
    err = capsys.readouterr().err
    assert "expected one of" in err


def test_cli_transport_threads_to_dist_experiments():
    from repro.experiments.__main__ import main
    from repro.experiments.registry import run_experiment

    result = run_experiment(
        "dist_replay", fast=True, seed=0, workers=2, transport="tcp"
    )
    assert result.dist_info["transport"] == "tcp"
    # Non-dist experiments reject the flag with the usage contract.
    code = main(["hw_cost", "--transport", "tcp"])
    assert code == 2
