"""Tests for the queueing-theory closed forms."""

import math

import pytest

from repro.queueing.theory import (
    erlang_c,
    mg1_mean_wait,
    mm1_mean_wait,
    mm1_wait_percentile,
    mmc_mean_wait,
    mmc_wait_percentile,
    scale_up_advantage,
)


def test_mm1_known_value():
    # rho = 0.5, mu = 1: W_q = 0.5 / 0.5 = 1.
    assert mm1_mean_wait(0.5, 1.0) == pytest.approx(1.0)


def test_mm1_blows_up_near_saturation():
    assert mm1_mean_wait(0.99, 1.0) > mm1_mean_wait(0.9, 1.0) > mm1_mean_wait(0.5, 1.0)


def test_mm1_unstable_rejected():
    with pytest.raises(ValueError):
        mm1_mean_wait(1.0, 1.0)
    with pytest.raises(ValueError):
        mm1_mean_wait(2.0, 1.0)


def test_mm1_percentile_zero_below_idle_mass():
    # rho = 0.5: half of arrivals do not wait at all.
    assert mm1_wait_percentile(0.5, 1.0, 0.5) == 0.0
    assert mm1_wait_percentile(0.5, 1.0, 0.99) > 0.0


def test_mm1_percentile_monotone():
    values = [mm1_wait_percentile(0.8, 1.0, p) for p in (0.5, 0.9, 0.99, 0.999)]
    assert values == sorted(values)


def test_mm1_percentile_closed_form():
    # P(W > t) = rho * exp(-(mu - lambda) t); invert for p99 at rho=0.8.
    lam, mu, p = 0.8, 1.0, 0.99
    t = mm1_wait_percentile(lam, mu, p)
    assert lam / mu * math.exp(-(mu - lam) * t) == pytest.approx(1 - p)


def test_erlang_c_single_server_equals_rho():
    assert erlang_c(1, 0.7) == pytest.approx(0.7)


def test_erlang_c_decreases_with_servers_at_fixed_utilisation():
    # Same per-server utilisation, more servers => lower wait probability.
    one = erlang_c(1, 0.8)
    four = erlang_c(4, 3.2)
    sixteen = erlang_c(16, 12.8)
    assert one > four > sixteen


def test_erlang_c_validation():
    with pytest.raises(ValueError):
        erlang_c(0, 0.5)
    with pytest.raises(ValueError):
        erlang_c(2, 2.0)
    with pytest.raises(ValueError):
        erlang_c(2, -1.0)


def test_mmc_reduces_to_mm1():
    assert mmc_mean_wait(0.6, 1.0, 1) == pytest.approx(mm1_mean_wait(0.6, 1.0))


def test_mmc_percentile_reduces_to_mm1():
    assert mmc_wait_percentile(0.6, 1.0, 1, 0.99) == pytest.approx(
        mm1_wait_percentile(0.6, 1.0, 0.99)
    )


def test_scale_up_beats_scale_out():
    # The theoretical core of the paper's Section II-B argument: one
    # shared M/M/c queue beats c private M/M/1 queues at every load.
    for load in (0.4, 0.6, 0.8, 0.9, 0.95):
        assert scale_up_advantage(load * 4, 1.0, 4) > 1.0
    # With more servers the pooling advantage is larger.
    assert scale_up_advantage(0.8 * 8, 1.0, 8) > scale_up_advantage(0.8 * 2, 1.0, 2)


def test_mg1_deterministic_halves_exponential_wait():
    exponential = mg1_mean_wait(0.5, 1.0, service_scv=1.0)
    deterministic = mg1_mean_wait(0.5, 1.0, service_scv=0.0)
    assert deterministic == pytest.approx(exponential / 2)


def test_mg1_matches_mm1_at_scv_one():
    assert mg1_mean_wait(0.7, 1.0, 1.0) == pytest.approx(mm1_mean_wait(0.7, 1.0))


def test_mg1_validation():
    with pytest.raises(ValueError):
        mg1_mean_wait(0.5, 0.0, 1.0)
    with pytest.raises(ValueError):
        mg1_mean_wait(0.5, 1.0, -0.1)
    with pytest.raises(ValueError):
        mg1_mean_wait(1.1, 1.0, 1.0)


def test_percentile_bounds_rejected():
    with pytest.raises(ValueError):
        mm1_wait_percentile(0.5, 1.0, 0.0)
    with pytest.raises(ValueError):
        mmc_wait_percentile(0.5, 1.0, 2, 1.0)
