"""Tests for the transmit side and bursty traffic."""

import pytest

from repro.core.dataplane import build_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.system import DataPlaneSystem
from repro.sdp.transmit import TxDevice, attach_tx_side
from repro.traffic.bursty import OnOffSource, attach_bursty_traffic


def build_system(**overrides):
    defaults = dict(num_queues=16, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return DataPlaneSystem(SDPConfig(**defaults))


def run_hp(system, load=0.4, duration=0.01, bursty=False, burstiness=4.0):
    build_hyperplane(system)
    if bursty:
        attach_bursty_traffic(system, load=load, burstiness=burstiness)
    else:
        system.attach_open_loop(load=load)
    system.run(duration=duration, warmup=0.0005)
    return system


# -- transmit side ------------------------------------------------------------------


def test_tx_side_transmits_completed_items():
    system = build_system()
    tx = attach_tx_side(system, num_devices=2)
    run_hp(system)
    assert system.metrics.completed > 100
    assert tx.transmitted >= system.metrics.completed - 4  # in-flight tail
    assert tx.dropped == 0


def test_tx_wire_latency_exceeds_dataplane_latency():
    system = build_system(service_scv=0.0)
    tx = attach_tx_side(system, num_devices=1)
    run_hp(system, load=0.2)
    assert tx.wire_latency.mean > system.metrics.latency.mean


def test_tx_backpressure_drops_when_wire_is_slow():
    # Line rate far below processing rate: the ring fills and drops.
    system = build_system()
    tx = attach_tx_side(
        system, num_devices=1, line_rate_items_per_s=5e4, ring_capacity=8
    )
    run_hp(system, load=0.8, duration=0.01)
    assert tx.dropped > 0
    # The wire transmitted at (approximately) line rate.
    duration = system.metrics.measure_end
    assert tx.transmitted <= 5e4 * duration * 1.2


def test_tx_queues_sliced_across_devices():
    system = build_system(num_queues=16)
    tx = attach_tx_side(system, num_devices=4)
    run_hp(system)
    assert all(device.transmitted > 0 for device in tx.devices)


def test_tx_validation():
    system = build_system()
    with pytest.raises(ValueError):
        attach_tx_side(system, num_devices=0)
    with pytest.raises(ValueError):
        TxDevice(system, 0, line_rate_items_per_s=0.0, ring_capacity=4)
    with pytest.raises(ValueError):
        TxDevice(system, 0, line_rate_items_per_s=1e6, ring_capacity=0)


# -- bursty traffic --------------------------------------------------------------------


def test_bursty_mean_rate_matches_target():
    system = build_system(num_queues=8)
    generator = attach_bursty_traffic(system, load=0.5, burstiness=4.0)
    build_hyperplane(system)
    metrics = system.run(duration=0.05, warmup=0.0)
    target_rate = 0.5 / system.config.workload.mean_service_seconds
    observed_rate = generator.generated / metrics.measure_end
    assert observed_rate == pytest.approx(target_rate, rel=0.25)


def test_bursty_completes_work():
    system = build_system()
    attach_bursty_traffic(system, load=0.4, burstiness=6.0)
    build_hyperplane(system)
    metrics = system.run(duration=0.02, warmup=0.001)
    assert metrics.latency.count > 200


def test_burstiness_one_is_plain_poisson():
    system = build_system(num_queues=4)
    generator = attach_bursty_traffic(system, load=0.3, burstiness=1.0)
    for source in generator.sources:
        assert source.mean_off == 0.0  # always on


def test_burstier_traffic_has_worse_tails():
    def p99(burstiness):
        system = build_system(num_queues=32, seed=9)
        attach_bursty_traffic(system, load=0.6, burstiness=burstiness)
        build_hyperplane(system)
        return system.run(
            duration=0.2, warmup=0.002, target_completions=8000
        ).latency.p99_us

    assert p99(8.0) > 1.3 * p99(1.0)


def test_onoff_source_validation():
    system = build_system(num_queues=1)
    with pytest.raises(ValueError):
        OnOffSource(
            system.sim, system.queues[0], mean_rate=-1.0, burstiness=2.0,
            on_fraction=0.5, mean_on_seconds=1e-4,
            service_sampler=lambda: 1e-6, rng=None,
        )
    with pytest.raises(ValueError):
        OnOffSource(
            system.sim, system.queues[0], mean_rate=1.0, burstiness=0.5,
            on_fraction=0.5, mean_on_seconds=1e-4,
            service_sampler=lambda: 1e-6, rng=None,
        )
