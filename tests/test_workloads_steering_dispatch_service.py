"""Tests for packet steering, request dispatching, and service models."""

import random
import statistics

import pytest

from repro.workloads.dispatch import Request, RequestDispatcher, RequestType, RpcCall
from repro.workloads.service import ServiceTimeModel, WORKLOADS, workload_by_name
from repro.workloads.steering import PacketSteerer, five_tuple_hash, fnv1a_64


def flow(i):
    return (0x0A000000 + i, 0x0A010000 + i, 1000 + i, 443, 6)


# -- steering -----------------------------------------------------------------


def test_session_affinity_is_stable():
    steerer = PacketSteerer(num_workers=8)
    workers = [steerer.steer(flow(5)) for _ in range(10)]
    assert len(set(workers)) == 1
    assert steerer.stats.hits == 9
    assert steerer.stats.misses == 1


def test_flows_spread_over_workers():
    steerer = PacketSteerer(num_workers=8)
    assignments = {steerer.steer(flow(i)) for i in range(500)}
    assert assignments == set(range(8))


def test_table_eviction_fifo():
    steerer = PacketSteerer(num_workers=4, table_capacity=3)
    for i in range(4):
        steerer.steer(flow(i))
    assert steerer.stats.evictions == 1
    assert steerer.session_count == 3
    # Oldest flow was evicted: re-steering it is a miss.
    steerer.steer(flow(0))
    assert steerer.stats.misses == 5


def test_rebalance_drops_stale_affinities():
    steerer = PacketSteerer(num_workers=8)
    for i in range(100):
        steerer.steer(flow(i))
    steerer.rebalance(2)
    assert all(w < 2 for w in (steerer.steer(flow(i)) for i in range(100)))


def test_five_tuple_hash_sensitivity():
    assert five_tuple_hash(flow(1)) != five_tuple_hash(flow(2))
    base = (1, 2, 3, 4, 6)
    assert five_tuple_hash(base) != five_tuple_hash((1, 2, 3, 4, 17))


def test_fnv1a_known_vector():
    # Standard FNV-1a 64-bit test vector.
    assert fnv1a_64(b"") == 0xCBF29CE484222325
    assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C


def test_steerer_validation():
    with pytest.raises(ValueError):
        PacketSteerer(0)
    with pytest.raises(ValueError):
        PacketSteerer(2, table_capacity=0)
    with pytest.raises(ValueError):
        PacketSteerer(2).rebalance(0)


# -- dispatching ----------------------------------------------------------------


def test_request_wire_roundtrip():
    request = Request(RequestType.PUT, tenant_id=42, request_id=7, body=b"value")
    assert Request.from_bytes(request.to_bytes()) == request


def test_dispatch_routes_by_type_and_tenant():
    dispatcher = RequestDispatcher(shards_per_tier=8)
    call = dispatcher.dispatch(Request(RequestType.GET, 10, 1, b"k").to_bytes())
    assert isinstance(call, RpcCall)
    assert call.target_tier == "cache-tier"
    assert call.target_shard == 10 % 8
    assert call.method == "get"
    put = dispatcher.dispatch(Request(RequestType.PUT, 10, 2).to_bytes())
    assert put.target_tier == "storage-tier"
    assert dispatcher.dispatched_by_type[RequestType.GET] == 1


def test_dispatch_same_tenant_same_shard():
    dispatcher = RequestDispatcher()
    calls = [
        dispatcher.dispatch(Request(t, 99, i).to_bytes())
        for i, t in enumerate(RequestType)
    ]
    assert len({c.target_shard for c in calls}) == 1


def test_dispatch_rejects_garbage():
    dispatcher = RequestDispatcher()
    with pytest.raises(ValueError, match="magic"):
        dispatcher.dispatch(b"\x00" * 16)
    with pytest.raises(ValueError, match="truncated"):
        dispatcher.dispatch(b"\x00")
    bad_type = bytearray(Request(RequestType.GET, 1, 1).to_bytes())
    bad_type[3] = 99
    with pytest.raises(ValueError, match="unknown request type"):
        dispatcher.dispatch(bytes(bad_type))
    assert dispatcher.parse_errors == 3


def test_dispatch_batch_counts_errors():
    dispatcher = RequestDispatcher()
    wires = [Request(RequestType.SCAN, 1, i).to_bytes() for i in range(3)]
    wires.insert(1, b"junk-junk-junk-junk")
    calls, errors = dispatcher.dispatch_batch(wires)
    assert len(calls) == 3
    assert errors == 1


def test_dispatcher_validation():
    with pytest.raises(ValueError):
        RequestDispatcher(shards_per_tier=0)


# -- service-time models ----------------------------------------------------------


def test_all_six_workloads_registered():
    assert len(WORKLOADS) == 6
    for spec in WORKLOADS.values():
        assert spec.mean_service_us > 0
        assert spec.saturation_rate == pytest.approx(1e6 / spec.mean_service_us)


def test_workload_aliases():
    assert workload_by_name("encap").name == "packet-encapsulation"
    assert workload_by_name("CRYPTO").name == "crypto-forwarding"
    assert workload_by_name("raid_protection").name == "raid-protection"
    with pytest.raises(ValueError):
        workload_by_name("nope")


def test_exponential_sampler_mean():
    model = ServiceTimeModel(workload_by_name("encap"), random.Random(0))
    samples = [model() for _ in range(20000)]
    assert statistics.mean(samples) == pytest.approx(1.4e-6, rel=0.05)


def test_deterministic_sampler():
    model = ServiceTimeModel(workload_by_name("encap"), random.Random(0), scv=0.0)
    assert model() == model() == pytest.approx(1.4e-6)


def test_erlang_sampler_reduces_variance():
    spec = workload_by_name("crypto")
    exponential = ServiceTimeModel(spec, random.Random(1), scv=1.0)
    erlang = ServiceTimeModel(spec, random.Random(1), scv=0.25)
    exp_samples = [exponential() for _ in range(5000)]
    erl_samples = [erlang() for _ in range(5000)]
    assert statistics.pstdev(erl_samples) < statistics.pstdev(exp_samples)
    assert statistics.mean(erl_samples) == pytest.approx(spec.mean_service_seconds, rel=0.1)


def test_hyperexponential_sampler_matches_mean_and_raises_variance():
    spec = workload_by_name("encap")
    model = ServiceTimeModel(spec, random.Random(2), scv=4.0)
    samples = [model() for _ in range(40000)]
    mean = statistics.mean(samples)
    assert mean == pytest.approx(spec.mean_service_seconds, rel=0.1)
    scv = statistics.pvariance(samples) / mean**2
    assert scv > 2.0


def test_negative_scv_rejected():
    with pytest.raises(ValueError):
        ServiceTimeModel(workload_by_name("encap"), random.Random(0), scv=-1.0)


# -- Toeplitz RSS hash -------------------------------------------------------------


def test_toeplitz_is_linear_over_gf2():
    from repro.workloads.steering import toeplitz_hash

    rng = random.Random(3)
    for _ in range(50):
        a = bytes(rng.randrange(256) for _ in range(13))
        b = bytes(rng.randrange(256) for _ in range(13))
        xored = bytes(x ^ y for x, y in zip(a, b))
        assert toeplitz_hash(xored) == toeplitz_hash(a) ^ toeplitz_hash(b)


def test_toeplitz_single_bit_selects_key_window():
    from repro.workloads.steering import RSS_DEFAULT_KEY, toeplitz_hash

    # Input with only the top bit set hashes to the key's first 32 bits.
    data = b"\x80" + b"\x00" * 12
    expected = int.from_bytes(RSS_DEFAULT_KEY[:4], "big")
    assert toeplitz_hash(data) == expected
    # Bit at position 8 selects the window starting one byte in.
    data = b"\x00\x80" + b"\x00" * 11
    window = int.from_bytes(RSS_DEFAULT_KEY[1:5], "big")
    assert toeplitz_hash(data) == window


def test_toeplitz_zero_input_hashes_to_zero():
    from repro.workloads.steering import toeplitz_hash

    assert toeplitz_hash(bytes(13)) == 0


def test_toeplitz_key_length_validation():
    from repro.workloads.steering import toeplitz_hash

    with pytest.raises(ValueError):
        toeplitz_hash(bytes(13), key=bytes(8))


def test_steerer_with_toeplitz_algorithm():
    steerer = PacketSteerer(num_workers=8, algorithm="toeplitz")
    first = steerer.steer(flow(1))
    assert steerer.steer(flow(1)) == first
    spread = {steerer.steer(flow(i)) for i in range(300)}
    assert len(spread) == 8


def test_steerer_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        PacketSteerer(num_workers=2, algorithm="md5")
    with pytest.raises(ValueError):
        five_tuple_hash(flow(0), algorithm="md5")
