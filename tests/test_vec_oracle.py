"""Vec-vs-event agreement on the documented tolerance contract.

These tests CI-enforce the statistical-twin contract in
:mod:`repro.vec.oracle`: on a seeded grid covering all four traffic
shapes, the vec backend's throughput and latency must track the exact
event simulator within the documented relative tolerances. They are the
reason the tolerances can be trusted enough to publish surrogate-backed
numbers.
"""

import pytest

from repro.vec import numpy_available

np = pytest.importorskip("numpy")

from repro.vec.arrays import SweepPoint  # noqa: E402
from repro.vec.backend import latency_grid, peak_grid  # noqa: E402
from repro.vec.oracle import (  # noqa: E402
    MEAN_LATENCY_RTOL,
    P99_RTOL,
    THROUGHPUT_RTOL,
    TOLERANCES,
    oracle_sample_indices,
    simulate_point_exact,
)

SEED = 0
SHAPES = ("FB", "PC", "NC", "SQ")


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


def test_tolerance_table_is_the_documented_contract():
    assert TOLERANCES == {
        "throughput_mtps": THROUGHPUT_RTOL,
        "p99_us": P99_RTOL,
        "mean_us": MEAN_LATENCY_RTOL,
    }
    # Loosening these is an API-contract change; docs/vectorized.md and
    # the module docstring must move with them.
    assert THROUGHPUT_RTOL == 0.12
    assert P99_RTOL == 0.50
    assert MEAN_LATENCY_RTOL == 0.35


def test_closed_loop_throughput_matches_event_on_all_shapes():
    points = [
        SweepPoint("packet-encapsulation", shape, 200, mechanism=mechanism)
        for shape in SHAPES
        for mechanism in ("spinning", "hyperplane")
    ]
    vec = peak_grid(points, seed=SEED)
    for point, predicted in zip(points, vec):
        exact = simulate_point_exact(point, seed=SEED)["throughput_mtps"]
        assert _rel(float(predicted), exact) <= THROUGHPUT_RTOL, (
            f"{point.shape}/{point.mechanism}: vec {predicted:.4f} vs "
            f"event {exact:.4f} Mtps"
        )


def test_open_loop_latency_matches_event_on_all_shapes():
    """Seeded open-loop agreement grid, all four shapes, both mechanisms.

    FB/PC/NC run the calibrated Fig. 10 organisation (4 cores, 400
    queues). SQ concentrates all traffic on one queue, and a spinning
    core is a 1-limited polling server — its ring-walk time caps the hot
    queue's service rate, so SQ+spinning saturates at any Fig. 10-sized
    load and both backends would only measure run-length-dependent
    transients. Those lanes instead run small stable points (few queues,
    light load), where the polling model is in steady state; SQ coverage
    at scale stays with HyperPlane (stable) and the closed-loop
    throughput grid above.
    """
    points = [
        SweepPoint(
            "packet-encapsulation", shape, 400,
            mechanism=mechanism, num_cores=4, load=load,
        )
        for shape in ("FB", "PC", "NC")
        for mechanism in ("spinning", "hyperplane")
        for load in (0.3, 0.5)
    ]
    points += [
        SweepPoint(
            "packet-encapsulation", "SQ", 400,
            mechanism="hyperplane", num_cores=4, load=load,
        )
        for load in (0.3, 0.5)
    ]
    points += [
        SweepPoint("packet-encapsulation", "SQ", 64, mechanism="spinning", load=0.08),
        SweepPoint("packet-encapsulation", "SQ", 32, mechanism="spinning", load=0.10),
    ]
    assert {(p.shape, p.mechanism) for p in points} == {
        (shape, mechanism)
        for shape in SHAPES
        for mechanism in ("spinning", "hyperplane")
    }
    res = latency_grid(points, seed=SEED)
    for i, point in enumerate(points):
        exact = simulate_point_exact(point, seed=SEED, target_completions=3000)
        assert _rel(float(res.p99_us[i]), exact["p99_us"]) <= P99_RTOL, (
            f"{point.shape}/{point.mechanism} p99: vec {res.p99_us[i]:.1f} "
            f"vs event {exact['p99_us']:.1f} us"
        )
        assert _rel(float(res.mean_us[i]), exact["mean_us"]) <= MEAN_LATENCY_RTOL, (
            f"{point.shape}/{point.mechanism} mean: vec {res.mean_us[i]:.1f} "
            f"vs event {exact['mean_us']:.1f} us"
        )


def test_simulate_point_exact_reports_all_contract_metrics():
    point = SweepPoint("packet-encapsulation", "FB", 50, load=0.4)
    exact = simulate_point_exact(point, seed=SEED, target_completions=500)
    assert set(exact) == set(TOLERANCES)
    assert all(value > 0 for value in exact.values())


def test_oracle_sample_indices_deterministic_and_seed_sensitive():
    a = oracle_sample_indices(100, samples=5, seed=1)
    b = oracle_sample_indices(100, samples=5, seed=1)
    c = oracle_sample_indices(100, samples=5, seed=2)
    assert a == b and a != c
    assert a == sorted(a) and len(set(a)) == 5
    assert all(0 <= i < 100 for i in a)
    # More samples than points clamps, never repeats.
    assert sorted(oracle_sample_indices(3, samples=10)) == [0, 1, 2]
    with pytest.raises(ValueError):
        oracle_sample_indices(0)


def test_numpy_gate_is_why_these_tests_can_skip():
    assert numpy_available()
