"""Tests for the Programmable Priority Arbiter models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppa import brent_kung_ppa, ppa_select, ripple_ppa


def one_hot(index):
    return 1 << index


def test_select_first_ready_at_priority():
    select, _ = ripple_ppa(ready=0b0100, priority=one_hot(2), width=4)
    assert select == 0b0100


def test_select_propagates_past_unready_bits():
    select, delay = ripple_ppa(ready=0b1000, priority=one_hot(1), width=4)
    assert select == 0b1000
    assert delay == 3  # rippled through bits 1, 2, 3


def test_wraparound():
    select, _ = ripple_ppa(ready=0b0001, priority=one_hot(2), width=4)
    assert select == 0b0001


def test_nothing_ready_selects_zero():
    for ppa in (ripple_ppa, brent_kung_ppa):
        select, _ = ppa(0, one_hot(1), 8)
        assert select == 0
    assert ppa_select(0, one_hot(1), 8) == 0


def test_zero_priority_treated_as_bit0():
    select, _ = ripple_ppa(0b0110, 0, 4)
    assert select == 0b0010
    assert ppa_select(0b0110, 0, 4) == 0b0010


def test_input_validation():
    with pytest.raises(ValueError):
        ripple_ppa(1 << 8, one_hot(0), 8)  # ready too wide
    with pytest.raises(ValueError):
        brent_kung_ppa(1, 0b0110, 8)  # priority not one-hot
    with pytest.raises(ValueError):
        ppa_select(1, 1, 0)  # zero width


def test_brent_kung_delay_is_logarithmic():
    _, delay_64 = brent_kung_ppa(one_hot(63), one_hot(0), 64)
    _, delay_1024 = brent_kung_ppa(one_hot(1023), one_hot(0), 1024)
    # 2 log2 n + fixed stages.
    assert delay_64 <= 2 * 6 + 3
    assert delay_1024 <= 2 * 10 + 3
    # Ripple through the same width is linear: far worse.
    _, ripple_delay = ripple_ppa(one_hot(1023), one_hot(0), 1024)
    assert ripple_delay == 1024
    assert delay_1024 < ripple_delay / 10


def test_round_robin_coverage_by_rotating_priority():
    # Rotating the priority after each grant must cycle through all
    # ready requesters (the fairness property round robin needs).
    width = 8
    ready = 0b10110101
    priority = 1
    granted = []
    for _ in range(bin(ready).count("1")):
        select, _ = brent_kung_ppa(ready, priority, width)
        index = select.bit_length() - 1
        granted.append(index)
        ready &= ~select
        priority = one_hot((index + 1) % width)
    assert sorted(granted) == [0, 2, 4, 5, 7]


@settings(max_examples=300, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_property_all_three_implementations_agree(width, data):
    ready = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    position = data.draw(st.integers(min_value=0, max_value=width - 1))
    priority = 1 << position
    ripple_result, _ = ripple_ppa(ready, priority, width)
    bk_result, _ = brent_kung_ppa(ready, priority, width)
    fast_result = ppa_select(ready, priority, width)
    assert ripple_result == bk_result == fast_result


@settings(max_examples=200, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_property_select_is_valid(width, data):
    ready = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    position = data.draw(st.integers(min_value=0, max_value=width - 1))
    select = ppa_select(ready, 1 << position, width)
    if ready == 0:
        assert select == 0
    else:
        # One-hot, a subset of ready, and the *first* ready bit at or
        # after the priority position in circular order.
        assert select & (select - 1) == 0
        assert select & ready == select
        distance = ((select.bit_length() - 1) - position) % width
        for skipped in range(distance):
            assert not ready & (1 << ((position + skipped) % width))
