"""Unit tests for repro.cluster: balancer, links, faults, metrics, rack."""

import random

import pytest

from repro.cluster import (
    POLICIES,
    PROFILES,
    AllServersDownError,
    ClusterConfig,
    ClusterMetrics,
    FaultEvent,
    HashRing,
    Link,
    LoadBalancer,
    Rack,
    fault_schedule,
    flow_weights,
    run_cluster,
)
from repro.cluster.faults import (
    LINK_DEGRADE_MAGNITUDE,
    STRAGGLER_MAGNITUDE,
    WINDOW_LENGTH_FRACTION,
    WINDOW_START_FRACTION,
)


def make_balancer(policy, num_servers=4, seed=0):
    return LoadBalancer(policy, num_servers, rng=random.Random(seed), seed=seed)


# -- consistent hashing ------------------------------------------------------


def test_hash_ring_is_deterministic_and_total():
    ring = HashRing(num_servers=4, seed=7)
    again = HashRing(num_servers=4, seed=7)
    live = [True] * 4
    for flow in range(200):
        key = ring.key(flow, seed=7)
        assert ring.lookup(key, live) == again.lookup(key, live)
        assert 0 <= ring.lookup(key, live) < 4


def test_hash_ring_failure_moves_only_the_victims_arc():
    ring = HashRing(num_servers=4, seed=3)
    all_up = [True] * 4
    without_2 = [True, True, False, True]
    moved = kept = 0
    for flow in range(500):
        key = ring.key(flow, seed=3)
        before = ring.lookup(key, all_up)
        after = ring.lookup(key, without_2)
        if before == 2:
            assert after != 2
            moved += 1
        else:
            assert after == before
            kept += 1
    assert moved > 0 and kept > 0


def test_hash_ring_all_down_raises():
    ring = HashRing(num_servers=2, seed=0)
    with pytest.raises(AllServersDownError):
        ring.lookup(ring.key(0), [False, False])


def test_hash_ring_validates():
    with pytest.raises(ValueError):
        HashRing(num_servers=0)
    with pytest.raises(ValueError):
        HashRing(num_servers=2, vnodes=0)


# -- balancer policies -------------------------------------------------------


def test_rss_is_sticky_and_resteers_on_failure():
    balancer = make_balancer("rss")
    homes = {flow: balancer.dispatch(flow) for flow in range(64)}
    for flow, home in homes.items():
        assert balancer.dispatch(flow) == home
    victim = homes[0]
    orphans = balancer.mark_down(victim)
    assert set(orphans) == {f for f, home in homes.items() if home == victim}
    moved = balancer.dispatch(0)
    assert moved != victim
    assert balancer.resteers == 0  # orphans were evicted, not resteered
    balancer.mark_up(victim)
    assert balancer.dispatch(0) == victim  # rehashes to its ring home


def test_round_robin_rotates_over_live_servers():
    balancer = make_balancer("round-robin", num_servers=3)
    picks = [balancer.dispatch(flow=0) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    balancer.mark_down(1)
    picks = [balancer.dispatch(flow=0) for _ in range(4)]
    assert 1 not in picks and set(picks) == {0, 2}


def test_least_loaded_joins_the_shortest_queue():
    balancer = make_balancer("least-loaded", num_servers=3)
    balancer.outstanding = [5, 2, 9]
    assert balancer.server_for(flow=0) == 1
    balancer.outstanding = [2, 2, 9]
    assert balancer.server_for(flow=0) == 0  # id breaks the tie


def test_p2c_prefers_the_less_loaded_of_two():
    balancer = make_balancer("p2c", num_servers=8, seed=1)
    balancer.outstanding = [100] * 8
    balancer.outstanding[3] = 0
    picks = [balancer.server_for(flow=0) for _ in range(200)]
    # Whenever server 3 is sampled it wins; it is sampled often.
    assert picks.count(3) > 20
    assert all(balancer.outstanding[p] in (0, 100) for p in picks)


def test_outstanding_accounting_clamps_at_zero():
    balancer = make_balancer("p2c", num_servers=2)
    server = balancer.dispatch(flow=0)
    assert balancer.outstanding[server] == 1
    balancer.complete(server)
    balancer.complete(server)  # stale double-complete
    assert balancer.outstanding[server] == 0
    assert balancer.load_shares() == [0.0, 0.0]


def test_all_servers_down_raises():
    balancer = make_balancer("round-robin", num_servers=2)
    balancer.mark_down(0)
    balancer.mark_down(1)
    with pytest.raises(AllServersDownError):
        balancer.dispatch(flow=0)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        make_balancer("random")


# -- links -------------------------------------------------------------------


def test_link_serialization_and_propagation():
    link = Link(gbps=10.0, propagation_s=2e-6)
    # 1250 bytes = 10_000 bits at 10 Gb/s -> 1 us serialization.
    assert link.serialization_delay(1250) == pytest.approx(1e-6)
    assert link.transfer_delay(0.0, 1250) == pytest.approx(3e-6)
    # Back-to-back transfer at the same instant queues behind the first.
    assert link.transfer_delay(0.0, 1250) == pytest.approx(4e-6)
    assert link.requests == 2 and link.bytes_sent == 2500


def test_link_degrade_slows_everything():
    link = Link(gbps=10.0, propagation_s=2e-6)
    link.degrade = 10.0
    assert link.transfer_delay(0.0, 1250) == pytest.approx(10e-6 + 20e-6)


# -- fault schedules ---------------------------------------------------------


def test_fault_profiles_have_expected_shape():
    rng = random.Random(0)
    assert fault_schedule("none", 4, 1.0, rng) == []
    (crash,) = fault_schedule("crash", 4, 1.0, random.Random(0))
    assert crash.kind == "crash" and 0 <= crash.server < 4
    assert crash.time == pytest.approx(WINDOW_START_FRACTION)
    assert crash.duration == pytest.approx(WINDOW_LENGTH_FRACTION)
    (straggler,) = fault_schedule("straggler", 4, 1.0, random.Random(0))
    assert straggler.magnitude == STRAGGLER_MAGNITUDE
    (degrade,) = fault_schedule("link-degrade", 4, 1.0, random.Random(0))
    assert degrade.magnitude == LINK_DEGRADE_MAGNITUDE
    assert degrade.end_time == pytest.approx(degrade.time + degrade.duration)


def test_crash_profile_degenerates_for_one_server():
    assert fault_schedule("crash", 1, 1.0, random.Random(0)) == []


def test_fault_schedule_validates():
    with pytest.raises(ValueError):
        fault_schedule("meteor", 4, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        fault_schedule("crash", 4, 0.0, random.Random(0))
    with pytest.raises(ValueError):
        FaultEvent(time=0.1, kind="crash", server=0, duration=0.0)
    with pytest.raises(ValueError):
        FaultEvent(time=0.1, kind="meteor", server=0, duration=0.1)


# -- metrics -----------------------------------------------------------------


def test_cluster_metrics_warmup_and_quantiles():
    metrics = ClusterMetrics(num_servers=2, warmup_time=1.0)
    metrics.record(now=0.5, latency=99.0, server=0)  # warm-up: dropped
    for i in range(1, 101):
        metrics.record(now=1.0 + i, latency=i * 1e-6, server=i % 2)
    assert metrics.count == 100
    assert metrics.p50_us == pytest.approx(50.0, rel=0.1)
    assert metrics.p99_us >= metrics.p50_us
    assert metrics.p999_us >= metrics.p99_us
    assert metrics.hottest_share == pytest.approx(0.5)
    summary = metrics.summary()
    assert summary["completed"] == 100.0
    assert summary["p99_latency_us"] == metrics.p99_us


def test_cluster_metrics_fingerprint_distinguishes_runs():
    a = ClusterMetrics(num_servers=1)
    b = ClusterMetrics(num_servers=1)
    for metrics in (a, b):
        metrics.record(0.0, 1e-6, 0)
    assert a.fingerprint() == b.fingerprint()
    b.record(0.0, 2e-6, 0)
    assert a.fingerprint() != b.fingerprint()


# -- configuration -----------------------------------------------------------


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_servers=0)
    with pytest.raises(ValueError):
        ClusterConfig(num_servers=2, notification="polling")
    with pytest.raises(ValueError):
        ClusterConfig(num_servers=2, balancer="random")
    with pytest.raises(ValueError):
        ClusterConfig(num_servers=2, fault_profile="meteor")
    with pytest.raises(ValueError):
        ClusterConfig(num_servers=2, flow_skew=-1.0)


def test_server_configs_get_distinct_derived_seeds():
    config = ClusterConfig(num_servers=4, seed=5)
    seeds = {config.server_config(i).seed for i in range(4)}
    assert len(seeds) == 4
    assert config.server_config(0).seed == ClusterConfig(
        num_servers=4, seed=5
    ).server_config(0).seed
    with pytest.raises(ValueError):
        config.server_config(4)


def test_flow_weights_shape():
    assert flow_weights(3, 0.0) == [1.0, 1.0, 1.0]
    weights = flow_weights(4, 1.0)
    assert weights == sorted(weights, reverse=True)
    with pytest.raises(ValueError):
        flow_weights(0, 0.0)
    with pytest.raises(ValueError):
        flow_weights(4, -0.5)


# -- rack integration --------------------------------------------------------


def small_config(**overrides):
    base = dict(
        num_servers=2,
        notification="hyperplane",
        balancer="p2c",
        queues_per_server=64,
        num_flows=32,
        flow_skew=0.3,
        seed=9,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def test_rack_runs_and_checks_invariants():
    rack = run_cluster(
        small_config(), load=0.2, duration=0.005, warmup=0.001,
        target_completions=500,
    )
    metrics = rack.metrics
    assert metrics.count >= 500
    assert metrics.p99_us > 0
    assert sum(metrics.per_server_completed) == metrics.count
    assert rack.generated >= metrics.count


def test_rack_same_seed_is_bit_identical():
    def fingerprint():
        rack = run_cluster(
            small_config(fault_profile="crash"), load=0.2,
            duration=0.005, warmup=0.001, target_completions=500,
        )
        return rack.metrics.fingerprint()

    assert fingerprint() == fingerprint()


def test_rack_different_seed_differs():
    def fingerprint(seed):
        rack = run_cluster(
            small_config(seed=seed), load=0.2, duration=0.005,
            warmup=0.001, target_completions=500,
        )
        return rack.metrics.fingerprint()

    assert fingerprint(1) != fingerprint(2)


def test_crash_reverts_and_accounts_for_failover():
    rack = run_cluster(
        small_config(fault_profile="crash", notification="spinning"),
        load=0.3, duration=0.01, warmup=0.002,
    )
    assert len(rack.controller.applied) == 1
    assert len(rack.controller.reverted) == 1
    victim = rack.controller.applied[0][1].server
    assert rack.servers[victim].up  # restarted by the revert
    # Every generated request is accounted for: completed (including
    # warm-up), lost, or still in flight when the run ended.
    completed = sum(server.completed_ok for server in rack.servers)
    accounted = completed + rack.metrics.lost
    assert accounted <= rack.generated
    assert rack.generated - accounted < 100


def test_straggler_inflates_victim_service_and_reverts():
    rack = Rack(small_config(fault_profile="straggler"))
    rack.attach_open_loop(load=0.2)
    rack.run(duration=0.004, warmup=0.001)
    assert len(rack.controller.applied) == 1
    victim = rack.controller.applied[0][1].server
    assert rack.servers[victim].slow_factor == 1.0  # reverted by run end


def test_attach_open_loop_validates():
    rack = Rack(small_config())
    with pytest.raises(ValueError):
        rack.attach_open_loop()
    with pytest.raises(ValueError):
        rack.attach_open_loop(load=0.2, rate=1e6)
    rack.attach_open_loop(load=0.2)
    with pytest.raises(RuntimeError):
        rack.attach_open_loop(load=0.2)


def test_policy_and_profile_tuples_are_exported():
    assert set(POLICIES) == {"rss", "round-robin", "least-loaded", "p2c"}
    assert set(PROFILES) == {"none", "crash", "straggler", "link-degrade"}
