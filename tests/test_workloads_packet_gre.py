"""Tests for packet formats and GRE encapsulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.encapsulation import (
    ETHERTYPE_IPV4,
    build_gre_header,
    gre_decapsulate,
    gre_encapsulate,
    parse_gre_header,
)
from repro.workloads.packet import (
    IPV4_HEADER_LEN,
    IPV6_HEADER_LEN,
    Ipv4Packet,
    Ipv6Packet,
    PROTO_GRE,
    ipv4_header_checksum,
)


def test_ipv4_roundtrip():
    packet = Ipv4Packet(src=0x0A000001, dst=0x0A000002, payload=b"hello")
    parsed = Ipv4Packet.from_bytes(packet.to_bytes())
    assert parsed == packet


def test_ipv4_checksum_verifies_to_zero():
    packet = Ipv4Packet(src=1, dst=2, payload=b"x")
    header = packet.to_bytes()[:IPV4_HEADER_LEN]
    assert ipv4_header_checksum(header) == 0


def test_ipv4_corruption_detected():
    data = bytearray(Ipv4Packet(src=1, dst=2, payload=b"x").to_bytes())
    data[8] ^= 0xFF  # flip TTL
    with pytest.raises(ValueError, match="checksum"):
        Ipv4Packet.from_bytes(bytes(data))


def test_ipv4_validation():
    with pytest.raises(ValueError):
        Ipv4Packet(src=1 << 32, dst=0)
    with pytest.raises(ValueError):
        Ipv4Packet(src=0, dst=0, protocol=300)
    with pytest.raises(ValueError):
        Ipv4Packet.from_bytes(b"\x45" + b"\x00" * 10)  # truncated


def test_ipv6_roundtrip():
    packet = Ipv6Packet(
        src=1 << 120, dst=2, next_header=17, flow_label=0xABCDE, payload=b"data"
    )
    parsed = Ipv6Packet.from_bytes(packet.to_bytes())
    assert parsed == packet


def test_ipv6_validation():
    with pytest.raises(ValueError):
        Ipv6Packet(src=1 << 128, dst=0)
    with pytest.raises(ValueError):
        Ipv6Packet(src=0, dst=0, flow_label=1 << 20)
    with pytest.raises(ValueError):
        Ipv6Packet.from_bytes(b"\x60" + b"\x00" * 8)


def test_ipv6_version_check():
    data = bytearray(Ipv6Packet(src=0, dst=0).to_bytes())
    data[0] = 0x40  # version 4
    with pytest.raises(ValueError, match="IPv6"):
        Ipv6Packet.from_bytes(bytes(data))


def test_gre_header_format():
    header = build_gre_header()
    assert len(header) == 4
    assert parse_gre_header(header) == ETHERTYPE_IPV4


def test_gre_rejects_checksum_flag_and_version():
    with pytest.raises(ValueError, match="checksum"):
        parse_gre_header(b"\x80\x00\x08\x00")
    with pytest.raises(ValueError, match="version"):
        parse_gre_header(b"\x00\x01\x08\x00")
    with pytest.raises(ValueError, match="truncated"):
        parse_gre_header(b"\x00")


def test_encapsulation_structure():
    inner = Ipv4Packet(src=0xC0A80001, dst=0xC0A80002, payload=b"payload")
    outer = gre_encapsulate(inner, tunnel_src=0xFE80 << 112, tunnel_dst=1)
    assert outer.next_header == PROTO_GRE
    wire = outer.to_bytes()
    assert len(wire) == IPV6_HEADER_LEN + 4 + inner.total_length


def test_decapsulation_roundtrip():
    inner = Ipv4Packet(src=1, dst=2, payload=b"abc" * 100)
    outer = gre_encapsulate(inner, tunnel_src=10, tunnel_dst=20)
    recovered = gre_decapsulate(Ipv6Packet.from_bytes(outer.to_bytes()))
    assert recovered == inner


def test_decapsulate_rejects_non_gre():
    packet = Ipv6Packet(src=0, dst=0, next_header=17, payload=b"\x00" * 8)
    with pytest.raises(ValueError, match="not GRE"):
        gre_decapsulate(packet)


def test_decapsulate_rejects_non_ipv4_inner():
    packet = Ipv6Packet(
        src=0, dst=0, next_header=PROTO_GRE, payload=b"\x00\x00\x86\xdd" + b"\x00" * 40
    )
    with pytest.raises(ValueError, match="not IPv4"):
        gre_decapsulate(packet)


@settings(max_examples=60, deadline=None)
@given(
    src=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst=st.integers(min_value=0, max_value=(1 << 32) - 1),
    ttl=st.integers(min_value=0, max_value=255),
    payload=st.binary(max_size=512),
)
def test_property_gre_tunnel_roundtrip(src, dst, ttl, payload):
    inner = Ipv4Packet(src=src, dst=dst, ttl=ttl, payload=payload)
    outer = gre_encapsulate(inner, tunnel_src=src, tunnel_dst=dst)
    assert gre_decapsulate(Ipv6Packet.from_bytes(outer.to_bytes())) == inner
