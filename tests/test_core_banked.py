"""Tests for the banked monitoring set and driver-side spreading."""

import pytest

from repro.core.banked import BankedMonitoringSet, spread_doorbells
from repro.mem.address import CACHE_LINE_BYTES, DoorbellRegion, line_address


def tags_interleaved(n):
    return [0x1000_0000 + i * CACHE_LINE_BYTES for i in range(n)]


def test_bank_selection_follows_address_interleave():
    banked = BankedMonitoringSet(capacity=64, num_banks=4)
    for i, tag in enumerate(tags_interleaved(16)):
        assert banked.bank_of(tag) == i % 4


def test_insert_lookup_snoop_roundtrip():
    banked = BankedMonitoringSet(capacity=64, num_banks=4)
    for i, tag in enumerate(tags_interleaved(32)):
        assert banked.insert(tag, i)
    assert banked.occupancy == 32
    entry = banked.lookup(tags_interleaved(32)[5])
    assert entry.qid == 5
    assert banked.snoop_write(entry.tag) == 5
    assert not banked.is_armed(entry.tag)
    banked.arm(entry.tag)
    assert banked.is_armed(entry.tag)
    banked.check_invariants()


def test_remove():
    banked = BankedMonitoringSet(capacity=64, num_banks=2)
    tag = 0x2000
    banked.insert(tag, 0)
    assert banked.remove(tag)
    assert not banked.remove(tag)
    assert banked.lookup(tag) is None


def test_consecutive_lines_balance_across_banks():
    banked = BankedMonitoringSet(capacity=256, num_banks=4)
    for i, tag in enumerate(tags_interleaved(128)):
        assert banked.insert(tag, i)
    occupancies = banked.bank_occupancies()
    assert occupancies == [32, 32, 32, 32]


def test_single_bank_can_saturate_while_others_are_empty():
    # The failure mode that motivates driver-side spreading: all tags
    # mapping to one bank exhaust it long before total capacity.
    banked = BankedMonitoringSet(capacity=64, num_banks=4)
    stride = 4 * CACHE_LINE_BYTES  # every tag lands in bank 0
    placed = 0
    for i in range(32):
        if banked.insert(0x1000_0000 + i * stride, i):
            placed += 1
    assert placed <= 16  # one bank's share
    assert banked.occupancy == placed
    assert banked.bank_occupancies()[1:] == [0, 0, 0]


def test_spread_doorbells_places_every_queue():
    region = DoorbellRegion(size_bytes=1 << 16)
    banked = BankedMonitoringSet(capacity=1024, num_banks=8)
    assignment = spread_doorbells(region, banked, num_queues=500)
    assert len(assignment) == 500
    assert banked.occupancy == 500
    occupancies = banked.bank_occupancies()
    assert max(occupancies) - min(occupancies) <= 8
    # Every assigned address is really monitored in the right bank.
    for qid, addr in assignment.items():
        entry = banked.lookup(line_address(addr))
        assert entry is not None and entry.qid == qid
    banked.check_invariants()


def test_spread_doorbells_raises_when_banks_full():
    region = DoorbellRegion(size_bytes=1 << 16)
    banked = BankedMonitoringSet(capacity=16, num_banks=2, ways=4)
    with pytest.raises(RuntimeError, match="banks full"):
        spread_doorbells(region, banked, num_queues=64, max_attempts_per_queue=8)


def test_geometry_validation():
    with pytest.raises(ValueError):
        BankedMonitoringSet(capacity=100, num_banks=3)  # not power of two
    with pytest.raises(ValueError):
        BankedMonitoringSet(capacity=30, num_banks=4)  # not a multiple
    with pytest.raises(ValueError):
        BankedMonitoringSet(capacity=64, num_banks=0)


def test_aggregate_counters():
    banked = BankedMonitoringSet(capacity=64, num_banks=2)
    tag0, tag1 = 0x0, 0x40
    banked.insert(tag0, 0)
    banked.insert(tag1, 1)
    banked.snoop_write(tag0)
    banked.snoop_write(tag0)  # disarmed: a miss
    assert banked.snoop_hits == 1
    assert banked.snoop_misses == 1
    assert banked.load_factor == pytest.approx(2 / 64)
