"""Hypothesis stateful (rule-based) machines for the core data structures.

These complement the scripted property tests: hypothesis explores
arbitrary interleavings of operations and shrinks failures to minimal
command sequences.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.monitoring_set import CuckooMonitoringSet
from repro.core.policies import RoundRobinPolicy
from repro.core.ready_set import HardwareReadySet
from repro.queueing.doorbell import Doorbell
from repro.queueing.taskqueue import TaskQueue, WorkItem


class QueueDoorbellMachine(RuleBasedStateMachine):
    """FIFO queue + doorbell counter must agree under any interleaving."""

    def __init__(self):
        super().__init__()
        self.queue = TaskQueue(0, Doorbell(0, 0x1000), capacity=64)
        self.model = []  # list of item ids, FIFO
        self.next_id = 0

    @rule()
    def enqueue(self):
        item = WorkItem(self.next_id, 0, arrival_time=0.0, service_time=1e-6)
        accepted = self.queue.enqueue(item)
        if len(self.model) < 64:
            assert accepted
            self.model.append(self.next_id)
        else:
            assert not accepted  # dropped on full
        self.next_id += 1

    @precondition(lambda self: self.model)
    @rule()
    def dequeue(self):
        item = self.queue.dequeue(now=1.0)
        expected = self.model.pop(0)
        assert item.item_id == expected

    @invariant()
    def doorbell_matches_occupancy(self):
        assert self.queue.doorbell.count == len(self.queue) == len(self.model)
        self.queue.check_invariants()


class MonitoringSetMachine(RuleBasedStateMachine):
    """Cuckoo table vs. a dict model under insert/remove/arm/snoop."""

    tags = st.integers(min_value=0, max_value=63).map(lambda i: 0x4000 + i * 64)

    def __init__(self):
        super().__init__()
        self.table = CuckooMonitoringSet(capacity=64, ways=4, seed=2)
        self.model = {}  # tag -> (qid, armed)

    @rule(tag=tags)
    def insert(self, tag):
        if tag in self.model:
            return
        qid = tag // 64
        if self.table.insert(tag, qid):
            self.model[tag] = (qid, True)

    @rule(tag=tags)
    def remove(self, tag):
        present = tag in self.model
        assert self.table.remove(tag) == present
        self.model.pop(tag, None)

    @rule(tag=tags)
    def snoop(self, tag):
        expected = None
        if tag in self.model and self.model[tag][1]:
            expected = self.model[tag][0]
            self.model[tag] = (expected, False)
        assert self.table.snoop_write(tag) == expected

    @rule(tag=tags)
    def arm(self, tag):
        if tag in self.model:
            self.table.arm(tag)
            self.model[tag] = (self.model[tag][0], True)

    @invariant()
    def table_matches_model(self):
        assert self.table.occupancy == len(self.model)
        for tag, (qid, armed) in self.model.items():
            entry = self.table.lookup(tag)
            assert entry is not None
            assert entry.qid == qid and entry.armed == armed
        self.table.check_invariants()


class ReadySetMachine(RuleBasedStateMachine):
    """Ready/enabled masks vs. a set model; RR selection stays valid."""

    qids = st.integers(min_value=0, max_value=15)

    def __init__(self):
        super().__init__()
        self.ready_set = HardwareReadySet(16, RoundRobinPolicy(16))
        self.ready = set()
        self.enabled = set(range(16))

    @rule(qid=qids)
    def activate(self, qid):
        self.ready_set.activate(qid)
        self.ready.add(qid)

    @rule(qid=qids)
    def deactivate(self, qid):
        self.ready_set.deactivate(qid)
        self.ready.discard(qid)

    @rule(qid=qids)
    def disable(self, qid):
        self.ready_set.disable(qid)
        self.enabled.discard(qid)

    @rule(qid=qids)
    def enable(self, qid):
        self.ready_set.enable(qid)
        self.enabled.add(qid)

    @rule()
    def take(self):
        selected = self.ready_set.select_and_take()
        selectable = self.ready & self.enabled
        if not selectable:
            assert selected is None
        else:
            assert selected in selectable
            self.ready.discard(selected)

    @invariant()
    def masks_match_model(self):
        for qid in range(16):
            assert self.ready_set.is_ready(qid) == (qid in self.ready)
            assert self.ready_set.is_enabled(qid) == (qid in self.enabled)
        assert self.ready_set.ready_count == len(self.ready)


TestQueueDoorbellMachine = QueueDoorbellMachine.TestCase
TestMonitoringSetMachine = MonitoringSetMachine.TestCase
TestReadySetMachine = ReadySetMachine.TestCase

for case in (TestQueueDoorbellMachine, TestMonitoringSetMachine, TestReadySetMachine):
    case.settings = settings(max_examples=40, stateful_step_count=60, deadline=None)
