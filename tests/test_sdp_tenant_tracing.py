"""Tests for the tenant-side delivery path and event tracing."""

import pytest

from repro.core.dataplane import build_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.spinning import build_spinning_cores
from repro.sdp.system import DataPlaneSystem
from repro.sdp.tenant import COPY_CYCLES, attach_tenant_side
from repro.sdp.tracing import (
    EVENT_COMPLETE,
    EVENT_DEQUEUE,
    EVENT_DOORBELL_WRITE,
    Tracer,
    attach_tracer,
)


def build_system(**overrides):
    defaults = dict(num_queues=8, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return DataPlaneSystem(SDPConfig(**defaults))


def run_hp_with(system, load=0.4, duration=0.01):
    build_hyperplane(system)
    system.attach_open_loop(load=load)
    system.run(duration=duration, warmup=0.0005)
    return system


# -- tenant side -----------------------------------------------------------------


def test_tenant_receives_every_completed_item():
    system = build_system()
    tenant_side = attach_tenant_side(system, num_tenants=4)
    run_hp_with(system)
    assert system.metrics.completed > 100
    # Deliveries may trail by in-flight items at cutoff, but not by much.
    assert tenant_side.delivered >= system.metrics.completed - 8


def test_tenant_latency_exceeds_dataplane_latency():
    system = build_system(service_scv=0.0)
    tenant_side = attach_tenant_side(system, num_tenants=2)
    run_hp_with(system, load=0.1)
    dataplane = system.metrics.latency.mean
    tenant = tenant_side.tenant_latency.mean
    assert tenant > dataplane  # wake-up + hand-off on top
    assert tenant - dataplane < 1e-6  # but well under a microsecond


def test_copy_mode_adds_copy_latency():
    def tenant_mean(in_place):
        system = build_system(service_scv=0.0, seed=3)
        tenant_side = attach_tenant_side(system, num_tenants=2, in_place=in_place)
        run_hp_with(system, load=0.1)
        return tenant_side.tenant_latency.mean

    gap = tenant_mean(False) - tenant_mean(True)
    copy_seconds = COPY_CYCLES / 3.0e9
    assert gap == pytest.approx(copy_seconds, rel=0.3)


def test_queues_spread_round_robin_over_tenants():
    system = build_system(num_queues=8)
    tenant_side = attach_tenant_side(system, num_tenants=4)
    run_hp_with(system)
    per_tenant = [t.delivered for t in tenant_side.tenants]
    assert all(count > 0 for count in per_tenant)


def test_tenant_core_halts_between_deliveries():
    system = build_system()
    tenant_side = attach_tenant_side(system, num_tenants=1)
    run_hp_with(system, load=0.05)
    assert tenant_side.tenants[0].wakeups > 10


def test_tenant_validation():
    system = build_system()
    with pytest.raises(ValueError):
        attach_tenant_side(system, num_tenants=0)


def test_tenant_works_with_spinning_plane_too():
    system = build_system()
    tenant_side = attach_tenant_side(system, num_tenants=2)
    build_spinning_cores(system)
    system.attach_open_loop(load=0.4)
    system.run(duration=0.01, warmup=0.0005)
    assert tenant_side.delivered > 100


# -- tracing ------------------------------------------------------------------------


def test_tracer_is_a_deprecated_shim():
    with pytest.warns(DeprecationWarning, match="repro.obs.trace"):
        Tracer(build_system())
    with pytest.warns(DeprecationWarning, match="active_tracer"):
        attach_tracer(build_system())


def test_tracer_records_lifecycle_events():
    system = build_system()
    tracer = attach_tracer(system)
    run_hp_with(system)
    writes = tracer.events_of_kind(EVENT_DOORBELL_WRITE)
    dequeues = tracer.events_of_kind(EVENT_DEQUEUE)
    completes = tracer.events_of_kind(EVENT_COMPLETE)
    assert len(writes) >= len(dequeues) >= len(completes) > 100
    times = [event.time for event in tracer.events]
    assert times == sorted(times)


def test_tracer_breakdown_and_wait_fraction():
    system = build_system()
    tracer = attach_tracer(system)
    run_hp_with(system, load=0.6)
    completed = tracer.events_of_kind(EVENT_COMPLETE)
    breakdown = tracer.breakdown(completed[0].item_id)
    assert breakdown["wait"] >= 0.0
    assert breakdown["service_and_overhead"] > 0.0
    assert 0.0 <= tracer.mean_wait_fraction() < 1.0


def test_tracer_breakdown_unknown_item():
    system = build_system()
    tracer = attach_tracer(system)
    with pytest.raises(KeyError):
        tracer.breakdown(12345)


def test_tracer_capacity_bound():
    system = build_system()
    tracer = attach_tracer(system, capacity=50)
    run_hp_with(system)
    assert len(tracer.events) == 50
    assert tracer.dropped > 0


def test_tracer_json_roundtrip():
    system = build_system()
    tracer = attach_tracer(system, capacity=200)
    run_hp_with(system)
    events = Tracer.load_events(tracer.to_json())
    assert events == tracer.events


def test_tracer_events_for_queue():
    system = build_system()
    tracer = attach_tracer(system)
    run_hp_with(system)
    for event in tracer.events_for_queue(3):
        assert event.qid == 3


def test_tracer_validation():
    system = build_system()
    with pytest.raises(ValueError):
        attach_tracer(system, capacity=0)


def test_tracer_chrome_trace_roundtrip(tmp_path):
    import json

    system = build_system()
    tracer = attach_tracer(system)
    run_hp_with(system)
    path = tmp_path / "trace.json"
    written = tracer.export_chrome_trace(str(path))

    data = json.loads(path.read_text())
    trace = data["traceEvents"]
    assert written == len(trace) == len(tracer.chrome_trace_events())
    assert data["otherData"]["dropped"] == tracer.dropped

    # Every recorded queue event is present as an instant, in order and
    # in microseconds.
    instants = [entry for entry in trace if entry["ph"] == "i"]
    assert len(instants) == len(tracer.events)
    for entry, event in zip(instants, tracer.events):
        assert entry["name"] == event.kind
        assert entry["tid"] == event.qid
        assert entry["ts"] == pytest.approx(event.time * 1e6)

    # Every item traced to completion is a duration slice whose span
    # matches the tracer's own breakdown.
    slices = {entry["args"]["item_id"]: entry for entry in trace if entry["ph"] == "X"}
    completes = tracer.events_of_kind(EVENT_COMPLETE)
    assert set(slices) == {event.item_id for event in completes}
    sample = completes[len(completes) // 2]
    breakdown = tracer.breakdown(sample.item_id)
    assert slices[sample.item_id]["dur"] == pytest.approx(
        breakdown["service_and_overhead"] * 1e6
    )
    assert slices[sample.item_id]["args"]["wait_us"] == pytest.approx(
        breakdown["wait"] * 1e6
    )
