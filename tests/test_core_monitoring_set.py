"""Tests for the Cuckoo-hash monitoring set."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitoring_set import CuckooMonitoringSet


def tags(n, stride=64, base=0x1000_0000):
    return [base + i * stride for i in range(n)]


def test_insert_lookup_remove():
    ms = CuckooMonitoringSet(capacity=64)
    assert ms.insert(0x1000, qid=7)
    entry = ms.lookup(0x1000)
    assert entry.qid == 7 and entry.armed
    assert ms.remove(0x1000)
    assert ms.lookup(0x1000) is None
    assert not ms.remove(0x1000)


def test_duplicate_insert_rejected():
    ms = CuckooMonitoringSet(capacity=64)
    ms.insert(0x40, 0)
    with pytest.raises(ValueError):
        ms.insert(0x40, 1)


def test_snoop_disarms_and_returns_qid_once():
    ms = CuckooMonitoringSet(capacity=64)
    ms.insert(0x40, qid=3)
    assert ms.snoop_write(0x40) == 3
    # Disarmed: further writes do not re-notify (paper's protocol).
    assert ms.snoop_write(0x40) is None
    assert not ms.is_armed(0x40)
    ms.arm(0x40)
    assert ms.snoop_write(0x40) == 3


def test_snoop_miss_on_unmonitored_tag():
    ms = CuckooMonitoringSet(capacity=64)
    assert ms.snoop_write(0x9999) is None
    assert ms.snoop_misses == 1


def test_arm_unknown_tag_raises():
    ms = CuckooMonitoringSet(capacity=64)
    with pytest.raises(KeyError):
        ms.arm(0x123)


def test_insert_unarmed():
    ms = CuckooMonitoringSet(capacity=64)
    ms.insert(0x40, 0, armed=False)
    assert ms.snoop_write(0x40) is None
    ms.arm(0x40)
    assert ms.snoop_write(0x40) == 0


def test_fills_to_high_load_factor():
    # The ZCache-style walk must sustain ~90% occupancy (the paper's
    # 5-10% over-provisioning claim).
    ms = CuckooMonitoringSet(capacity=1024, ways=4, seed=3)
    inserted = 0
    for i, tag in enumerate(tags(920, stride=64)):
        if ms.insert(tag, i):
            inserted += 1
    assert inserted == 920
    assert ms.load_factor == pytest.approx(920 / 1024)
    ms.check_invariants()


def test_walk_lengths_stay_short_at_moderate_load():
    ms = CuckooMonitoringSet(capacity=1024, ways=4, seed=1)
    for i, tag in enumerate(tags(512)):
        ms.insert(tag, i)
    assert ms.mean_walk_length < 2.0


def test_failed_insert_restores_table_exactly():
    ms = CuckooMonitoringSet(capacity=8, ways=2, max_walk=4, seed=0)
    placed = []
    tag = 0
    rng = random.Random(0)
    failed_tag = None
    while failed_tag is None:
        tag += 64 * rng.randint(1, 97)
        if ms.insert(tag, tag):
            placed.append(tag)
        else:
            failed_tag = tag
    # Every previously placed tag must still be present and intact.
    for old in placed:
        entry = ms.lookup(old)
        assert entry is not None and entry.tag == old
    assert ms.lookup(failed_tag) is None
    ms.check_invariants()
    assert ms.occupancy == len(placed)


def test_capacity_full_insert_fails_cleanly():
    ms = CuckooMonitoringSet(capacity=4, ways=2, seed=0)
    inserted = [t for t in tags(32) if ms.insert(t, t)]
    assert len(inserted) <= 4
    assert not ms.insert(0xDEAD_0000, 1)
    ms.check_invariants()


def test_geometry_validation():
    with pytest.raises(ValueError):
        CuckooMonitoringSet(capacity=0)
    with pytest.raises(ValueError):
        CuckooMonitoringSet(capacity=10, ways=4)  # not a multiple


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=500), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
def test_property_insert_remove_sequence_consistent(operations):
    ms = CuckooMonitoringSet(capacity=256, ways=4, seed=7)
    live = {}
    for tag_index, is_insert in operations:
        tag = 0x1000 + tag_index * 64
        if is_insert and tag not in live:
            if ms.insert(tag, tag_index):
                live[tag] = tag_index
        elif not is_insert and tag in live:
            assert ms.remove(tag)
            del live[tag]
    ms.check_invariants()
    assert ms.occupancy == len(live)
    for tag, qid in live.items():
        entry = ms.lookup(tag)
        assert entry is not None and entry.qid == qid
