"""End-to-end tests of the HyperPlane accelerator and data plane."""

import pytest

from repro.core.accelerator import HyperPlaneAccelerator
from repro.core.dataplane import build_hyperplane
from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.system import DataPlaneSystem


def small_config(**overrides):
    defaults = dict(num_queues=8, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return SDPConfig(**defaults)


def build_system(**overrides):
    system = DataPlaneSystem(small_config(**overrides))
    accelerator, cores = build_hyperplane(system)
    return system, accelerator, cores


# -- accelerator unit-level behaviour ---------------------------------------------


def test_all_doorbells_registered():
    system, accelerator, _ = build_system(num_queues=32)
    assert accelerator.monitoring.occupancy == 32
    accelerator.monitoring.check_invariants()


def test_doorbell_write_activates_ready_set():
    system, accelerator, _ = build_system()
    system.doorbells[5].producer_increment()
    assert accelerator.ready_sets[0].is_ready(5)


def test_writes_while_disarmed_do_not_reactivate():
    system, accelerator, _ = build_system()
    system.doorbells[5].producer_increment()
    ready_set = accelerator.ready_sets[0]
    assert ready_set.select_and_take() == 5
    # Entry is disarmed now; another write must not re-activate.
    system.doorbells[5].producer_increment()
    assert not ready_set.is_ready(5)
    # RECONSIDER on a non-empty doorbell re-activates directly.
    accelerator.qwait_reconsider(5)
    assert ready_set.is_ready(5)


def test_verify_filters_empty_queue_and_rearms():
    system, accelerator, _ = build_system()
    tag = accelerator._tag_of_qid[3]
    accelerator.monitoring.snoop_write(tag)  # simulate spurious activation
    assert not accelerator.qwait_verify(3)
    assert accelerator.monitoring.is_armed(tag)


def test_verify_passes_nonempty_queue():
    system, accelerator, _ = build_system()
    system.doorbells[3].producer_increment()
    assert accelerator.qwait_verify(3)


def test_reconsider_rearms_empty_queue():
    system, accelerator, _ = build_system()
    tag = accelerator._tag_of_qid[2]
    system.doorbells[2].producer_increment()
    assert accelerator.ready_sets[0].select_and_take() == 2  # QWAIT
    system.doorbells[2].consumer_decrement()  # dequeue
    accelerator.qwait_reconsider(2)
    assert accelerator.monitoring.is_armed(tag)
    assert not accelerator.ready_sets[0].is_ready(2)


def test_enable_disable_passthrough():
    system, accelerator, _ = build_system()
    accelerator.qwait_disable(4)
    system.doorbells[4].producer_increment()
    assert accelerator.qwait_try(system.clusters[0]) is None
    accelerator.qwait_enable(4)
    assert accelerator.qwait_try(system.clusters[0]) == 4


def test_remove_queue():
    system, accelerator, _ = build_system()
    accelerator.remove_queue(6)
    with pytest.raises(KeyError):
        accelerator.remove_queue(6)
    system.doorbells[6].producer_increment()
    assert not accelerator.ready_sets[0].is_ready(6)


def test_partitioned_ready_sets_for_scale_out():
    system, accelerator, _ = build_system(num_queues=8, num_cores=2, cluster_cores=1)
    assert len(accelerator.ready_sets) == 2
    qid = system.clusters[1].queue_ids[0]
    system.doorbells[qid].producer_increment()
    assert accelerator.ready_sets[1].is_ready(qid)
    assert not accelerator.ready_sets[0].is_ready(qid)


def test_preexisting_work_discovered_at_registration():
    system = DataPlaneSystem(small_config())
    system.attach_closed_loop(depth=2)  # rings doorbells before the accel
    accelerator, _cores = build_hyperplane(system)
    for qid in range(8):
        assert accelerator.ready_sets[0].is_ready(qid)


# -- end-to-end runs -----------------------------------------------------------------


def test_open_loop_run_completes():
    metrics = run_hyperplane(
        small_config(), load=0.3, target_completions=300, max_seconds=1.0
    )
    assert metrics.latency.count >= 300
    chip = metrics.chip_activity
    assert chip.halted_cycles > 0  # HyperPlane halts when idle
    assert chip.useless_instructions == 0  # and never spins


def test_closed_loop_peak_close_to_ideal():
    metrics = run_hyperplane(
        small_config(shape="SQ"), closed_loop=True, target_completions=1000,
        max_seconds=1.0,
    )
    ideal = 1.0 / 1.4
    assert metrics.throughput_mtps > 0.9 * ideal


def test_latency_flat_in_queue_count():
    few = run_hyperplane(
        small_config(num_queues=2, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    many = run_hyperplane(
        small_config(num_queues=1000, service_scv=0.0), load=0.01,
        target_completions=150, max_seconds=3.0,
    )
    assert many.latency.mean_us < 2.5 * few.latency.mean_us
    assert many.latency.mean_us < 10.0  # the paper's <10 us claim


def test_deterministic_same_seed():
    a = run_hyperplane(small_config(seed=9), load=0.5, target_completions=300, max_seconds=1.0)
    b = run_hyperplane(small_config(seed=9), load=0.5, target_completions=300, max_seconds=1.0)
    assert a.latency.mean == b.latency.mean


def test_spurious_wakes_are_filtered_not_serviced():
    metrics = run_hyperplane(
        small_config(spurious_wake_rate=0.3), load=0.4,
        target_completions=400, max_seconds=1.5,
    )
    assert metrics.spurious_wakeups > 0
    assert metrics.latency.count >= 400  # correctness unaffected


def test_power_optimized_adds_wakeup_latency_at_low_load():
    regular = run_hyperplane(
        small_config(service_scv=0.0), load=0.01, target_completions=200,
        max_seconds=3.0,
    )
    powered = run_hyperplane(
        small_config(service_scv=0.0, power_optimized=True), load=0.01,
        target_completions=200, max_seconds=3.0,
    )
    delta_us = powered.latency.mean_us - regular.latency.mean_us
    assert 0.3 < delta_us < 0.7  # ~0.5 us C1 wake-up
    assert powered.chip_activity.c1_cycles > 0


def test_power_optimized_gap_shrinks_with_load():
    def gap(load):
        regular = run_hyperplane(
            small_config(), load=load, target_completions=2000, max_seconds=2.0
        )
        powered = run_hyperplane(
            small_config(power_optimized=True), load=load,
            target_completions=2000, max_seconds=2.0,
        )
        return powered.latency.mean_us / regular.latency.mean_us

    assert gap(0.02) > gap(0.7)


def test_multicore_scale_up_shares_all_queues():
    metrics = run_hyperplane(
        small_config(num_queues=16, num_cores=4, cluster_cores=4),
        load=0.6,
        target_completions=1000,
        max_seconds=1.0,
    )
    assert metrics.latency.count >= 1000
    workers = [a for a in metrics.activities if a.tasks > 0]
    assert len(workers) == 4


def test_wrr_policy_end_to_end():
    metrics = run_hyperplane(
        small_config(shape="FB"),
        closed_loop=True,
        policy="wrr",
        weights={0: 4},
        target_completions=800,
        max_seconds=1.0,
    )
    assert metrics.latency.count >= 800


def test_strict_policy_end_to_end():
    metrics = run_hyperplane(
        small_config(shape="FB"), closed_loop=True, policy="strict",
        target_completions=500, max_seconds=1.0,
    )
    assert metrics.latency.count >= 500


def test_software_ready_set_slower_at_scale():
    hardware = run_hyperplane(
        small_config(num_queues=1000, shape="FB"), closed_loop=True,
        target_completions=1200, max_seconds=2.0,
    )
    software = run_hyperplane(
        small_config(num_queues=1000, shape="FB"), closed_loop=True,
        software_ready_set=True, target_completions=1200, max_seconds=2.0,
    )
    assert software.throughput_mtps < 0.85 * hardware.throughput_mtps


def test_lost_wakeup_invariant_holds_after_runs():
    # The invariant checker runs inside run_hyperplane; exercise it over
    # several stressy configurations.
    for shape in ("SQ", "PC", "FB"):
        run_hyperplane(
            small_config(num_queues=32, shape=shape, spurious_wake_rate=0.2),
            load=0.8,
            target_completions=800,
            max_seconds=1.5,
        )
