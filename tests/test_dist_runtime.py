"""The multi-process rack runtime vs the shared-timeline rack.

The headline contract (documented in docs/distributed.md): under rss
placement the dist runtime is *bit-exact* with :func:`repro.cluster.rack
.run_cluster` — same completions, same mean, same P² tail estimates —
because placement ignores load, service times are drawn from the same
per-server streams in the same order, and completions are merged in a
deterministic global order before recording. Worker crashes (process
faults, distinct from the *modelled* server crash-fault profile) fail
over: backlogs re-dispatch to survivors and the run is flagged partial.
"""

import sys

import pytest

from repro.cluster import ClusterConfig, run_cluster
from repro.dist import DistOptions, WorkerSpawnError, run_cluster_dist

LOAD = 0.25
DURATION = 0.012
WARMUP = 0.004


def small_config(**overrides):
    defaults = dict(
        num_servers=4,
        notification="hyperplane",
        balancer="rss",
        queues_per_server=64,
        num_flows=64,
        flow_skew=0.3,
        seed=11,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def run_both(config, **dist_kwargs):
    rack = run_cluster(config, load=LOAD, duration=DURATION, warmup=WARMUP)
    dist = run_cluster_dist(
        config,
        load=LOAD,
        duration=DURATION,
        warmup=WARMUP,
        options=DistOptions(**dist_kwargs),
    )
    return rack, dist


def test_rss_run_is_bit_exact_with_the_rack():
    rack, dist = run_both(small_config(), workers=2)
    assert dist.metrics.fingerprint() == rack.metrics.fingerprint()
    assert dist.partial is False
    assert dist.worker_faults == []
    assert dist.info["workers"] == 2
    assert sorted(
        server for servers in dist.info["assignments"].values()
        for server in servers
    ) == [0, 1, 2, 3]


def test_fingerprint_is_worker_count_independent():
    config = small_config(seed=5)
    fingerprints = set()
    for workers in (1, 3, 4):
        dist = run_cluster_dist(
            config,
            load=LOAD,
            duration=DURATION,
            warmup=WARMUP,
            options=DistOptions(workers=workers),
        )
        fingerprints.add(dist.metrics.fingerprint())
    assert len(fingerprints) == 1


def test_modelled_crash_profile_matches_rack_redispatch():
    config = small_config(fault_profile="crash")
    rack, dist = run_both(config, workers=2)
    assert dist.metrics.fingerprint() == rack.metrics.fingerprint()
    assert dist.metrics.redispatched == rack.metrics.redispatched
    # A modelled server crash is not a worker fault: the fleet is whole.
    assert dist.partial is False


def test_tcp_transport_matches_unix():
    config = small_config(seed=3)
    unix = run_cluster_dist(
        config, load=LOAD, duration=DURATION, warmup=WARMUP,
        options=DistOptions(workers=2, transport="unix"),
    )
    tcp = run_cluster_dist(
        config, load=LOAD, duration=DURATION, warmup=WARMUP,
        options=DistOptions(workers=2, transport="tcp"),
    )
    assert tcp.metrics.fingerprint() == unix.metrics.fingerprint()
    assert tcp.info["transport"] == "tcp"


def test_worker_crash_fails_over_and_flags_partial():
    config = small_config(seed=7)
    dist = run_cluster_dist(
        config,
        load=LOAD,
        duration=DURATION,
        warmup=WARMUP,
        options=DistOptions(
            workers=2, crash_worker=1, crash_worker_at=WARMUP + 0.002
        ),
    )
    assert dist.partial is True
    (fault,) = dist.worker_faults
    assert fault["worker_id"] == 1
    assert fault["kind"] == "worker-crash"
    assert sorted(fault["servers"]) == [1, 3]
    # The run completed on the survivors: traffic kept flowing and the
    # orphaned backlog was re-dispatched rather than silently dropped.
    assert dist.metrics.count > 0
    assert dist.metrics.redispatched > 0
    # Only the surviving worker reports a node manifest.
    assert [node["worker_id"] for node in dist.nodes] == [0]
    healthy = run_cluster_dist(
        config, load=LOAD, duration=DURATION, warmup=WARMUP,
        options=DistOptions(workers=2),
    )
    # Failover re-routes the dead worker's share onto the survivors: the
    # healthy run spreads completions over all four servers, the faulted
    # one concentrates them on worker 0's servers (0 and 2) after the
    # crash point.
    assert healthy.metrics.fingerprint() != dist.metrics.fingerprint()
    crashed_share = sum(dist.metrics.per_server_completed[s] for s in (1, 3))
    healthy_share = sum(healthy.metrics.per_server_completed[s] for s in (1, 3))
    assert crashed_share < healthy_share


def test_metrics_registry_merges_across_nodes():
    from repro.obs import MetricsRegistry
    from repro.obs.runtime import active_registry

    config = small_config(seed=2)
    with active_registry(MetricsRegistry(enabled=True)) as registry:
        dist = run_cluster_dist(
            config, load=LOAD, duration=DURATION, warmup=WARMUP,
            options=DistOptions(workers=2),
        )
    assert "sim.events_total" in registry
    assert registry.counter("sim.events_total").value > 0
    assert any(name.startswith("sdp.") for name in registry.names())
    assert len(dist.nodes) == 2
    for node in dist.nodes:
        assert node["invariants"] == "ok"


def test_spawn_failure_raises_worker_spawn_error(monkeypatch):
    monkeypatch.setattr(sys, "executable", "/bin/false")
    with pytest.raises(WorkerSpawnError, match="never connected"):
        run_cluster_dist(
            small_config(),
            load=LOAD,
            duration=DURATION,
            warmup=WARMUP,
            options=DistOptions(workers=2, spawn_timeout_s=1.5),
        )


def test_options_validate():
    with pytest.raises(ValueError):
        DistOptions(workers=0)
    with pytest.raises(ValueError):
        DistOptions(transport="carrier-pigeon")
    with pytest.raises(ValueError):
        DistOptions(speed_factor=-1.0)
    with pytest.raises(ValueError):
        DistOptions(crash_worker=1)  # needs crash_worker_at too
