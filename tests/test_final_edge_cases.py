"""Late-added coverage: structural scale-up, WRR share properties, and
engine/runner edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import WeightedRoundRobinPolicy
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.structural import (
    StructuralHyperPlane,
    StructuralHyperPlaneCore,
    StructuralMachine,
)


# -- structural scale-up --------------------------------------------------------------


def test_structural_two_consumers_share_all_queues():
    machine = StructuralMachine(
        num_queues=8, num_producers=1, num_consumers=2,
        mean_service_seconds=2e-6, seed=3,
    )
    accelerator = StructuralHyperPlane(machine)
    cores = [
        StructuralHyperPlaneCore(machine, accelerator, consumer_index=i)
        for i in range(2)
    ]
    # Offered load needs both cores: ~1.4x one core's capacity.
    machine.start_producers(total_rate=7e5, max_items=600)
    metrics = machine.run(duration=0.01, target_completions=600)
    assert metrics.latency.count == 600
    for core in cores:
        assert machine.metrics.activities[core.core].tasks > 100
    accelerator.check_no_lost_wakeups(
        {c.servicing for c in cores if c.servicing is not None}
    )


def test_structural_scale_up_outpaces_single_consumer():
    def throughput(consumers):
        machine = StructuralMachine(
            num_queues=8, num_consumers=consumers,
            mean_service_seconds=2e-6, seed=3,
        )
        accelerator = StructuralHyperPlane(machine)
        for i in range(consumers):
            StructuralHyperPlaneCore(machine, accelerator, consumer_index=i)
        machine.start_producers(total_rate=9e5, max_items=800)
        metrics = machine.run(duration=0.01, target_completions=800)
        return metrics.latency.count / metrics.measure_end

    assert throughput(2) > 1.4 * throughput(1)


# -- WRR long-run share property ---------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    weight_a=st.integers(min_value=1, max_value=8),
    weight_b=st.integers(min_value=1, max_value=8),
)
def test_property_wrr_long_run_shares(weight_a, weight_b):
    policy = WeightedRoundRobinPolicy(4, weights={0: weight_a, 1: weight_b})
    ready = 0b0011  # both queues always backlogged
    served = [policy.take(ready) for _ in range(60 * (weight_a + weight_b))]
    share_a = served.count(0) / len(served)
    expected = weight_a / (weight_a + weight_b)
    assert share_a == pytest.approx(expected, abs=0.03)


# -- runner / engine edges ------------------------------------------------------------------


def test_run_with_zero_duration_rejected():
    from repro.sdp.system import DataPlaneSystem

    system = DataPlaneSystem(SDPConfig(num_queues=2))
    with pytest.raises(ValueError):
        system.run(duration=0.0)
    with pytest.raises(ValueError):
        system.run(duration=1.0, warmup=-1.0)


def test_open_loop_requires_exactly_one_rate_spec():
    from repro.sdp.system import DataPlaneSystem

    system = DataPlaneSystem(SDPConfig(num_queues=2))
    with pytest.raises(ValueError):
        system.attach_open_loop()
    with pytest.raises(ValueError):
        system.attach_open_loop(load=0.5, rate=1e5)


def test_double_closed_loop_rejected():
    from repro.sdp.system import DataPlaneSystem

    system = DataPlaneSystem(SDPConfig(num_queues=2))
    system.attach_closed_loop()
    with pytest.raises(RuntimeError):
        system.attach_closed_loop()


def test_spinning_run_survives_queue_capacity_pressure():
    # Tiny rings at overload: drops happen, metrics stay consistent.
    metrics = run_spinning(
        SDPConfig(num_queues=4, queue_capacity=8, workload="packet-encapsulation",
                  shape="SQ", seed=1),
        load=3.0,  # 3x overload
        target_completions=1000,
        max_seconds=1.0,
    )
    assert metrics.dropped > 0
    assert metrics.latency.count >= 1000
    # Completions are bounded by capacity, not by offered load.
    assert metrics.throughput_mtps < 3.0 / 1.4
