"""Tests for the P² streaming quantile estimator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdp.quantiles import P2Quantile, StreamingLatencySummary


def exact_percentile(samples, p):
    ordered = sorted(samples)
    rank = p * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if low + 1 < len(ordered):
        return ordered[low] * (1 - frac) + ordered[low + 1] * frac
    return ordered[low]


@pytest.mark.parametrize("quantile", [0.5, 0.9, 0.99])
@pytest.mark.parametrize(
    "sampler",
    [
        lambda rng: rng.random(),  # uniform
        lambda rng: rng.expovariate(1.0),  # exponential
        lambda rng: rng.lognormvariate(0.0, 1.0),  # heavy-ish tail
    ],
    ids=["uniform", "exponential", "lognormal"],
)
def test_p2_tracks_exact_percentiles(quantile, sampler):
    rng = random.Random(42)
    estimator = P2Quantile(quantile)
    samples = []
    for _ in range(20000):
        value = sampler(rng)
        estimator.add(value)
        samples.append(value)
    exact = exact_percentile(samples, quantile)
    assert estimator.value == pytest.approx(exact, rel=0.12)


def test_p2_small_sample_fallback():
    estimator = P2Quantile(0.5)
    assert estimator.value == 0.0
    for value in (3.0, 1.0, 2.0):
        estimator.add(value)
    assert estimator.value in (1.0, 2.0, 3.0)
    assert estimator.count == 3


def test_p2_constant_stream():
    estimator = P2Quantile(0.99)
    for _ in range(1000):
        estimator.add(7.0)
    assert estimator.value == pytest.approx(7.0)


def test_p2_validation():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=100, max_size=500))
def test_property_p2_estimate_within_range(samples):
    estimator = P2Quantile(0.9)
    for value in samples:
        estimator.add(value)
    assert min(samples) <= estimator.value <= max(samples)


def test_streaming_summary_matches_exact_recorder():
    from repro.sdp.metrics import LatencyRecorder

    rng = random.Random(0)
    exact = LatencyRecorder()
    summary = StreamingLatencySummary()
    for _ in range(30000):
        value = rng.expovariate(1.0 / 2e-6)
        exact.record(1.0, value)
        summary.record(1.0, value)
    assert summary.count == exact.count
    assert summary.mean == pytest.approx(exact.mean, rel=1e-9)
    assert summary.p99 == pytest.approx(exact.p99, rel=0.10)
    assert summary.p50 == pytest.approx(exact.percentile(50), rel=0.10)
    assert summary.max > summary.p99


def test_streaming_summary_warmup_and_validation():
    summary = StreamingLatencySummary(warmup_time=1.0)
    summary.record(0.5, 100.0)  # discarded
    summary.record(2.0, 1.0)
    assert summary.count == 1
    assert summary.mean == 1.0
    with pytest.raises(ValueError):
        summary.record(2.0, -1.0)
