"""Tests for the from-scratch AES-CBC-256."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.crypto import (
    INV_SBOX,
    SBOX,
    AesCbc,
    aes_cbc_decrypt,
    aes_cbc_encrypt,
    _gf_inverse,
    _gf_mul,
)

FIPS_KEY = bytes(range(32))
FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHER = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")


def test_fips197_appendix_c3_known_answer():
    cipher = AesCbc(FIPS_KEY)
    assert cipher.encrypt_block(FIPS_PLAIN) == FIPS_CIPHER
    assert cipher.decrypt_block(FIPS_CIPHER) == FIPS_PLAIN


def test_sbox_known_entries():
    # FIPS-197 Figure 7 spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_a_permutation_and_inverse_matches():
    assert sorted(SBOX) == list(range(256))
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_has_no_fixed_points():
    assert all(SBOX[v] != v for v in range(256))


def test_gf_arithmetic_known_products():
    # FIPS-197 Section 4.2: 57 * 83 = c1.
    assert _gf_mul(0x57, 0x83) == 0xC1
    assert _gf_mul(0x57, 0x13) == 0xFE


def test_gf_inverse():
    assert _gf_inverse(0) == 0
    for value in range(1, 256):
        assert _gf_mul(value, _gf_inverse(value)) == 1


def test_cbc_roundtrip_various_lengths():
    cipher = AesCbc(FIPS_KEY)
    iv = bytes(range(16))
    for length in (0, 1, 15, 16, 17, 100, 256):
        message = bytes((i * 7) % 256 for i in range(length))
        assert cipher.decrypt(cipher.encrypt(message, iv), iv) == message


def test_cbc_same_plaintext_different_iv_differs():
    cipher = AesCbc(FIPS_KEY)
    message = b"A" * 32
    a = cipher.encrypt(message, bytes(16))
    b = cipher.encrypt(message, bytes([1] * 16))
    assert a != b


def test_cbc_chaining_not_ecb():
    # Two identical plaintext blocks must not produce identical
    # ciphertext blocks under CBC.
    cipher = AesCbc(FIPS_KEY)
    out = cipher.encrypt(b"B" * 32, bytes(16))
    assert out[:16] != out[16:32]


def test_ciphertext_length_is_padded_multiple():
    out = aes_cbc_encrypt(FIPS_KEY, bytes(16), b"12345")
    assert len(out) == 16
    out = aes_cbc_encrypt(FIPS_KEY, bytes(16), b"x" * 16)
    assert len(out) == 32  # full pad block


def test_bad_padding_detected():
    cipher = AesCbc(FIPS_KEY)
    iv = bytes(16)
    tampered = bytearray(cipher.encrypt(b"hello", iv))
    tampered[-1] ^= 0x01
    with pytest.raises(ValueError, match="padding"):
        cipher.decrypt(bytes(tampered), iv)


def test_input_validation():
    with pytest.raises(ValueError):
        AesCbc(b"short")
    cipher = AesCbc(FIPS_KEY)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.encrypt(b"x", b"short-iv")
    with pytest.raises(ValueError):
        cipher.decrypt(b"x" * 15, bytes(16))
    with pytest.raises(ValueError):
        cipher.decrypt(b"", bytes(16))


def test_oneshot_helpers():
    iv = bytes([9] * 16)
    message = b"one-shot helpers"
    assert aes_cbc_decrypt(FIPS_KEY, iv, aes_cbc_encrypt(FIPS_KEY, iv, message)) == message


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    iv=st.binary(min_size=16, max_size=16),
    message=st.binary(max_size=200),
)
def test_property_cbc_roundtrip(key, iv, message):
    assert aes_cbc_decrypt(key, iv, aes_cbc_encrypt(key, iv, message)) == message
