"""Tests for GF(256), Reed-Solomon erasure coding, and RAID P+Q."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.erasure import CauchyReedSolomon, GF256
from repro.workloads.raid import RaidPQ

FIELD = GF256()
nonzero = st.integers(min_value=1, max_value=255)
elements = st.integers(min_value=0, max_value=255)


@settings(max_examples=100, deadline=None)
@given(a=elements, b=elements, c=elements)
def test_property_field_axioms(a, b, c):
    # Commutativity and associativity of multiplication.
    assert FIELD.mul(a, b) == FIELD.mul(b, a)
    assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))
    # Distributivity over XOR addition.
    assert FIELD.mul(a, b ^ c) == FIELD.mul(a, b) ^ FIELD.mul(a, c)


@settings(max_examples=100, deadline=None)
@given(a=nonzero)
def test_property_inverse_and_division(a):
    assert FIELD.mul(a, FIELD.inverse(a)) == 1
    assert FIELD.div(a, a) == 1
    assert FIELD.div(0, a) == 0


def test_field_identity_and_zero():
    for a in range(256):
        assert FIELD.mul(a, 1) == a
        assert FIELD.mul(a, 0) == 0
        assert FIELD.add(a, a) == 0  # characteristic 2


def test_field_pow():
    assert FIELD.pow(2, 0) == 1
    assert FIELD.pow(2, 1) == 2
    assert FIELD.pow(2, 8) == FIELD.mul(FIELD.pow(2, 4), FIELD.pow(2, 4))


def test_division_by_zero():
    with pytest.raises(ZeroDivisionError):
        FIELD.div(5, 0)
    with pytest.raises(ZeroDivisionError):
        FIELD.inverse(0)


def test_matrix_inverse_roundtrip():
    matrix = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
    inverse = FIELD.invert_matrix(matrix)
    identity = FIELD.matmul(matrix, inverse)
    expected = [[int(i == j) for j in range(3)] for i in range(3)]
    assert identity == expected


def test_singular_matrix_rejected():
    with pytest.raises(ValueError, match="singular"):
        FIELD.invert_matrix([[1, 1], [1, 1]])


def test_rs_encode_shape():
    rs = CauchyReedSolomon(4, 2)
    fragments = rs.encode(b"0123456789abcdef")
    assert len(fragments) == 6
    assert all(len(f) == 4 for f in fragments)
    assert b"".join(fragments[:4]) == b"0123456789abcdef"  # systematic


def test_rs_decode_with_no_erasures():
    rs = CauchyReedSolomon(3, 2)
    data = b"hello world!"
    fragments = rs.encode(data)
    assert rs.decode(fragments)[: len(data)] == data


def test_rs_recovers_max_erasures():
    rs = CauchyReedSolomon(5, 3)
    data = bytes(range(250))
    fragments = rs.encode(data)
    erased = list(fragments)
    erased[0] = None
    erased[3] = None
    erased[6] = None  # one data-parity mix, 3 = m erasures
    assert rs.decode(erased)[: len(data)] == data


def test_rs_unrecoverable_raises():
    rs = CauchyReedSolomon(4, 2)
    fragments = rs.encode(b"x" * 16)
    erased = [None, None, None] + list(fragments[3:])
    with pytest.raises(ValueError, match="unrecoverable"):
        rs.decode(erased)


def test_rs_validation():
    with pytest.raises(ValueError):
        CauchyReedSolomon(0, 1)
    with pytest.raises(ValueError):
        CauchyReedSolomon(200, 100)
    rs = CauchyReedSolomon(2, 1)
    with pytest.raises(ValueError):
        rs.decode([b"ab", b"cd"])  # wrong slot count


@settings(max_examples=40, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=120),
    erasures=st.sets(st.integers(min_value=0, max_value=6), max_size=3),
)
def test_property_rs_roundtrip_any_k_survivors(data, erasures):
    rs = CauchyReedSolomon(4, 3)
    fragments = rs.encode(data)
    slots = [None if i in erasures else f for i, f in enumerate(fragments)]
    assert rs.decode(slots)[: len(data)] == data


def make_blocks(count, length=32, seed=1):
    return [
        bytes((seed * 31 + i * 7 + j) % 256 for j in range(length))
        for i in range(count)
    ]


def test_raid_parity_verifies():
    raid = RaidPQ(6)
    blocks = make_blocks(6)
    p, q = raid.compute_parity(blocks)
    assert raid.verify(blocks, p, q)
    corrupted = [bytes(64)] + blocks[1:]
    assert not raid.verify(
        [bytes(len(blocks[0]))] + list(blocks[1:]), p, q
    )


def test_raid_recover_one_with_p():
    raid = RaidPQ(5)
    blocks = make_blocks(5)
    p, _q = raid.compute_parity(blocks)
    lost = list(blocks)
    lost[3] = None
    assert raid.recover_one(lost, p) == blocks


def test_raid_recover_two_with_pq():
    raid = RaidPQ(8)
    blocks = make_blocks(8)
    p, q = raid.compute_parity(blocks)
    lost = list(blocks)
    lost[1] = None
    lost[6] = None
    assert raid.recover_two(lost, p, q) == blocks


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    pair=st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda t: t[0] < t[1]),
)
def test_property_raid_recovers_any_two(seed, pair):
    raid = RaidPQ(8)
    blocks = make_blocks(8, seed=seed)
    p, q = raid.compute_parity(blocks)
    lost = list(blocks)
    lost[pair[0]] = None
    lost[pair[1]] = None
    assert raid.recover_two(lost, p, q) == blocks


def test_raid_validation():
    with pytest.raises(ValueError):
        RaidPQ(1)
    raid = RaidPQ(4)
    blocks = make_blocks(4)
    p, q = raid.compute_parity(blocks)
    with pytest.raises(ValueError, match="exactly one"):
        raid.recover_one(blocks, p)
    with pytest.raises(ValueError, match="exactly two"):
        raid.recover_two(blocks, p, q)
    with pytest.raises(ValueError, match="same length"):
        raid.compute_parity([b"ab", b"abc", b"ab", b"ab"])
