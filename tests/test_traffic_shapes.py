"""Tests for the four traffic shapes."""

import random

import pytest

from repro.traffic.shapes import (
    SHAPES,
    FullyBalanced,
    NonproportionallyConcentrated,
    ProportionallyConcentrated,
    SingleQueue,
    shape_by_name,
)


def test_fb_uniform_weights():
    shape = FullyBalanced()
    weights = shape.weights(10)
    assert weights == [1.0] * 10
    assert shape.hot_queue_ids(10) == list(range(10))


def test_pc_hot_fraction_and_cold_activity():
    shape = ProportionallyConcentrated()
    weights = shape.weights(100)
    hot = shape.hot_queue_ids(100)
    assert len(hot) == 20
    for qid in range(100):
        expected = 1.0 if qid in set(hot) else 0.05
        assert weights[qid] == expected


def test_nc_fixed_hot_count():
    shape = NonproportionallyConcentrated()
    assert len(shape.hot_queue_ids(1000)) == 100
    assert len(shape.hot_queue_ids(400)) == 100
    # Fewer queues than the fixed count: all hot.
    assert len(shape.hot_queue_ids(50)) == 50


def test_sq_single_hot_queue():
    shape = SingleQueue()
    weights = shape.weights(5)
    assert weights == [1.0, 0.0, 0.0, 0.0, 0.0]
    assert shape.hot_queue_ids(5) == [0]


def test_normalized_weights_sum_to_one():
    for name in SHAPES:
        shape = shape_by_name(name)
        total = sum(shape.normalized_weights(200))
        assert total == pytest.approx(1.0)


def test_empty_polls_per_task_matches_paper():
    # Paper Section V-B: n ~= 5 polls/task for PC (4 empty + 1 ready),
    # n = 1 for FB (0 empty), large for SQ.
    assert FullyBalanced().empty_polls_per_task(400) == 0.0
    assert ProportionallyConcentrated().empty_polls_per_task(400) == pytest.approx(4.0)
    assert SingleQueue().empty_polls_per_task(400) == 399.0
    assert NonproportionallyConcentrated().empty_polls_per_task(1000) == pytest.approx(9.0)


def test_sampler_respects_weights():
    shape = ProportionallyConcentrated()
    rng = random.Random(0)
    draw = shape.sampler(100, rng)
    hot = set(shape.hot_queue_ids(100))
    draws = [draw() for _ in range(20000)]
    hot_fraction = sum(1 for q in draws if q in hot) / len(draws)
    # Expected: 20 / (20 + 80 * 0.05) = 0.833...
    assert hot_fraction == pytest.approx(20 / 24, abs=0.02)


def test_sq_sampler_always_queue_zero():
    draw = SingleQueue().sampler(50, random.Random(1))
    assert all(draw() == 0 for _ in range(100))


def test_sampler_covers_all_fb_queues():
    draw = FullyBalanced().sampler(8, random.Random(2))
    seen = {draw() for _ in range(2000)}
    assert seen == set(range(8))


def test_hot_ids_spread_across_id_space():
    # Hot queues must not cluster at low ids (matters for scale-out
    # partitioning fairness).
    hot = ProportionallyConcentrated().hot_queue_ids(100)
    assert min(hot) < 10 and max(hot) > 90


def test_shape_by_name_roundtrip_and_errors():
    for name in ("FB", "pc", "Nc", "sq"):
        assert shape_by_name(name).name == name.upper()
    with pytest.raises(ValueError):
        shape_by_name("XX")


def test_invalid_queue_count_rejected():
    with pytest.raises(ValueError):
        FullyBalanced().weights(0)
    with pytest.raises(ValueError):
        SingleQueue().hot_queue_ids(-1)
