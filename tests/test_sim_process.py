"""Tests for generator-based processes."""

import pytest

from repro.sim import Event, Process, ProcessKilled, Simulator


def test_delay_yields_advance_time():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 1.0
        trace.append(sim.now)
        yield 2.5
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [0.0, 1.0, 3.5]


def test_process_return_value_in_done_event():
    sim = Simulator()

    def proc():
        yield 1.0
        return "result"

    process = sim.spawn(proc())
    sim.run()
    assert process.done.triggered
    assert process.result == "result"
    assert not process.alive


def test_yield_event_receives_value():
    sim = Simulator()
    gate = Event("gate")
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.schedule(2.0, gate.trigger, "opened")
    sim.run()
    assert got == [(2.0, "opened")]


def test_yield_already_triggered_event_resumes_same_time():
    sim = Simulator()
    gate = Event()
    gate.trigger("early")
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, "early")]


def test_join_another_process():
    sim = Simulator()

    def child():
        yield 3.0
        return 99

    def parent():
        result = yield sim.spawn(child())
        return (sim.now, result)

    process = sim.spawn(parent())
    sim.run()
    assert process.result == (3.0, 99)


def test_yield_none_resumes_at_same_time():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield None
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.0, 0.0]


def test_kill_stops_waiting_process():
    sim = Simulator()
    gate = Event()
    reached = []

    def proc():
        try:
            yield gate
            reached.append("after-gate")
        except ProcessKilled:
            reached.append("killed")
            raise

    process = sim.spawn(proc())
    sim.schedule(1.0, process.kill)
    sim.run()
    assert reached == ["killed"]
    assert not process.alive
    assert gate.waiter_count == 0


def test_kill_idempotent():
    sim = Simulator()

    def proc():
        yield 100.0

    process = sim.spawn(proc())
    sim.run(until=1.0)
    process.kill()
    process.kill()
    assert not process.alive


def test_bad_yield_type_raises():
    sim = Simulator()

    def proc():
        yield "not-a-delay"

    sim.spawn(proc())
    with pytest.raises(TypeError):
        sim.run()


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    trace = []

    def ticker(name, period):
        for _ in range(3):
            yield period
            trace.append((sim.now, name))

    sim.spawn(ticker("a", 1.0))
    sim.spawn(ticker("b", 1.5))
    sim.run()
    assert trace == [
        (1.0, "a"),
        (1.5, "b"),
        (2.0, "a"),
        (3.0, "b"),
        (3.0, "a"),
        (4.5, "b"),
    ]


def test_spawn_inside_callback_is_safe():
    sim = Simulator()
    results = []

    def child():
        yield 1.0
        results.append(sim.now)

    sim.schedule(1.0, lambda: sim.spawn(child()))
    sim.run()
    assert results == [2.0]
