"""The redesigned experiment API: run(config), shims, manifests, CLI."""

import json

import pytest

from repro.experiments import REGISTRY, ExperimentConfig, run_experiment
from repro.experiments.base import ExperimentResult
from repro.obs import MetricsRegistry, parse_jsonl, parse_prometheus, validate_manifest


def test_every_registry_entry_has_spec_fields():
    for experiment_id, spec in REGISTRY.items():
        assert spec.experiment_id == experiment_id
        assert callable(spec.runner)
        assert spec.summary
        config = spec.config(fast=True, seed=3)
        assert isinstance(config, ExperimentConfig)
        assert config.fast is True
        assert config.asdict()["fast"] is True


def test_configs_are_frozen():
    config = REGISTRY["fig8"].config()
    with pytest.raises(Exception):
        config.fast = False


def test_run_accepts_config_and_defaults():
    from repro.experiments.hwcost import HwCostConfig, run

    default = run()
    explicit = run(HwCostConfig(fast=True))
    assert default.rows == explicit.rows
    assert default.experiment_id == "hwcost"


def test_panel_configs_validate():
    from repro.experiments.fig9_zero_load import Fig9Config

    with pytest.raises(ValueError):
        Fig9Config(panel="z")


def test_deprecated_shims_warn_and_match():
    from repro.experiments.hwcost import HwCostConfig, run, run_hwcost

    with pytest.warns(DeprecationWarning):
        shimmed = run_hwcost(fast=True)
    assert shimmed.rows == run(HwCostConfig(fast=True)).rows


def test_all_deprecated_names_still_importable():
    # Benchmarks and downstream scripts keep working through the shims.
    from repro.experiments.cluster_scaleout import run_cluster_scaleout  # noqa: F401
    from repro.experiments.fig3_dpdk import run_fig3a, run_fig3b, run_fig3c  # noqa: F401
    from repro.experiments.fig8_peak_throughput import run_fig8  # noqa: F401
    from repro.experiments.fig9_zero_load import run_fig9a, run_fig9b  # noqa: F401
    from repro.experiments.fig10_multicore import run_fig10a, run_fig10b  # noqa: F401
    from repro.experiments.fig11_work_proportionality import (  # noqa: F401
        run_fig11a,
        run_fig11b,
    )
    from repro.experiments.fig12_power import run_fig12a, run_fig12b  # noqa: F401
    from repro.experiments.fig13_ready_set import run_fig13  # noqa: F401
    from repro.experiments.headline import run_headline  # noqa: F401
    from repro.experiments.hwcost import run_hwcost  # noqa: F401


def test_run_experiment_attaches_valid_manifest():
    result = run_experiment("hwcost", fast=True, seed=5)
    manifest = result.manifest
    assert manifest is not None
    validate_manifest(manifest.to_dict())
    assert manifest.experiment_id == "hwcost"
    assert manifest.root_seed == 5
    assert manifest.config == {"fast": True, "seed": 5}
    assert manifest.metrics_enabled is False
    assert manifest.wall_seconds >= 0.0


def test_run_experiment_with_metrics_counts_events():
    registry = MetricsRegistry(enabled=True)
    result = run_experiment("fig3b", fast=True, metrics=registry)
    assert result.manifest.metrics_enabled is True
    assert result.manifest.sim_events > 0
    assert registry.as_dict()["sim.events_total"]["value"] == result.manifest.sim_events


def test_result_with_manifest_roundtrips_json():
    result = run_experiment("hwcost", fast=True)
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.manifest == result.manifest
    assert restored.rows == result.rows


def test_facade_exposes_experiment_api():
    import repro

    assert repro.run_experiment is run_experiment
    for name in ("ExperimentResult", "MetricsRegistry", "RunManifest",
                 "Simulator", "RandomStreams", "SDPConfig", "Rack"):
        assert hasattr(repro, name), name


def test_cli_metrics_out_emits_manifest_and_exports(tmp_path):
    from repro.experiments.__main__ import main

    assert main(["hwcost", "--metrics-out", str(tmp_path)]) == 0
    manifest = json.loads((tmp_path / "hwcost.manifest.json").read_text())
    validate_manifest(manifest)
    assert manifest["experiment_id"] == "hwcost"
    assert manifest["metrics_enabled"] is True
    # hwcost is analytic (no simulation), so exports exist but may be
    # empty of samples; the parsers must still accept them.
    parse_jsonl((tmp_path / "hwcost.metrics.jsonl").read_text())
    parse_prometheus((tmp_path / "hwcost.metrics.prom").read_text())


def test_cli_seed_threads_into_manifest(tmp_path):
    from repro.experiments.__main__ import main

    assert main(["hwcost", "--seed", "9", "--metrics-out", str(tmp_path)]) == 0
    manifest = json.loads((tmp_path / "hwcost.manifest.json").read_text())
    assert manifest["root_seed"] == 9


# -- backend selection (event / vec / surrogate) -----------------------------


def test_unknown_backend_rejected_with_choices_listed():
    from repro.experiments.base import BACKENDS, validate_backend

    with pytest.raises(ValueError) as excinfo:
        validate_backend("quantum")
    for choice in BACKENDS:
        assert choice in str(excinfo.value)
    with pytest.raises(ValueError, match="event"):
        run_experiment("fig8", backend="quantum")


def test_backend_config_field_validates_at_construction():
    from repro.experiments.fig8_peak_throughput import Fig8Config
    from repro.experiments.fig10_multicore import Fig10Config

    with pytest.raises(ValueError, match="surrogate"):
        Fig8Config(backend="bogus")
    with pytest.raises(ValueError, match="vec"):
        Fig10Config(backend="warp")
    assert Fig8Config().backend == "event"


def test_backend_unsupported_experiment_lists_capable_ones():
    pytest.importorskip("numpy")
    with pytest.raises(ValueError) as excinfo:
        run_experiment("hwcost", backend="vec")
    message = str(excinfo.value)
    assert "fig8" in message and "cluster_scaleout" in message


def test_backend_capable_experiments_cover_the_issue_surface():
    from repro.experiments.registry import backend_capable_experiments

    assert {"fig8", "fig10a", "fig10b", "cluster_scaleout"} <= set(
        backend_capable_experiments()
    )


def test_vec_backend_without_numpy_gives_install_hint(monkeypatch):
    import repro.vec as vec

    monkeypatch.setattr(vec, "_np", None)
    with pytest.raises(ValueError, match="pip install"):
        run_experiment("fig8", backend="vec")
    from repro.experiments.fig8_peak_throughput import Fig8Config

    with pytest.raises(ValueError, match="pip install"):
        Fig8Config(backend="surrogate")


def test_cli_backend_errors_exit_nonzero_with_message(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig8", "--backend", "quantum"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "event" in err and "traceback" not in err.lower()

    assert main(["fig9a", "--backend", "vec"]) == 2
    err = capsys.readouterr().err
    assert "does not support" in err or "pip install" in err

    assert main(["nosuch"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_vec_backend_runs_fig8_and_stamps_manifest():
    pytest.importorskip("numpy")
    result = run_experiment("fig8", fast=True, backend="vec")
    assert result.manifest.backend == "vec"
    assert result.manifest.vec["backend"] == "vec"
    assert result.manifest.vec["numpy"] not in (None, "absent")
    validate_manifest(result.manifest.to_dict())
    # Same grid shape as the event path: rows carry the same keys.
    event_row = run_experiment("fig8", fast=True).rows[0]
    assert set(result.rows[0]) == set(event_row)


def test_fig8_hot_path_untouched_with_disabled_registry():
    # The Fig. 8 guard: under a *disabled* ambient registry the peak-
    # throughput hot path must build the exact uninstrumented system —
    # no hooks, no instruments, and bit-identical results.
    from repro.obs.runtime import active_registry
    from repro.sdp.config import SDPConfig
    from repro.sdp.runner import run_spinning
    from repro.sdp.system import DataPlaneSystem

    config = SDPConfig(num_queues=16, workload="packet-encapsulation",
                       shape="FB", seed=0)
    with active_registry(MetricsRegistry(enabled=False)):
        system = DataPlaneSystem(config)
        assert system._obs is None
        assert system.doorbell_write_hooks == []
        guarded = run_spinning(
            config, closed_loop=True, target_completions=400, max_seconds=0.5
        )
    plain = run_spinning(
        config, closed_loop=True, target_completions=400, max_seconds=0.5
    )
    assert guarded.completed == plain.completed
    assert guarded.throughput_mtps == pytest.approx(plain.throughput_mtps)
