"""The redesigned experiment API: run(config), shims, manifests, CLI."""

import json

import pytest

from repro.experiments import REGISTRY, ExperimentConfig, run_experiment
from repro.experiments.base import ExperimentResult
from repro.obs import MetricsRegistry, parse_jsonl, parse_prometheus, validate_manifest


def test_every_registry_entry_has_spec_fields():
    for experiment_id, spec in REGISTRY.items():
        assert spec.experiment_id == experiment_id
        assert callable(spec.runner)
        assert spec.summary
        config = spec.config(fast=True, seed=3)
        assert isinstance(config, ExperimentConfig)
        assert config.fast is True
        assert config.asdict()["fast"] is True


def test_configs_are_frozen():
    config = REGISTRY["fig8"].config()
    with pytest.raises(Exception):
        config.fast = False


def test_run_accepts_config_and_defaults():
    from repro.experiments.hwcost import HwCostConfig, run

    default = run()
    explicit = run(HwCostConfig(fast=True))
    assert default.rows == explicit.rows
    assert default.experiment_id == "hwcost"


def test_panel_configs_validate():
    from repro.experiments.fig9_zero_load import Fig9Config

    with pytest.raises(ValueError):
        Fig9Config(panel="z")


def test_v1_shims_removed_in_v2():
    # v2.0.0 removed the run_figX()/run_hwcost()/... deprecation shims
    # and the repro.sdp.tracing compatibility tracer; docs/api.md has
    # the migration table.
    import repro
    import repro.experiments.hwcost as hwcost_mod
    from repro.experiments import cluster_scaleout, fig3_dpdk

    assert repro.__version__.split(".")[0] == "2"
    assert not hasattr(hwcost_mod, "run_hwcost")
    assert not hasattr(fig3_dpdk, "run_fig3a")
    assert not hasattr(cluster_scaleout, "run_cluster_scaleout")
    with pytest.raises(ImportError):
        import repro.sdp.tracing  # noqa: F401
    from repro.experiments import base

    assert not hasattr(base, "deprecated_runner")


def test_run_experiment_attaches_valid_manifest():
    result = run_experiment("hwcost", fast=True, seed=5)
    manifest = result.manifest
    assert manifest is not None
    validate_manifest(manifest.to_dict())
    assert manifest.experiment_id == "hwcost"
    assert manifest.root_seed == 5
    assert manifest.config == {"fast": True, "seed": 5}
    assert manifest.metrics_enabled is False
    assert manifest.wall_seconds >= 0.0


def test_run_experiment_with_metrics_counts_events():
    registry = MetricsRegistry(enabled=True)
    result = run_experiment("fig3b", fast=True, metrics=registry)
    assert result.manifest.metrics_enabled is True
    assert result.manifest.sim_events > 0
    assert registry.as_dict()["sim.events_total"]["value"] == result.manifest.sim_events


def test_result_with_manifest_roundtrips_json():
    result = run_experiment("hwcost", fast=True)
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.manifest == result.manifest
    assert restored.rows == result.rows


def test_facade_exposes_experiment_api():
    import repro

    assert repro.run_experiment is run_experiment
    for name in ("ExperimentResult", "MetricsRegistry", "RunManifest",
                 "Simulator", "RandomStreams", "SDPConfig", "Rack"):
        assert hasattr(repro, name), name


def test_cli_metrics_out_emits_manifest_and_exports(tmp_path):
    from repro.experiments.__main__ import main

    assert main(["hwcost", "--metrics-out", str(tmp_path)]) == 0
    manifest = json.loads((tmp_path / "hwcost.manifest.json").read_text())
    validate_manifest(manifest)
    assert manifest["experiment_id"] == "hwcost"
    assert manifest["metrics_enabled"] is True
    # hwcost is analytic (no simulation), so exports exist but may be
    # empty of samples; the parsers must still accept them.
    parse_jsonl((tmp_path / "hwcost.metrics.jsonl").read_text())
    parse_prometheus((tmp_path / "hwcost.metrics.prom").read_text())


def test_cli_seed_threads_into_manifest(tmp_path):
    from repro.experiments.__main__ import main

    assert main(["hwcost", "--seed", "9", "--metrics-out", str(tmp_path)]) == 0
    manifest = json.loads((tmp_path / "hwcost.manifest.json").read_text())
    assert manifest["root_seed"] == 9


# -- backend selection (event / vec / surrogate) -----------------------------


def test_unknown_backend_rejected_with_choices_listed():
    from repro.experiments.base import UsageError, backend_names, validate_backend

    with pytest.raises(UsageError) as excinfo:
        validate_backend("quantum")
    for choice in backend_names():
        assert choice in str(excinfo.value)
    with pytest.raises(UsageError, match="event"):
        run_experiment("fig8", backend="quantum")


def test_backend_registry_is_extensible():
    from repro.experiments.base import (
        BACKEND_REGISTRY,
        BackendSpec,
        UsageError,
        backend_names,
        register_backend,
        validate_backend,
    )

    assert {"event", "vec", "surrogate", "dist"} <= set(backend_names())
    # A backend whose availability probe fails surfaces the hint.
    register_backend(
        BackendSpec("fpga", "test-only", requires=lambda: "no bitstream")
    )
    try:
        with pytest.raises(UsageError, match="no bitstream"):
            validate_backend("fpga")
        # The per-experiment supported subset is enforced too.
        with pytest.raises(UsageError, match="not supported here"):
            validate_backend("dist", supported=("event", "vec"))
    finally:
        del BACKEND_REGISTRY["fpga"]


def test_backend_config_field_validates_at_construction():
    from repro.experiments.fig8_peak_throughput import Fig8Config
    from repro.experiments.fig10_multicore import Fig10Config

    with pytest.raises(ValueError, match="surrogate"):
        Fig8Config(backend="bogus")
    with pytest.raises(ValueError, match="vec"):
        Fig10Config(backend="warp")
    assert Fig8Config().backend == "event"


def test_backend_unsupported_experiment_lists_capable_ones():
    pytest.importorskip("numpy")
    with pytest.raises(ValueError) as excinfo:
        run_experiment("hwcost", backend="vec")
    message = str(excinfo.value)
    assert "fig8" in message and "cluster_scaleout" in message


def test_backend_capable_experiments_cover_the_issue_surface():
    from repro.experiments.registry import backend_capable_experiments

    assert {"fig8", "fig10a", "fig10b", "cluster_scaleout"} <= set(
        backend_capable_experiments()
    )


def test_vec_backend_without_numpy_gives_install_hint(monkeypatch):
    import repro.vec as vec

    monkeypatch.setattr(vec, "_np", None)
    with pytest.raises(ValueError, match="pip install"):
        run_experiment("fig8", backend="vec")
    from repro.experiments.fig8_peak_throughput import Fig8Config

    with pytest.raises(ValueError, match="pip install"):
        Fig8Config(backend="surrogate")


def test_cli_backend_errors_exit_nonzero_with_message(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig8", "--backend", "quantum"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "event" in err and "traceback" not in err.lower()

    assert main(["fig9a", "--backend", "vec"]) == 2
    err = capsys.readouterr().err
    assert "does not support" in err or "pip install" in err

    assert main(["nosuch"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_vec_backend_runs_fig8_and_stamps_manifest():
    pytest.importorskip("numpy")
    result = run_experiment("fig8", fast=True, backend="vec")
    assert result.manifest.backend == "vec"
    assert result.manifest.vec["backend"] == "vec"
    assert result.manifest.vec["numpy"] not in (None, "absent")
    validate_manifest(result.manifest.to_dict())
    # Same grid shape as the event path: rows carry the same keys.
    event_row = run_experiment("fig8", fast=True).rows[0]
    assert set(result.rows[0]) == set(event_row)


def test_fig8_hot_path_untouched_with_disabled_registry():
    # The Fig. 8 guard: under a *disabled* ambient registry the peak-
    # throughput hot path must build the exact uninstrumented system —
    # no hooks, no instruments, and bit-identical results.
    from repro.obs.runtime import active_registry
    from repro.sdp.config import SDPConfig
    from repro.sdp.runner import run_spinning
    from repro.sdp.system import DataPlaneSystem

    config = SDPConfig(num_queues=16, workload="packet-encapsulation",
                       shape="FB", seed=0)
    with active_registry(MetricsRegistry(enabled=False)):
        system = DataPlaneSystem(config)
        assert system._obs is None
        assert system.doorbell_write_hooks == []
        guarded = run_spinning(
            config, closed_loop=True, target_completions=400, max_seconds=0.5
        )
    plain = run_spinning(
        config, closed_loop=True, target_completions=400, max_seconds=0.5
    )
    assert guarded.completed == plain.completed
    assert guarded.throughput_mtps == pytest.approx(plain.throughput_mtps)
