"""backend="dist" through the experiment API, replay sources, CLI codes."""

import json

import pytest

from repro.dist.replay import (
    PoissonSource,
    ReplayPacer,
    TraceFileSource,
    TraceRecord,
    parse_trace_line,
    take_window,
    write_trace,
)
from repro.experiments.base import UsageError
from repro.experiments.registry import run_experiment


# -- replay sources -----------------------------------------------------------


def test_poisson_source_matches_rack_draw_order():
    # The source must consume the exact random streams the rack does,
    # in the same per-record order: a fresh rack's first arrivals equal
    # the source's first records.
    from itertools import islice

    from repro.cluster.config import STREAM_ARRIVALS, STREAM_FLOWS
    from repro.sim.rng import RandomStreams
    from repro.traffic.arrivals import PoissonArrivals

    rate, seed = 50_000.0, 9
    source = iter(PoissonSource(rate, num_flows=8, flow_skew=0.0, seed=seed))
    records = list(islice(source, 50))
    times = [r.time for r in records]
    assert times == sorted(times)
    assert all(0 <= r.flow < 8 for r in records)
    # Reference: the same streams drawn by hand.
    streams = RandomStreams(seed)
    arrivals = PoissonArrivals(rate, streams.stream(STREAM_ARRIVALS))
    flow_rng = streams.stream(STREAM_FLOWS)
    now = 0.0
    for record in records[:10]:
        now += arrivals.next_interarrival()
        assert record.time == now
        expected_flow = min(int(flow_rng.random() * 8), 7)
        assert record.flow == expected_flow  # uniform weights: direct index


def test_trace_file_roundtrip_and_scaling(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    records = [
        TraceRecord(time=1e-4, flow=3),
        TraceRecord(time=2e-4, flow=5, service_s=1.5e-6, latency_s=9e-6),
    ]
    assert write_trace(path, iter(records)) == 2
    loaded = list(TraceFileSource(path))
    assert loaded[0].time == pytest.approx(1e-4)
    assert loaded[1].service_s == pytest.approx(1.5e-6)
    assert loaded[1].latency_s == pytest.approx(9e-6)
    scaled = list(TraceFileSource(path, time_scale=2.0))
    assert scaled[0].time == pytest.approx(2e-4)


def test_trace_parse_errors_are_located():
    with pytest.raises(ValueError, match="trace line 7"):
        parse_trace_line("not json", lineno=7)
    with pytest.raises(ValueError, match="'t' and 'flow'"):
        parse_trace_line('{"t": 1.0}', lineno=1)
    with pytest.raises(ValueError, match="non-negative"):
        parse_trace_line('{"t": -1.0, "flow": 0}', lineno=1)


def test_take_window_buffers_one_lookahead():
    source = iter(
        TraceRecord(time=t, flow=0) for t in (0.1, 0.2, 0.3, 0.9)
    )
    pending = []
    first = take_window(pending, source, until=0.25)
    assert [r.time for r in first] == [0.1, 0.2]
    assert [r.time for r in pending] == [0.3]
    second = take_window(pending, source, until=1.0)
    assert [r.time for r in second] == [0.3, 0.9]
    assert take_window(pending, source, until=2.0) == []


def test_pacer_zero_speed_never_sleeps():
    pacer = ReplayPacer(speed_factor=0.0)
    pacer.start(0.0)
    pacer.pace(10.0)  # ten simulated seconds: would block for ages if paced
    assert pacer.slept_s == 0.0
    with pytest.raises(ValueError):
        ReplayPacer(speed_factor=-1)


# -- the dist backend through the experiment registry ------------------------


def test_dist_replay_experiment_records_fleet_provenance():
    from repro.experiments.dist_replay import DistReplayConfig, run

    result = run(DistReplayConfig(servers=2, workers=2, requests=600, seed=4))
    assert result.experiment_id == "dist_replay"
    fleet = result.rows[0]
    assert fleet["node"] == "fleet"
    assert fleet["completed"] > 0
    assert [row["node"] for row in result.rows[1:]] == ["worker-0", "worker-1"]
    info = result.dist_info
    assert info["workers"] == 2
    assert info["transport"] == "unix"
    assert info["partial"] is False
    assert info["trace_records"] == 600
    assert len(info["nodes"]) == 2


def test_dist_replay_with_recorded_latencies_compares(tmp_path):
    from itertools import islice

    from repro.experiments.dist_replay import DistReplayConfig, run

    path = str(tmp_path / "recorded.jsonl")
    source = PoissonSource(200_000.0, num_flows=32, flow_skew=0.3, seed=1)
    records = [
        TraceRecord(time=r.time, flow=r.flow, latency_s=5e-6)
        for r in islice(iter(source), 600)
    ]
    write_trace(path, iter(records))
    result = run(
        DistReplayConfig(servers=2, workers=2, trace_path=path, seed=1)
    )
    assert any("vs recorded" in note for note in result.notes)
    assert result.dist_info["trace_records"] == 600


def test_run_experiment_threads_dist_knobs_into_manifest():
    result = run_experiment("dist_replay", fast=True, workers=2)
    manifest = result.manifest
    assert manifest.backend == "dist"
    assert manifest.dist["workers"] == 2
    assert manifest.dist["partial"] is False
    assert manifest.config["workers"] == 2
    restored = json.loads(manifest.to_json())
    assert restored["dist"]["transport"] == "unix"


def test_workers_flag_rejected_for_non_dist_experiments():
    with pytest.raises(UsageError, match="does not accept"):
        run_experiment("hwcost", workers=4)
    with pytest.raises(UsageError, match="dist"):
        run_experiment("fig9a", backend="dist")


def test_scaleout_config_carries_dist_fields():
    from repro.experiments.cluster_scaleout import ClusterScaleoutConfig

    config = ClusterScaleoutConfig(backend="dist", workers=2, speed_factor=0.5)
    assert config.asdict()["workers"] == 2
    assert "supported_backends" not in config.asdict()  # ClassVar, not state
    with pytest.raises(ValueError, match="workers"):
        ClusterScaleoutConfig(workers=0)


# -- CLI exit codes -----------------------------------------------------------


def test_cli_usage_errors_exit_2(capsys):
    from repro.experiments.__main__ import main

    assert main(["hwcost", "--workers", "3"]) == 2
    assert "does not accept" in capsys.readouterr().err
    assert main(["fig9a", "--backend", "dist"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "dist" in err
    assert main(["cluster_scaleout", "--backend", "warp"]) == 2
    assert "expected one of" in capsys.readouterr().err


def test_cli_worker_spawn_failure_exits_1(capsys, monkeypatch):
    import repro.experiments.__main__ as cli
    from repro.dist import WorkerSpawnError

    def explode(*args, **kwargs):
        raise WorkerSpawnError("workers [0, 1] never connected (waited 1s)")

    monkeypatch.setattr(cli, "run_experiment", explode)
    assert cli.main(["dist_replay"]) == 1
    err = capsys.readouterr().err
    assert "never connected" in err
