"""Tests for the functional-payload mode."""

import pytest

from repro.core.dataplane import build_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.functional import FunctionalAdapter, attach_functional_payloads
from repro.sdp.spinning import build_spinning_cores
from repro.sdp.system import DataPlaneSystem
from repro.workloads.service import WORKLOADS


def build_system(workload="packet-encapsulation", **overrides):
    defaults = dict(num_queues=8, workload=workload, shape="FB", seed=0)
    defaults.update(overrides)
    return DataPlaneSystem(SDPConfig(**defaults))


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_every_workload_verifies_end_to_end(workload):
    system = build_system(workload=workload)
    adapter = attach_functional_payloads(system, sample_rate=0.3)
    build_hyperplane(system)
    system.attach_open_loop(load=0.3, max_items=150)
    system.run(duration=0.05, warmup=0.0)
    adapter.assert_clean()
    assert adapter.stats.produced == 150
    assert adapter.stats.processed >= 140
    assert adapter.stats.verified > 10


def test_functional_mode_does_not_change_timing():
    def mean_latency(functional):
        system = build_system(service_scv=0.0, seed=3)
        if functional:
            attach_functional_payloads(system, sample_rate=1.0)
        build_hyperplane(system)
        system.attach_open_loop(load=0.2, max_items=200)
        system.run(duration=0.05, warmup=0.0)
        return system.metrics.latency.mean

    assert mean_latency(True) == mean_latency(False)


def test_functional_with_spinning_plane():
    system = build_system(workload="crypto-forwarding")
    adapter = attach_functional_payloads(system)
    build_spinning_cores(system)
    system.attach_open_loop(load=0.3, max_items=60)
    system.run(duration=0.05, warmup=0.0)
    adapter.assert_clean()


def test_assert_clean_requires_verification():
    system = build_system()
    adapter = attach_functional_payloads(system)
    with pytest.raises(AssertionError, match="nothing was verified"):
        adapter.assert_clean()


def test_corruption_is_detected():
    system = build_system()
    adapter = attach_functional_payloads(system)
    build_hyperplane(system)
    system.attach_open_loop(load=0.3, max_items=50)
    # Corrupt payloads mid-flight: swap every item's payload for a
    # packet with a different destination after generation.
    original_build = adapter._build

    def corrupt_process(payload):
        return False  # pretend the kernel output failed verification

    adapter._process = corrupt_process
    system.run(duration=0.05, warmup=0.0)
    assert adapter.stats.failures > 0
    with pytest.raises(AssertionError, match="failed kernel verification"):
        adapter.assert_clean()


def test_sample_rate_validation():
    system = build_system()
    with pytest.raises(ValueError):
        attach_functional_payloads(system, sample_rate=0.0)
    with pytest.raises(ValueError):
        attach_functional_payloads(system, sample_rate=1.5)
