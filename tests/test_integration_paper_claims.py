"""Integration tests asserting the paper's qualitative claims.

Each test runs small-but-real simulations and checks a *shape* the paper
reports: who wins, in which direction, roughly by how much. These are
the acceptance criteria listed in DESIGN.md.
"""

import pytest

from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning


def config(**overrides):
    defaults = dict(num_queues=200, workload="packet-encapsulation", shape="FB", seed=11)
    defaults.update(overrides)
    return SDPConfig(**defaults)


# -- queue scalability (Figs. 3, 8, 9) ---------------------------------------------


def test_claim_spinning_throughput_collapses_under_sq():
    small = run_spinning(
        config(num_queues=1, shape="SQ"), closed_loop=True,
        target_completions=1500, max_seconds=2.0,
    )
    large = run_spinning(
        config(num_queues=1000, shape="SQ"), closed_loop=True,
        target_completions=1500, max_seconds=2.0,
    )
    assert large.throughput_mtps < small.throughput_mtps / 20


def test_claim_hyperplane_flat_under_sq_and_nc():
    for shape in ("SQ", "NC"):
        small = run_hyperplane(
            config(num_queues=200, shape=shape), closed_loop=True,
            target_completions=1500, max_seconds=2.0,
        )
        large = run_hyperplane(
            config(num_queues=1000, shape=shape), closed_loop=True,
            target_completions=1500, max_seconds=2.0,
        )
        # Only the mild LLC-pressure droop is allowed (paper: slight).
        assert large.throughput_mtps > 0.5 * small.throughput_mtps


def test_claim_hyperplane_large_gain_at_1000_queues():
    spin = run_spinning(
        config(num_queues=1000, shape="SQ"), closed_loop=True,
        target_completions=1500, max_seconds=2.0,
    )
    hyper = run_hyperplane(
        config(num_queues=1000, shape="SQ"), closed_loop=True,
        target_completions=1500, max_seconds=2.0,
    )
    assert hyper.throughput_mtps / spin.throughput_mtps > 10


def test_claim_spinning_tail_grows_steeper_than_average():
    metrics = run_spinning(
        config(num_queues=1000, service_scv=0.0), load=0.01,
        target_completions=250, max_seconds=10.0,
    )
    assert metrics.latency.p99 > 1.8 * metrics.latency.mean


def test_claim_hyperplane_beats_spinning_from_few_queues():
    # Paper: HyperPlane loses by at most ~3% at one queue and wins from
    # about two queues on.
    one_spin = run_spinning(
        config(num_queues=1, service_scv=0.0), load=0.01,
        target_completions=250, max_seconds=5.0,
    )
    one_hyper = run_hyperplane(
        config(num_queues=1, service_scv=0.0), load=0.01,
        target_completions=250, max_seconds=5.0,
    )
    assert one_hyper.latency.mean <= 1.05 * one_spin.latency.mean
    many_spin = run_spinning(
        config(num_queues=64, service_scv=0.0), load=0.01,
        target_completions=250, max_seconds=5.0,
    )
    many_hyper = run_hyperplane(
        config(num_queues=64, service_scv=0.0), load=0.01,
        target_completions=250, max_seconds=5.0,
    )
    assert many_hyper.latency.mean < many_spin.latency.mean


# -- multicore organisations (Fig. 10) ------------------------------------------------


@pytest.fixture(scope="module")
def multicore_results():
    results = {}
    for system, runner in (("spin", run_spinning), ("hp", run_hyperplane)):
        for cluster_cores in (1, 4):
            metrics = runner(
                config(num_queues=400, num_cores=4, cluster_cores=cluster_cores),
                load=0.5,
                target_completions=3000,
                max_seconds=2.0,
            )
            results[(system, cluster_cores)] = metrics.latency.p99_us
    return results


def test_claim_scale_up_helps_hyperplane(multicore_results):
    assert multicore_results[("hp", 4)] < multicore_results[("hp", 1)]


def test_claim_scale_up_hurts_spinning(multicore_results):
    assert multicore_results[("spin", 4)] > multicore_results[("spin", 1)]


def test_claim_hyperplane_scale_up_is_best_overall(multicore_results):
    best_hp = multicore_results[("hp", 4)]
    assert all(
        best_hp <= value
        for key, value in multicore_results.items()
        if key != ("hp", 4)
    )


def test_claim_imbalance_hurts_scale_out_not_scale_up():
    def mean_latency(cluster_cores, imbalance):
        return run_spinning(
            config(
                num_queues=400, num_cores=4, cluster_cores=cluster_cores,
                shape="PC", imbalance=imbalance,
            ),
            load=0.8,
            target_completions=6000,
            max_seconds=2.0,
        ).latency.mean_us

    # At high load the overloaded scale-out cluster dominates latency.
    assert mean_latency(1, 0.10) > 1.1 * mean_latency(1, 0.0)


# -- work proportionality (Figs. 11, 12) ------------------------------------------------


def test_claim_spinning_ipc_decreases_with_load_hyperplane_increases():
    def activities(load):
        spin = run_spinning(
            config(shape="PC"), load=load, target_completions=1500, max_seconds=2.0
        ).chip_activity
        hyper = run_hyperplane(
            config(shape="PC"), load=load, target_completions=1500, max_seconds=2.0
        ).chip_activity
        return spin, hyper

    spin_low, hp_low = activities(0.02)
    spin_high, hp_high = activities(0.85)
    assert spin_low.ipc > spin_high.ipc  # disproportional
    assert hp_low.ipc < hp_high.ipc  # proportional
    assert spin_low.useless_instructions > 20 * spin_low.useful_instructions


def test_claim_hyperplane_halts_proportionally():
    low = run_hyperplane(
        config(), load=0.05, target_completions=500, max_seconds=2.0
    ).chip_activity
    high = run_hyperplane(
        config(), load=0.9, target_completions=2000, max_seconds=2.0
    ).chip_activity
    assert low.halt_fraction > 0.8
    assert high.halt_fraction < 0.3
