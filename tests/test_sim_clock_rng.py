"""Tests for the clock and random-stream utilities."""

import pytest

from repro.sim.clock import Clock
from repro.sim.rng import RandomStreams, derive_seed


def test_cycle_second_roundtrip():
    clock = Clock(frequency_hz=3.0e9)
    assert clock.seconds_to_cycles(clock.cycles_to_seconds(1234.0)) == pytest.approx(1234.0)


def test_us_and_ns_helpers():
    clock = Clock(frequency_hz=2.0e9)
    assert clock.us_to_cycles(1.0) == pytest.approx(2000.0)
    assert clock.ns_to_cycles(1.0) == pytest.approx(2.0)
    assert clock.cycles_to_us(2000.0) == pytest.approx(1.0)


def test_cycle_time():
    clock = Clock(frequency_hz=1.0e9)
    assert clock.cycle_time == pytest.approx(1e-9)


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        Clock(frequency_hz=0.0)


def test_derive_seed_distinct_for_similar_names():
    root = 42
    assert derive_seed(root, "producer-1") != derive_seed(root, "producer-11")
    assert derive_seed(root, "a") != derive_seed(root + 1, "a")


def test_stream_is_cached_and_deterministic():
    streams = RandomStreams(7)
    first = streams.stream("x")
    assert streams.stream("x") is first
    other = RandomStreams(7).stream("x")
    assert [first.random() for _ in range(5)] == [other.random() for _ in range(5)]


def test_streams_are_independent():
    streams = RandomStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_fork_namespaces_streams():
    parent = RandomStreams(1)
    child = parent.fork("sub")
    assert child.root_seed != parent.root_seed
    assert parent.fork("sub").root_seed == child.root_seed


def test_contains():
    streams = RandomStreams(0)
    assert "x" not in streams
    streams.stream("x")
    assert "x" in streams
