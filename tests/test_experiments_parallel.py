"""Tests for the parallel sweep helper (order, chunking, env override)."""

import pytest

from repro.experiments.parallel import default_processes, parallel_map


def square(value):
    return value * value


def negate(value):
    return -value


# -- default_processes -------------------------------------------------------


def test_default_processes_is_at_least_one():
    assert default_processes() >= 1


def test_repro_processes_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "3")
    assert default_processes() == 3
    monkeypatch.setenv("REPRO_PROCESSES", "1")
    assert default_processes() == 1


def test_repro_processes_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "many")
    with pytest.raises(ValueError):
        default_processes()
    monkeypatch.setenv("REPRO_PROCESSES", "0")
    with pytest.raises(ValueError):
        default_processes()


def test_parallel_map_honours_env_override(monkeypatch):
    # Forcing one worker takes the serial in-process path even for
    # many points.
    monkeypatch.setenv("REPRO_PROCESSES", "1")
    assert parallel_map(square, list(range(10))) == [v * v for v in range(10)]


# -- order preservation ------------------------------------------------------


def test_results_arrive_in_submission_order_serial():
    points = [5, 3, 1, 4, 2]
    assert parallel_map(square, points, processes=1) == [25, 9, 1, 16, 4]


def test_results_arrive_in_submission_order_across_processes():
    points = list(range(20, 0, -1))
    assert parallel_map(square, points, processes=2) == [v * v for v in points]


# -- chunk_size edge cases ---------------------------------------------------


def test_empty_input_returns_empty_list():
    assert parallel_map(square, [], processes=4) == []
    assert parallel_map(square, [], processes=1) == []


def test_single_point_stays_in_process():
    assert parallel_map(square, [7], processes=4) == [49]


def test_chunk_size_larger_than_input():
    points = [1, 2, 3]
    assert parallel_map(negate, points, processes=2, chunk_size=100) == [-1, -2, -3]


def test_chunk_size_batches_preserve_order():
    points = list(range(11))
    assert parallel_map(negate, points, processes=2, chunk_size=4) == [
        -v for v in points
    ]


# -- auto chunking -----------------------------------------------------------


def test_auto_chunk_size_heuristic():
    from repro.experiments.parallel import auto_chunk_size

    # Four chunks per worker, floored at one point per chunk.
    assert auto_chunk_size(1000, 8) == 31
    assert auto_chunk_size(100, 4) == 6
    assert auto_chunk_size(6, 4) == 1
    assert auto_chunk_size(0, 4) == 1
    with pytest.raises(ValueError):
        auto_chunk_size(10, 0)


def test_default_chunk_size_is_auto_and_order_preserved():
    points = list(range(64))
    # No explicit chunk_size: the heuristic picks 64 // (4*2) = 8.
    assert parallel_map(negate, points, processes=2) == [-v for v in points]


def test_explicit_chunk_size_still_honoured():
    points = list(range(10))
    assert parallel_map(negate, points, processes=2, chunk_size=1) == [
        -v for v in points
    ]
    with pytest.raises(ValueError):
        parallel_map(negate, points, processes=2, chunk_size=0)


# -- instrumented fan-out ----------------------------------------------------


def touch_metrics(value):
    from repro.obs.runtime import get_active_registry

    registry = get_active_registry()
    assert registry is not None, "worker task should see a per-task registry"
    registry.counter("test.calls", help="calls").inc()
    registry.counter("test.sum", help="sum").inc(value)
    registry.histogram("test.values", buckets=(1.0, 10.0, 100.0)).observe(value)
    return value * 2


def _instrumented_run(processes):
    from repro.obs.registry import MetricsRegistry
    from repro.obs.runtime import active_registry

    registry = MetricsRegistry(enabled=True)
    points = list(range(1, 13))
    with active_registry(registry):
        results = parallel_map(touch_metrics, points, processes=processes)
    return results, registry.as_dict()


def test_instrumented_sweep_merges_into_ambient_registry():
    results, metrics = _instrumented_run(processes=2)
    assert results == [v * 2 for v in range(1, 13)]
    assert metrics["test.calls"]["value"] == 12.0
    assert metrics["test.sum"]["value"] == float(sum(range(1, 13)))
    assert metrics["test.values"]["count"] == 12


def test_instrumented_sweep_identical_serial_vs_parallel():
    serial = _instrumented_run(processes=1)
    parallel = _instrumented_run(processes=3)
    assert serial == parallel


def test_uninstrumented_sweep_returns_bare_results():
    # No ambient registry: results must not be (result, snapshot) pairs.
    assert parallel_map(square, [2, 3], processes=2) == [4, 9]
