"""Tests for the parallel sweep helper (order, chunking, env override)."""

import pytest

from repro.experiments.parallel import default_processes, parallel_map


def square(value):
    return value * value


def negate(value):
    return -value


# -- default_processes -------------------------------------------------------


def test_default_processes_is_at_least_one():
    assert default_processes() >= 1


def test_repro_processes_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "3")
    assert default_processes() == 3
    monkeypatch.setenv("REPRO_PROCESSES", "1")
    assert default_processes() == 1


def test_repro_processes_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESSES", "many")
    with pytest.raises(ValueError):
        default_processes()
    monkeypatch.setenv("REPRO_PROCESSES", "0")
    with pytest.raises(ValueError):
        default_processes()


def test_parallel_map_honours_env_override(monkeypatch):
    # Forcing one worker takes the serial in-process path even for
    # many points.
    monkeypatch.setenv("REPRO_PROCESSES", "1")
    assert parallel_map(square, list(range(10))) == [v * v for v in range(10)]


# -- order preservation ------------------------------------------------------


def test_results_arrive_in_submission_order_serial():
    points = [5, 3, 1, 4, 2]
    assert parallel_map(square, points, processes=1) == [25, 9, 1, 16, 4]


def test_results_arrive_in_submission_order_across_processes():
    points = list(range(20, 0, -1))
    assert parallel_map(square, points, processes=2) == [v * v for v in points]


# -- chunk_size edge cases ---------------------------------------------------


def test_empty_input_returns_empty_list():
    assert parallel_map(square, [], processes=4) == []
    assert parallel_map(square, [], processes=1) == []


def test_single_point_stays_in_process():
    assert parallel_map(square, [7], processes=4) == [49]


def test_chunk_size_larger_than_input():
    points = [1, 2, 3]
    assert parallel_map(negate, points, processes=2, chunk_size=100) == [-1, -2, -3]


def test_chunk_size_batches_preserve_order():
    points = list(range(11))
    assert parallel_map(negate, points, processes=2, chunk_size=4) == [
        -v for v in points
    ]
