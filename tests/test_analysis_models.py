"""Validation: closed-form models against the simulator."""

import pytest

from repro.analysis import (
    AnalyticInputs,
    hyperplane_peak_throughput,
    hyperplane_response_time,
    hyperplane_zero_load_latency,
    spinning_peak_throughput,
    spinning_zero_load_latency,
)
from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning


def inputs(**overrides):
    defaults = dict(
        workload="packet-encapsulation", shape="SQ", num_queues=200, num_cores=1
    )
    defaults.update(overrides)
    return AnalyticInputs(**defaults)


def config(**overrides):
    defaults = dict(num_queues=200, workload="packet-encapsulation", shape="SQ", seed=2)
    defaults.update(overrides)
    return SDPConfig(**defaults)


# -- peak throughput -----------------------------------------------------------------


@pytest.mark.parametrize("shape", ["SQ", "NC", "PC", "FB"])
def test_spinning_peak_matches_simulation(shape):
    predicted = spinning_peak_throughput(inputs(shape=shape)) / 1e6
    simulated = run_spinning(
        config(shape=shape), closed_loop=True, target_completions=2500,
        max_seconds=2.0,
    ).throughput_mtps
    assert simulated == pytest.approx(predicted, rel=0.25)


@pytest.mark.parametrize("num_queues", [8, 200, 1000])
def test_hyperplane_peak_matches_simulation(num_queues):
    predicted = hyperplane_peak_throughput(inputs(num_queues=num_queues)) / 1e6
    simulated = run_hyperplane(
        config(num_queues=num_queues), closed_loop=True,
        target_completions=2500, max_seconds=2.0,
    ).throughput_mtps
    assert simulated == pytest.approx(predicted, rel=0.15)


def test_analytic_fig8_ordering():
    # The formulas alone reproduce Fig. 8's ordering at 1000 queues.
    sq = spinning_peak_throughput(inputs(shape="SQ", num_queues=1000))
    nc = spinning_peak_throughput(inputs(shape="NC", num_queues=1000))
    fb = spinning_peak_throughput(inputs(shape="FB", num_queues=1000))
    hyper = hyperplane_peak_throughput(inputs(num_queues=1000))
    assert sq < nc < fb
    assert hyper > 10 * sq


# -- zero-load latency --------------------------------------------------------------


@pytest.mark.parametrize("num_queues", [64, 512, 1000])
def test_spinning_zero_load_latency_matches_simulation(num_queues):
    predicted = spinning_zero_load_latency(inputs(shape="FB", num_queues=num_queues))
    simulated = run_spinning(
        config(shape="FB", num_queues=num_queues, service_scv=0.0),
        load=0.01, target_completions=250, max_seconds=10.0,
    ).latency.mean
    assert simulated == pytest.approx(predicted, rel=0.30)


def test_spinning_tail_percentile_formula():
    p50 = spinning_zero_load_latency(inputs(num_queues=1000), percentile=0.5)
    p99 = spinning_zero_load_latency(inputs(num_queues=1000), percentile=0.99)
    mean = spinning_zero_load_latency(inputs(num_queues=1000))
    assert p50 == pytest.approx(mean, rel=0.01)  # uniform scan distance
    assert p99 > 1.8 * mean


def test_hyperplane_zero_load_latency_matches_simulation():
    predicted = hyperplane_zero_load_latency(inputs(shape="FB"))
    simulated = run_hyperplane(
        config(shape="FB", service_scv=0.0), load=0.01,
        target_completions=250, max_seconds=5.0,
    ).latency.mean
    assert simulated == pytest.approx(predicted, rel=0.10)


def test_power_optimized_adds_c1_wakeup():
    regular = hyperplane_zero_load_latency(inputs())
    powered = hyperplane_zero_load_latency(inputs(), power_optimized=True)
    assert powered - regular == pytest.approx(0.5e-6, rel=0.01)


# -- loaded response time --------------------------------------------------------------


@pytest.mark.parametrize("load", [0.3, 0.6])
def test_hyperplane_response_time_matches_simulation(load):
    model = inputs(shape="FB", num_queues=64, num_cores=4)
    predicted = hyperplane_response_time(model, load)
    simulated = run_hyperplane(
        config(shape="FB", num_queues=64, num_cores=4, cluster_cores=4),
        load=load, target_completions=12000, max_seconds=3.0,
    ).latency.mean
    assert simulated == pytest.approx(predicted, rel=0.30)


def test_response_time_percentile_exceeds_mean():
    model = inputs(shape="FB", num_queues=64, num_cores=4)
    assert hyperplane_response_time(model, 0.6, percentile=0.99) > (
        hyperplane_response_time(model, 0.6)
    )


def test_response_time_validation():
    model = inputs()
    with pytest.raises(ValueError):
        hyperplane_response_time(model, 0.0)
    with pytest.raises(ValueError):
        hyperplane_response_time(model, 1.0)
    with pytest.raises(ValueError):
        spinning_zero_load_latency(model, percentile=1.5)


def test_inputs_accept_strings_and_derive_locality():
    model = AnalyticInputs(workload="crypto", shape="pc", num_queues=100)
    assert model.workload.name == "crypto-forwarding"
    assert model.shape.name == "PC"
    assert model.locality is not None
