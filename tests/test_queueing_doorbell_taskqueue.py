"""Tests for doorbells, task queues, and the spinlock model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import Doorbell, QueueFullError, SpinLock, TaskQueue, WorkItem


def make_queue(qid=0, capacity=8):
    return TaskQueue(qid, Doorbell(qid, 0x1000), capacity=capacity)


def item(i, qid=0, t=0.0):
    return WorkItem(item_id=i, qid=qid, arrival_time=t, service_time=1e-6)


def test_doorbell_counter_semantics():
    doorbell = Doorbell(0, 0x1000)
    assert doorbell.is_empty()
    doorbell.producer_increment()
    doorbell.producer_increment(2)
    assert doorbell.count == 3
    doorbell.consumer_decrement()
    assert doorbell.count == 2


def test_doorbell_rejects_underflow_and_bad_amounts():
    doorbell = Doorbell(0, 0)
    with pytest.raises(ValueError):
        doorbell.consumer_decrement()
    with pytest.raises(ValueError):
        doorbell.producer_increment(0)
    with pytest.raises(ValueError):
        doorbell.producer_increment(-1)


def test_write_hooks_fire_on_producer_only():
    doorbell = Doorbell(0, 0)
    calls = []
    doorbell.add_write_hook(lambda db: calls.append(db.count))
    doorbell.producer_increment()
    doorbell.producer_increment()
    doorbell.consumer_decrement()
    assert calls == [1, 2]  # decrement did not fire


def test_enqueue_rings_doorbell_and_dequeue_decrements():
    queue = make_queue()
    queue.enqueue(item(0))
    assert queue.doorbell.count == 1
    out = queue.dequeue(now=2.0)
    assert out.item_id == 0
    assert out.dequeue_time == 2.0
    assert queue.doorbell.count == 0
    queue.check_invariants()


def test_fifo_order():
    queue = make_queue()
    for i in range(5):
        queue.enqueue(item(i))
    assert [queue.dequeue(0.0).item_id for i in range(5)] == list(range(5))


def test_drop_on_full():
    queue = make_queue(capacity=2)
    assert queue.enqueue(item(0))
    assert queue.enqueue(item(1))
    assert not queue.enqueue(item(2))
    assert queue.stats.dropped == 1
    assert queue.doorbell.count == 2  # dropped item did not ring


def test_raise_on_full_when_requested():
    queue = make_queue(capacity=1)
    queue.enqueue(item(0))
    with pytest.raises(QueueFullError):
        queue.enqueue(item(1), drop_on_full=False)


def test_wrong_qid_rejected():
    queue = make_queue(qid=3)
    with pytest.raises(ValueError):
        queue.enqueue(item(0, qid=4))
    with pytest.raises(ValueError):
        TaskQueue(1, Doorbell(2, 0))


def test_dequeue_empty_raises():
    queue = make_queue()
    with pytest.raises(IndexError):
        queue.dequeue(0.0)


def test_latency_and_wait_require_completion():
    work = item(0, t=1.0)
    with pytest.raises(ValueError):
        _ = work.latency
    with pytest.raises(ValueError):
        _ = work.wait
    work.dequeue_time = 2.0
    work.completion_time = 3.0
    assert work.wait == pytest.approx(1.0)
    assert work.latency == pytest.approx(2.0)


def test_stats_max_depth():
    queue = make_queue()
    for i in range(3):
        queue.enqueue(item(i))
    queue.dequeue(0.0)
    queue.enqueue(item(9))
    assert queue.stats.max_depth == 3
    assert queue.stats.enqueued == 4
    assert queue.stats.dequeued == 1


def test_peek_arrival_time():
    queue = make_queue()
    assert queue.peek_arrival_time() is None
    queue.enqueue(item(0, t=5.0))
    assert queue.peek_arrival_time() == 5.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_property_doorbell_always_matches_occupancy(operations):
    queue = make_queue(capacity=1000)
    next_id = 0
    for is_enqueue in operations:
        if is_enqueue or queue.is_empty():
            queue.enqueue(item(next_id))
            next_id += 1
        else:
            queue.dequeue(0.0)
        queue.check_invariants()


def test_spinlock_costs():
    lock = SpinLock(uncontended_cycles=40, transfer_cycles=80)
    first = lock.acquire_cost(0, contenders=1)
    assert first == 120  # new owner pays a transfer
    again = lock.acquire_cost(0, contenders=1)
    assert again == 40  # lock line stays local
    contended = lock.acquire_cost(1, contenders=4)
    assert contended == 40 + 80 + 3 * 40
    assert lock.contention_rate == pytest.approx(1 / 3)


def test_spinlock_validates_contenders():
    with pytest.raises(ValueError):
        SpinLock().acquire_cost(0, contenders=0)
