"""Causal span tracing: observation-only probes, bit-exact attribution.

The two contracts everything else rests on:

1. A traced run's *simulated* results are bit-identical to an untraced
   run — probes observe, they never schedule. Checked against the fast
   model (heap and calendar backends, all four notification
   mechanisms), the execution-driven structural model (spin
   fast-forward batching active), and the rack simulation.
2. Every request span's cycle breakdown sums *bit-exactly* (fixed
   category order) to the span's duration in cycles.
"""

import pytest

from repro.obs.trace import (
    CATEGORIES,
    NULL_TRACER,
    Span,
    Tracer,
    active_tracer,
    attribute_residual,
    breakdown_sum,
    get_active_tracer,
    set_active_tracer,
)
from repro.obs.trace_report import decomposition_rows, sum_problems
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_interrupts, run_mwait, run_spinning
from repro.sdp.spinning import build_spinning_cores
from repro.sdp.system import DataPlaneSystem
from repro.sim.engine import Simulator


def latency_fingerprint(metrics):
    """The simulated-result fields a probe could plausibly perturb."""
    return (
        metrics.latency.count,
        metrics.latency.mean_us,
        metrics.latency.p99_us,
        metrics.throughput_mtps,
    )


# -- attribution arithmetic ---------------------------------------------------


def test_attribute_residual_is_bit_exact():
    # Values chosen so naive float summation does not telescope.
    cases = [
        (1234.5678, {"notify_wait": 0.1, "queueing": 0.2, "service": 1000.1}),
        (3.0e9 * 1.7e-6, {"notify_wait": 1e-9, "service": 5099.999999}),
        (7.0, {}),
        (0.0, {}),
        (1e18, {"queueing": 1.0, "coherence": 3.0}),
    ]
    for total, partial in cases:
        closed = attribute_residual(total, partial)
        assert breakdown_sum(closed) == total  # bit-exact, not approx
        for category, value in partial.items():
            assert closed[category] == value


def test_attribute_cycles_rejects_unknown_categories():
    span = Span(trace_id=0, span_id=0, name="request", start=0.0)
    with pytest.raises(ValueError, match="unknown cycle categories"):
        span.attribute_cycles(100.0, waiting=5.0)
    breakdown = span.attribute_cycles(100.0, service=40.0)
    assert breakdown_sum(breakdown) == 100.0
    assert set(breakdown) == set(CATEGORIES)


def test_span_dict_roundtrip_preserves_everything():
    span = Span(trace_id=3, span_id=7, name="request", start=1.5e-6, parent_id=2)
    span.end = 2.5e-6
    span.set_attribute("item_id", 42)
    span.add_event(1.6e-6, "doorbell_ready", qid=5)
    span.attribute_cycles(3000.0, service=2000.0)
    restored = Span.from_dict(span.to_dict())
    assert restored.to_dict() == span.to_dict()
    assert restored.duration == span.duration
    assert restored.events == span.events


# -- tracer mechanics ---------------------------------------------------------


def test_tracer_span_tree_and_queries():
    tracer = Tracer(seed=0)
    root = tracer.begin("request", 0.0, item_id=1)
    child = tracer.begin("queue.wait", 0.1, parent=root)
    tracer.end(child, 0.4)
    tracer.end(root, 1.0)
    assert len(tracer) == 2
    assert tracer.roots() == [root]
    assert tracer.children(root) == [child]
    assert child.trace_id == root.trace_id
    assert tracer.trace(root.trace_id) == [child, root]


def test_tracer_span_cap_drops_and_counts():
    tracer = Tracer(seed=0, max_spans=3)
    for i in range(5):
        tracer.end(tracer.begin("request", float(i)), float(i) + 0.5)
    assert len(tracer.spans) == 3
    assert tracer.dropped_traces == 2


def test_record_requires_ended_span():
    tracer = Tracer(seed=0)
    open_span = tracer.begin("request", 0.0)
    with pytest.raises(ValueError, match="must be ended"):
        tracer.record(open_span)


def test_finalizers_drain_once_but_finalize_is_repeatable():
    tracer = Tracer(seed=0)
    calls = []
    tracer.add_finalizer(lambda: calls.append("a"))
    tracer.finalize()
    tracer.finalize()
    assert calls == ["a"]
    tracer.add_finalizer(lambda: calls.append("b"))
    tracer.finalize()
    assert calls == ["a", "b"]


def test_sampling_is_deterministic_and_rate_sensitive():
    tracer = Tracer(seed=11, sample_rate=0.5)
    decisions = [tracer.sampled(f"item:{i}") for i in range(400)]
    # Same seed, same keys -> same decisions, in any order.
    again = Tracer(seed=11, sample_rate=0.5)
    assert [again.sampled(f"item:{i}") for i in reversed(range(400))] == list(
        reversed(decisions)
    )
    kept = sum(decisions)
    assert 120 < kept < 280  # ~50%, loose bounds
    assert any(decisions) and not all(decisions)
    # A different seed samples a different subset.
    other = Tracer(seed=12, sample_rate=0.5)
    assert [other.sampled(f"item:{i}") for i in range(400)] != decisions
    # Rate extremes short-circuit.
    assert Tracer(seed=0, sample_rate=1.0).sampled("x")
    assert not Tracer(seed=0, sample_rate=0.0).sampled("x")


def test_tracer_rejects_bad_parameters():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)
    with pytest.raises(ValueError):
        Tracer(max_spans=0)


# -- ambient context ----------------------------------------------------------


def test_active_tracer_scoping_and_disabled_tracers():
    assert get_active_tracer() is None
    tracer = Tracer(seed=0)
    with active_tracer(tracer):
        assert get_active_tracer() is tracer
        with active_tracer(None):
            assert get_active_tracer() is None
        assert get_active_tracer() is tracer
    assert get_active_tracer() is None
    # A disabled tracer is never handed to components.
    with active_tracer(NULL_TRACER):
        assert get_active_tracer() is None


def test_set_active_tracer_returns_previous():
    tracer = Tracer(seed=0)
    assert set_active_tracer(tracer) is None
    try:
        assert set_active_tracer(None) is tracer
    finally:
        set_active_tracer(None)


def test_null_tracer_is_inert():
    span = NULL_TRACER.begin("request", 0.0)
    assert NULL_TRACER.begin("other", 1.0) is span  # shared, no alloc
    NULL_TRACER.end(span, 2.0)
    NULL_TRACER.add_finalizer(lambda: (_ for _ in ()).throw(AssertionError))
    NULL_TRACER.finalize()
    assert NULL_TRACER.spans == []
    assert not NULL_TRACER.sampled("anything")


def test_untraced_system_installs_no_probes():
    system = DataPlaneSystem(SDPConfig(num_queues=16, seed=0))
    assert system._trace_probe is None
    assert system.doorbell_write_hooks == []
    assert system.on_dequeue_hooks == []


# -- traced == untraced, fast model -------------------------------------------

CONFIG = SDPConfig(num_queues=64, seed=3)
RUN_KWARGS = dict(load=0.3, target_completions=400, max_seconds=2.0)


@pytest.mark.parametrize(
    "runner", [run_spinning, run_mwait, run_interrupts], ids=lambda r: r.__name__
)
def test_traced_run_bit_identical_and_exact_all_mechanisms(runner):
    baseline = latency_fingerprint(runner(CONFIG, **RUN_KWARGS))
    tracer = Tracer(seed=3)
    with active_tracer(tracer):
        traced = runner(CONFIG, **RUN_KWARGS)
    tracer.finalize()
    assert latency_fingerprint(traced) == baseline
    roots = tracer.roots()
    # Probes see every completion, including warmup ones the latency
    # recorder excludes.
    assert len(roots) >= traced.latency.count
    assert sum_problems(tracer) == []  # every breakdown bit-exact
    for root in roots[:20]:
        assert root.attributes["mechanism"] == traced.label
        names = sorted(child.name for child in tracer.children(root))
        assert names == ["queue.wait", "service"]
        assert root.cycles is not None


def test_traced_hyperplane_bit_identical_and_exact():
    from repro.core.runner import run_hyperplane

    baseline = latency_fingerprint(run_hyperplane(CONFIG, **RUN_KWARGS))
    tracer = Tracer(seed=3)
    with active_tracer(tracer):
        traced = run_hyperplane(CONFIG, **RUN_KWARGS)
    tracer.finalize()
    assert latency_fingerprint(traced) == baseline
    assert len(tracer.roots()) >= traced.latency.count
    assert sum_problems(tracer) == []
    assert tracer.roots()[0].attributes["mechanism"] == traced.label


def _run_spinning_on(sim_backend, tracer=None):
    config = SDPConfig(num_queues=64, seed=9)
    # Ambient at *build* time governs probing.
    with active_tracer(tracer):
        system = DataPlaneSystem(config, sim=Simulator(backend=sim_backend))
    build_spinning_cores(system)
    system.attach_open_loop(load=0.3)
    warmup = 200.0 * config.workload.mean_service_seconds
    return system.run(duration=2.0, warmup=warmup, target_completions=300)


def test_traced_run_bit_identical_on_calendar_backend():
    baseline = latency_fingerprint(_run_spinning_on("calendar"))
    tracer = Tracer(seed=9)
    traced = _run_spinning_on("calendar", tracer=tracer)
    tracer.finalize()
    assert latency_fingerprint(traced) == baseline
    assert len(tracer.roots()) >= traced.latency.count
    assert sum_problems(tracer) == []
    # And the calendar backend agrees with the heap backend, traced.
    assert latency_fingerprint(_run_spinning_on("heap")) == baseline


def test_sampled_tracing_keeps_results_identical_and_subset_stable():
    baseline = latency_fingerprint(run_spinning(CONFIG, **RUN_KWARGS))

    def traced_items(seed):
        tracer = Tracer(seed=seed, sample_rate=0.3)
        with active_tracer(tracer):
            traced = run_spinning(CONFIG, **RUN_KWARGS)
        tracer.finalize()
        assert latency_fingerprint(traced) == baseline
        assert sum_problems(tracer) == []
        return {root.attributes["item_id"] for root in tracer.roots()}

    first = traced_items(21)
    assert 0 < len(first) < 400  # a strict subset was kept
    assert traced_items(21) == first  # deterministically the same subset
    assert traced_items(22) != first


# -- traced == untraced, structural model (spin fast-forward) -----------------


def _run_structural(tracer=None):
    from repro.structural.machine import StructuralMachine
    from repro.structural.spinning import StructuralSpinningCore

    def build():
        machine = StructuralMachine(
            num_queues=8, num_producers=1, num_consumers=1, seed=7
        )
        core = StructuralSpinningCore(machine)
        return machine, core

    if tracer is not None:
        with active_tracer(tracer):
            machine, core = build()
    else:
        machine, core = build()
    machine.start_producers(total_rate=100_000.0, max_items=40)
    metrics = machine.run(duration=0.05, target_completions=40)
    return machine, core, metrics


def test_traced_structural_bit_identical_under_fast_forward():
    machine, core, metrics = _run_structural()
    baseline = (
        latency_fingerprint(metrics),
        core.polls,
        machine.sim.events_dispatched,
    )
    tracer = Tracer(seed=7)
    machine, core, traced = _run_structural(tracer=tracer)
    tracer.finalize()
    assert (
        latency_fingerprint(traced),
        core.polls,
        machine.sim.events_dispatched,
    ) == baseline
    roots = tracer.roots()
    assert len(roots) >= traced.latency.count
    assert sum_problems(tracer) == []
    # Structural coherence is *measured* per dequeue, not a constant.
    assert any(root.cycles["coherence"] > 0 for root in roots)


# -- traced == untraced, rack scale -------------------------------------------


def _run_rack(tracer=None):
    from repro.cluster import ClusterConfig, run_cluster

    config = ClusterConfig(
        num_servers=2,
        notification="spinning",
        queues_per_server=64,
        num_flows=8,
        seed=5,
    )
    kwargs = dict(load=0.3, duration=0.02, warmup=0.004, target_completions=300)
    if tracer is not None:
        with active_tracer(tracer):
            return run_cluster(config, **kwargs)
    return run_cluster(config, **kwargs)


def test_traced_rack_bit_identical_with_causal_links():
    baseline = _run_rack().metrics.summary()
    tracer = Tracer(seed=5)
    rack = _run_rack(tracer=tracer)
    tracer.finalize()
    assert rack.metrics.summary() == baseline
    assert sum_problems(tracer) == []

    rpcs = [span for span in tracer.roots() if span.name == "rpc"]
    assert rpcs
    linked = requests = 0
    for rpc in rpcs[:50]:
        kinds = [child.name for child in tracer.children(rpc)]
        linked += kinds.count("dispatch.link")
        requests += kinds.count("request")
        assert rpc.attributes["mechanism"] == "cluster/spinning"
    assert linked > 0 and requests > 0
    # Server-side request trees still carry queue.wait/service children.
    request = next(
        span for span in tracer.spans
        if span.name == "request" and span.parent_id is not None
    )
    names = sorted(child.name for child in tracer.children(request))
    assert names == ["queue.wait", "service"]


# -- decomposition report -----------------------------------------------------


def test_decomposition_rows_shares_sum_to_one():
    tracer = Tracer(seed=3)
    with active_tracer(tracer):
        run_spinning(CONFIG, **RUN_KWARGS)
    tracer.finalize()
    rows = decomposition_rows(tracer)
    assert [row["mechanism"] for row in rows] == ["spinning/scale-out"]
    row = rows[0]
    assert row["requests"] == len(tracer.roots())
    shares = sum(row[f"{category}_share"] for category in CATEGORIES)
    assert shares == pytest.approx(1.0)
    assert row["mean_us"] == pytest.approx(
        sum(row[f"{category}_us"] for category in CATEGORIES)
    )


# -- experiment wiring --------------------------------------------------------


def test_run_with_tracing_appends_breakdown_notes():
    from dataclasses import dataclass

    from repro.experiments.base import ExperimentConfig, ExperimentResult, run_with_tracing

    @dataclass(frozen=True)
    class TracedConfig(ExperimentConfig):
        trace: bool = True

    def body():
        run_spinning(CONFIG, **RUN_KWARGS)
        return ExperimentResult("tiny", "tiny traced run")

    result = run_with_tracing(TracedConfig(seed=3), body)
    assert any(note.startswith("trace[spinning/scale-out]") for note in result.notes)
    assert get_active_tracer() is None  # scope did not leak

    untraced = run_with_tracing(TracedConfig(seed=3, trace=False), body)
    assert untraced.notes == []
