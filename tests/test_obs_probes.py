"""Instrumentation probes: sdp, mem, cluster, sim — wired end to end."""

import pytest

from repro.cluster import ClusterConfig, run_cluster
from repro.mem.costmodel import empty_poll_cost_curve
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import active_registry
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning


def small_config(seed: int = 3) -> SDPConfig:
    return SDPConfig(num_queues=8, num_cores=2, seed=seed)


def instrumented_run(seed: int = 3) -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    with active_registry(registry):
        run_spinning(
            small_config(seed), load=0.5, target_completions=500, max_seconds=0.05
        )
    return registry


# -- sdp + sim probes --------------------------------------------------------


def test_sdp_probes_carry_samples():
    data = instrumented_run().as_dict()
    assert data["sdp.queue_depth"]["samples"], "queue-depth timeline must be sampled"
    assert data["sdp.enqueues"]["value"] > 0
    assert data["sdp.dequeues"]["value"] > 0
    assert data["sdp.completions"]["value"] > 0
    assert data["sim.events_total"]["value"] > 0


def test_wake_latency_histogram_populates():
    data = instrumented_run().as_dict()
    record = data["sdp.notification_wake_latency_seconds"]
    assert record["count"] > 0
    assert record["sum"] >= 0.0


def test_per_core_occupancy_gauges():
    data = instrumented_run().as_dict()
    for core in range(2):
        occupancy = data[f"sdp.core{core}.occupancy"]["value"]
        assert 0.0 <= occupancy <= 1.0
    assert sum(data[f"sdp.core{c}.tasks"]["value"] for c in range(2)) > 0


def test_sim_engine_gauges():
    data = instrumented_run().as_dict()
    assert data["sim.events_dispatched"]["value"] > 0
    assert data["sim.process_wakes"]["value"] > 0
    assert data["sim.now_seconds"]["value"] > 0.0


def test_queue_depth_timeline_is_time_ordered():
    samples = instrumented_run().as_dict()["sdp.queue_depth"]["samples"]
    times = [t for t, _ in samples]
    assert times == sorted(times)
    assert all(depth >= 0 for _, depth in samples)


# -- mem probes --------------------------------------------------------------


def test_mem_probes_populate_from_cost_derivation():
    registry = MetricsRegistry(enabled=True)
    with active_registry(registry):
        empty_poll_cost_curve([4, 64])
    data = registry.as_dict()
    assert data["mem.l1.hits"]["value"] > 0
    assert 0.0 < data["mem.l1.hit_rate"]["value"] <= 1.0
    assert data["mem.coherence.get_s"]["value"] > 0


# -- cluster probes ----------------------------------------------------------


def test_cluster_fleet_probes():
    registry = MetricsRegistry(enabled=True)
    with active_registry(registry):
        run_cluster(
            ClusterConfig(
                num_servers=2,
                cores_per_server=2,
                queues_per_server=8,
                num_flows=32,
                seed=3,
            ),
            load=0.5,
            duration=0.002,
            warmup=0.0005,
        )
    data = registry.as_dict()
    assert data["cluster.fleet.p99_latency_us"]["value"] > 0
    assert data["cluster.fleet.completed"]["value"] > 0
    assert data["cluster.fleet.throughput_mtps"]["value"] > 0
    for server in range(2):
        assert data[f"cluster.server{server}.up"]["value"] == 1.0
        assert data[f"cluster.server{server}.completed"]["value"] >= 0


# -- invariants --------------------------------------------------------------


def test_metrics_are_deterministic_for_a_seed():
    first = instrumented_run(seed=11).collect()
    second = instrumented_run(seed=11).collect()
    assert first == second


def test_different_seeds_differ():
    assert instrumented_run(seed=1).collect() != instrumented_run(seed=2).collect()


def test_instrumentation_does_not_perturb_results():
    # The observability layer must be read-only: metrics from an
    # instrumented run match an uninstrumented run sample for sample.
    plain = run_spinning(
        small_config(), load=0.5, target_completions=500, max_seconds=0.05
    )
    registry = MetricsRegistry(enabled=True)
    with active_registry(registry):
        instrumented = run_spinning(
            small_config(), load=0.5, target_completions=500, max_seconds=0.05
        )
    assert instrumented.completed == plain.completed
    assert instrumented.latency.p99_us == pytest.approx(plain.latency.p99_us)
    assert instrumented.measure_end == pytest.approx(plain.measure_end)


def test_disabled_registry_installs_no_hooks():
    from repro.sdp.system import DataPlaneSystem

    with active_registry(MetricsRegistry(enabled=False)):
        system = DataPlaneSystem(small_config())
    assert system._obs is None
    # Only the ready-mask upkeep hook, no probe hooks.
    assert system.doorbell_write_hooks == []
