"""Tests for the directory-based MESI protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.coherence import Directory, MESIState, TransactionKind

LINE = 0x1000


def test_first_read_grants_exclusive():
    directory = Directory(num_cores=2)
    result = directory.read(0, LINE, in_llc=False)
    assert result.level == "DRAM"
    assert directory.state_of(0, LINE) == MESIState.EXCLUSIVE


def test_read_after_read_is_l1_hit():
    directory = Directory(num_cores=2)
    directory.read(0, LINE, in_llc=False)
    result = directory.read(0, LINE, in_llc=True)
    assert result.hit
    assert result.level == "L1"
    assert result.latency == directory.latencies.l1_hit


def test_second_reader_downgrades_owner():
    directory = Directory(num_cores=2)
    directory.write(0, LINE, in_llc=False)
    result = directory.read(1, LINE, in_llc=True)
    assert result.level == "remote-L1"
    assert directory.state_of(0, LINE) == MESIState.SHARED
    assert directory.state_of(1, LINE) == MESIState.SHARED


def test_write_invalidates_sharers():
    directory = Directory(num_cores=4)
    for core in range(3):
        directory.read(core, LINE, in_llc=True)
    result = directory.write(3, LINE, in_llc=True)
    assert result.invalidated == 3
    assert directory.state_of(3, LINE) == MESIState.MODIFIED
    for core in range(3):
        assert directory.state_of(core, LINE) == MESIState.INVALID


def test_write_hit_when_already_owner():
    directory = Directory(num_cores=2)
    directory.write(0, LINE, in_llc=False)
    result = directory.write(0, LINE, in_llc=True)
    assert result.hit
    assert result.level == "L1"


def test_upgrade_from_shared():
    directory = Directory(num_cores=2)
    directory.read(0, LINE, in_llc=True)
    directory.read(1, LINE, in_llc=True)
    seen = []
    directory.add_snooper(lambda line: True, lambda l, c, k: seen.append(k))
    result = directory.write(0, LINE, in_llc=True)
    assert TransactionKind.UPGRADE in seen
    assert result.invalidated == 1


def test_dirty_transfer_on_write_after_remote_write():
    directory = Directory(num_cores=2)
    directory.write(0, LINE, in_llc=False)
    result = directory.write(1, LINE, in_llc=False)
    assert result.level == "remote-L1"
    assert result.invalidated == 1
    assert directory.state_of(0, LINE) == MESIState.INVALID


def test_snooper_filter_and_kinds():
    directory = Directory(num_cores=2)
    seen = []
    directory.add_snooper(
        lambda line: line == LINE,
        lambda line, core, kind: seen.append((line, core, kind)),
    )
    directory.write(0, LINE, in_llc=False)  # GetM
    directory.write(0, LINE + 64, in_llc=False)  # filtered out
    directory.read(1, LINE, in_llc=True)  # GetS
    kinds = [kind for _, _, kind in seen]
    assert kinds == [TransactionKind.GET_M, TransactionKind.GET_S]
    assert all(line == LINE for line, _, _ in seen)


def test_evict_dirty_notifies_putm():
    directory = Directory(num_cores=1)
    seen = []
    directory.add_snooper(lambda line: True, lambda l, c, k: seen.append(k))
    directory.write(0, LINE, in_llc=False)
    directory.evict(0, LINE)
    assert seen[-1] == TransactionKind.PUT_M
    assert directory.state_of(0, LINE) == MESIState.INVALID
    assert directory.sharer_count(LINE) == 0


def test_evict_clean_silent():
    directory = Directory(num_cores=2)
    directory.read(0, LINE, in_llc=True)
    directory.read(1, LINE, in_llc=True)
    directory.evict(0, LINE)
    assert directory.sharer_count(LINE) == 1


def test_transactions_counted():
    directory = Directory(num_cores=2)
    directory.write(0, LINE, in_llc=False)
    directory.read(1, LINE, in_llc=True)
    assert directory.transactions[TransactionKind.GET_M] == 1
    assert directory.transactions[TransactionKind.GET_S] == 1


def test_invalid_core_rejected():
    directory = Directory(num_cores=2)
    with pytest.raises(ValueError):
        directory.read(2, LINE, in_llc=False)
    with pytest.raises(ValueError):
        Directory(num_cores=0)


def test_latency_ordering():
    lat = Directory(num_cores=1).latencies
    assert lat.l1_hit < lat.llc_hit < lat.dram
    assert lat.l1_hit < lat.remote_transfer


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # core
            st.integers(min_value=0, max_value=7),  # line index
            st.booleans(),  # write?
        ),
        min_size=1,
        max_size=200,
    )
)
def test_property_single_writer_multiple_readers(operations):
    directory = Directory(num_cores=4)
    for core, line_index, is_write in operations:
        line = line_index * 64
        if is_write:
            directory.write(core, line, in_llc=True)
            assert directory.state_of(core, line) == MESIState.MODIFIED
        else:
            directory.read(core, line, in_llc=True)
            assert directory.state_of(core, line) in (
                MESIState.SHARED,
                MESIState.EXCLUSIVE,
                MESIState.MODIFIED,
            )
        directory.check_invariants()
