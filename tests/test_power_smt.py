"""Tests for the power model and SMT co-runner model."""

import pytest

from repro.power import CStats, PowerModel
from repro.sdp.metrics import CoreActivity
from repro.smt.corunner import CoRunnerModel, MatrixMultiplyCoRunner


def busy_activity(ipc: float, cycles: float = 1e6) -> CoreActivity:
    return CoreActivity(busy_cycles=cycles, useful_instructions=ipc * cycles)


def halted_activity(c1: bool, cycles: float = 1e6) -> CoreActivity:
    return CoreActivity(halted_cycles=cycles, c1_cycles=cycles if c1 else 0.0)


def test_power_grows_with_ipc():
    model = PowerModel()
    low = model.normalized_power(busy_activity(0.5)).total
    high = model.normalized_power(busy_activity(2.0)).total
    assert high > low
    assert 0.0 < low < high <= 1.0


def test_halted_c0_power_floor():
    model = PowerModel()
    power = model.normalized_power(halted_activity(c1=False)).total
    assert power == pytest.approx(model.cstats.c0_halt)


def test_c1_power_is_paper_floor():
    model = PowerModel()
    power = model.normalized_power(halted_activity(c1=True)).total
    assert power == pytest.approx(0.162)


def test_mixed_busy_halted_weighting():
    model = PowerModel()
    activity = CoreActivity(
        busy_cycles=5e5, halted_cycles=5e5, c1_cycles=5e5,
        useful_instructions=1.0 * 5e5,
    )
    pure_busy = model.normalized_power(busy_activity(1.0)).total
    expected = 0.5 * pure_busy + 0.5 * 0.162
    assert model.normalized_power(activity).total == pytest.approx(expected)


def test_spinning_disproportionality_scenario():
    # High-IPC useless spinning at idle vs. moderate-IPC real work: the
    # idle core must burn more (the Fig. 12(a) anomaly).
    model = PowerModel()
    idle_spin = CoreActivity(busy_cycles=1e6, useless_instructions=2.0e6)
    working = CoreActivity(busy_cycles=1e6, useful_instructions=1.1e6)
    gap = model.energy_proportionality_gap(idle_spin, working)
    assert gap > 1.0


def test_dynamic_share_saturates_at_peak_ipc():
    model = PowerModel(peak_ipc=2.0)
    at_peak = model.normalized_power(busy_activity(2.0)).total
    beyond = model.normalized_power(busy_activity(5.0)).total
    assert beyond == pytest.approx(at_peak)
    assert at_peak == pytest.approx(1.0)


def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(peak_ipc=0.0)


def test_zero_activity_draws_halt_floor():
    # A core that recorded no cycles reports the shallow-halt floor, not
    # zero (a powered-on core never draws nothing).
    model = PowerModel()
    assert model.normalized_power(CoreActivity()).total == pytest.approx(
        model.cstats.c0_halt
    )


def test_breakdown_components_sum():
    model = PowerModel()
    breakdown = model.normalized_power(busy_activity(1.5))
    assert breakdown.total == pytest.approx(
        breakdown.static + breakdown.dynamic + breakdown.halt
    )


# -- co-runner ---------------------------------------------------------------------


def test_corunner_solo_when_partner_halted():
    model = CoRunnerModel()
    assert model.corunner_ipc(halted_activity(c1=False)) == pytest.approx(model.solo_ipc)
    assert model.corunner_ipc(CoreActivity()) == pytest.approx(model.solo_ipc)


def test_corunner_hurt_more_by_spinning_than_by_work():
    model = CoRunnerModel()
    spinning = CoreActivity(busy_cycles=1e6, useless_instructions=2.0e6)
    working = CoreActivity(busy_cycles=1e6, useful_instructions=1.1e6)
    assert model.corunner_ipc(spinning) < model.corunner_ipc(working)


def test_corunner_degrades_as_hyperplane_load_rises():
    model = CoRunnerModel()
    low_load = CoreActivity(
        busy_cycles=1e5, halted_cycles=9e5, useful_instructions=1.2e5
    )
    high_load = CoreActivity(
        busy_cycles=9e5, halted_cycles=1e5, useful_instructions=1.08e6
    )
    assert model.corunner_ipc(low_load) > model.corunner_ipc(high_load)


def test_corunner_never_below_floor():
    model = CoRunnerModel()
    pathological = CoreActivity(busy_cycles=1e6, useless_instructions=1e7)
    assert model.corunner_ipc(pathological) >= 0.2 * model.solo_ipc


def test_matrix_multiply_correctness():
    mm = MatrixMultiplyCoRunner(size=32)
    identity = [[float(i == j) for j in range(32)] for i in range(32)]
    a = [[float((i * 7 + j) % 5) for j in range(32)] for i in range(32)]
    assert mm.multiply(a, identity) == a
    assert mm.multiply(identity, a) == a


def test_matrix_multiply_validation():
    with pytest.raises(ValueError):
        MatrixMultiplyCoRunner(0)
    mm = MatrixMultiplyCoRunner(4)
    with pytest.raises(ValueError):
        mm.multiply([[1.0] * 3] * 3, [[1.0] * 3] * 3)
