"""Tests for the tenant-side delivery path."""

import pytest

from repro.core.dataplane import build_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.spinning import build_spinning_cores
from repro.sdp.system import DataPlaneSystem
from repro.sdp.tenant import COPY_CYCLES, attach_tenant_side


def build_system(**overrides):
    defaults = dict(num_queues=8, workload="packet-encapsulation", shape="FB", seed=0)
    defaults.update(overrides)
    return DataPlaneSystem(SDPConfig(**defaults))


def run_hp_with(system, load=0.4, duration=0.01):
    build_hyperplane(system)
    system.attach_open_loop(load=load)
    system.run(duration=duration, warmup=0.0005)
    return system


# -- tenant side -----------------------------------------------------------------


def test_tenant_receives_every_completed_item():
    system = build_system()
    tenant_side = attach_tenant_side(system, num_tenants=4)
    run_hp_with(system)
    assert system.metrics.completed > 100
    # Deliveries may trail by in-flight items at cutoff, but not by much.
    assert tenant_side.delivered >= system.metrics.completed - 8


def test_tenant_latency_exceeds_dataplane_latency():
    system = build_system(service_scv=0.0)
    tenant_side = attach_tenant_side(system, num_tenants=2)
    run_hp_with(system, load=0.1)
    dataplane = system.metrics.latency.mean
    tenant = tenant_side.tenant_latency.mean
    assert tenant > dataplane  # wake-up + hand-off on top
    assert tenant - dataplane < 1e-6  # but well under a microsecond


def test_copy_mode_adds_copy_latency():
    def tenant_mean(in_place):
        system = build_system(service_scv=0.0, seed=3)
        tenant_side = attach_tenant_side(system, num_tenants=2, in_place=in_place)
        run_hp_with(system, load=0.1)
        return tenant_side.tenant_latency.mean

    gap = tenant_mean(False) - tenant_mean(True)
    copy_seconds = COPY_CYCLES / 3.0e9
    assert gap == pytest.approx(copy_seconds, rel=0.3)


def test_queues_spread_round_robin_over_tenants():
    system = build_system(num_queues=8)
    tenant_side = attach_tenant_side(system, num_tenants=4)
    run_hp_with(system)
    per_tenant = [t.delivered for t in tenant_side.tenants]
    assert all(count > 0 for count in per_tenant)


def test_tenant_core_halts_between_deliveries():
    system = build_system()
    tenant_side = attach_tenant_side(system, num_tenants=1)
    run_hp_with(system, load=0.05)
    assert tenant_side.tenants[0].wakeups > 10


def test_tenant_validation():
    system = build_system()
    with pytest.raises(ValueError):
        attach_tenant_side(system, num_tenants=0)


def test_tenant_works_with_spinning_plane_too():
    system = build_system()
    tenant_side = attach_tenant_side(system, num_tenants=2)
    build_spinning_cores(system)
    system.attach_open_loop(load=0.4)
    system.run(duration=0.01, warmup=0.0005)
    assert tenant_side.delivered > 100
