"""The `repro-trace` CLI and the trace-overhead bench scenario."""

import json

import pytest

from repro.obs.trace import get_active_tracer
from repro.obs.trace_cli import main, module_aliases, resolve_experiments


def test_module_aliases_cover_multi_panel_figures():
    aliases = module_aliases()
    assert aliases["fig9_zero_load"] == ["fig9a", "fig9b"]
    assert aliases["fig10_multicore"] == ["fig10a", "fig10b"]
    assert aliases["cluster_scaleout"] == ["cluster_scaleout"]


def test_resolve_expands_aliases_and_dedupes():
    assert resolve_experiments(["fig9a"]) == ["fig9a"]
    assert resolve_experiments(["fig9_zero_load"]) == ["fig9a", "fig9b"]
    assert resolve_experiments(["fig9a", "fig9_zero_load"]) == ["fig9a", "fig9b"]
    with pytest.raises(ValueError, match="unknown experiment 'bogus'"):
        resolve_experiments(["bogus"])


def test_cli_list_and_errors(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "fig9a" in out and "fig9_zero_load" in out
    assert main(["bogus"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_traced_run_checks_sums_and_exports(tmp_path, capsys):
    code = main(["fig9a", "--check", "--out", str(tmp_path)])
    assert code == 0
    assert get_active_tracer() is None  # scope did not leak
    out = capsys.readouterr().out
    assert "latency decomposition — fig9a" in out
    assert "bit-exact" in out
    for suffix in ("trace.json", "collapsed", "spans.jsonl"):
        assert (tmp_path / f"fig9a.{suffix}").exists()
    payload = json.loads((tmp_path / "fig9a.trace.json").read_text())
    assert payload["traceEvents"]


# -- the perf-smoke overhead scenario -----------------------------------------


def test_trace_overhead_scenario_is_registered():
    from repro.bench import SCENARIOS

    scenario = SCENARIOS["sdp_trace_overhead"]
    assert "traced" in scenario.description
    assert callable(scenario.fn)
