"""Exporter round-trips: JSONL, CSV, and Prometheus text format."""

import pytest

from repro.obs.export import (
    parse_csv,
    parse_jsonl,
    parse_prometheus,
    to_csv,
    to_jsonl,
    to_prometheus,
    write_exports,
)
from repro.obs.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.events_total").inc(1234)
    registry.gauge("sdp.completions").set(56.5)
    histogram = registry.histogram("sdp.wake_latency", buckets=(1e-6, 1e-5, 1e-4))
    for value in (5e-7, 3e-6, 2e-5, 1.0):
        histogram.observe(value)
    series = registry.timeseries("sdp.queue_depth")
    for i in range(10):
        series.sample(i * 0.25, float(i % 4))
    return registry


def test_jsonl_roundtrip_is_lossless():
    registry = populated_registry()
    assert parse_jsonl(to_jsonl(registry)) == registry.collect()


def test_csv_roundtrip_is_lossless():
    registry = populated_registry()
    assert parse_csv(to_csv(registry)) == registry.collect()


def test_csv_preserves_float_precision():
    registry = MetricsRegistry()
    registry.gauge("g").set(0.1 + 0.2)  # not representable as short decimal
    parsed = parse_csv(to_csv(registry))
    assert parsed[0]["value"] == 0.1 + 0.2


def test_csv_rejects_foreign_header():
    with pytest.raises(ValueError):
        parse_csv("a,b,c\n1,2,3\n")


def test_prometheus_roundtrips_scalars_and_histograms():
    registry = populated_registry()
    parsed = {record["name"]: record for record in parse_prometheus(to_prometheus(registry))}
    original = registry.as_dict()
    for name in ("sim.events_total", "sdp.completions", "sdp.wake_latency"):
        assert parsed[name] == original[name]


def test_prometheus_name_mapping_is_reversible():
    registry = MetricsRegistry()
    registry.counter("a.deeply.nested.name_9").inc()
    text = to_prometheus(registry)
    assert "a:deeply:nested:name_9" in text
    assert parse_prometheus(text)[0]["name"] == "a.deeply.nested.name_9"


def test_prometheus_summarises_timeseries():
    # Documented lossy: a timeseries becomes _last/_samples gauges.
    registry = populated_registry()
    parsed = {record["name"]: record for record in parse_prometheus(to_prometheus(registry))}
    assert parsed["sdp.queue_depth_last"]["value"] == 1.0  # 9 % 4
    assert parsed["sdp.queue_depth_samples"]["value"] == 10.0


def test_prometheus_rejects_undeclared_samples():
    with pytest.raises(ValueError):
        parse_prometheus("mystery_metric 1.0\n")


def test_exporters_accept_collected_records():
    # Archived record lists re-export without a live registry.
    records = populated_registry().collect()
    assert parse_jsonl(to_jsonl(records)) == records
    assert parse_csv(to_csv(records)) == records


def test_write_exports_creates_all_formats(tmp_path):
    registry = populated_registry()
    paths = write_exports(registry, str(tmp_path), "run")
    assert sorted(paths) == ["csv", "jsonl", "prom"]
    for path in paths.values():
        assert (tmp_path / path.split("/")[-1]).read_text()
    jsonl = (tmp_path / "run.metrics.jsonl").read_text()
    assert parse_jsonl(jsonl) == registry.collect()
