"""Differential fuzz: fast memory models vs. the retained references.

The fast implementations in ``repro.mem`` (flat-array caches,
table-driven directory, batched access streams) promise bit-identical
observable behaviour to the originals preserved in
``repro.mem._reference``. These tests drive both sides with identical
seeded random scripts and compare everything observable after every
operation: results, stats, ``last_evicted``, transaction counters,
snoop-callback sequences, MESI states, and invariants.
"""

import random

import pytest

from repro.mem._reference import (
    ReferenceDirectory,
    ReferenceMemoryHierarchy,
    ReferenceSetAssociativeCache,
    build_reference_pair,
)
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.coherence import Directory, LatencyConfig, TransactionKind
from repro.mem.hierarchy import MemConfig, MemoryHierarchy

LINE = 64


def small_mem_config(num_cores: int = 3) -> MemConfig:
    """Tiny caches so random scripts hit capacity and conflict paths."""
    return MemConfig(
        num_cores=num_cores,
        l1=CacheConfig(size_bytes=512, ways=2),  # 4 sets
        llc_per_core=CacheConfig(size_bytes=1024, ways=4),  # few sets total
    )


def assert_cache_state_equal(fast: SetAssociativeCache, ref: ReferenceSetAssociativeCache):
    assert fast.stats == ref.stats
    assert fast.last_evicted == ref.last_evicted
    assert fast.resident_lines() == ref.resident_lines()


def assert_hierarchy_state_equal(fast: MemoryHierarchy, ref: ReferenceMemoryHierarchy):
    for fast_l1, ref_l1 in zip(fast.l1s, ref.l1s):
        assert_cache_state_equal(fast_l1, ref_l1)
    assert_cache_state_equal(fast.llc, ref.llc)
    assert fast.directory.transactions == ref.directory.transactions


@pytest.mark.parametrize("seed", range(5))
def test_cache_differential(seed):
    rng = random.Random(seed)
    fast = SetAssociativeCache(size_bytes=512, ways=2, name="fast")
    ref = ReferenceSetAssociativeCache(size_bytes=512, ways=2, name="ref")
    # More lines than capacity so evictions and conflicts are common.
    lines = [0x4000 + i * LINE for i in range(24)]
    for _ in range(3000):
        op = rng.random()
        addr = rng.choice(lines) + rng.randrange(LINE)  # unaligned too
        if op < 0.70:
            assert fast.access(addr) == ref.access(addr)
        elif op < 0.85:
            assert fast.invalidate(addr) == ref.invalidate(addr)
        elif op < 0.99:
            assert fast.contains(addr) == ref.contains(addr)
        else:
            fast.flush()
            ref.flush()
        assert_cache_state_equal(fast, ref)


@pytest.mark.parametrize("seed", range(5))
def test_directory_differential(seed):
    rng = random.Random(100 + seed)
    num_cores = 4
    fast = Directory(num_cores)
    ref = ReferenceDirectory(num_cores)
    lines = [0x8000 + i * LINE for i in range(12)]
    snooped = set(lines[::3])
    fast_snoops, ref_snoops = [], []
    fast.add_snooper(snooped.__contains__, lambda *a: fast_snoops.append(a))
    ref.add_snooper(snooped.__contains__, lambda *a: ref_snoops.append(a))
    for _ in range(4000):
        core = rng.randrange(num_cores)
        line = rng.choice(lines)
        in_llc = rng.random() < 0.5
        op = rng.random()
        if op < 0.45:
            assert fast.read(core, line, in_llc) == ref.read(core, line, in_llc)
        elif op < 0.85:
            assert fast.write(core, line, in_llc) == ref.write(core, line, in_llc)
        else:
            fast.evict(core, line)
            ref.evict(core, line)
        assert fast_snoops == ref_snoops
        assert fast.transactions == ref.transactions
        assert fast.sharer_count(line) == ref.sharer_count(line)
        assert fast.state_of(core, line) is ref.state_of(core, line)
    for line in lines:
        for core in range(num_cores):
            assert fast.state_of(core, line) is ref.state_of(core, line)
    fast.check_invariants()
    ref.check_invariants()


def test_directory_custom_latency_table_matches():
    lat = LatencyConfig(l1_hit=3, llc_hit=31, dram=177, remote_transfer=55, directory_lookup=7)
    fast = Directory(2, lat)
    ref = ReferenceDirectory(2, lat)
    line = 0x1000
    ops = [
        ("w", 0, line, False),
        ("r", 1, line, True),
        ("w", 1, line, True),  # upgrade with invalidation
        ("r", 0, line, True),
        ("r", 1, line, True),
        ("w", 0, line, False),  # upgrade from shared
        ("e", 0, line, None),
        ("w", 1, line, True),
    ]
    for op, core, ln, in_llc in ops:
        if op == "r":
            assert fast.read(core, ln, in_llc) == ref.read(core, ln, in_llc)
        elif op == "w":
            assert fast.write(core, ln, in_llc) == ref.write(core, ln, in_llc)
        else:
            fast.evict(core, ln)
            ref.evict(core, ln)
    assert fast.transactions == ref.transactions


@pytest.mark.parametrize("seed", range(4))
def test_hierarchy_differential(seed):
    rng = random.Random(200 + seed)
    cfg = small_mem_config()
    fast, ref = build_reference_pair(cfg)
    snoop_lines = {0x4000 + i * LINE for i in range(0, 40, 5)}
    fast_snoops, ref_snoops = [], []
    fast.add_snooper(snoop_lines.__contains__, lambda *a: fast_snoops.append(a))
    ref.add_snooper(snoop_lines.__contains__, lambda *a: ref_snoops.append(a))
    addrs = [0x4000 + i * LINE for i in range(40)]
    for _ in range(3000):
        core = rng.randrange(cfg.num_cores)
        addr = rng.choice(addrs) + rng.randrange(LINE)
        if rng.random() < 0.6:
            assert fast.read(core, addr) == ref.read(core, addr)
        else:
            assert fast.write(core, addr) == ref.write(core, addr)
        assert fast_snoops == ref_snoops
    assert_hierarchy_state_equal(fast, ref)
    fast.check_invariants()
    ref.check_invariants()


@pytest.mark.parametrize("seed", range(4))
def test_access_stream_differential(seed):
    """access_stream == the same per-call sequence, results and state."""
    rng = random.Random(300 + seed)
    cfg = small_mem_config()
    streamed = MemoryHierarchy(cfg)
    percall, ref = build_reference_pair(cfg)
    addrs = [0x4000 + i * LINE for i in range(40)]
    for _ in range(60):
        core = rng.randrange(cfg.num_cores)
        write = rng.random() < 0.3
        batch = [rng.choice(addrs) for _ in range(rng.randrange(1, 30))]
        got = streamed.access_stream(core, batch, write=write)
        expected = [
            (percall.write(core, a) if write else percall.read(core, a)) for a in batch
        ]
        reference = [(ref.write(core, a) if write else ref.read(core, a)) for a in batch]
        assert got == expected == reference
        assert_hierarchy_state_equal(streamed, percall)
        assert_hierarchy_state_equal(streamed, ref)
    streamed.check_invariants()
    percall.check_invariants()
    ref.check_invariants()


def test_access_stream_steady_state_polling_pattern():
    """The doorbell-scan shape: repeated reads of a fixed line set."""
    cfg = small_mem_config(num_cores=2)
    streamed = MemoryHierarchy(cfg)
    percall, ref = build_reference_pair(cfg)
    doorbells = [0x10000 + i * LINE for i in range(4)]
    sweep = doorbells * 50
    got = streamed.access_stream(0, sweep)
    expected = [percall.read(0, a) for a in sweep]
    reference = [ref.read(0, a) for a in sweep]
    assert got == expected == reference
    # A remote write invalidates; the next sweep must re-diverge identically.
    assert streamed.write(1, doorbells[2]) == percall.write(1, doorbells[2])
    ref.write(1, doorbells[2])
    got = streamed.access_stream(0, sweep)
    expected = [percall.read(0, a) for a in sweep]
    reference = [ref.read(0, a) for a in sweep]
    assert got == expected == reference
    assert_hierarchy_state_equal(streamed, percall)
    assert_hierarchy_state_equal(streamed, ref)


def test_access_stream_cycle_budget_is_a_prefix():
    """A budgeted stream stops early but never diverges: it returns a
    prefix of the unbudgeted result sequence, stopping only after the
    access that reaches the budget."""
    cfg = small_mem_config(num_cores=1)
    budgeted = MemoryHierarchy(cfg)
    unbudgeted = MemoryHierarchy(cfg)
    addrs = [0x4000 + i * LINE for i in range(30)]
    full = unbudgeted.access_stream(0, addrs)
    got = budgeted.access_stream(0, addrs, cycle_budget=300)
    assert 0 < len(got) <= len(full)
    assert got == full[: len(got)]
    spent = sum(r.latency for r in got)
    assert spent >= 300 or len(got) == len(full)
    # All but the last access stayed under budget.
    assert spent - got[-1].latency < 300
    # Continuing from where the budget stopped matches the tail.
    rest = budgeted.access_stream(0, addrs[len(got) :])
    assert rest == full[len(got) :]
    assert_cache_state_equal(budgeted.llc, unbudgeted.llc)


def test_steady_read_probe_and_bulk_commit():
    """all_steady_reads is non-mutating and commit_steady_reads matches
    issuing the reads one by one."""
    cfg = small_mem_config(num_cores=2)
    bulk = MemoryHierarchy(cfg)
    percall = MemoryHierarchy(cfg)
    doorbells = [0x10000 + i * LINE for i in range(3)]
    # Cold: nothing is steady, and probing changes nothing.
    assert not bulk.all_steady_reads(0, doorbells)
    assert bulk.l1s[0].stats.accesses == 0
    for h in (bulk, percall):
        for a in doorbells:
            h.read(0, a)
    assert bulk.all_steady_reads(0, doorbells)
    before = bulk.directory.transactions
    # 5 full sweeps: bulk commit vs. per-call reads.
    bulk.commit_steady_reads(0, 5 * len(doorbells))
    for _ in range(5):
        for a in doorbells:
            result = percall.read(0, a)
            assert result.hit and result.level == "L1"
    assert_cache_state_equal(bulk.l1s[0], percall.l1s[0])
    assert_cache_state_equal(bulk.llc, percall.llc)
    assert bulk.directory.transactions == before == percall.directory.transactions
    # A foreign write breaks steadiness (the probe notices).
    bulk.write(1, doorbells[0])
    assert not bulk.all_steady_reads(0, doorbells)
