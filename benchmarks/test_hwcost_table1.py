"""Regenerates the Section IV-C hardware-cost table and checks Table I."""

import pytest

from repro.experiments.hwcost import HwCostConfig, costs_for, run
from repro.sdp.config import CHIP_CORES, MONITORING_SET_ENTRIES, READY_SET_ENTRIES, TABLE1


def test_hwcost_table(run_once):
    result = run_once(lambda: run(HwCostConfig(fast=True)))
    print("\n" + result.format_table())
    anchor = costs_for(1024)
    assert anchor.ready_set_area == pytest.approx(0.13)
    assert anchor.ready_set_latency_ns == pytest.approx(12.25)
    assert anchor.monitoring_area == pytest.approx(0.21)
    assert anchor.chip_area_overhead < 0.003
    assert anchor.single_core_power_fraction == pytest.approx(0.062)


def test_table1_configuration_constants(run_once):
    def snapshot():
        return dict(TABLE1)

    table = run_once(snapshot)
    print("\nTable I:", table)
    assert MONITORING_SET_ENTRIES == 1024
    assert READY_SET_ENTRIES == 1024
    assert CHIP_CORES == 16
    assert "32 KB" in table["l1"]
    assert "1 MB per core" in table["llc"]
    assert "MESI" in table["cmp"]
