"""Regenerates Fig. 13: software vs. hardware ready set."""

from repro.experiments.fig13_ready_set import Fig13Config, run


def test_fig13_software_ready_set(run_once):
    result = run_once(lambda: run(Fig13Config(fast=True)))
    print("\n" + result.format_table())
    for row in result.rows:
        # The software iterator always loses throughput...
        assert row["fb_relative_pct"] < 100.0
        assert row["pc_relative_pct"] < 100.0
        # ...and FB (everything ready => longest iteration) is worst.
        assert row["fb_relative_pct"] < row["pc_relative_pct"]
    # The shortest workload suffers most (paper: down to ~50% for FB).
    worst = min(row["fb_relative_pct"] for row in result.rows)
    assert worst < 75.0
