"""Regenerates Fig. 12: energy proportionality and the C1 mode."""

from repro.experiments.fig12_power import Fig12Config, run


def test_fig12a_normalized_power(run_once):
    result = run_once(lambda: run(Fig12Config(fast=True, panel="a")))
    print("\n" + result.format_table())
    rows = {row["system"]: row for row in result.rows}
    # Spinning is energy-disproportional: zero load burns >= saturation.
    assert rows["spinning"]["zero_load"] > rows["spinning"]["saturation"]
    # HyperPlane is proportional: zero load well below saturation.
    assert rows["hyperplane"]["zero_load"] < 0.8 * rows["hyperplane"]["saturation"]
    # The C1 mode reaches the paper's 16.2% floor at zero load.
    assert abs(rows["hyperplane_c1"]["zero_load"] - 0.162) < 0.02
    # At saturation the modes converge (C1 is never entered).
    assert abs(
        rows["hyperplane_c1"]["saturation"] - rows["hyperplane"]["saturation"]
    ) < 0.05


def test_fig12b_power_optimised_tail_gap(run_once):
    result = run_once(lambda: run(Fig12Config(fast=True, panel="b")))
    print("\n" + result.format_table())
    rows = sorted(result.rows, key=lambda r: r["load"])
    low = rows[0]
    mid = min(rows, key=lambda r: abs(r["load"] - 0.5))
    # The wake-up gap exists at zero load (paper: 38%)...
    assert low["gap_pct"] > 10.0
    # ...and shrinks as load rises (paper: 8% at 50% load).
    assert mid["gap_pct"] < low["gap_pct"]
    # Power-optimised HyperPlane still beats spinning at zero load
    # (paper: 8.9x; our per-poll costs are milder at this cluster size,
    # see EXPERIMENTS.md, but the direction and gap shape hold).
    assert low["spinning_p99"] / low["hp_power_opt_p99"] > 1.5
