"""Regenerates Fig. 10: multicore tail latency across organisations."""

from repro.experiments.fig10_multicore import Fig10Config, run


def test_fig10a_fully_balanced(run_once):
    result = run_once(lambda: run(Fig10Config(fast=True, panel="a")))
    print("\n" + result.format_table())
    mid = min(result.rows, key=lambda r: abs(r["load"] - 0.5))
    # Scale-up helps HyperPlane monotonically...
    assert mid["hp_up4"] < mid["hp_up2"] < mid["hp_out"]
    # ...and hurts spinning monotonically.
    assert mid["spin_up4"] > mid["spin_up2"] > mid["spin_out"]
    # HyperPlane beats spinning in every organisation at every load.
    for row in result.rows:
        for org in ("out", "up2", "up4"):
            assert row[f"hp_{org}"] < row[f"spin_{org}"]


def test_fig10b_proportionally_concentrated_with_imbalance(run_once):
    result = run_once(lambda: run(Fig10Config(fast=True, panel="b")))
    print("\n" + result.format_table())
    high = max(result.rows, key=lambda r: r["load"])
    # Static imbalance inflates scale-out latency (mean is the robust
    # signal at this sample count; the p99 columns are what the paper
    # plots).
    assert high["spin_out_imb_avg"] > high["spin_out_avg"]
    assert high["hp_out_imb_avg"] > high["hp_out_avg"]
    # Scale-up HyperPlane is immune to the imbalance and best overall.
    assert high["hp_up2"] < high["hp_out_imb"]
    assert high["hp_up2"] == min(
        value for key, value in high.items() if key != "load" and not key.endswith("_avg")
    )
