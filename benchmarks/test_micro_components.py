"""Microbenchmarks of the core data structures (real pytest-benchmark
timing, many iterations): monitoring-set snoops, ready-set selections,
PPA arbitration, the event engine, and the functional kernels."""

import random

from repro.core.monitoring_set import CuckooMonitoringSet
from repro.core.policies import RoundRobinPolicy
from repro.core.ppa import brent_kung_ppa, ppa_select
from repro.core.ready_set import HardwareReadySet
from repro.sim import Simulator
from repro.workloads.crypto import AesCbc
from repro.workloads.erasure import CauchyReedSolomon


def test_bench_monitoring_set_snoop(benchmark):
    ms = CuckooMonitoringSet(capacity=1024, ways=4, seed=0)
    tags = [0x1000_0000 + i * 64 for i in range(900)]
    for i, tag in enumerate(tags):
        ms.insert(tag, i)

    def snoop_and_rearm():
        for tag in tags[:256]:
            if ms.snoop_write(tag) is not None:
                ms.arm(tag)

    benchmark(snoop_and_rearm)
    assert ms.snoop_hits > 0


def test_bench_ready_set_select(benchmark):
    ready_set = HardwareReadySet(1024, RoundRobinPolicy(1024))
    rng = random.Random(0)
    active = rng.sample(range(1024), 400)

    def select_cycle():
        for qid in active:
            ready_set.activate(qid)
        while ready_set.select_and_take() is not None:
            pass

    benchmark(select_cycle)
    assert ready_set.selections >= 400


def test_bench_ppa_select_fast_path(benchmark):
    rng = random.Random(1)
    masks = [rng.getrandbits(1024) for _ in range(64)]

    def arbitrate():
        priority = 1
        for mask in masks:
            select = ppa_select(mask, priority, 1024)
            if select:
                priority = select

    benchmark(arbitrate)


def test_bench_brent_kung_model(benchmark):
    # The gate-accurate model is slower; it exists for verification, so
    # benchmark it at modest width.
    benchmark(lambda: brent_kung_ppa((1 << 255) | 1, 1 << 7, 256))


def test_bench_event_engine(benchmark):
    def run_10k_events():
        sim = Simulator()

        def ping(depth):
            if depth:
                sim.schedule(1e-9, ping, depth - 1)

        for _ in range(10):
            sim.schedule(0.0, ping, 1000)
        sim.run()
        return sim.events_dispatched

    dispatched = benchmark(run_10k_events)
    assert dispatched >= 10_000


def test_bench_aes_block(benchmark):
    cipher = AesCbc(bytes(range(32)))
    block = bytes(16)
    benchmark(lambda: cipher.encrypt_block(block))


def test_bench_reed_solomon_encode(benchmark):
    rs = CauchyReedSolomon(6, 3)
    data = bytes(range(256)) * 16  # 4 KiB
    fragments = benchmark(lambda: rs.encode(data))
    assert len(fragments) == 9
