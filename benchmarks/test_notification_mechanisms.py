"""Extension figure: the notification design space.

Not a paper figure — a synthesis the paper's Sections I-III argue in
prose: four notification mechanisms (spin-polling, MWAIT halt-then-scan,
MSI-X interrupts with NAPI coalescing, HyperPlane) measured on the two
axes the paper's taxonomy uses: queue scalability (zero-load latency vs.
queue count) and work proportionality (halt fraction / useless work),
plus loaded tail latency.
"""

from repro.core.runner import run_hyperplane
from repro.sdp import SDPConfig, run_interrupts, run_mwait, run_spinning

MECHANISMS = (
    ("spinning", run_spinning),
    ("mwait", run_mwait),
    ("interrupts", run_interrupts),
    ("hyperplane", run_hyperplane),
)


def _profile(runner, num_queues, seed=1):
    zero = runner(
        SDPConfig(
            num_queues=num_queues, workload="packet-encapsulation", shape="FB",
            seed=seed, service_scv=0.0,
        ),
        load=0.01,
        target_completions=250,
        max_seconds=5.0,
    )
    loaded = runner(
        SDPConfig(
            num_queues=num_queues, workload="packet-encapsulation", shape="FB",
            seed=seed,
        ),
        load=0.5,
        target_completions=2000,
        max_seconds=2.0,
    )
    return {
        "zero_load_avg_us": zero.latency.mean_us,
        "p99_at_50pct_us": loaded.latency.p99_us,
        "halt_fraction_idle": zero.chip_activity.halt_fraction,
        "useless_instr_idle": zero.chip_activity.useless_instructions,
    }


def test_notification_design_space(run_once):
    def sweep():
        return {
            name: {n: _profile(runner, n) for n in (8, 256)}
            for name, runner in MECHANISMS
        }

    results = run_once(sweep)
    print("\nmechanism      queues  zero-load avg   p99@50%   idle halt")
    for name, by_count in results.items():
        for count, row in by_count.items():
            print(
                f"{name:<14}{count:>7}{row['zero_load_avg_us']:>14.2f}"
                f"{row['p99_at_50pct_us']:>10.2f}{row['halt_fraction_idle']:>11.2f}"
            )

    # Work proportionality: everything but spinning halts when idle.
    assert results["spinning"][256]["halt_fraction_idle"] == 0.0
    for name in ("mwait", "interrupts", "hyperplane"):
        assert results[name][256]["halt_fraction_idle"] > 0.7

    # Queue scalability: spinning and mwait degrade with queue count;
    # interrupts and HyperPlane stay flat.
    for name in ("spinning", "mwait"):
        assert (
            results[name][256]["zero_load_avg_us"]
            > 2.0 * results[name][8]["zero_load_avg_us"]
        )
    for name in ("interrupts", "hyperplane"):
        assert (
            results[name][256]["zero_load_avg_us"]
            < 1.3 * results[name][8]["zero_load_avg_us"]
        )

    # HyperPlane is the only mechanism best-in-class on every axis.
    for count in (8, 256):
        best_zero = min(r[count]["zero_load_avg_us"] for r in results.values())
        best_tail = min(r[count]["p99_at_50pct_us"] for r in results.values())
        assert results["hyperplane"][count]["zero_load_avg_us"] == best_zero
        assert results["hyperplane"][count]["p99_at_50pct_us"] == best_tail

    # Interrupt overhead shows up exactly where expected: flat but offset
    # at zero load, inflated tail under load (single IRQ target core).
    assert (
        results["interrupts"][256]["zero_load_avg_us"]
        > results["hyperplane"][256]["zero_load_avg_us"] + 0.8
    )
