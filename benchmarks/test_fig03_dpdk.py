"""Regenerates Fig. 3: the DPDK queue-scalability case study."""

from repro.experiments.fig3_dpdk import Fig3Config, run


def test_fig3a_throughput_vs_queues(run_once):
    result = run_once(lambda: run(Fig3Config(fast=True, panel="a")))
    print("\n" + result.format_table())
    series = result.series("queues", "SQ")
    counts = sorted(series)
    # SQ collapses drastically; FB/PC stabilise well above it.
    assert series[counts[-1]] < series[counts[0]] / 20
    fb = result.series("queues", "FB")
    assert fb[counts[-1]] > 10 * series[counts[-1]]


def test_fig3b_latency_vs_queues(run_once):
    result = run_once(lambda: run(Fig3Config(fast=True, panel="b")))
    print("\n" + result.format_table())
    avg = result.series("queues", "avg_us")
    p99 = result.series("queues", "p99_us")
    counts = sorted(avg)
    assert avg[counts[-1]] > 3 * avg[counts[0]]
    # Tail grows with a higher slope than the average.
    tail_growth = p99[counts[-1]] / p99[counts[0]]
    avg_growth = avg[counts[-1]] / avg[counts[0]]
    assert tail_growth > avg_growth


def test_fig3c_latency_cdf(run_once):
    result = run_once(lambda: run(Fig3Config(fast=True, panel="c")))
    print("\n" + result.format_table())
    spreads = {row["queues"]: row["p99"] - row["p10"] for row in result.rows}
    assert spreads[512] > spreads[256] > spreads[1]
