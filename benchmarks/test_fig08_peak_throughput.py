"""Regenerates Fig. 8: peak throughput, spinning vs. HyperPlane."""

from repro.experiments.fig8_peak_throughput import Fig8Config, run


def test_fig8_peak_throughput(run_once):
    result = run_once(lambda: run(Fig8Config(fast=True)))
    print("\n" + result.format_table())
    rows = result.rows

    def grid(workload, shape):
        return {
            row["queues"]: row for row in rows
            if row["workload"] == workload and row["shape"] == shape
        }

    for workload in {row["workload"] for row in rows}:
        sq = grid(workload, "SQ")
        counts = sorted(sq)
        big, small = counts[-1], counts[0]
        # Spinning collapses under SQ; HyperPlane stays near its 1-queue peak.
        assert sq[big]["spinning"] < sq[small]["spinning"] / 10
        assert sq[big]["hyperplane"] > 0.4 * sq[small]["hyperplane"]
        # HyperPlane never loses by more than noise on any shape.
        for shape in ("FB", "PC", "NC", "SQ"):
            for row in grid(workload, shape).values():
                assert row["hyperplane"] > 0.93 * row["spinning"]
    # Aggregate gain is of the paper's order (4.1x on the paper's grid).
    gains = [row["gain"] for row in rows]
    assert max(gains) > 10  # SQ at 1000 queues dominates the average
    assert sum(gains) / len(gains) > 2.0
