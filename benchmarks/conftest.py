"""Benchmark-suite configuration.

Each figure benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (the experiments are seconds-long simulations;
statistical repetition happens *inside* them via thousands of simulated
tasks) and prints the reproduced table so ``pytest benchmarks/
--benchmark-only -s`` regenerates every figure of the paper.
"""

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run a zero-argument callable once under the benchmark clock."""

    def _run(function):
        return benchmark.pedantic(function, rounds=1, iterations=1)

    return _run
