"""Regenerates Fig. 9: zero-load latency vs. queue count."""

from repro.experiments.fig9_zero_load import Fig9Config, run


def test_fig9a_spinning_latency_grows(run_once):
    result = run_once(lambda: run(Fig9Config(fast=True, panel="a")))
    print("\n" + result.format_table())
    avg = result.series("queues", "avg_us")
    p99 = result.series("queues", "p99_us")
    counts = sorted(avg)
    # Near-linear growth; tail above 100 us at 1000 queues (paper).
    assert avg[counts[-1]] > 10 * avg[counts[0]]
    assert p99[1000] > 100.0
    # Tail/average gap widens with queue count.
    assert p99[counts[-1]] / avg[counts[-1]] > p99[counts[0]] / avg[counts[0]]


def test_fig9b_hyperplane_flat_and_power_crossover(run_once):
    result = run_once(lambda: run(Fig9Config(fast=True, panel="b")))
    print("\n" + result.format_table())
    regular = result.series("queues", "regular_us")
    powered = result.series("queues", "power_opt_us")
    spinning = result.series("queues", "spinning_us")
    counts = sorted(regular)
    # HyperPlane is queue-scalable: < 10 us even at 1000 queues.
    assert regular[counts[-1]] < 10.0
    assert regular[counts[-1]] < 2.5 * regular[counts[0]]
    # Power-optimised adds ~0.5 us everywhere.
    for count in counts:
        assert 0.2 < powered[count] - regular[count] < 0.8
    # Spinning beats power-optimised HP only at very small queue counts.
    assert powered[counts[0]] > spinning[counts[0]]
    assert powered[1000] < spinning[1000] / 5
