"""Regenerates the headline numbers: 4.1x throughput, 16.4x tail latency."""

from repro.experiments.headline import HeadlineConfig, run


def test_headline_gains(run_once):
    result = run_once(lambda: run(HeadlineConfig(fast=True)))
    print("\n" + result.format_table())
    rows = {row["metric"]: row for row in result.rows}
    throughput = rows["peak throughput gain"]
    average = rows["avg latency gain"]
    tail = rows["tail latency gain"]
    # Shape: large average gains of the paper's order of magnitude. Fast
    # grids emphasise the 200/1000-queue points, so we bound loosely.
    assert throughput["measured_mean"] > 2.0
    assert average["measured_mean"] > 4.0
    assert tail["measured_mean"] > 6.0
    # Tail gain exceeds average gain (the paper's 16.4 vs 9.1 ordering).
    assert tail["measured_mean"] > average["measured_mean"]
