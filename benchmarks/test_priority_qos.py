"""Extension figure: scale-up queueing's priority support (Section II-B).

The paper's third argument for scale-up: "scale-up organizations provide
better support for queue priorities. With scale-out organizations, each
core can only prioritize over its own subset of queues."

Setup: a high-priority tenant (queue 0, WRR weight 16) whose traffic is
bursty — its bursts momentarily need more than one core — on top of
fully-balanced background load. Under scale-up-4, any core serves the
priority queue the moment it is ready, so bursts are absorbed. Under
scale-out, only queue 0's owning core may serve it; during a burst the
other three cores idle past a backlogged priority tenant.
"""

from repro.core.dataplane import build_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.metrics import LatencyRecorder
from repro.sdp.system import DataPlaneSystem
from repro.traffic.bursty import OnOffSource

SERVICE = 1.4e-6
PRIORITY_QID = 0


def run_qos(cluster_cores: int, seed: int = 5, weight: int = 16):
    system = DataPlaneSystem(
        SDPConfig(
            num_queues=64,
            num_cores=4,
            cluster_cores=cluster_cores,
            workload="packet-encapsulation",
            shape="FB",
            seed=seed,
        )
    )
    build_hyperplane(system, policy="wrr", weights={PRIORITY_QID: weight})
    # Background: 50% of aggregate capacity, spread over all queues.
    system.attach_open_loop(load=0.5)
    # The priority tenant: mean 0.3 cores, bursting to ~1.8 cores.
    OnOffSource(
        sim=system.sim,
        queue=system.queues[PRIORITY_QID],
        mean_rate=0.3 / SERVICE,
        burstiness=6.0,
        on_fraction=1.0 / 6.0,
        mean_on_seconds=300e-6,
        service_sampler=system.service_model,
        rng=system.streams.stream("priority-tenant"),
        item_id_base=1 << 30,
    )
    priority = LatencyRecorder(warmup_time=0.001)
    background = LatencyRecorder(warmup_time=0.001)
    original = system.complete

    def split_complete(item):
        original(item)
        recorder = priority if item.qid == PRIORITY_QID else background
        recorder.record(system.sim.now, item.latency)

    system.complete = split_complete
    system.run(duration=0.12, warmup=0.001, target_completions=40000)
    return priority, background


def test_scale_up_preserves_priority_tenant_tails(run_once):
    def sweep():
        results = {}
        for label, cluster_cores, weight in (
            ("scale-out", 1, 16),
            ("scale-up-4", 4, 16),
            ("scale-up-4/w=1", 4, 1),
        ):
            priority, background = run_qos(cluster_cores, weight=weight)
            results[label] = {
                "priority_p99_us": priority.p99_us,
                "priority_avg_us": priority.mean_us,
                "background_p99_us": background.p99_us,
                "priority_samples": priority.count,
            }
        return results

    results = run_once(sweep)
    print("\norganisation     priority p99   priority avg   background p99")
    for label, row in results.items():
        print(
            f"{label:<16}{row['priority_p99_us']:>13.2f}{row['priority_avg_us']:>15.2f}"
            f"{row['background_p99_us']:>17.2f}"
        )
    out = results["scale-out"]
    up = results["scale-up-4"]
    unweighted = results["scale-up-4/w=1"]
    assert out["priority_samples"] > 2000 and up["priority_samples"] > 2000
    # Scale-up absorbs the priority tenant's bursts with the whole pool
    # (the paper's point: scale-out priorities are per-core only, so a
    # burst beyond one core's capacity strands a prioritised tenant).
    assert up["priority_p99_us"] < 0.5 * out["priority_p99_us"]
    assert up["priority_avg_us"] < out["priority_avg_us"]
    # The WRR weight itself matters: without it the bursting tenant's
    # backlog drains at plain round-robin pace.
    assert up["priority_avg_us"] < unweighted["priority_avg_us"]
