"""Regenerates Fig. 11: IPC breakdown and SMT co-runner interference."""

from repro.experiments.fig11_work_proportionality import Fig11Config, run


def test_fig11a_ipc_breakdown(run_once):
    result = run_once(lambda: run(Fig11Config(fast=True, panel="a")))
    print("\n" + result.format_table())
    rows = sorted(result.rows, key=lambda r: r["load"])
    zero, top = rows[0], rows[-1]
    # Spinning commits its highest IPC at zero load, all of it useless.
    assert zero["spin_total_ipc"] > top["spin_total_ipc"]
    assert zero["spin_useless_ipc"] > 100 * zero["spin_useful_ipc"]
    # HyperPlane IPC grows ~linearly with load from zero.
    hp = [row["hp_ipc"] for row in rows]
    assert hp == sorted(hp)
    assert hp[0] < 0.05
    # Useful IPC matches between the designs (same work done).
    for row in rows:
        assert abs(row["spin_useful_ipc"] - row["hp_ipc"]) < 0.35


def test_fig11b_corunner_ipc(run_once):
    result = run_once(lambda: run(Fig11Config(fast=True, panel="b")))
    print("\n" + result.format_table())
    rows = sorted(result.rows, key=lambda r: r["load"])
    spin = [row["corunner_vs_spinning"] for row in rows]
    hyper = [row["corunner_vs_hyperplane"] for row in rows]
    # Against spinning the co-runner does *better* as load rises.
    assert spin[-1] > spin[0]
    # Against HyperPlane it does worse (the proportional design).
    assert hyper[-1] < hyper[0]
    # At zero load HyperPlane leaves the whole core to the co-runner.
    assert hyper[0] > spin[0] * 1.3
