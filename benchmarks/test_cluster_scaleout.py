"""Cluster scale-out: the rack-level shape results, plus determinism.

The full grid lives in ``repro.experiments.cluster_scaleout``; the shape
assertions here are the acceptance bar: hashed-placement spinning fleets
degrade super-linearly with fleet size, HyperPlane fleets stay within 2x
of their single-server tail, power-of-two-choices closes most of the
spinning gap, and a rack run is a pure function of its root seed.
"""

from repro.cluster import ClusterConfig, run_cluster
from repro.experiments.cluster_scaleout import ClusterScaleoutConfig, run


def _rows(result, **match):
    return [
        row
        for row in result.rows
        if all(row[key] == value for key, value in match.items())
    ]


def _row(result, **match):
    rows = _rows(result, **match)
    assert len(rows) == 1, f"expected one row for {match}, got {len(rows)}"
    return rows[0]


def test_cluster_scaleout_shapes(run_once):
    result = run_once(lambda: run(ClusterScaleoutConfig(fast=True)))
    print("\n" + result.format_table())

    scale = sorted(
        _rows(result, system="spinning", balancer="rss", fault="none"),
        key=lambda row: row["servers"],
    )
    assert [row["servers"] for row in scale] == [1, 4, 16]
    # Spinning under hashed placement: fleet p99 grows super-linearly
    # with fleet size (hottest-server overload, amplified by scans).
    assert scale[0]["p99_us"] < scale[1]["p99_us"] < scale[2]["p99_us"]
    assert scale[2]["p99_us"] > 4 * scale[0]["p99_us"]

    # HyperPlane fleet stays flat: within 2x of its 1-server p99.
    hp_1 = _row(result, servers=1, system="hyperplane", balancer="rss", fault="none")
    for row in _rows(result, system="hyperplane", balancer="rss", fault="none"):
        assert row["p99_us"] <= 2 * hp_1["p99_us"]

    # p2c recovers most of the spinning scale-out gap at the largest fleet.
    spin_1, spin_n = scale[0], scale[-1]
    p2c_n = _row(
        result, servers=spin_n["servers"], system="spinning",
        balancer="p2c", fault="none",
    )
    gap = spin_n["p99_us"] - spin_1["p99_us"]
    recovered = 1.0 - (p2c_n["p99_us"] - spin_1["p99_us"]) / gap
    assert recovered > 0.75

    # Faults concentrate load on HyperPlane fleets too: a straggler
    # inflates the tail well beyond the fault-free baseline, and a crash
    # re-dispatches the victim's traffic without losing client requests.
    hp_4 = _row(result, servers=4, system="hyperplane", balancer="rss", fault="none")
    straggler = _row(result, servers=4, system="hyperplane", fault="straggler")
    assert straggler["p99_us"] > 5 * hp_4["p99_us"]
    crash = _row(result, servers=4, system="hyperplane", fault="crash")
    assert crash["redispatched"] >= 1
    assert crash["lost"] == 0


def test_cluster_run_is_deterministic(run_once):
    def one_fingerprint():
        config = ClusterConfig(
            num_servers=4,
            notification="hyperplane",
            balancer="p2c",
            fault_profile="crash",
            queues_per_server=128,
            num_flows=64,
            flow_skew=0.3,
            seed=42,
        )
        rack = run_cluster(
            config, load=0.25, duration=0.02, warmup=0.005,
            target_completions=4000,
        )
        return rack.metrics.fingerprint()

    first = run_once(lambda: (one_fingerprint(), one_fingerprint()))
    assert first[0] == first[1]
