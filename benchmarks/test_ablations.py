"""Ablations of HyperPlane design choices.

Each ablation isolates one decision the paper argues for and shows the
measured consequence of taking the other branch:

- ZCache-style multi-way Cuckoo walk vs. a plain 2-choice table;
- QWAIT latency sensitivity (the paper's conservative 50 cycles);
- C-state depth (C1's 0.5 us wake-up vs. a deeper state);
- dequeue batching under backlog;
- NUMA work stealing on skewed load (the paper's deferred future work);
- spurious wake-up rate (what QWAIT-VERIFY's filtering is worth).
"""

import dataclasses
import random

from repro.core.monitoring_set import CuckooMonitoringSet
from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig


def config(**overrides):
    defaults = dict(
        num_queues=200, workload="packet-encapsulation", shape="SQ", seed=0
    )
    defaults.update(overrides)
    return SDPConfig(**defaults)


def test_ablation_cuckoo_ways(run_once):
    """2-choice Cuckoo saturates near 50% load factor; 4-way ZCache-style
    walks sustain ~90% — the paper's 5-10% over-provisioning claim needs
    the latter."""

    def fill(ways):
        """(achieved load factor, failed inserts) targeting 920/1024."""
        table = CuckooMonitoringSet(capacity=1024, ways=ways, seed=5)
        rng = random.Random(5)
        tag = 0
        inserted = 0
        for _ in range(980):
            tag += 64 * rng.randint(1, 9)
            if table.insert(tag, inserted):
                inserted += 1
        return inserted / 1024, table.failed_inserts

    results = run_once(lambda: {ways: fill(ways) for ways in (2, 4)})
    print(f"\n(load factor, failed inserts) by ways: {results}")
    # Every failed insert is a driver-side doorbell reallocation; 2-choice
    # thrashes at this occupancy while 4 choices make conflicts rare.
    assert results[2][1] > 50
    assert results[4][1] < 10
    assert results[4][0] > 0.90 > results[2][0]


def test_ablation_qwait_latency(run_once):
    """Zero-load latency is insensitive to QWAIT latency at the paper's
    conservative 50 cycles, and degrades gracefully even at 10x that."""

    def latency_with_qwait(cycles):
        base = config(shape="FB", service_scv=0.0)
        cost_model = dataclasses.replace(base.cost_model, qwait=cycles)
        cfg = dataclasses.replace(base, cost_model=cost_model)
        return run_hyperplane(
            cfg, load=0.01, target_completions=250, max_seconds=5.0
        ).latency.mean_us

    results = run_once(
        lambda: {cycles: latency_with_qwait(cycles) for cycles in (50, 200, 500)}
    )
    print(f"\nzero-load avg latency (us) by QWAIT cycles: {results}")
    assert results[500] - results[50] < 0.25  # 450 cycles = 0.15 us
    assert results[50] < results[200] < results[500]


def test_ablation_cstate_depth(run_once):
    """Deeper C-states trade idle power for wake-up latency; the paper
    stops at C1 because deeper states visibly hurt zero-load latency."""

    def latency_with_wakeup(wakeup_cycles):
        base = config(shape="FB", service_scv=0.0, power_optimized=True)
        cost_model = dataclasses.replace(base.cost_model, c1_wakeup=wakeup_cycles)
        cfg = dataclasses.replace(base, cost_model=cost_model)
        return run_hyperplane(
            cfg, load=0.01, target_completions=250, max_seconds=5.0
        ).latency.mean_us

    results = run_once(
        lambda: {
            label: latency_with_wakeup(cycles)
            for label, cycles in (("C1 (0.5us)", 1500), ("C6-ish (10us)", 30000))
        }
    )
    print(f"\nzero-load avg latency (us) by C-state depth: {results}")
    assert results["C6-ish (10us)"] > results["C1 (0.5us)"] + 8.0


def test_ablation_batch_size(run_once):
    """Batching amortises the QWAIT path over backlogged items."""

    def peak(batch):
        return run_hyperplane(
            config(), closed_loop=True, batch_size=batch,
            target_completions=2500, max_seconds=2.0,
        ).throughput_mtps

    results = run_once(lambda: {batch: peak(batch) for batch in (1, 2, 4)})
    print(f"\nSQ peak throughput (Mtask/s) by batch size: {results}")
    assert results[2] > results[1]
    assert results[4] >= results[2]


def test_ablation_work_stealing(run_once):
    """Skewed scale-out load: stealing recovers most of the idle cores'
    capacity (the paper's NUMA future-work mechanism)."""

    def peak(steal):
        return run_hyperplane(
            config(num_queues=16, num_cores=4, cluster_cores=1),
            closed_loop=True,
            work_stealing=steal,
            target_completions=2500,
            max_seconds=2.0,
        ).throughput_mtps

    results = run_once(lambda: {steal: peak(steal) for steal in (False, True)})
    print(f"\nskewed scale-out peak (Mtask/s) with/without stealing: {results}")
    assert results[True] > 1.5 * results[False]


def test_ablation_spurious_wake_rate(run_once):
    """QWAIT-VERIFY makes false sharing cheap: even aggressive spurious
    wake-up rates cost only the VERIFY path, not correctness."""

    def run(rate):
        metrics = run_hyperplane(
            config(shape="PC", spurious_wake_rate=rate), load=0.6,
            target_completions=2500, max_seconds=2.0,
        )
        return metrics.throughput_mtps, metrics.spurious_wakeups

    results = run_once(lambda: {rate: run(rate) for rate in (0.0, 0.25, 0.5)})
    print(f"\n(throughput, spurious wakes) by injection rate: {results}")
    assert results[0.5][1] > results[0.25][1] > 0
    # Throughput barely moves: the filter costs ~12 cycles per event.
    assert results[0.5][0] > 0.95 * results[0.0][0]


def test_ablation_burstiness(run_once):
    """At equal mean load, burstier tenant activity (the paper's
    motivation for unbalanced traffic) inflates spinning tails more than
    HyperPlane's — pooled notification absorbs the bursts."""
    from repro.core.dataplane import build_hyperplane
    from repro.sdp.spinning import build_spinning_cores
    from repro.sdp.system import DataPlaneSystem
    from repro.traffic.bursty import attach_bursty_traffic

    def p99(system_kind, burstiness):
        system = DataPlaneSystem(
            config(num_queues=64, shape="FB", seed=4)
        )
        if system_kind == "spin":
            build_spinning_cores(system)
        else:
            build_hyperplane(system)
        attach_bursty_traffic(system, load=0.6, burstiness=burstiness)
        return system.run(
            duration=0.3, warmup=0.002, target_completions=8000
        ).latency.p99_us

    results = run_once(
        lambda: {
            (kind, b): p99(kind, b)
            for kind in ("spin", "hp")
            for b in (1.0, 8.0)
        }
    )
    print(f"\np99 (us) by (system, burstiness): {results}")
    # Bursts hurt everyone...
    assert results[("spin", 8.0)] > results[("spin", 1.0)]
    assert results[("hp", 8.0)] > results[("hp", 1.0)]
    # ...but HyperPlane stays ahead, and by more under bursts.
    assert results[("hp", 8.0)] < results[("spin", 8.0)]
