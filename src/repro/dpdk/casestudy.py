"""The Fig. 3 DPDK measurements, reproduced on the simulation substrate.

Three measurements on one spinning core:

- :func:`dpdk_throughput_sweep` — Fig. 3(a): peak encapsulation
  throughput vs. queue count for FB / PC / NC / SQ.
- :func:`dpdk_roundtrip_latency` — Fig. 3(b): average and 99% round-trip
  forwarding latency vs. queue count at ~0.01 MPPS.
- :func:`dpdk_latency_cdf` — Fig. 3(c): the latency CDF at 1 / 256 / 512
  queues.

The forwarding task is lighter than the Section V workloads (a DPDK
l3fwd-style task, ~0.5 us), and reported latency adds the packet
generator's wire + NIC round trip, as the paper measures at the
generator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.workloads.service import WorkloadSpec

MICROSECOND = 1e-6

# A DPDK packet-forwarding/encapsulation task on a Skylake core.
DPDK_TASK = WorkloadSpec(
    name="dpdk-forwarding",
    mean_service_us=0.5,
    scv=0.0,
    figure8_peak_mtps=2.0,
    description="DPDK l3fwd-style packet forwarding (Section II-C)",
)

# Wire + NIC + generator round trip added to data-plane latency; the
# paper measures at the packet generator.
BASE_RTT_US = 3.0

# Fig. 3(b)'s offered load: ~0.01 MPPS.
LIGHT_LOAD_RATE = 0.01e6


class DpdkCaseStudy:
    """Shared configuration for the three Fig. 3 measurements."""

    def __init__(self, seed: int = 0, target_completions: int = 2000, max_seconds: float = 4.0):
        self.seed = seed
        self.target_completions = target_completions
        self.max_seconds = max_seconds

    def _config(self, num_queues: int, shape: str) -> SDPConfig:
        return SDPConfig(
            num_queues=num_queues,
            workload=DPDK_TASK,
            shape=shape,
            num_cores=1,
            seed=self.seed,
        )

    def peak_throughput(self, num_queues: int, shape: str) -> float:
        """Peak single-core throughput (Mtask/s) for one point."""
        metrics = run_spinning(
            self._config(num_queues, shape),
            closed_loop=True,
            target_completions=self.target_completions,
            max_seconds=self.max_seconds,
        )
        return metrics.throughput_mtps

    def roundtrip(self, num_queues: int) -> Tuple[float, float]:
        """(average, p99) round-trip latency in us at light load."""
        metrics = run_spinning(
            self._config(num_queues, "FB"),
            load=LIGHT_LOAD_RATE * DPDK_TASK.mean_service_seconds,
            target_completions=self.target_completions,
            max_seconds=self.max_seconds,
        )
        return (
            metrics.latency.mean_us + BASE_RTT_US,
            metrics.latency.p99_us + BASE_RTT_US,
        )

    def latency_cdf(self, num_queues: int, points: int = 60) -> List[Tuple[float, float]]:
        """The round-trip latency CDF at one queue count."""
        metrics = run_spinning(
            self._config(num_queues, "FB"),
            load=LIGHT_LOAD_RATE * DPDK_TASK.mean_service_seconds,
            target_completions=self.target_completions,
            max_seconds=self.max_seconds,
        )
        return [(latency + BASE_RTT_US, fraction) for latency, fraction in metrics.latency.cdf(points)]


def dpdk_throughput_sweep(
    queue_counts: Sequence[int] = (1, 100, 200, 400, 600, 800, 1000),
    shapes: Sequence[str] = ("FB", "PC", "NC", "SQ"),
    seed: int = 0,
    target_completions: int = 2000,
) -> Dict[str, Dict[int, float]]:
    """Fig. 3(a): throughput (Mtask/s) per shape per queue count."""
    study = DpdkCaseStudy(seed=seed, target_completions=target_completions)
    return {
        shape: {count: study.peak_throughput(count, shape) for count in queue_counts}
        for shape in shapes
    }


def dpdk_roundtrip_latency(
    queue_counts: Sequence[int] = (1, 64, 128, 256, 384, 512),
    seed: int = 0,
    target_completions: int = 1200,
) -> Dict[int, Tuple[float, float]]:
    """Fig. 3(b): (avg, p99) round-trip latency per queue count."""
    study = DpdkCaseStudy(seed=seed, target_completions=target_completions)
    return {count: study.roundtrip(count) for count in queue_counts}


def dpdk_latency_cdf(
    queue_counts: Sequence[int] = (1, 256, 512),
    seed: int = 0,
    target_completions: int = 1500,
) -> Dict[int, List[Tuple[float, float]]]:
    """Fig. 3(c): latency CDFs at the three queue counts."""
    study = DpdkCaseStudy(seed=seed, target_completions=target_completions)
    return {count: study.latency_cdf(count) for count in queue_counts}
