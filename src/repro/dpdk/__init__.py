"""DPDK case study (paper, Section II-C / Fig. 3).

A parameterisation of the spinning data-plane model approximating the
paper's real-hardware case study: a 24-core Skylake Xeon with a 100 GbE
ConnectX-5 NIC running DPDK poll-mode drivers. The workload is a light
packet task (~0.5 us), and reported latency includes the generator's
wire round-trip.
"""

from repro.dpdk.casestudy import (
    DPDK_TASK,
    DpdkCaseStudy,
    dpdk_latency_cdf,
    dpdk_roundtrip_latency,
    dpdk_throughput_sweep,
)

__all__ = [
    "DPDK_TASK",
    "DpdkCaseStudy",
    "dpdk_latency_cdf",
    "dpdk_roundtrip_latency",
    "dpdk_throughput_sweep",
]
