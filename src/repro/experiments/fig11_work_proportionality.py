"""Fig. 11: work proportionality (Section V-D).

(a) IPC of a packet-encapsulation data-plane core vs. load, split into
    useful work and useless spinning for the spinning plane; HyperPlane's
    IPC is linear in load.
(b) IPC of an SMT co-runner (matrix multiply) sharing the core with the
    data plane: it *rises* with load under spinning and falls under
    HyperPlane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.runner import run_hyperplane
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.smt.corunner import CoRunnerModel

FAST_LOADS = (0.001, 0.25, 0.5, 0.75, 0.95)
FULL_LOADS = (0.001, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 0.95)
NUM_QUEUES = 200
SHAPE = "PC"


def _activities(load: float, seed: int, completions: int):
    spin = run_spinning(
        SDPConfig(num_queues=NUM_QUEUES, workload="packet-encapsulation", shape=SHAPE, seed=seed),
        load=load,
        target_completions=completions,
        max_seconds=2.5,
    )
    hyper = run_hyperplane(
        SDPConfig(num_queues=NUM_QUEUES, workload="packet-encapsulation", shape=SHAPE, seed=seed),
        load=load,
        target_completions=completions,
        max_seconds=2.5,
    )
    return spin.chip_activity, hyper.chip_activity


@dataclass(frozen=True)
class Fig11Config(ExperimentConfig):
    """Fig. 11 settings; ``panel`` = "a" (IPC) or "b" (SMT co-runner)."""

    panel: str = "a"

    def __post_init__(self):
        if self.panel not in ("a", "b"):
            raise ValueError(f"unknown Fig. 11 panel {self.panel!r}; use a/b")


def run(config: Optional[Fig11Config] = None) -> ExperimentResult:
    """Reproduce one Fig. 11 panel."""
    config = config or Fig11Config()
    panel = {"a": _fig11a, "b": _fig11b}[config.panel]
    return panel(config.fast, config.seed)


def _fig11a(fast: bool, seed: int) -> ExperimentResult:
    """Fig. 11(a): IPC breakdown vs. load."""
    loads: Sequence[float] = FAST_LOADS if fast else FULL_LOADS
    completions = 2500 if fast else 6000
    result = ExperimentResult("fig11a", "Fig 11(a): IPC breakdown vs load")
    for load in loads:
        spin, hyper = _activities(load, seed, completions)
        result.rows.append(
            {
                "load": load,
                "spin_useful_ipc": spin.useful_ipc,
                "spin_useless_ipc": spin.useless_ipc,
                "spin_total_ipc": spin.ipc,
                "hp_ipc": hyper.ipc,
            }
        )
    zero = result.rows[0]
    top = result.rows[-1]
    result.notes.append(
        f"spinning IPC peaks at zero load ({zero['spin_total_ipc']:.2f}, all useless) "
        f"and is lower at {top['load']:.0%} ({top['spin_total_ipc']:.2f}); "
        f"HyperPlane IPC grows with load ({zero['hp_ipc']:.2f} -> {top['hp_ipc']:.2f})"
    )
    return result


def _fig11b(fast: bool, seed: int) -> ExperimentResult:
    """Fig. 11(b): SMT co-runner IPC vs. data-plane load."""
    loads: Sequence[float] = FAST_LOADS if fast else FULL_LOADS
    completions = 2500 if fast else 6000
    model = CoRunnerModel()
    result = ExperimentResult("fig11b", "Fig 11(b): co-runner IPC vs data-plane load")
    for load in loads:
        spin, hyper = _activities(load, seed, completions)
        result.rows.append(
            {
                "load": load,
                "corunner_vs_spinning": model.corunner_ipc(spin),
                "corunner_vs_hyperplane": model.corunner_ipc(hyper),
            }
        )
    first, last = result.rows[0], result.rows[-1]
    result.notes.append(
        f"against spinning the co-runner improves with load "
        f"({first['corunner_vs_spinning']:.2f} -> {last['corunner_vs_spinning']:.2f}); "
        f"against HyperPlane it degrades "
        f"({first['corunner_vs_hyperplane']:.2f} -> {last['corunner_vs_hyperplane']:.2f})"
    )
    return result
