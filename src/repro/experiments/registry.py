"""Experiment registry: id -> spec, and the instrumented entry point.

:data:`REGISTRY` maps each experiment id to an :class:`ExperimentSpec`
pairing the module's ``run(config)`` runner with a config factory.
:func:`run_experiment` is the one entry point the CLI, tests, and
benchmarks share: it builds the typed config, optionally activates a
metrics registry for the duration of the run, and stamps the result
with a :class:`~repro.obs.manifest.RunManifest`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional

from repro.experiments import (
    cluster_scaleout,
    dist_replay,
    fig3_dpdk,
    fig8_peak_throughput,
    fig9_zero_load,
    fig10_multicore,
    fig11_work_proportionality,
    fig12_power,
    fig13_ready_set,
    headline,
    hwcost,
)
from repro.experiments.base import (
    BackendConfig,
    ExperimentConfig,
    ExperimentResult,
    UsageError,
    validate_backend,
)
from repro.obs.manifest import RunManifest
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import active_registry


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: how to configure and run it."""

    experiment_id: str
    runner: Callable[[Any], ExperimentResult]
    make_config: Callable[[bool, int], ExperimentConfig]
    summary: str

    def config(self, fast: bool = True, seed: int = 0) -> ExperimentConfig:
        return self.make_config(fast, seed)


def _spec(experiment_id, module, make_config, summary=None) -> ExperimentSpec:
    if summary is None:
        summary = (module.run.__doc__ or "").strip().splitlines()[0]
    return ExperimentSpec(experiment_id, module.run, make_config, summary)


REGISTRY: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        _spec(
            "fig3a", fig3_dpdk,
            lambda fast, seed: fig3_dpdk.Fig3Config(fast=fast, seed=seed, panel="a"),
            "Fig. 3(a): DPDK single-core throughput vs. queue count.",
        ),
        _spec(
            "fig3b", fig3_dpdk,
            lambda fast, seed: fig3_dpdk.Fig3Config(fast=fast, seed=seed, panel="b"),
            "Fig. 3(b): DPDK light-load round-trip latency vs. queue count.",
        ),
        _spec(
            "fig3c", fig3_dpdk,
            lambda fast, seed: fig3_dpdk.Fig3Config(fast=fast, seed=seed, panel="c"),
            "Fig. 3(c): DPDK latency CDFs at 1 / 256 / 512 queues.",
        ),
        _spec(
            "fig8", fig8_peak_throughput,
            lambda fast, seed: fig8_peak_throughput.Fig8Config(fast=fast, seed=seed),
        ),
        _spec(
            "fig9a", fig9_zero_load,
            lambda fast, seed: fig9_zero_load.Fig9Config(fast=fast, seed=seed, panel="a"),
            "Fig. 9(a): spinning data plane avg/p99 at <1% load.",
        ),
        _spec(
            "fig9b", fig9_zero_load,
            lambda fast, seed: fig9_zero_load.Fig9Config(fast=fast, seed=seed, panel="b"),
            "Fig. 9(b): HyperPlane (regular and power-optimised) zero-load latency.",
        ),
        _spec(
            "fig10a", fig10_multicore,
            lambda fast, seed: fig10_multicore.Fig10Config(fast=fast, seed=seed, panel="a"),
            "Fig. 10(a): multicore tail latency, FB traffic, three organisations.",
        ),
        _spec(
            "fig10b", fig10_multicore,
            lambda fast, seed: fig10_multicore.Fig10Config(fast=fast, seed=seed, panel="b"),
            "Fig. 10(b): multicore tail latency, PC traffic with static imbalance.",
        ),
        _spec(
            "fig11a", fig11_work_proportionality,
            lambda fast, seed: fig11_work_proportionality.Fig11Config(
                fast=fast, seed=seed, panel="a"
            ),
            "Fig. 11(a): IPC breakdown vs. load.",
        ),
        _spec(
            "fig11b", fig11_work_proportionality,
            lambda fast, seed: fig11_work_proportionality.Fig11Config(
                fast=fast, seed=seed, panel="b"
            ),
            "Fig. 11(b): SMT co-runner IPC vs. data-plane load.",
        ),
        _spec(
            "fig12a", fig12_power,
            lambda fast, seed: fig12_power.Fig12Config(fast=fast, seed=seed, panel="a"),
            "Fig. 12(a): normalized power at zero vs. saturation load.",
        ),
        _spec(
            "fig12b", fig12_power,
            lambda fast, seed: fig12_power.Fig12Config(fast=fast, seed=seed, panel="b"),
            "Fig. 12(b): tail latency of power-optimised HyperPlane vs. load.",
        ),
        _spec(
            "fig13", fig13_ready_set,
            lambda fast, seed: fig13_ready_set.Fig13Config(fast=fast, seed=seed),
        ),
        _spec(
            "hwcost", hwcost,
            lambda fast, seed: hwcost.HwCostConfig(fast=fast, seed=seed),
        ),
        _spec(
            "headline", headline,
            lambda fast, seed: headline.HeadlineConfig(fast=fast, seed=seed),
        ),
        _spec(
            "cluster_scaleout", cluster_scaleout,
            lambda fast, seed: cluster_scaleout.ClusterScaleoutConfig(
                fast=fast, seed=seed
            ),
        ),
        _spec(
            "dist_replay", dist_replay,
            lambda fast, seed: dist_replay.DistReplayConfig(fast=fast, seed=seed),
        ),
    )
}


def backend_capable_experiments() -> list:
    """Experiment ids whose configs derive from :class:`BackendConfig`."""
    return sorted(
        experiment_id
        for experiment_id, spec in REGISTRY.items()
        if isinstance(spec.config(), BackendConfig)
    )


def run_experiment(
    experiment_id: str,
    fast: bool = True,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    backend: str = "event",
    workers: Optional[int] = None,
    speed_factor: Optional[float] = None,
    transport: Optional[str] = None,
    telemetry: Optional[bool] = None,
    telemetry_out: Optional[str] = None,
    dash: Optional[bool] = None,
) -> ExperimentResult:
    """Run one experiment by id, stamping the result with its manifest.

    ``backend`` selects the execution engine for the experiments that
    support one (:func:`backend_capable_experiments`); unknown backends
    and unsupported experiments raise
    :class:`~repro.experiments.base.UsageError` with the valid choices
    listed. ``workers`` / ``speed_factor`` / ``transport`` tune the
    dist backend's fleet shape, replay pacing, and socket family on the
    experiments whose configs carry those fields. ``telemetry`` /
    ``telemetry_out`` / ``dash`` switch on live fleet telemetry (and
    the terminal dashboard) on the experiments that stream it — see
    docs/live-telemetry.md.

    When ``metrics`` is an enabled :class:`MetricsRegistry`, it is
    installed as the ambient registry for the duration of the run so
    every simulator, data plane, memory hierarchy, and rack built by
    the experiment self-instruments into it. Process fan-out stays
    enabled: :func:`~repro.experiments.parallel.parallel_map` runs each
    grid point under a per-task registry and merges the snapshots back,
    so counters and histograms are identical to a serial run whatever
    ``REPRO_PROCESSES`` says.
    """
    try:
        spec = REGISTRY[experiment_id]
    except KeyError:
        raise UsageError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    config = spec.config(fast=fast, seed=seed)
    if backend != "event":
        validate_backend(backend)
        if not isinstance(config, BackendConfig):
            raise UsageError(
                f"experiment {experiment_id!r} does not support "
                f"backend={backend!r}; backend-capable experiments: "
                f"{backend_capable_experiments()}"
            )
        config = replace(config, backend=backend)
    for name, value in (
        ("workers", workers),
        ("speed_factor", speed_factor),
        ("transport", transport),
        ("telemetry", telemetry),
        ("telemetry_out", telemetry_out),
        ("dash", dash),
    ):
        if value is None:
            continue
        if not hasattr(config, name):
            raise UsageError(
                f"experiment {experiment_id!r} does not accept {name!r} "
                f"(only dist-capable experiments do)"
            )
        config = replace(config, **{name: value})
    metrics_enabled = metrics is not None and metrics.enabled

    started_at = time.time()
    with active_registry(metrics):
        result = spec.runner(config)
    wall_seconds = time.time() - started_at

    sim_events = 0
    if metrics_enabled and "sim.events_total" in metrics:
        sim_events = int(metrics.counter("sim.events_total").value)
    result.manifest = RunManifest.capture(
        experiment_id=experiment_id,
        config=config.asdict(),
        root_seed=config.seed,
        started_at=started_at,
        wall_seconds=wall_seconds,
        sim_events=sim_events,
        metrics_enabled=metrics_enabled,
        backend=getattr(config, "backend", None),
        vec=result.vec_info,
        dist=result.dist_info,
    )
    return result
