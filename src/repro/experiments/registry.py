"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.base import ExperimentResult
from repro.experiments.cluster_scaleout import run_cluster_scaleout
from repro.experiments.fig3_dpdk import run_fig3a, run_fig3b, run_fig3c
from repro.experiments.fig8_peak_throughput import run_fig8
from repro.experiments.fig9_zero_load import run_fig9a, run_fig9b
from repro.experiments.fig10_multicore import run_fig10a, run_fig10b
from repro.experiments.fig11_work_proportionality import run_fig11a, run_fig11b
from repro.experiments.fig12_power import run_fig12a, run_fig12b
from repro.experiments.fig13_ready_set import run_fig13
from repro.experiments.headline import run_headline
from repro.experiments.hwcost import run_hwcost

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig3c": run_fig3c,
    "fig8": run_fig8,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "fig10a": run_fig10a,
    "fig10b": run_fig10b,
    "fig11a": run_fig11a,
    "fig11b": run_fig11b,
    "fig12a": run_fig12a,
    "fig12b": run_fig12b,
    "fig13": run_fig13,
    "hwcost": run_hwcost,
    "headline": run_headline,
    "cluster_scaleout": run_cluster_scaleout,
}


def run_experiment(experiment_id: str, fast: bool = True) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    return runner(fast=fast)
