"""Parallel sweep helper for experiment grids.

Figure sweeps are embarrassingly parallel across grid points (each point
is an independent, seeded simulation), so ``--full`` grids can fan out
over processes. Determinism is preserved: each point's result depends
only on its own arguments, and results are returned in submission
order regardless of completion order.

Usage::

    from repro.experiments.parallel import parallel_map

    points = [(workload, shape, count) for ...]
    results = parallel_map(peak_point_star, points, processes=8)

The callable must be a module-level function (picklable); pass tuples of
arguments and unpack inside.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

Point = TypeVar("Point")
Result = TypeVar("Result")


def default_processes() -> int:
    """Half the machine's CPUs, at least one — simulations are
    memory-light but the harness should not monopolise the box.

    The ``REPRO_PROCESSES`` environment variable overrides the heuristic
    (``REPRO_PROCESSES=1`` forces the serial in-process path, which CI
    uses for reproducible timings on shared runners).
    """
    override = os.environ.get("REPRO_PROCESSES")
    if override is not None:
        try:
            value = int(override)
        except ValueError:
            raise ValueError(
                f"REPRO_PROCESSES must be an integer, got {override!r}"
            )
        if value < 1:
            raise ValueError(f"REPRO_PROCESSES must be >= 1, got {value}")
        return value
    return max(1, (os.cpu_count() or 2) // 2)


def parallel_map(
    function: Callable[[Point], Result],
    points: Sequence[Point],
    processes: Optional[int] = None,
    chunk_size: int = 1,
) -> List[Result]:
    """Map ``function`` over ``points`` across processes, order-preserving.

    Falls back to an in-process map for one worker or one point (also
    the path tests exercise deterministically without fork overhead).
    """
    if processes is None:
        processes = default_processes()
    if processes <= 1 or len(points) <= 1:
        return [function(point) for point in points]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(function, points, chunksize=chunk_size))
