"""Parallel sweep helper for experiment grids.

Figure sweeps are embarrassingly parallel across grid points (each point
is an independent, seeded simulation), so ``--full`` grids can fan out
over processes. Determinism is preserved: each point's result depends
only on its own arguments, and results are returned in submission
order regardless of completion order.

Usage::

    from repro.experiments.parallel import parallel_map

    points = [(workload, shape, count) for ...]
    results = parallel_map(peak_point_star, points, processes=8)

The callable must be a module-level function (picklable); pass tuples of
arguments and unpack inside.

Instrumented sweeps
-------------------
The ambient metrics registry (:func:`repro.obs.runtime.active_registry`)
is process-local and does not cross the pool boundary. When an enabled
registry is active in the submitting process, :func:`parallel_map`
transparently runs every point under a fresh per-task registry — in the
worker for pooled execution, in-process for the serial fallback — and
folds the task snapshots back into the ambient registry in submission
order (:meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`).
Counters and histograms therefore collect exactly the same values
whatever the worker count, and instrumented experiments no longer need
to force serial execution.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

Point = TypeVar("Point")
Result = TypeVar("Result")


def default_processes() -> int:
    """Half the machine's CPUs, at least one — simulations are
    memory-light but the harness should not monopolise the box.

    The ``REPRO_PROCESSES`` environment variable overrides the heuristic
    (``REPRO_PROCESSES=1`` forces the serial in-process path, which CI
    uses for reproducible timings on shared runners).
    """
    override = os.environ.get("REPRO_PROCESSES")
    if override is not None:
        try:
            value = int(override)
        except ValueError:
            raise ValueError(
                f"REPRO_PROCESSES must be an integer, got {override!r}"
            )
        if value < 1:
            raise ValueError(f"REPRO_PROCESSES must be >= 1, got {value}")
        return value
    return max(1, (os.cpu_count() or 2) // 2)


def auto_chunk_size(num_points: int, processes: int) -> int:
    """Points per pool task: ``len(points) // (4 * processes)``, min 1.

    One-point chunks maximise balance but pay per-task pickling and
    scheduling on every point, which dominates for large grids of small
    simulations. Four chunks per worker keeps the tail balanced (a slow
    chunk strands at most ~1/4 of one worker's share) while cutting task
    overhead by the chunk length.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    return max(1, num_points // (4 * processes))


class _InstrumentedTask:
    """Picklable wrapper running one point under a fresh metrics registry.

    Returns ``(result, snapshot)`` so the submitting process can fold
    the task's metrics into the ambient registry. Used for both pooled
    and serial execution so instrumented sweeps collect identical
    counters/histograms regardless of worker count.
    """

    __slots__ = ("function",)

    def __init__(self, function: Callable):
        self.function = function

    def __call__(self, point):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.runtime import active_registry

        registry = MetricsRegistry(enabled=True)
        with active_registry(registry):
            result = self.function(point)
        return result, registry.snapshot()


def parallel_map(
    function: Callable[[Point], Result],
    points: Sequence[Point],
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Result]:
    """Map ``function`` over ``points`` across processes, order-preserving.

    Falls back to an in-process map for one worker or one point (also
    the path tests exercise deterministically without fork overhead).

    ``chunk_size`` is the number of points handed to a worker per pool
    task; the default is :func:`auto_chunk_size`'s four-chunks-per-worker
    heuristic. Pass an explicit value to override (``1`` restores
    maximal balancing for grids of few, slow points).

    If an enabled metrics registry is ambient, each point runs under its
    own registry and the per-point snapshots are merged back in
    submission order — see the module docstring.
    """
    from repro.obs.runtime import get_active_registry

    if processes is None:
        processes = default_processes()
    if chunk_size is None:
        chunk_size = auto_chunk_size(len(points), max(1, processes))
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    registry = get_active_registry()
    task = _InstrumentedTask(function) if registry is not None else function

    if processes <= 1 or len(points) <= 1:
        outputs = [task(point) for point in points]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            outputs = list(pool.map(task, points, chunksize=chunk_size))

    if registry is None:
        return outputs
    results = []
    for result, snapshot in outputs:
        registry.merge_snapshot(snapshot)
        results.append(result)
    return results
