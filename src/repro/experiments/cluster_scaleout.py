"""Cluster scale-out: fleet tail latency for racks of 1..64 servers.

The paper stops at one server; this sweep asks what its comparison
looks like at rack scale. N servers (each an unmodified single-server
data plane running spinning or HyperPlane notification) sit behind a
front-end balancer, with a Zipf-skewed client flow population injecting
the load imbalance that per-flow hashing cannot see.

Grid: servers {1, 4, 16, 64} x balancer policy x {spinning, hyperplane}
x fault profile. The headline shapes, asserted in
``benchmarks/test_cluster_scaleout.py``:

- spinning-fleet p99 degrades super-linearly with fleet size under
  hashed (rss) placement — the hottest server saturates, and spinning's
  empty-queue scans amplify the overload (Fig. 10's scale-out imbalance
  sensitivity, at rack scale);
- HyperPlane fleets stay flat (within 2x of their 1-server p99) until a
  straggler or failover concentrates load;
- power-of-two-choices recovers most of the spinning gap by spreading
  requests per-request instead of per-flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import ClusterConfig, run_cluster
from repro.experiments.base import ExperimentConfig, ExperimentResult, deprecated_runner
from repro.experiments.parallel import parallel_map

# Operating point (calibrated): wide per-server queue arrays make the
# spinning scan cost steep, a modest Zipf skew concentrates flows, and
# the flow population scales with the fleet so per-server queue
# occupancy stays comparable across N (pure imbalance, not dilution).
QUEUES_PER_SERVER = 512
FLOWS_PER_SERVER = 16
FLOW_SKEW = 0.3
LOAD = 0.25
DURATION = 0.04
WARMUP = 0.01

FAST_SERVERS = (1, 4, 16)
FULL_SERVERS = (1, 4, 16, 64)
FAST_POLICIES = ("rss", "p2c")
FULL_POLICIES = ("rss", "round-robin", "least-loaded", "p2c")
FAULT_PROFILES = ("crash", "straggler", "link-degrade")
FAULT_SERVERS = 4  # fleet size for the fault-profile rows

Point = Tuple[int, str, str, str, int, int]


def scaleout_point(point: Point) -> Dict[str, object]:
    """One grid point -> one result row (module-level: picklable)."""
    servers, balancer, system, profile, seed, completions = point
    config = ClusterConfig(
        num_servers=servers,
        notification=system,
        balancer=balancer,
        fault_profile=profile,
        queues_per_server=QUEUES_PER_SERVER,
        num_flows=FLOWS_PER_SERVER * servers,
        flow_skew=FLOW_SKEW,
        seed=seed,
    )
    rack = run_cluster(
        config,
        load=LOAD,
        duration=DURATION,
        warmup=WARMUP,
        target_completions=completions,
    )
    summary = rack.metrics.summary()
    return {
        "servers": servers,
        "system": system,
        "balancer": balancer,
        "fault": profile,
        "p50_us": summary["p50_latency_us"],
        "p99_us": summary["p99_latency_us"],
        "p999_us": summary["p999_latency_us"],
        "avg_us": summary["avg_latency_us"],
        "hottest_share": summary["hottest_share"],
        "lost": int(summary["lost"]),
        "redispatched": int(summary["redispatched"]),
    }


def _completions(servers: int, fast: bool) -> int:
    base = 3000 if fast else 6000
    return base * min(servers, 4)


def _grid(fast: bool, seed: int) -> List[Point]:
    """Scale rows first, then fault rows at a fixed fleet size."""
    server_counts: Sequence[int] = FAST_SERVERS if fast else FULL_SERVERS
    policies: Sequence[str] = FAST_POLICIES if fast else FULL_POLICIES
    points: List[Point] = []
    for servers in server_counts:
        for system in ("spinning", "hyperplane"):
            for balancer in policies:
                points.append(
                    (servers, balancer, system, "none", seed,
                     _completions(servers, fast))
                )
    for profile in FAULT_PROFILES:
        for system in ("spinning", "hyperplane"):
            points.append(
                (FAULT_SERVERS, "rss", system, profile, seed,
                 _completions(FAULT_SERVERS, fast))
            )
    return points


def _pick(rows, **match) -> Dict[str, object]:
    for row in rows:
        if all(row[key] == value for key, value in match.items()):
            return row
    raise KeyError(f"no row matching {match}")


@dataclass(frozen=True)
class ClusterScaleoutConfig(ExperimentConfig):
    """Rack-scale sweep settings (defaults = calibrated operating point).

    ``trace`` runs the sweep under a causal tracer and appends the
    per-mechanism latency decomposition to the notes.
    """

    trace: bool = False


def run(config: Optional[ClusterScaleoutConfig] = None) -> ExperimentResult:
    """Cluster scale-out: fleet p99 vs. servers, balancers, and faults."""
    config = config or ClusterScaleoutConfig()
    from repro.experiments.base import run_with_tracing

    return run_with_tracing(config, lambda: _run_grid(config))


def _run_grid(config: ClusterScaleoutConfig) -> ExperimentResult:
    from repro.obs.trace import get_active_tracer

    points = _grid(config.fast, config.seed)
    # Spans cannot cross the process-pool boundary, so a traced sweep
    # runs its (results-identical) serial in-process path; racks built
    # here then self-trace into the ambient tracer.
    processes = 1 if get_active_tracer() is not None else None
    rows = parallel_map(scaleout_point, points, processes=processes)
    result = ExperimentResult(
        "cluster_scaleout",
        "Cluster scale-out: fleet tail latency (us), "
        f"{QUEUES_PER_SERVER} queues/server, skew {FLOW_SKEW}, "
        f"load {LOAD:.0%}",
    )
    result.rows = rows

    biggest = max(row["servers"] for row in rows)
    spin_1 = _pick(rows, servers=1, system="spinning", balancer="rss", fault="none")
    spin_n = _pick(rows, servers=biggest, system="spinning", balancer="rss", fault="none")
    hp_1 = _pick(rows, servers=1, system="hyperplane", balancer="rss", fault="none")
    hp_n = _pick(rows, servers=biggest, system="hyperplane", balancer="rss", fault="none")
    p2c_n = _pick(rows, servers=biggest, system="spinning", balancer="p2c", fault="none")
    result.notes.append(
        f"rss scale-out 1 -> {biggest} servers: spinning p99 "
        f"{spin_1['p99_us']:.0f} -> {spin_n['p99_us']:.0f} us "
        f"({spin_n['p99_us'] / spin_1['p99_us']:.1f}x), HyperPlane "
        f"{hp_1['p99_us']:.1f} -> {hp_n['p99_us']:.1f} us "
        f"({hp_n['p99_us'] / hp_1['p99_us']:.2f}x)"
    )
    gap = spin_n["p99_us"] - spin_1["p99_us"]
    if gap > 0:
        recovered = 1.0 - (p2c_n["p99_us"] - spin_1["p99_us"]) / gap
        result.notes.append(
            f"p2c recovers {recovered:.0%} of the spinning scale-out gap "
            f"(p99 {p2c_n['p99_us']:.0f} us at {biggest} servers)"
        )
    straggler = _pick(
        rows, servers=FAULT_SERVERS, system="hyperplane", fault="straggler"
    )
    crash = _pick(rows, servers=FAULT_SERVERS, system="hyperplane", fault="crash")
    result.notes.append(
        f"faults at {FAULT_SERVERS} servers (HyperPlane, rss): straggler "
        f"p99 {straggler['p99_us']:.0f} us, crash p99 {crash['p99_us']:.1f} us "
        f"with {crash['redispatched']} re-dispatched requests"
    )
    return result


def run_cluster_scaleout(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Deprecated: use ``run(ClusterScaleoutConfig(...))``."""
    return deprecated_runner(
        "run_cluster_scaleout", run, ClusterScaleoutConfig(fast=fast, seed=seed)
    )
