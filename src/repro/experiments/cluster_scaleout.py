"""Cluster scale-out: fleet tail latency for racks of 1..64 servers.

The paper stops at one server; this sweep asks what its comparison
looks like at rack scale. N servers (each an unmodified single-server
data plane running spinning or HyperPlane notification) sit behind a
front-end balancer, with a Zipf-skewed client flow population injecting
the load imbalance that per-flow hashing cannot see.

Grid: servers {1, 4, 16, 64} x balancer policy x {spinning, hyperplane}
x fault profile. The headline shapes, asserted in
``benchmarks/test_cluster_scaleout.py``:

- spinning-fleet p99 degrades super-linearly with fleet size under
  hashed (rss) placement — the hottest server saturates, and spinning's
  empty-queue scans amplify the overload (Fig. 10's scale-out imbalance
  sensitivity, at rack scale);
- HyperPlane fleets stay flat (within 2x of their 1-server p99) until a
  straggler or failover concentrates load;
- power-of-two-choices recovers most of the spinning gap by spreading
  requests per-request instead of per-flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import ClusterConfig, run_cluster
from repro.experiments.base import BackendConfig, ExperimentResult, UsageError
from repro.experiments.parallel import parallel_map

# Operating point (calibrated): wide per-server queue arrays make the
# spinning scan cost steep, a modest Zipf skew concentrates flows, and
# the flow population scales with the fleet so per-server queue
# occupancy stays comparable across N (pure imbalance, not dilution).
QUEUES_PER_SERVER = 512
FLOWS_PER_SERVER = 16
FLOW_SKEW = 0.3
LOAD = 0.25
DURATION = 0.04
WARMUP = 0.01

FAST_SERVERS = (1, 4, 16)
FULL_SERVERS = (1, 4, 16, 64)
FAST_POLICIES = ("rss", "p2c")
FULL_POLICIES = ("rss", "round-robin", "least-loaded", "p2c")
FAULT_PROFILES = ("crash", "straggler", "link-degrade")
FAULT_SERVERS = 4  # fleet size for the fault-profile rows

Point = Tuple[int, str, str, str, int, int]


def scaleout_point(point: Point) -> Dict[str, object]:
    """One grid point -> one result row (module-level: picklable)."""
    servers, balancer, system, profile, seed, completions = point
    config = ClusterConfig(
        num_servers=servers,
        notification=system,
        balancer=balancer,
        fault_profile=profile,
        queues_per_server=QUEUES_PER_SERVER,
        num_flows=FLOWS_PER_SERVER * servers,
        flow_skew=FLOW_SKEW,
        seed=seed,
    )
    rack = run_cluster(
        config,
        load=LOAD,
        duration=DURATION,
        warmup=WARMUP,
        target_completions=completions,
    )
    summary = rack.metrics.summary()
    return {
        "servers": servers,
        "system": system,
        "balancer": balancer,
        "fault": profile,
        "p50_us": summary["p50_latency_us"],
        "p99_us": summary["p99_latency_us"],
        "p999_us": summary["p999_latency_us"],
        "avg_us": summary["avg_latency_us"],
        "hottest_share": summary["hottest_share"],
        "lost": int(summary["lost"]),
        "redispatched": int(summary["redispatched"]),
    }


def dist_scaleout_point(
    point: Point, workers: int, speed_factor: float, telemetry=None
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """One grid point on the multi-process fleet -> (row, fleet record).

    Each point spawns its own worker fleet (``min(workers, servers)``
    processes over the default transport), replays the rack-equivalent
    Poisson client population, and merges per-node metrics back through
    the obs snapshot machinery — so the row has exactly the same shape
    as :func:`scaleout_point`'s. ``telemetry`` optionally attaches a
    :class:`repro.obs.live.TelemetryBus` shared across grid points.
    """
    from repro.dist import DistOptions, run_cluster_dist

    servers, balancer, system, profile, seed, completions = point
    config = ClusterConfig(
        num_servers=servers,
        notification=system,
        balancer=balancer,
        fault_profile=profile,
        queues_per_server=QUEUES_PER_SERVER,
        num_flows=FLOWS_PER_SERVER * servers,
        flow_skew=FLOW_SKEW,
        seed=seed,
    )
    run = run_cluster_dist(
        config,
        load=LOAD,
        duration=DURATION,
        warmup=WARMUP,
        target_completions=completions,
        options=DistOptions(workers=workers, speed_factor=speed_factor),
        telemetry=telemetry,
    )
    summary = run.metrics.summary()
    row = {
        "servers": servers,
        "system": system,
        "balancer": balancer,
        "fault": profile,
        "p50_us": summary["p50_latency_us"],
        "p99_us": summary["p99_latency_us"],
        "p999_us": summary["p999_latency_us"],
        "avg_us": summary["avg_latency_us"],
        "hottest_share": summary["hottest_share"],
        "lost": int(summary["lost"]),
        "redispatched": int(summary["redispatched"]),
    }
    record = {
        "servers": servers,
        "system": system,
        "balancer": balancer,
        "fault": profile,
        "workers": run.info["workers"],
        "transport": run.info["transport"],
        "partial": run.partial,
        "worker_faults": run.worker_faults,
        "nodes": run.nodes,
    }
    if telemetry is not None:
        record["telemetry"] = run.info.get("telemetry", {})
    return row, record


def _completions(servers: int, fast: bool) -> int:
    base = 3000 if fast else 6000
    return base * min(servers, 4)


def _grid(fast: bool, seed: int) -> List[Point]:
    """Scale rows first, then fault rows at a fixed fleet size."""
    server_counts: Sequence[int] = FAST_SERVERS if fast else FULL_SERVERS
    policies: Sequence[str] = FAST_POLICIES if fast else FULL_POLICIES
    points: List[Point] = []
    for servers in server_counts:
        for system in ("spinning", "hyperplane"):
            for balancer in policies:
                points.append(
                    (servers, balancer, system, "none", seed,
                     _completions(servers, fast))
                )
    for profile in FAULT_PROFILES:
        for system in ("spinning", "hyperplane"):
            points.append(
                (FAULT_SERVERS, "rss", system, profile, seed,
                 _completions(FAULT_SERVERS, fast))
            )
    return points


def _pick(rows, **match) -> Dict[str, object]:
    for row in rows:
        if all(row[key] == value for key, value in match.items()):
            return row
    raise KeyError(f"no row matching {match}")


@dataclass(frozen=True)
class ClusterScaleoutConfig(BackendConfig):
    """Rack-scale sweep settings (defaults = calibrated operating point).

    ``trace`` runs the sweep under a causal tracer and appends the
    per-mechanism latency decomposition to the notes.

    ``backend``: ``event`` runs the full rack simulator everywhere;
    ``vec`` / ``surrogate`` run a *hybrid* — the no-fault scale rows are
    approximated by batching every server as an independent vec lane at
    its balancer-derived load share and pooling the fleet tail
    analytically, while the fault rows (crash / straggler /
    link-degrade semantics only the rack models) always run the exact
    event path (see docs/vectorized.md); ``dist`` runs every grid point
    across a fleet of worker processes over loopback sockets
    (``workers`` per point, capped at the point's server count) via
    :func:`repro.dist.run_cluster_dist` — bit-exact with the event rack
    for rss placement, statistically equivalent otherwise (see
    docs/distributed.md). ``speed_factor`` paces the dist replay
    against the wall clock (0 = max speed, what CI uses).

    ``telemetry`` / ``telemetry_out`` attach one shared live-telemetry
    bus across all grid-point fleets (dist backend only — see
    docs/live-telemetry.md); frames stream to ``telemetry_out`` as
    JSONL when set.
    """

    trace: bool = False
    workers: int = 4
    speed_factor: float = 0.0
    telemetry: bool = False
    telemetry_out: Optional[str] = None

    supported_backends = ("event", "vec", "surrogate", "dist")

    def __post_init__(self):
        super().__post_init__()
        ceiling = max(FULL_SERVERS)
        if not 1 <= self.workers <= ceiling:
            raise UsageError(
                f"workers={self.workers} invalid; expected one of "
                f"1..{ceiling} (per-point fleets cap workers at the "
                f"point's server count; the largest grid point has "
                f"{ceiling} servers)"
            )
        if self.speed_factor < 0:
            raise ValueError("speed_factor must be >= 0 (0 = max speed)")
        if (self.telemetry or self.telemetry_out) and self.backend != "dist":
            raise UsageError(
                "telemetry requires backend='dist' (live frames stream "
                "from worker processes; the in-process backends have "
                "none)"
            )


def run(config: Optional[ClusterScaleoutConfig] = None) -> ExperimentResult:
    """Cluster scale-out: fleet p99 vs. servers, balancers, and faults."""
    config = config or ClusterScaleoutConfig()
    from repro.experiments.base import run_with_tracing

    return run_with_tracing(config, lambda: _run_grid(config))


def _flow_placement(
    servers: int, balancer: str, seed: int
) -> List[Tuple[float, List[float]]]:
    """Per-server (arrival share, per-flow weights) under one policy.

    ``rss`` replays the rack's own flow placement (same hash ring, same
    ring seed, same Zipf flow weights), so hashed imbalance is exact.
    The per-request policies spread every flow uniformly in the long
    run: each server sees the whole (sticky-per-server) flow mix at
    ``1/N`` of the fleet rate.
    """
    from repro.cluster.rack import flow_weights

    weights = flow_weights(FLOWS_PER_SERVER * servers, FLOW_SKEW)
    total = sum(weights)
    if balancer != "rss":
        return [(1.0 / servers, list(weights))] * servers
    from repro.cluster.balancer import HashRing
    from repro.sim.rng import derive_seed

    ring_seed = derive_seed(seed, "cluster.ring")
    ring = HashRing(servers, seed=ring_seed)
    live = [True] * servers
    per_server: List[List[float]] = [[] for _ in range(servers)]
    for flow, weight in enumerate(weights):
        per_server[ring.lookup(ring.key(flow, ring_seed), live)].append(weight)
    return [(sum(flows) / total, flows) for flows in per_server]


def _mixture_quantile(shares, scales, quantile: float) -> float:
    """The fleet-level latency quantile of a share-weighted mixture.

    Each server's tail is modelled as exponential anchored on its own
    quantile at the same level: P_s(X > x) = (1-q) ** (x / scale_s).
    Bisection solves sum(share_s * P_s(x)) = 1 - q.
    """
    import math

    tail = 1.0 - quantile
    log_tail = math.log(tail)

    def excess(x: float) -> float:
        return sum(
            share * math.exp(log_tail * x / scale) if scale > 0 else 0.0
            for share, scale in zip(shares, scales)
        ) - tail

    low, high = 0.0, max(scales) * 4 + 1e-9
    while excess(high) > 0:
        high *= 2
    for _ in range(60):
        mid = (low + high) / 2
        if excess(mid) > 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def _spinning_polling_anchors(fleet_rate: float, placement) -> Tuple[
    List[float], List[float], List[float], List[float], List[float]
]:
    """Per-(server, flow-queue) latency anchors for a spinning fleet.

    A spinning server whose traffic sticks to a few flow-queues is a
    *1-limited polling system* (the scan serves one item per ready
    queue per ring pass — see repro.sdp.spinning), which the vec FCFS
    recursion cannot represent. Model it analytically instead: ring
    walk time ``V`` per cycle, cycle time ``T = V / (1 - rho)``, and
    each flow-queue an M/G/1-ish station served once per cycle with
    wait ``T/2 + T * rho_q / (2 (1 - rho_q))``, exponential-tailed.

    A queue with ``rho_q = lambda_q * T >= 1`` is *unstable*: its
    backlog ramps for the whole run, so a task arriving at time ``t``
    waits an extra ``(rho_q - 1) * t``. That transient — not any steady
    state — is what makes hashed spinning fleets blow up super-linearly,
    so the anchors add the ramp evaluated over the measurement window.
    Returns (weights, p50, p99, p999, mean) anchor lists in us.
    """
    import math

    from repro.mem.costmodel import derive_cost_model
    from repro.sdp.locality import LocalityModel
    from repro.workloads.service import workload_by_name

    frequency_hz = 3.0e9
    cost_model = derive_cost_model()
    locality = LocalityModel(cost_model)
    spec = workload_by_name(ClusterConfig(num_servers=1).workload)
    empty_poll = locality.empty_poll_cost(QUEUES_PER_SERVER, QUEUES_PER_SERVER)
    stall = locality.task_data_stall_cycles(QUEUES_PER_SERVER)
    walk_s = QUEUES_PER_SERVER * empty_poll / frequency_hz
    task_s = spec.mean_service_seconds + (
        cost_model.dequeue + cost_model.doorbell_update + stall
    ) / frequency_hz

    weights: List[float] = []
    p50s: List[float] = []
    p99s: List[float] = []
    p999s: List[float] = []
    means: List[float] = []
    for share, flows in placement:
        if not flows:
            continue
        server_rate = fleet_rate * share
        rho = min(server_rate * task_s, 0.90)
        cycle_s = walk_s / (1.0 - rho)
        flow_total = sum(flows)
        for weight in flows:
            flow_rate = server_rate * weight / flow_total
            rho_q_raw = flow_rate * cycle_s
            rho_q = min(rho_q_raw, 0.95)
            wait_s = cycle_s / 2 + cycle_s * rho_q / (2 * (1 - rho_q))
            # Unstable queue: deterministic backlog ramp over the run.
            # A task arriving at time t waits (rho_q - 1) * t extra;
            # arrivals are uniform over [0, DURATION], warmup discarded.
            over = max(rho_q_raw - 1.0, 0.0)
            window = DURATION - WARMUP
            ramp = lambda q: over * (WARMUP + q * window) * 1e6  # noqa: E731
            base_us = task_s * 1e6
            wait_us = wait_s * 1e6
            weights.append(share * weight / flow_total)
            p50s.append(base_us + wait_us * math.log(2) + ramp(0.50))
            p99s.append(base_us + wait_us * math.log(100) + ramp(0.99))
            p999s.append(base_us + wait_us * math.log(1000) + ramp(0.999))
            means.append(base_us + wait_us + ramp(0.50))
    return weights, p50s, p99s, p999s, means


def _vec_scale_rows(config: ClusterScaleoutConfig, points: List[Point]) -> List[Dict[str, object]]:
    """Approximate the no-fault scale rows without the rack simulator.

    HyperPlane servers become batched open-loop vec lanes at their
    balancer-derived load shares (deduplicated — uniform policies
    collapse to one point per fleet). Spinning servers use the
    1-limited-polling anchors instead (their sticky flow-queues break
    the FCFS lane model; see :func:`_spinning_polling_anchors`). Fleet
    p50/p99/p999 pool the per-server/per-queue anchors with an
    exponential-tail mixture, plus the one-way access-link delay the
    rack measures (balancer-to-completion).
    """
    from repro.vec.arrays import SweepPoint
    from repro.vec.backend import latency_grid
    from repro.workloads.service import workload_by_name

    defaults = ClusterConfig(num_servers=1)
    link_shift_us = (
        defaults.link_propagation_s
        + defaults.request_bytes * 8 / (defaults.link_gbps * 1e9)
    ) * 1e6
    mean_service = workload_by_name(defaults.workload).mean_service_seconds

    sweep_points: List[SweepPoint] = []
    sweep_index: Dict[float, int] = {}
    plan = []  # (row point, placement, per-server sweep indices or None)
    for point in points:
        servers, balancer, system, _profile, seed, _completions = point
        placement = _flow_placement(servers, balancer, seed)
        indices = None
        if system == "hyperplane":
            indices = []
            for share, _flows in placement:
                rho = min(LOAD * servers * share, 0.90)
                if rho not in sweep_index:
                    sweep_index[rho] = len(sweep_points)
                    sweep_points.append(
                        SweepPoint(
                            defaults.workload,
                            defaults.shape,
                            QUEUES_PER_SERVER,
                            mechanism="hyperplane",
                            num_cores=1,
                            load=rho,
                        )
                    )
                indices.append(sweep_index[rho])
        plan.append((point, placement, indices))

    res = latency_grid(sweep_points, seed=config.seed) if sweep_points else None
    rows: List[Dict[str, object]] = []
    for (servers, balancer, system, profile, _seed, _completions), placement, indices in plan:
        fleet_rate = LOAD * servers / mean_service
        if indices is not None:
            weights = [share for share, _flows in placement]
            p50s = [float(res.p50_us[i]) for i in indices]
            p99s = [float(res.p99_us[i]) for i in indices]
            means = [float(res.mean_us[i]) for i in indices]
            # p999 from the same exponential-tail model the mixture
            # uses: p999 = p99 * ln(1000) / ln(100).
            p999s = [p99 * 1.5 for p99 in p99s]
        else:
            weights, p50s, p99s, p999s, means = _spinning_polling_anchors(
                fleet_rate, placement
            )
        rows.append(
            {
                "servers": servers,
                "system": system,
                "balancer": balancer,
                "fault": profile,
                "p50_us": _mixture_quantile(weights, p50s, 0.50) + link_shift_us,
                "p99_us": _mixture_quantile(weights, p99s, 0.99) + link_shift_us,
                "p999_us": _mixture_quantile(weights, p999s, 0.999) + link_shift_us,
                "avg_us": sum(w * m for w, m in zip(weights, means)) / sum(weights)
                + link_shift_us,
                "hottest_share": max(share for share, _flows in placement),
                "lost": 0,
                "redispatched": 0,
            }
        )
    return rows


def _run_grid(config: ClusterScaleoutConfig) -> ExperimentResult:
    from repro.obs.trace import get_active_tracer

    points = _grid(config.fast, config.seed)
    # Spans cannot cross the process-pool boundary, so a traced sweep
    # runs its (results-identical) serial in-process path; racks built
    # here then self-trace into the ambient tracer.
    processes = 1 if get_active_tracer() is not None else None
    dist_records: List[Dict[str, object]] = []
    if config.backend == "dist":
        # Each point owns a worker fleet; run them serially so fleets
        # never compete for cores (the parallelism is the fleet).
        bus = sink = None
        if config.telemetry or config.telemetry_out:
            from repro.obs.live import JsonlTelemetrySink, TelemetryBus

            bus = TelemetryBus()
            if config.telemetry_out:
                sink = JsonlTelemetrySink(config.telemetry_out)
                bus.subscribe(sink)
        rows = []
        try:
            for point in points:
                row, record = dist_scaleout_point(
                    point, config.workers, config.speed_factor, telemetry=bus
                )
                rows.append(row)
                dist_records.append(record)
        finally:
            if sink is not None:
                sink.close()
    elif config.backend != "event":
        scale_points = [p for p in points if p[3] == "none"]
        fault_points = [p for p in points if p[3] != "none"]
        rows = _vec_scale_rows(config, scale_points)
        rows += parallel_map(scaleout_point, fault_points, processes=processes)
    else:
        rows = parallel_map(scaleout_point, points, processes=processes)
    result = ExperimentResult(
        "cluster_scaleout",
        "Cluster scale-out: fleet tail latency (us), "
        f"{QUEUES_PER_SERVER} queues/server, skew {FLOW_SKEW}, "
        f"load {LOAD:.0%}",
    )
    result.rows = rows
    if config.backend == "dist":
        worker_faults = [
            dict(fault, point=i)
            for i, record in enumerate(dist_records)
            for fault in record["worker_faults"]
        ]
        result.dist_info = {
            "workers": config.workers,
            "speed_factor": config.speed_factor,
            "transport": dist_records[0]["transport"] if dist_records else None,
            "points": len(dist_records),
            "partial": any(record["partial"] for record in dist_records),
            "worker_faults": worker_faults,
            "records": dist_records,
        }
        if bus is not None:
            result.dist_info["telemetry_frames"] = bus.frames_seen
            result.notes.append(
                f"telemetry: {bus.frames_seen} live frames folded across "
                f"{len(dist_records)} point fleets"
                + (
                    f", streamed to {config.telemetry_out}"
                    if config.telemetry_out
                    else ""
                )
            )
        result.notes.append(
            f"backend=dist: every point ran on a multi-process fleet "
            f"({config.workers} workers max, "
            f"{result.dist_info['transport']} transport); rss rows are "
            "bit-exact with the event rack, per-request policies are "
            "statistically equivalent; see docs/distributed.md"
        )
    elif config.backend != "event":
        from repro.vec.backend import vec_provenance

        result.vec_info = vec_provenance(backend=config.backend)
        result.notes.append(
            f"backend={config.backend} hybrid: scale rows pooled from "
            "batched per-server vec lanes (analytic tail mixture), fault "
            "rows from the exact rack simulator; see docs/vectorized.md"
        )

    biggest = max(row["servers"] for row in rows)
    spin_1 = _pick(rows, servers=1, system="spinning", balancer="rss", fault="none")
    spin_n = _pick(rows, servers=biggest, system="spinning", balancer="rss", fault="none")
    hp_1 = _pick(rows, servers=1, system="hyperplane", balancer="rss", fault="none")
    hp_n = _pick(rows, servers=biggest, system="hyperplane", balancer="rss", fault="none")
    p2c_n = _pick(rows, servers=biggest, system="spinning", balancer="p2c", fault="none")
    result.notes.append(
        f"rss scale-out 1 -> {biggest} servers: spinning p99 "
        f"{spin_1['p99_us']:.0f} -> {spin_n['p99_us']:.0f} us "
        f"({spin_n['p99_us'] / spin_1['p99_us']:.1f}x), HyperPlane "
        f"{hp_1['p99_us']:.1f} -> {hp_n['p99_us']:.1f} us "
        f"({hp_n['p99_us'] / hp_1['p99_us']:.2f}x)"
    )
    gap = spin_n["p99_us"] - spin_1["p99_us"]
    if gap > 0:
        recovered = 1.0 - (p2c_n["p99_us"] - spin_1["p99_us"]) / gap
        result.notes.append(
            f"p2c recovers {recovered:.0%} of the spinning scale-out gap "
            f"(p99 {p2c_n['p99_us']:.0f} us at {biggest} servers)"
        )
    straggler = _pick(
        rows, servers=FAULT_SERVERS, system="hyperplane", fault="straggler"
    )
    crash = _pick(rows, servers=FAULT_SERVERS, system="hyperplane", fault="crash")
    result.notes.append(
        f"faults at {FAULT_SERVERS} servers (HyperPlane, rss): straggler "
        f"p99 {straggler['p99_us']:.0f} us, crash p99 {crash['p99_us']:.1f} us "
        f"with {crash['redispatched']} re-dispatched requests"
    )
    return result
