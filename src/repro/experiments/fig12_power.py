"""Fig. 12: energy proportionality and the power-optimised mode.

(a) normalized core power at zero and saturation load for the spinning
    plane, HyperPlane, and HyperPlane with the C1 power-optimised idle;
(b) tail latency of power-optimised vs. regular HyperPlane across the
    load spectrum (the wake-up gap shrinks with load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.runner import run_hyperplane
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power import PowerModel
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning

NUM_QUEUES = 200
SHAPE = "PC"
ZERO_LOAD = 0.002
SATURATION_LOAD = 0.98
FAST_LOADS = (0.002, 0.25, 0.5, 0.75)
FULL_LOADS = (0.002, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875)


def _config(seed: int, power: bool = False) -> SDPConfig:
    return SDPConfig(
        num_queues=NUM_QUEUES,
        workload="packet-encapsulation",
        shape=SHAPE,
        power_optimized=power,
        seed=seed,
    )


@dataclass(frozen=True)
class Fig12Config(ExperimentConfig):
    """Fig. 12 settings; ``panel`` = "a" (power) or "b" (tail latency)."""

    panel: str = "a"

    def __post_init__(self):
        if self.panel not in ("a", "b"):
            raise ValueError(f"unknown Fig. 12 panel {self.panel!r}; use a/b")


def run(config: Optional[Fig12Config] = None) -> ExperimentResult:
    """Reproduce one Fig. 12 panel."""
    config = config or Fig12Config()
    panel = {"a": _fig12a, "b": _fig12b}[config.panel]
    return panel(config.fast, config.seed)


def _fig12a(fast: bool, seed: int) -> ExperimentResult:
    """Fig. 12(a): normalized power at zero vs. saturation load."""
    completions = 2500 if fast else 6000
    model = PowerModel()
    result = ExperimentResult("fig12a", "Fig 12(a): normalized core power")
    rows = {}
    for label, runner, power in (
        ("spinning", run_spinning, False),
        ("hyperplane", run_hyperplane, False),
        ("hyperplane_c1", run_hyperplane, True),
    ):
        kwargs = {} if runner is run_spinning else {}
        zero = runner(
            _config(seed, power), load=ZERO_LOAD, target_completions=completions // 4,
            max_seconds=4.0,
        )
        saturated = runner(
            _config(seed, power), load=SATURATION_LOAD, target_completions=completions,
            max_seconds=4.0,
        )
        zero_power = model.normalized_power(zero.chip_activity).total
        sat_power = model.normalized_power(saturated.chip_activity).total
        rows[label] = (zero_power, sat_power)
        result.rows.append(
            {"system": label, "zero_load": zero_power, "saturation": sat_power}
        )
    spin_zero, spin_sat = rows["spinning"]
    c1_zero, _ = rows["hyperplane_c1"]
    result.notes.append(
        f"spinning is energy-disproportional: zero-load power {spin_zero:.2f} vs "
        f"saturation {spin_sat:.2f} (ratio {spin_zero / spin_sat:.2f}, paper: >1); "
        f"power-optimised HyperPlane idles at {c1_zero:.1%} of peak (paper: 16.2%)"
    )
    return result


def _fig10a_config(seed: int, power: bool, cluster_cores: int) -> SDPConfig:
    """Fig. 12(b) reuses the Fig. 10(a) scenario: 4 cores, 400 queues, FB.

    Deterministic service isolates the C1 wake-up penalty in the tail
    (with exponential service the penalty hides inside service variance).
    """
    return SDPConfig(
        num_queues=400,
        num_cores=4,
        cluster_cores=cluster_cores,
        workload="packet-encapsulation",
        shape="FB",
        service_scv=0.0,
        power_optimized=power,
        seed=seed,
    )


def _fig12b(fast: bool, seed: int) -> ExperimentResult:
    """Fig. 12(b): tail latency of power-optimised HyperPlane vs. load."""
    loads: Sequence[float] = FAST_LOADS if fast else FULL_LOADS
    completions = 2500 if fast else 6000
    result = ExperimentResult(
        "fig12b", "Fig 12(b): HyperPlane p99 (us), regular vs power-optimised"
    )
    for load in loads:
        regular = run_hyperplane(
            _fig10a_config(seed, False, 4), load=load,
            target_completions=completions, max_seconds=4.0,
        )
        powered = run_hyperplane(
            _fig10a_config(seed, True, 4), load=load,
            target_completions=completions, max_seconds=4.0,
        )
        spin = run_spinning(
            _fig10a_config(seed, False, 1), load=load,
            target_completions=completions, max_seconds=4.0,
        )
        gap = (
            powered.latency.p99_us / regular.latency.p99_us - 1.0
            if regular.latency.p99_us
            else 0.0
        )
        result.rows.append(
            {
                "load": load,
                "hp_regular_p99": regular.latency.p99_us,
                "hp_power_opt_p99": powered.latency.p99_us,
                "spinning_p99": spin.latency.p99_us,
                "gap_pct": 100.0 * gap,
            }
        )
    low = result.rows[0]
    mid = min(result.rows, key=lambda r: abs(r["load"] - 0.5))
    result.notes.append(
        f"wake-up gap at ~zero load {low['gap_pct']:.0f}% (paper: 38%), "
        f"shrinking to {mid['gap_pct']:.0f}% at 50% load (paper: 8%); even "
        f"power-optimised HP beats spinning at zero load by "
        f"{low['spinning_p99'] / low['hp_power_opt_p99']:.1f}x (paper: 8.9x)"
    )
    return result
