"""Fig. 9: zero-load latency vs. queue count (Section V-B).

(a) the spinning plane's average and 99% tail latency grow linearly with
queue count; (b) HyperPlane is queue-scalable (flat), with the
power-optimised mode adding the C1 wake-up.

Service times are deterministic here (SCV = 0): at <1% load the quantity
of interest is notification latency, and the paper notes HyperPlane's
tail "does not differ significantly from the average at zero load" —
true only net of service-time variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.runner import run_hyperplane
from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    run_with_tracing,
)
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning

ZERO_LOAD = 0.008  # <1% of saturation
FAST_COUNTS = (1, 6, 256, 1000)
FULL_COUNTS = (1, 2, 4, 6, 9, 64, 128, 256, 512, 768, 1000)
FAST_WORKLOADS = ("packet-encapsulation",)
FULL_WORKLOADS = (
    "packet-encapsulation",
    "crypto-forwarding",
    "packet-steering",
    "erasure-coding",
    "raid-protection",
    "request-dispatching",
)


def _config(workload: str, count: int, seed: int, power: bool = False) -> SDPConfig:
    return SDPConfig(
        num_queues=count,
        workload=workload,
        shape="FB",
        seed=seed,
        service_scv=0.0,
        power_optimized=power,
    )


@dataclass(frozen=True)
class Fig9Config(ExperimentConfig):
    """Fig. 9 settings; ``panel`` = "a" (spinning) or "b" (HyperPlane).

    ``trace`` runs the panel under a causal tracer (repro.obs.trace)
    and appends the per-mechanism latency decomposition to the notes.
    """

    panel: str = "a"
    trace: bool = False

    def __post_init__(self):
        if self.panel not in ("a", "b"):
            raise ValueError(f"unknown Fig. 9 panel {self.panel!r}; use a/b")


def run(config: Optional[Fig9Config] = None) -> ExperimentResult:
    """Reproduce one Fig. 9 panel."""
    config = config or Fig9Config()
    panel = {"a": _fig9a, "b": _fig9b}[config.panel]
    return run_with_tracing(config, lambda: panel(config.fast, config.seed))


def _fig9a(fast: bool, seed: int) -> ExperimentResult:
    """Fig. 9(a): spinning data plane avg/p99 at <1% load."""
    counts: Sequence[int] = FAST_COUNTS if fast else FULL_COUNTS
    workloads = FAST_WORKLOADS if fast else FULL_WORKLOADS
    completions = 400 if fast else 1200
    result = ExperimentResult(
        "fig9a", "Fig 9(a): spinning zero-load latency (us) vs queues"
    )
    for workload in workloads:
        for count in counts:
            metrics = run_spinning(
                _config(workload, count, seed),
                load=ZERO_LOAD,
                target_completions=completions,
                max_seconds=20.0,
            )
            result.rows.append(
                {
                    "workload": workload,
                    "queues": count,
                    "avg_us": metrics.latency.mean_us,
                    "p99_us": metrics.latency.p99_us,
                }
            )
    big = [r for r in result.rows if r["queues"] == counts[-1]]
    small = [r for r in result.rows if r["queues"] == counts[0]]
    if big and small:
        result.notes.append(
            f"avg grows {big[0]['avg_us'] / small[0]['avg_us']:.0f}x and p99 "
            f"{big[0]['p99_us'] / small[0]['p99_us']:.0f}x from {counts[0]} to "
            f"{counts[-1]} queues; tail slope exceeds average slope"
        )
    return result


def _fig9b(fast: bool, seed: int) -> ExperimentResult:
    """Fig. 9(b): HyperPlane (regular and power-optimised) average latency."""
    counts: Sequence[int] = FAST_COUNTS if fast else FULL_COUNTS
    workloads = FAST_WORKLOADS if fast else FULL_WORKLOADS
    completions = 400 if fast else 1200
    result = ExperimentResult(
        "fig9b", "Fig 9(b): HyperPlane zero-load latency (us) vs queues"
    )
    crossovers = []
    for workload in workloads:
        spin_small = None
        for count in counts:
            regular = run_hyperplane(
                _config(workload, count, seed),
                load=ZERO_LOAD,
                target_completions=completions,
                max_seconds=20.0,
            )
            powered = run_hyperplane(
                _config(workload, count, seed, power=True),
                load=ZERO_LOAD,
                target_completions=completions,
                max_seconds=20.0,
            )
            spin = run_spinning(
                _config(workload, count, seed),
                load=ZERO_LOAD,
                target_completions=completions,
                max_seconds=20.0,
            )
            if spin_small is None:
                spin_small = spin.latency.mean_us
            result.rows.append(
                {
                    "workload": workload,
                    "queues": count,
                    "regular_us": regular.latency.mean_us,
                    "power_opt_us": powered.latency.mean_us,
                    "spinning_us": spin.latency.mean_us,
                }
            )
            if powered.latency.mean_us > spin.latency.mean_us:
                crossovers.append((workload, count))
    last = result.rows[-1]
    result.notes.append(
        f"HyperPlane stays flat (regular {last['regular_us']:.2f} us at "
        f"{last['queues']} queues, <10 us; paper: <10 us at 1000 queues)"
    )
    if crossovers:
        worst = max(count for _, count in crossovers)
        result.notes.append(
            f"power-optimised HyperPlane loses to spinning only up to "
            f"{worst} queues (paper: ~6 on average, 9 worst-case)"
        )
    else:
        result.notes.append("power-optimised HyperPlane never lost to spinning on this grid")
    return result
