"""Distributed trace replay: drive the worker fleet from a workload trace.

The dist backend's second entry point (the first is
``cluster_scaleout --backend dist``, which re-runs the scale-out grid
on the multi-process fleet). This experiment exercises the *streaming*
side of :mod:`repro.dist`: a finite JSONL workload trace — recorded
from the rack's own Poisson client population, or supplied via
``trace_path`` — is streamed through :class:`repro.dist.TraceFileSource`
into a fleet of worker processes, optionally paced against the wall
clock by ``speed_factor`` (0 = max speed, the CI setting; 1 = real
time, the live-dashboard setting).

Rows: one fleet-level summary row, then one row per worker node (the
per-node manifests the coordinator merged). When the trace records
ground-truth latencies (``latency_us``), the notes compare the fleet's
predicted mean latency against the recorded mean — the
replay-as-validation loop.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional

from repro.cluster import ClusterConfig
from repro.experiments.base import BackendConfig, ExperimentResult, UsageError

FLOWS_PER_SERVER = 16
FLOW_SKEW = 0.3
LOAD = 0.25


@dataclass(frozen=True)
class DistReplayConfig(BackendConfig):
    """Replay settings. ``dist`` is the only backend this runs on.

    ``trace_path`` replays a recorded JSONL trace (see
    docs/distributed.md for the schema); when absent, a trace is
    synthesised from the rack-equivalent Poisson population, written to
    a temporary file, and streamed back — so the file round-trip is
    always exercised. ``requests`` bounds the synthesised trace length
    (``None`` = derived from ``fast``).

    Live telemetry (docs/live-telemetry.md): ``telemetry`` attaches a
    :class:`repro.obs.live.TelemetryBus`; ``telemetry_out`` streams the
    frames to a JSONL file; ``telemetry_prom_out`` writes a Prometheus
    textfile of the final fleet view; ``dash`` paints the terminal
    dashboard while the run is in flight (pairs with ``speed_factor``).
    Any of the output/dash options implies ``telemetry``. Telemetry
    never perturbs the simulation — results are bit-exact either way.
    """

    backend: str = "dist"
    workers: int = 2
    speed_factor: float = 0.0
    transport: str = "unix"
    servers: int = 4
    requests: Optional[int] = None
    trace_path: Optional[str] = None
    telemetry: bool = False
    dash: bool = False
    telemetry_out: Optional[str] = None
    telemetry_prom_out: Optional[str] = None
    telemetry_interval_s: float = 1e-3

    supported_backends = ("dist",)

    def __post_init__(self):
        super().__post_init__()
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if not 1 <= self.workers <= self.servers:
            raise UsageError(
                f"workers={self.workers} invalid; expected one of "
                f"1..{self.servers} (worker processes are capped by the "
                f"{self.servers}-server fleet)"
            )
        if self.speed_factor < 0:
            raise ValueError("speed_factor must be >= 0 (0 = max speed)")
        if self.requests is not None and self.requests < 100:
            raise ValueError("requests must be >= 100 (or None for defaults)")
        if self.telemetry_interval_s < 0:
            raise ValueError("telemetry_interval_s must be >= 0")

    @property
    def telemetry_enabled(self) -> bool:
        return bool(
            self.telemetry
            or self.dash
            or self.telemetry_out
            or self.telemetry_prom_out
        )


def _synthesise_trace(config: ClusterConfig, requests: int, path: str) -> None:
    """Record ``requests`` arrivals of the rack's client population."""
    from repro.dist.replay import PoissonSource, write_trace
    from repro.traffic.arrivals import load_to_rate
    from repro.workloads.service import workload_by_name

    mean = workload_by_name(config.workload).mean_service_seconds
    rate = load_to_rate(LOAD, mean, config.num_servers * config.cores_per_server)
    source = PoissonSource(rate, config.num_flows, config.flow_skew, config.seed)
    write_trace(path, islice(iter(source), requests))


def _trace_span(path: str) -> tuple:
    """(record count, last timestamp, recorded mean latency or None)."""
    from repro.dist.replay import TraceFileSource

    count, last, latency_sum, latency_n = 0, 0.0, 0.0, 0
    for record in TraceFileSource(path):
        count += 1
        last = record.time
        if record.latency_s is not None:
            latency_sum += record.latency_s
            latency_n += 1
    if count == 0:
        raise ValueError(f"trace {path!r} has no records")
    recorded = latency_sum / latency_n * 1e6 if latency_n else None
    return count, last, recorded


def run(config: Optional[DistReplayConfig] = None) -> ExperimentResult:
    """Distributed replay: stream a workload trace through the fleet."""
    from repro.dist import DistOptions, TraceFileSource, run_cluster_dist

    config = config or DistReplayConfig()
    requests = config.requests or (2500 if config.fast else 10000)
    cluster = ClusterConfig(
        num_servers=config.servers,
        notification="hyperplane",
        balancer="p2c",
        num_flows=FLOWS_PER_SERVER * config.servers,
        flow_skew=FLOW_SKEW,
        seed=config.seed,
    )

    bus = sink = dashboard = None
    if config.telemetry_enabled:
        from repro.obs.live import JsonlTelemetrySink, TelemetryBus

        bus = TelemetryBus()
        if config.telemetry_out:
            sink = JsonlTelemetrySink(config.telemetry_out)
            bus.subscribe(sink)
        if config.dash:
            from repro.obs.dash import Dashboard

            dashboard = Dashboard()
            dashboard.attach(bus)

    temp_path = None
    try:
        if config.trace_path is None:
            handle, temp_path = tempfile.mkstemp(
                prefix="repro-dist-replay-", suffix=".jsonl"
            )
            os.close(handle)
            _synthesise_trace(cluster, requests, temp_path)
            trace_path = temp_path
        else:
            trace_path = config.trace_path

        count, span, recorded_mean_us = _trace_span(trace_path)
        warmup = span * 0.1
        dist_run = run_cluster_dist(
            cluster,
            duration=span,
            warmup=warmup,
            source=TraceFileSource(trace_path),
            options=DistOptions(
                workers=config.workers,
                transport=config.transport,
                speed_factor=config.speed_factor,
                telemetry_interval_s=config.telemetry_interval_s,
            ),
            telemetry=bus,
        )
    finally:
        if sink is not None:
            sink.close()
        if dashboard is not None:
            dashboard.final()
        if temp_path is not None:
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    if bus is not None and config.telemetry_prom_out:
        from repro.obs.live import write_prometheus_textfile

        write_prometheus_textfile(bus, config.telemetry_prom_out)

    summary = dist_run.metrics.summary()
    result = ExperimentResult(
        "dist_replay",
        f"Distributed trace replay: {count} requests over "
        f"{config.servers} servers / {dist_run.info['workers']} workers "
        f"({dist_run.info['transport']})",
    )
    result.rows.append(
        {
            "node": "fleet",
            "servers": config.servers,
            "completed": int(summary["completed"]),
            "p50_us": summary["p50_latency_us"],
            "p99_us": summary["p99_latency_us"],
            "avg_us": summary["avg_latency_us"],
            "lost": int(summary["lost"]),
            "redispatched": int(summary["redispatched"]),
        }
    )
    for node in dist_run.nodes:
        per_server: Dict[str, Dict] = node.get("per_server", {})
        result.rows.append(
            {
                "node": f"worker-{node['worker_id']}",
                "servers": len(node.get("servers", [])),
                "completed": sum(
                    s.get("completed_ok", 0) for s in per_server.values()
                ),
                "lost": sum(s.get("lost", 0) for s in per_server.values()),
            }
        )
    result.dist_info = {
        "workers": dist_run.info["workers"],
        "transport": dist_run.info["transport"],
        "speed_factor": config.speed_factor,
        "partial": dist_run.partial,
        "worker_faults": dist_run.worker_faults,
        "nodes": dist_run.nodes,
        "trace_records": count,
        "trace_span_s": span,
    }
    if bus is not None:
        result.dist_info["telemetry"] = dist_run.info.get("telemetry", {})
        if "flight_recorder" in dist_run.info:
            result.dist_info["flight_recorder"] = dist_run.info["flight_recorder"]
        result.notes.append(
            f"telemetry: {bus.frames_seen} frames from workers "
            f"{bus.worker_ids()} at {config.telemetry_interval_s * 1e3:g} ms "
            f"cadence"
            + (f", streamed to {config.telemetry_out}" if config.telemetry_out else "")
        )
    result.notes.append(
        f"replayed {count} trace records spanning {span * 1e3:.1f} ms sim "
        f"time at speed_factor={config.speed_factor:g} "
        f"(paced sleep {dist_run.info.get('paced_sleep_s', 0.0):.2f} s)"
    )
    if recorded_mean_us is not None:
        predicted = summary["avg_latency_us"]
        result.notes.append(
            f"predicted mean latency {predicted:.1f} us vs recorded "
            f"{recorded_mean_us:.1f} us "
            f"({predicted / recorded_mean_us:.2f}x)"
        )
    if dist_run.partial:
        result.notes.append(
            f"PARTIAL fleet: worker faults {dist_run.worker_faults}"
        )
    return result
