"""The paper's headline numbers.

"HyperPlane improves peak throughput by 4.1x and tail latency by 16.4x,
on average, compared to a state-of-the-art spin-polling-based SDP,
across a varying number of I/O queues (up to 1000)" — plus the 9.1x
average-latency improvement of Section V-B.

Throughput gains are geometric means over the Fig. 8 grid (workloads x
shapes x queue counts); latency gains over the Fig. 9 zero-load grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.runner import run_hyperplane
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.workloads.service import WORKLOADS


@dataclass(frozen=True)
class HeadlineConfig(ExperimentConfig):
    """Headline-number settings (defaults = paper grids trimmed by ``fast``)."""

FAST_WORKLOADS = ("packet-encapsulation", "crypto-forwarding")
FAST_COUNTS = (200, 1000)
FULL_COUNTS = (100, 200, 400, 600, 800, 1000)
SHAPES = ("FB", "PC", "NC", "SQ")
ZERO_LOAD = 0.008


def _geo_mean(values: Iterable[float]) -> float:
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def run(config: Optional[HeadlineConfig] = None) -> ExperimentResult:
    """Aggregate throughput and latency gains across the sweep grids."""
    config = config or HeadlineConfig()
    fast, seed = config.fast, config.seed
    workloads = FAST_WORKLOADS if fast else tuple(WORKLOADS)
    counts = FAST_COUNTS if fast else FULL_COUNTS
    peak_completions = 1500 if fast else 4000
    latency_completions = 400 if fast else 1200

    throughput_gains: List[float] = []
    for workload in workloads:
        for shape in SHAPES:
            for count in counts:
                spin = run_spinning(
                    SDPConfig(num_queues=count, workload=workload, shape=shape, seed=seed),
                    closed_loop=True,
                    target_completions=peak_completions,
                    max_seconds=3.0,
                )
                hyper = run_hyperplane(
                    SDPConfig(num_queues=count, workload=workload, shape=shape, seed=seed),
                    closed_loop=True,
                    target_completions=peak_completions,
                    max_seconds=3.0,
                )
                if spin.throughput_mtps > 0:
                    throughput_gains.append(hyper.throughput_mtps / spin.throughput_mtps)

    avg_gains: List[float] = []
    tail_gains: List[float] = []
    for workload in workloads:
        for count in counts:
            config = SDPConfig(
                num_queues=count, workload=workload, shape="FB", seed=seed, service_scv=0.0
            )
            spin = run_spinning(
                config, load=ZERO_LOAD, target_completions=latency_completions,
                max_seconds=20.0,
            )
            hyper = run_hyperplane(
                SDPConfig(num_queues=count, workload=workload, shape="FB", seed=seed, service_scv=0.0),
                load=ZERO_LOAD,
                target_completions=latency_completions,
                max_seconds=20.0,
            )
            if hyper.latency.mean_us > 0:
                avg_gains.append(spin.latency.mean_us / hyper.latency.mean_us)
            if hyper.latency.p99_us > 0:
                tail_gains.append(spin.latency.p99_us / hyper.latency.p99_us)

    result = ExperimentResult("headline", "Headline: HyperPlane vs spinning SDP")
    result.rows.append(
        {
            "metric": "peak throughput gain",
            "measured_geo_mean": _geo_mean(throughput_gains),
            "measured_mean": sum(throughput_gains) / len(throughput_gains),
            "paper": 4.1,
        }
    )
    result.rows.append(
        {
            "metric": "avg latency gain",
            "measured_geo_mean": _geo_mean(avg_gains),
            "measured_mean": sum(avg_gains) / len(avg_gains),
            "paper": 9.1,
        }
    )
    result.rows.append(
        {
            "metric": "tail latency gain",
            "measured_geo_mean": _geo_mean(tail_gains),
            "measured_mean": sum(tail_gains) / len(tail_gains),
            "paper": 16.4,
        }
    )
    result.notes.append(
        "grid: workloads x shapes x queue counts (throughput) and "
        "workloads x queue counts at <1% load (latency); gains averaged "
        "as in the paper's 'on average across queue counts'"
    )
    return result
