"""Fig. 13: software- vs. hardware-based ready set (Section V-E).

Peak throughput of one HyperPlane core monitoring 1000 queues, with the
ready set's selection implemented in hardware (constant latency) or in
software (the iterator walks the ready list, so cost scales with the
ready count — worst for fully balanced traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.runner import run_hyperplane
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sdp.config import SDPConfig
from repro.workloads.service import WORKLOADS


@dataclass(frozen=True)
class Fig13Config(ExperimentConfig):
    """Fig. 13 settings (defaults = paper grid trimmed by ``fast``)."""

NUM_QUEUES = 1000
FAST_WORKLOADS = ("packet-encapsulation", "crypto-forwarding")


def _peak(workload: str, shape: str, software: bool, seed: int, completions: int) -> float:
    metrics = run_hyperplane(
        SDPConfig(num_queues=NUM_QUEUES, workload=workload, shape=shape, seed=seed),
        closed_loop=True,
        software_ready_set=software,
        target_completions=completions,
        max_seconds=3.0,
    )
    return metrics.throughput_mtps


def run(config: Optional[Fig13Config] = None) -> ExperimentResult:
    """Relative throughput of the software ready set, PC and FB shapes."""
    config = config or Fig13Config()
    fast, seed = config.fast, config.seed
    workloads = FAST_WORKLOADS if fast else tuple(WORKLOADS)
    completions = 1500 if fast else 4000
    result = ExperimentResult(
        "fig13", "Fig 13: software ready set relative throughput (%), 1000 queues"
    )
    fb_ratios = []
    pc_ratios = []
    for workload in workloads:
        row = {"workload": workload}
        for shape, sink in (("PC", pc_ratios), ("FB", fb_ratios)):
            hardware = _peak(workload, shape, False, seed, completions)
            software = _peak(workload, shape, True, seed, completions)
            ratio = 100.0 * software / hardware if hardware else 0.0
            row[f"{shape.lower()}_relative_pct"] = ratio
            sink.append(ratio)
        result.rows.append(row)
    result.notes.append(
        f"software ready set loses throughput everywhere; FB is worst "
        f"(min {min(fb_ratios):.0f}%, paper: down to ~50%) vs PC "
        f"(min {min(pc_ratios):.0f}%)"
    )
    return result
