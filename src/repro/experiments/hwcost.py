"""Section IV-C: hardware cost model for the HyperPlane components.

The paper reports, for a 1024-entry monitoring + ready set at 32 nm:

- ready set (RTL synthesis): 0.13 mm^2, 12.25 ns selection latency;
- monitoring set (CACTI/McPAT): 0.21 mm^2;
- baseline core: 8.4 mm^2 => total area overhead 0.26% of a 16-core chip;
- power: 6.2% of one core (2.1% ready set + 4.1% monitoring set)
  => 0.4% of 16-core total.

We rebuild these numbers from first-principles *scaling* models (gate
counts from the Brent-Kung PPA model, SRAM bit counts for the
monitoring set) with technology constants calibrated at the 1024-entry
point, so the model extrapolates to other capacities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.ppa import brent_kung_ppa
from repro.experiments.base import ExperimentConfig, ExperimentResult

# Paper-reported anchors (32 nm, 1024 entries).
ANCHOR_ENTRIES = 1024
READY_SET_AREA_MM2 = 0.13
READY_SET_LATENCY_NS = 12.25
MONITORING_AREA_MM2 = 0.21
CORE_AREA_MM2 = 8.4
CHIP_CORES = 16
READY_SET_POWER_FRACTION = 0.021  # of one core
MONITORING_POWER_FRACTION = 0.041
QWAIT_LATENCY_CYCLES = 50
MONITORING_LOOKUP_CYCLES = 5

# Monitoring-set entry: ~40-bit line tag + 10-bit QID + valid + armed.
BITS_PER_ENTRY = 52


def ready_set_gate_count(entries: int) -> int:
    """Gates in the PPA datapath: per-bit cells + Brent-Kung prefix nodes
    (2n - 2 - log2 n) + the rotate/mask stages (~4 gates/bit)."""
    if entries <= 0:
        raise ValueError("entries must be positive")
    prefix_nodes = 2 * entries - 2 - max(1, int(math.log2(entries)))
    per_bit_cells = 6 * entries  # ready/mask registers + select logic
    rotate = 4 * entries
    return prefix_nodes + per_bit_cells + rotate


def ready_set_depth(entries: int) -> int:
    """Circuit depth in stages, from the functional Brent-Kung model."""
    # Worst-case input: only the bit just before the priority is ready.
    ready = 1 << (entries - 1)
    _select, depth = brent_kung_ppa(ready, 1, entries)
    return depth


# Calibrated technology constants (32 nm).
_AREA_PER_GATE_MM2 = READY_SET_AREA_MM2 / ready_set_gate_count(ANCHOR_ENTRIES)
_DELAY_PER_STAGE_NS = READY_SET_LATENCY_NS / ready_set_depth(ANCHOR_ENTRIES)
_AREA_PER_BIT_MM2 = MONITORING_AREA_MM2 / (ANCHOR_ENTRIES * BITS_PER_ENTRY)


def ready_set_area_mm2(entries: int) -> float:
    """Scaled ready-set area."""
    return ready_set_gate_count(entries) * _AREA_PER_GATE_MM2


def ready_set_latency_ns(entries: int) -> float:
    """Scaled ready-set selection latency."""
    return ready_set_depth(entries) * _DELAY_PER_STAGE_NS


def monitoring_area_mm2(entries: int) -> float:
    """Scaled monitoring-set area (SRAM bits + fixed periphery share)."""
    return entries * BITS_PER_ENTRY * _AREA_PER_BIT_MM2


@dataclass(frozen=True)
class HardwareCosts:
    """All Section IV-C quantities for one configuration."""

    entries: int
    ready_set_area: float
    ready_set_latency_ns: float
    monitoring_area: float

    @property
    def total_area(self) -> float:
        return self.ready_set_area + self.monitoring_area

    @property
    def chip_area_overhead(self) -> float:
        return self.total_area / (CORE_AREA_MM2 * CHIP_CORES)

    @property
    def single_core_power_fraction(self) -> float:
        scale = self.entries / ANCHOR_ENTRIES
        return (READY_SET_POWER_FRACTION + MONITORING_POWER_FRACTION) * scale

    @property
    def chip_power_overhead(self) -> float:
        return self.single_core_power_fraction / CHIP_CORES


def costs_for(entries: int = ANCHOR_ENTRIES) -> HardwareCosts:
    """Compute the cost bundle for a capacity."""
    return HardwareCosts(
        entries=entries,
        ready_set_area=ready_set_area_mm2(entries),
        ready_set_latency_ns=ready_set_latency_ns(entries),
        monitoring_area=monitoring_area_mm2(entries),
    )


@dataclass(frozen=True)
class HwCostConfig(ExperimentConfig):
    """Hardware-cost table settings. The model is analytic, so ``seed``
    is unused."""


def run(config: Optional[HwCostConfig] = None) -> ExperimentResult:
    """The Section IV-C table, plus scaling to other capacities."""
    config = config or HwCostConfig()
    fast = config.fast
    capacities = (256, 512, 1024) if fast else (128, 256, 512, 1024, 2048, 4096)
    result = ExperimentResult("hwcost", "Section IV-C: HyperPlane hardware costs")
    for entries in capacities:
        costs = costs_for(entries)
        result.rows.append(
            {
                "entries": entries,
                "ready_area_mm2": costs.ready_set_area,
                "ready_latency_ns": costs.ready_set_latency_ns,
                "monitor_area_mm2": costs.monitoring_area,
                "chip_area_overhead_pct": 100.0 * costs.chip_area_overhead,
                "core_power_pct": 100.0 * costs.single_core_power_fraction,
            }
        )
    anchor = costs_for(ANCHOR_ENTRIES)
    result.notes.append(
        f"at 1024 entries: ready set {anchor.ready_set_area:.2f} mm^2 / "
        f"{anchor.ready_set_latency_ns:.2f} ns (paper: 0.13 / 12.25), monitoring "
        f"{anchor.monitoring_area:.2f} mm^2 (paper: 0.21), chip area overhead "
        f"{anchor.chip_area_overhead:.2%} (paper: 0.26%), single-core power "
        f"{anchor.single_core_power_fraction:.1%} (paper: 6.2%)"
    )
    result.notes.append(
        f"QWAIT latency {QWAIT_LATENCY_CYCLES} cycles; monitoring lookup "
        f"{MONITORING_LOOKUP_CYCLES} cycles (paper's conservative figures)"
    )
    return result
