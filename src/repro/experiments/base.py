"""Shared experiment types: configs, backends, results, JSON schema.

Every experiment module exposes the same surface::

    run(config: <Experiment>Config | None = None) -> ExperimentResult

where the config is a frozen dataclass derived from
:class:`ExperimentConfig` whose defaults reproduce the paper's
settings. Experiments that can execute on more than one engine derive
from :class:`BackendConfig` instead, which adds the ``backend`` field
and validates it against the :data:`BACKEND_REGISTRY` — the single
place a backend's name, availability gate, and one-line summary live.
(The v1 ``run_figX(fast=..., seed=...)`` deprecation shims were removed
in v2.0.0; see docs/api.md for the migration table.)

``ExperimentResult`` serialisation is versioned: schema 2 adds the
``manifest`` provenance block (:class:`~repro.obs.manifest.RunManifest`)
and ``from_json`` tolerates payloads missing any optional key, so
schema-1 archives keep loading.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.obs.manifest import RunManifest

# Version of the ExperimentResult JSON layout. 1 = rows/notes only
# (pre-observability archives); 2 = adds "schema" and "manifest".
RESULT_SCHEMA_VERSION = 2


class UsageError(ValueError):
    """A bad user-facing choice (unknown experiment, backend, flag value).

    The CLI maps this — and only this — to exit code 2; runtime
    failures (worker spawn, remote handler errors) exit 1. Raisers must
    list the accepted choices in the message.
    """


@dataclass(frozen=True)
class BackendSpec:
    """One registered execution backend.

    ``requires`` is an optional availability probe: it returns ``None``
    when the backend can run in this environment, or a human-readable
    hint (e.g. the numpy install instruction) when it cannot. The probe
    runs at validation time so a missing optional dependency surfaces
    as a :class:`UsageError` up front instead of an ImportError deep in
    the engine.
    """

    name: str
    summary: str
    requires: Optional[Callable[[], Optional[str]]] = None


def _numpy_requirement() -> Optional[str]:
    from repro.vec import NUMPY_INSTALL_HINT, numpy_available

    return None if numpy_available() else NUMPY_INSTALL_HINT


# The global backend registry. Order is presentation order in help
# text and error messages; insertion happens at import time via
# register_backend, so downstream packages (repro.dist) can add their
# backend without this module knowing about them. The four built-ins
# are registered here because repro.experiments is their natural home.
BACKEND_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Add (or replace) a backend in the global registry."""
    BACKEND_REGISTRY[spec.name] = spec
    return spec


register_backend(
    BackendSpec(
        name="event",
        summary="exact discrete-event simulators (the ground truth)",
    )
)
register_backend(
    BackendSpec(
        name="vec",
        summary="numpy batch engine (statistically faithful, see repro.vec.oracle)",
        requires=_numpy_requirement,
    )
)
register_backend(
    BackendSpec(
        name="surrogate",
        summary="analytic predictors fitted on vec output",
        requires=_numpy_requirement,
    )
)
register_backend(
    BackendSpec(
        name="dist",
        summary="multi-process rack runtime over loopback sockets (repro.dist)",
    )
)


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(BACKEND_REGISTRY)


def validate_backend(
    backend: str, supported: Optional[Sequence[str]] = None
) -> str:
    """Validate a config/CLI backend choice with actionable errors.

    Raises :class:`UsageError` listing the accepted choices when the
    name is unknown (or outside ``supported``, the per-experiment
    subset), and when the backend's availability probe reports a
    missing optional dependency.
    """
    if backend not in BACKEND_REGISTRY:
        raise UsageError(
            f"unknown backend {backend!r}; expected one of {list(backend_names())}"
        )
    if supported is not None and backend not in supported:
        raise UsageError(
            f"backend {backend!r} is not supported here; "
            f"expected one of {list(supported)}"
        )
    spec = BACKEND_REGISTRY[backend]
    if spec.requires is not None:
        hint = spec.requires()
        if hint is not None:
            raise UsageError(f"backend={backend!r} is unavailable: {hint}")
    return backend


@dataclass(frozen=True)
class ExperimentConfig:
    """Base class for typed experiment configurations.

    Parameters
    ----------
    fast:
        Trimmed grids for CI and interactive runs (the default);
        ``False`` selects the paper-sized grids.
    seed:
        Root seed threaded into every simulation the experiment runs.
        Experiments that are deterministic by construction (e.g. the
        hardware-cost table) ignore it.
    """

    fast: bool = True
    seed: int = 0

    def asdict(self) -> Dict[str, Any]:
        """A JSON-ready flat dict (manifest / provenance form)."""
        return asdict(self)


@dataclass(frozen=True)
class BackendConfig(ExperimentConfig):
    """Config base for experiments that can run on multiple backends.

    Subclasses narrow the choices by overriding the
    ``supported_backends`` class attribute (a ClassVar, so it never
    appears in ``asdict()`` / manifests); validation happens once here
    instead of being re-implemented per experiment. Subclasses that
    define their own ``__post_init__`` must chain to
    ``super().__post_init__()``.
    """

    backend: str = "event"

    supported_backends: ClassVar[Tuple[str, ...]] = ("event", "vec", "surrogate")

    def __post_init__(self):
        validate_backend(self.backend, supported=self.supported_backends)


def run_with_tracing(config, body) -> "ExperimentResult":
    """Run ``body()`` honouring the config's optional ``trace`` flag.

    Experiments whose config carries ``trace: bool`` route their panel
    body through this helper. When tracing is requested and no tracer
    is ambient, one is activated for the run (seeded from the config so
    sampling stays reproducible); either way the per-mechanism
    latency-decomposition summaries are appended to the result's notes.
    With ``trace`` off and no ambient tracer this is a passthrough.
    """
    from repro.obs.trace import Tracer, active_tracer, get_active_tracer

    trace = bool(getattr(config, "trace", False))
    tracer = get_active_tracer()
    if trace and tracer is None:
        tracer = Tracer(seed=config.seed)
        with active_tracer(tracer):
            result = body()
    else:
        result = body()
    if trace and tracer is not None:
        from repro.obs.trace_report import breakdown_notes

        tracer.finalize()
        result.notes.extend(breakdown_notes(tracer))
    return result


@dataclass
class ExperimentResult:
    """The output of one table/figure reproduction.

    ``rows`` is a list of flat dicts (one per plotted point or table
    row); ``notes`` carries the headline comparisons asserted against
    the paper; ``manifest`` (when run through the registry) records the
    provenance — config hash, seed, version, wall time, event count.
    ``vec_info`` is set by experiments that ran on the vec/surrogate
    backends (see :func:`repro.vec.backend.vec_provenance`) and
    ``dist_info`` by experiments that ran on the dist backend (fleet
    shape, transport, worker faults); the registry folds both into the
    manifest, so they are not serialised separately.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    manifest: Optional[RunManifest] = None
    vec_info: Optional[Dict[str, Any]] = None
    dist_info: Optional[Dict[str, Any]] = None

    @property
    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def format_table(self, float_digits: int = 4) -> str:
        """A fixed-width text table of all rows."""
        columns = self.columns
        if not columns:
            return f"{self.title}\n(no rows)"

        def cell(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        grid = [columns] + [[cell(row.get(c, "")) for c in columns] for row in self.rows]
        widths = [max(len(line[i]) for line in grid) for i in range(len(columns))]
        lines = [self.title, "-" * len(self.title)]
        for index, line in enumerate(grid):
            lines.append("  ".join(text.rjust(width) for text, width in zip(line, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def series(self, key_column: str, value_column: str) -> Dict[Any, Any]:
        """Extract one plotted series as {key: value}."""
        return {row[key_column]: row[value_column] for row in self.rows if value_column in row}

    def to_json(self, indent: int = 2) -> str:
        """Serialise for offline plotting / archival (schema 2)."""
        payload: Dict[str, Any] = {
            "schema": RESULT_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": self.rows,
            "notes": self.notes,
        }
        if self.manifest is not None:
            payload["manifest"] = self.manifest.to_dict()
        return json.dumps(payload, indent=indent, default=str)

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`, tolerant of missing optional keys.

        Accepts schema 1 (no ``schema`` key, no manifest) and schema 2;
        ``rows`` and ``notes`` default to empty when absent.
        """
        data = json.loads(payload)
        schema = data.get("schema", 1)
        if not isinstance(schema, int) or not 1 <= schema <= RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ExperimentResult schema {schema!r} "
                f"(this build reads 1..{RESULT_SCHEMA_VERSION})"
            )
        manifest_data = data.get("manifest")
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            rows=data.get("rows") or [],
            notes=data.get("notes") or [],
            manifest=RunManifest.from_dict(manifest_data) if manifest_data else None,
        )
