"""Shared result type, table formatting, and JSON export for experiments."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """The output of one table/figure reproduction.

    ``rows`` is a list of flat dicts (one per plotted point or table
    row); ``notes`` carries the headline comparisons asserted against
    the paper.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def format_table(self, float_digits: int = 4) -> str:
        """A fixed-width text table of all rows."""
        columns = self.columns
        if not columns:
            return f"{self.title}\n(no rows)"

        def cell(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        grid = [columns] + [[cell(row.get(c, "")) for c in columns] for row in self.rows]
        widths = [max(len(line[i]) for line in grid) for i in range(len(columns))]
        lines = [self.title, "-" * len(self.title)]
        for index, line in enumerate(grid):
            lines.append("  ".join(text.rjust(width) for text, width in zip(line, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def series(self, key_column: str, value_column: str) -> Dict[Any, Any]:
        """Extract one plotted series as {key: value}."""
        return {row[key_column]: row[value_column] for row in self.rows if value_column in row}

    def to_json(self, indent: int = 2) -> str:
        """Serialise for offline plotting / archival."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        data = json.loads(payload)
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            rows=data["rows"],
            notes=data["notes"],
        )
