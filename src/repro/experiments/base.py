"""Shared experiment types: configs, results, manifests, JSON schema.

Every experiment module exposes the same surface::

    run(config: <Experiment>Config | None = None) -> ExperimentResult

where the config is a frozen dataclass derived from
:class:`ExperimentConfig` whose defaults reproduce the paper's
settings. The legacy ``run_figX(fast=..., seed=...)`` entry points
remain as thin deprecation shims built with :func:`deprecated_runner`.

``ExperimentResult`` serialisation is versioned: schema 2 adds the
``manifest`` provenance block (:class:`~repro.obs.manifest.RunManifest`)
and ``from_json`` tolerates payloads missing any optional key, so
schema-1 archives keep loading.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.manifest import RunManifest

# Version of the ExperimentResult JSON layout. 1 = rows/notes only
# (pre-observability archives); 2 = adds "schema" and "manifest".
RESULT_SCHEMA_VERSION = 2

# Execution backends for the sweep-style experiments:
#   event     - the exact discrete-event simulators (the ground truth);
#   vec       - the numpy batch engine (statistically faithful within
#               the tolerances documented in repro.vec.oracle);
#   surrogate - analytic predictors fitted on vec output, spot-checked
#               against the exact simulator.
BACKENDS = ("event", "vec", "surrogate")


def validate_backend(backend: str) -> str:
    """Validate a config/CLI backend choice with actionable errors.

    Unknown names list the accepted choices; ``vec``/``surrogate``
    without numpy installed explain the optional dependency instead of
    failing later with a bare ImportError deep in the engine.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {list(BACKENDS)}"
        )
    if backend != "event":
        from repro.vec import NUMPY_INSTALL_HINT, numpy_available

        if not numpy_available():
            raise ValueError(
                f"backend={backend!r} is unavailable: {NUMPY_INSTALL_HINT}"
            )
    return backend


@dataclass(frozen=True)
class ExperimentConfig:
    """Base class for typed experiment configurations.

    Parameters
    ----------
    fast:
        Trimmed grids for CI and interactive runs (the default);
        ``False`` selects the paper-sized grids.
    seed:
        Root seed threaded into every simulation the experiment runs.
        Experiments that are deterministic by construction (e.g. the
        hardware-cost table) ignore it.
    """

    fast: bool = True
    seed: int = 0

    def asdict(self) -> Dict[str, Any]:
        """A JSON-ready flat dict (manifest / provenance form)."""
        return asdict(self)


def run_with_tracing(config, body) -> "ExperimentResult":
    """Run ``body()`` honouring the config's optional ``trace`` flag.

    Experiments whose config carries ``trace: bool`` route their panel
    body through this helper. When tracing is requested and no tracer
    is ambient, one is activated for the run (seeded from the config so
    sampling stays reproducible); either way the per-mechanism
    latency-decomposition summaries are appended to the result's notes.
    With ``trace`` off and no ambient tracer this is a passthrough.
    """
    from repro.obs.trace import Tracer, active_tracer, get_active_tracer

    trace = bool(getattr(config, "trace", False))
    tracer = get_active_tracer()
    if trace and tracer is None:
        tracer = Tracer(seed=config.seed)
        with active_tracer(tracer):
            result = body()
    else:
        result = body()
    if trace and tracer is not None:
        from repro.obs.trace_report import breakdown_notes

        tracer.finalize()
        result.notes.extend(breakdown_notes(tracer))
    return result


def deprecated_runner(old_name: str, run, config) -> Any:
    """Run ``run(config)`` while warning that ``old_name`` is a shim."""
    warnings.warn(
        f"{old_name}() is deprecated; use run({type(config).__name__}(...)) "
        f"from the same module, or repro.experiments.run_experiment()",
        DeprecationWarning,
        stacklevel=3,
    )
    return run(config)


@dataclass
class ExperimentResult:
    """The output of one table/figure reproduction.

    ``rows`` is a list of flat dicts (one per plotted point or table
    row); ``notes`` carries the headline comparisons asserted against
    the paper; ``manifest`` (when run through the registry) records the
    provenance — config hash, seed, version, wall time, event count.
    ``vec_info`` is set by experiments that ran on a non-event backend
    (see :func:`repro.vec.backend.vec_provenance`); the registry folds
    it into the manifest, so it is not serialised separately.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    manifest: Optional[RunManifest] = None
    vec_info: Optional[Dict[str, Any]] = None

    @property
    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def format_table(self, float_digits: int = 4) -> str:
        """A fixed-width text table of all rows."""
        columns = self.columns
        if not columns:
            return f"{self.title}\n(no rows)"

        def cell(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        grid = [columns] + [[cell(row.get(c, "")) for c in columns] for row in self.rows]
        widths = [max(len(line[i]) for line in grid) for i in range(len(columns))]
        lines = [self.title, "-" * len(self.title)]
        for index, line in enumerate(grid):
            lines.append("  ".join(text.rjust(width) for text, width in zip(line, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def series(self, key_column: str, value_column: str) -> Dict[Any, Any]:
        """Extract one plotted series as {key: value}."""
        return {row[key_column]: row[value_column] for row in self.rows if value_column in row}

    def to_json(self, indent: int = 2) -> str:
        """Serialise for offline plotting / archival (schema 2)."""
        payload: Dict[str, Any] = {
            "schema": RESULT_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": self.rows,
            "notes": self.notes,
        }
        if self.manifest is not None:
            payload["manifest"] = self.manifest.to_dict()
        return json.dumps(payload, indent=indent, default=str)

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`, tolerant of missing optional keys.

        Accepts schema 1 (no ``schema`` key, no manifest) and schema 2;
        ``rows`` and ``notes`` default to empty when absent.
        """
        data = json.loads(payload)
        schema = data.get("schema", 1)
        if not isinstance(schema, int) or not 1 <= schema <= RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ExperimentResult schema {schema!r} "
                f"(this build reads 1..{RESULT_SCHEMA_VERSION})"
            )
        manifest_data = data.get("manifest")
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            rows=data.get("rows") or [],
            notes=data.get("notes") or [],
            manifest=RunManifest.from_dict(manifest_data) if manifest_data else None,
        )
