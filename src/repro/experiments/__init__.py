"""Experiment harness: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig8            # fast grid
    python -m repro.experiments fig8 --full     # paper-sized grid
    python -m repro.experiments all

Each experiment returns an :class:`~repro.experiments.base.ExperimentResult`
whose rows are the series the paper plots; EXPERIMENTS.md records the
paper-vs-measured comparison for each.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "run_experiment"]
