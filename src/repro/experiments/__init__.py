"""Experiment harness: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig8                   # fast grid
    python -m repro.experiments fig8 --full            # paper-sized grid
    python -m repro.experiments fig8 --metrics-out out # + metrics & manifest
    python -m repro.experiments all

Programmatically, every experiment module exposes
``run(config: <Experiment>Config) -> ExperimentResult`` with a frozen
dataclass config whose defaults are the paper settings, and
:func:`~repro.experiments.registry.run_experiment` runs one by id with
optional instrumentation. EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    RESULT_SCHEMA_VERSION,
)
from repro.experiments.registry import REGISTRY, ExperimentSpec, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSpec",
    "REGISTRY",
    "RESULT_SCHEMA_VERSION",
    "run_experiment",
]
