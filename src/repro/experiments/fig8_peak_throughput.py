"""Fig. 8: peak throughput of spinning vs. HyperPlane (Section V-B).

Six workload panels, four traffic shapes each, queue counts up to 1000,
closed-loop saturation measurement on one data-plane core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.runner import run_hyperplane
from repro.experiments.base import ExperimentConfig, ExperimentResult, deprecated_runner
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.workloads.service import WORKLOADS

SHAPES = ("FB", "PC", "NC", "SQ")

FAST_WORKLOADS = ("packet-encapsulation", "crypto-forwarding")
FAST_COUNTS = (1, 200, 1000)
FULL_COUNTS = (1, 100, 200, 400, 600, 800, 1000)


@dataclass(frozen=True)
class Fig8Config(ExperimentConfig):
    """Fig. 8 settings (defaults = paper grid trimmed by ``fast``)."""


def peak_point(
    workload: str, shape: str, num_queues: int, seed: int, completions: int
) -> Tuple[float, float]:
    """(spinning, hyperplane) peak Mtask/s at one grid point."""
    spin = run_spinning(
        SDPConfig(num_queues=num_queues, workload=workload, shape=shape, seed=seed),
        closed_loop=True,
        target_completions=completions,
        max_seconds=3.0,
    )
    hyper = run_hyperplane(
        SDPConfig(num_queues=num_queues, workload=workload, shape=shape, seed=seed),
        closed_loop=True,
        target_completions=completions,
        max_seconds=3.0,
    )
    return spin.throughput_mtps, hyper.throughput_mtps


def _peak_point_star(args: Tuple) -> Tuple[float, float]:
    return peak_point(*args)


def run(config: Optional[Fig8Config] = None) -> ExperimentResult:
    """The full Fig. 8 grid; ``fast`` trims workloads and queue counts.

    Full grids fan out across processes (each point is an independent
    seeded simulation), preserving result order and determinism.
    """
    from repro.experiments.parallel import parallel_map

    config = config or Fig8Config()
    fast, seed = config.fast, config.seed
    workloads = FAST_WORKLOADS if fast else tuple(WORKLOADS)
    counts: Sequence[int] = FAST_COUNTS if fast else FULL_COUNTS
    completions = 1500 if fast else 4000
    result = ExperimentResult(
        "fig8", "Fig 8: peak throughput (Mtask/s), spinning vs HyperPlane"
    )
    grid = [
        (workload, shape, count, seed, completions)
        for workload in workloads
        for shape in SHAPES
        for count in counts
    ]
    measurements = parallel_map(
        _peak_point_star, grid, processes=1 if fast else None
    )
    gains = []
    for (workload, shape, count, _seed, _completions), (spin, hyper) in zip(
        grid, measurements
    ):
        result.rows.append(
            {
                "workload": workload,
                "shape": shape,
                "queues": count,
                "spinning": spin,
                "hyperplane": hyper,
                "gain": hyper / spin if spin > 0 else float("inf"),
            }
        )
        if spin > 0:
            gains.append(hyper / spin)
    if gains:
        geo_mean = 1.0
        for gain in gains:
            geo_mean *= gain
        geo_mean **= 1.0 / len(gains)
        arith = sum(gains) / len(gains)
        result.notes.append(
            f"HyperPlane peak-throughput gain over the grid: geo-mean "
            f"{geo_mean:.2f}x, mean {arith:.2f}x (paper average: 4.1x)"
        )
    return result


def run_fig8(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Deprecated: use ``run(Fig8Config(...))``."""
    return deprecated_runner("run_fig8", run, Fig8Config(fast=fast, seed=seed))
