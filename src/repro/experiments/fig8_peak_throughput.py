"""Fig. 8: peak throughput of spinning vs. HyperPlane (Section V-B).

Six workload panels, four traffic shapes each, queue counts up to 1000,
closed-loop saturation measurement on one data-plane core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.runner import run_hyperplane
from repro.experiments.base import BackendConfig, ExperimentResult
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning
from repro.workloads.service import WORKLOADS

SHAPES = ("FB", "PC", "NC", "SQ")

FAST_WORKLOADS = ("packet-encapsulation", "crypto-forwarding")
FAST_COUNTS = (1, 200, 1000)
FULL_COUNTS = (1, 100, 200, 400, 600, 800, 1000)


@dataclass(frozen=True)
class Fig8Config(BackendConfig):
    """Fig. 8 settings (defaults = paper grid trimmed by ``fast``).

    ``backend`` selects the execution engine: ``event`` (exact),
    ``vec`` (numpy batch engine), or ``surrogate`` (fitted predictor,
    spot-checked against the exact simulator). See docs/vectorized.md.
    """


def peak_point(
    workload: str, shape: str, num_queues: int, seed: int, completions: int
) -> Tuple[float, float]:
    """(spinning, hyperplane) peak Mtask/s at one grid point."""
    spin = run_spinning(
        SDPConfig(num_queues=num_queues, workload=workload, shape=shape, seed=seed),
        closed_loop=True,
        target_completions=completions,
        max_seconds=3.0,
    )
    hyper = run_hyperplane(
        SDPConfig(num_queues=num_queues, workload=workload, shape=shape, seed=seed),
        closed_loop=True,
        target_completions=completions,
        max_seconds=3.0,
    )
    return spin.throughput_mtps, hyper.throughput_mtps


def _peak_point_star(args: Tuple) -> Tuple[float, float]:
    return peak_point(*args)


def run(config: Optional[Fig8Config] = None) -> ExperimentResult:
    """The full Fig. 8 grid; ``fast`` trims workloads and queue counts.

    Full grids fan out across processes (each point is an independent
    seeded simulation), preserving result order and determinism.
    """
    from repro.experiments.parallel import parallel_map

    config = config or Fig8Config()
    fast, seed = config.fast, config.seed
    workloads = FAST_WORKLOADS if fast else tuple(WORKLOADS)
    counts: Sequence[int] = FAST_COUNTS if fast else FULL_COUNTS
    completions = 1500 if fast else 4000
    result = ExperimentResult(
        "fig8", "Fig 8: peak throughput (Mtask/s), spinning vs HyperPlane"
    )
    grid = [
        (workload, shape, count, seed, completions)
        for workload in workloads
        for shape in SHAPES
        for count in counts
    ]
    if config.backend != "event":
        measurements = _vec_measurements(config, grid, result)
    else:
        measurements = parallel_map(
            _peak_point_star, grid, processes=1 if fast else None
        )
    gains = []
    for (workload, shape, count, _seed, _completions), (spin, hyper) in zip(
        grid, measurements
    ):
        result.rows.append(
            {
                "workload": workload,
                "shape": shape,
                "queues": count,
                "spinning": spin,
                "hyperplane": hyper,
                "gain": hyper / spin if spin > 0 else float("inf"),
            }
        )
        if spin > 0:
            gains.append(hyper / spin)
    if gains:
        geo_mean = 1.0
        for gain in gains:
            geo_mean *= gain
        geo_mean **= 1.0 / len(gains)
        arith = sum(gains) / len(gains)
        result.notes.append(
            f"HyperPlane peak-throughput gain over the grid: geo-mean "
            f"{geo_mean:.2f}x, mean {arith:.2f}x (paper average: 4.1x)"
        )
    return result


def _vec_measurements(config: Fig8Config, grid, result: ExperimentResult):
    """(spinning, hyperplane) per grid point via the vec / surrogate path.

    ``vec`` runs the batch engine directly; ``surrogate`` fits a
    throughput surrogate on that output, predicts from the fit, and
    spot-checks the predictions against the exact simulator — the
    oracle summary lands in the run manifest via ``result.vec_info``.
    """
    from repro.vec.arrays import SweepPoint, compile_points
    from repro.vec.backend import peak_grid, vec_provenance

    points = [
        SweepPoint(workload, shape, count, mechanism=mechanism)
        for (workload, shape, count, _seed, _completions) in grid
        for mechanism in ("spinning", "hyperplane")
    ]
    compiled = compile_points(points)
    mtps = peak_grid(compiled, seed=config.seed)
    oracle = None
    if config.backend == "surrogate":
        from repro.vec.surrogate import ThroughputSurrogate, validate_against_oracle

        surrogate = ThroughputSurrogate()
        fit = surrogate.fit(compiled, mtps)
        mtps = surrogate.predict(compiled)
        oracle = validate_against_oracle(
            surrogate,
            compiled,
            samples=2 if config.fast else 4,
            seed=config.seed,
            target_completions=800 if config.fast else 1500,
        )
        result.notes.append(
            f"surrogate fit over {fit.num_points} points: max training "
            f"residual {fit.max_rel_error:.1%}; oracle spot-check max "
            f"error {oracle.max_rel_error:.1%} (tolerance "
            f"{oracle.tolerance:.0%})"
        )
    result.vec_info = vec_provenance(backend=config.backend, oracle=oracle)
    result.notes.append(
        f"backend={config.backend}: {len(points)} sweep points batched "
        "(tolerance contract: repro.vec.oracle; see docs/vectorized.md)"
    )
    return [(float(mtps[2 * i]), float(mtps[2 * i + 1])) for i in range(len(grid))]
