"""Fig. 3: the DPDK queue-scalability case study (Section II-C)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dpdk.casestudy import (
    dpdk_latency_cdf,
    dpdk_roundtrip_latency,
    dpdk_throughput_sweep,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult


@dataclass(frozen=True)
class Fig3Config(ExperimentConfig):
    """Fig. 3 settings; ``panel`` selects (a) throughput, (b) latency,
    or (c) CDF. The DPDK case study is seeded internally, so ``seed``
    is unused here."""

    panel: str = "a"

    def __post_init__(self):
        if self.panel not in ("a", "b", "c"):
            raise ValueError(f"unknown Fig. 3 panel {self.panel!r}; use a/b/c")


def run(config: Fig3Config = None) -> ExperimentResult:
    """Reproduce one Fig. 3 panel."""
    config = config or Fig3Config()
    panel = {"a": _fig3a, "b": _fig3b, "c": _fig3c}[config.panel]
    return panel(config.fast)


def _fig3a(fast: bool) -> ExperimentResult:
    """Fig. 3(a): single-core throughput vs. queue count, four shapes."""
    counts = (1, 200, 600, 1000) if fast else (1, 100, 200, 400, 600, 800, 1000)
    completions = 1500 if fast else 4000
    sweep = dpdk_throughput_sweep(queue_counts=counts, target_completions=completions)
    result = ExperimentResult("fig3a", "Fig 3(a): DPDK throughput (Mtask/s) vs queues")
    for count in counts:
        result.rows.append(
            {"queues": count, **{shape: sweep[shape][count] for shape in sweep}}
        )
    first, last = counts[0], counts[-1]
    sq_drop = sweep["SQ"][first] / max(sweep["SQ"][last], 1e-9)
    nc_drop = sweep["NC"][first] / max(sweep["NC"][last], 1e-9)
    result.notes.append(
        f"SQ throughput drops {sq_drop:.0f}x from {first} to {last} queues "
        f"(paper: drastic); NC drops {nc_drop:.1f}x (paper: milder)"
    )
    return result


def _fig3b(fast: bool) -> ExperimentResult:
    """Fig. 3(b): light-load round-trip latency vs. queue count."""
    counts = (1, 128, 256, 512) if fast else (1, 64, 128, 192, 256, 320, 384, 448, 512)
    completions = 800 if fast else 2000
    latencies = dpdk_roundtrip_latency(queue_counts=counts, target_completions=completions)
    result = ExperimentResult("fig3b", "Fig 3(b): DPDK round-trip latency (us) vs queues")
    for count in counts:
        avg, p99 = latencies[count]
        result.rows.append({"queues": count, "avg_us": avg, "p99_us": p99})
    first_avg, _ = latencies[counts[0]]
    last_avg, last_p99 = latencies[counts[-1]]
    result.notes.append(
        f"avg grows {last_avg / first_avg:.1f}x over the sweep; tail grows faster "
        f"(p99/avg at {counts[-1]} queues = {last_p99 / last_avg:.2f})"
    )
    return result


def _fig3c(fast: bool) -> ExperimentResult:
    """Fig. 3(c): latency CDFs at 1 / 256 / 512 queues."""
    completions = 1000 if fast else 3000
    cdfs = dpdk_latency_cdf(queue_counts=(1, 256, 512), target_completions=completions)
    result = ExperimentResult("fig3c", "Fig 3(c): DPDK latency CDF (percentiles, us)")
    percentiles = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)
    for count, cdf in cdfs.items():
        row = {"queues": count}
        for target in percentiles:
            value = next((lat for lat, frac in cdf if frac >= target), cdf[-1][0])
            row[f"p{int(target * 100)}"] = value
        result.rows.append(row)
    spreads = {
        count: row[f"p99"] - row["p10"]
        for count, row in zip(cdfs, result.rows)
    }
    result.notes.append(
        "distribution widens with queue count: p99-p10 spread "
        + ", ".join(f"{c}q={s:.1f}us" for c, s in spreads.items())
    )
    return result
