"""Fig. 10: multicore tail latency across queueing organisations.

Four data-plane cores, 400 queues, packet encapsulation, 99% tail
latency across the load spectrum:

(a) FB traffic: scale-out vs. scale-up-2 vs. scale-up-4 for both
    systems — scale-up helps HyperPlane and *hurts* spinning;
(b) PC traffic: scale-out with and without 10% static load imbalance
    vs. scale-up-2 — imbalance hurts scale-out only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.runner import run_hyperplane
from repro.experiments.base import (
    BackendConfig,
    ExperimentResult,
    run_with_tracing,
)
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_spinning

NUM_CORES = 4
NUM_QUEUES = 400
FAST_LOADS = (0.2, 0.5, 0.8)
FULL_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def _latency(
    system: str,
    shape: str,
    cluster_cores: int,
    load: float,
    seed: int,
    completions: int,
    imbalance: float = 0.0,
):
    """(p99, mean) latency in us for one configuration."""
    config = SDPConfig(
        num_queues=NUM_QUEUES,
        num_cores=NUM_CORES,
        cluster_cores=cluster_cores,
        workload="packet-encapsulation",
        shape=shape,
        imbalance=imbalance,
        seed=seed,
    )
    runner = run_spinning if system == "spinning" else run_hyperplane
    metrics = runner(config, load=load, target_completions=completions, max_seconds=3.0)
    return metrics.latency.p99_us, metrics.latency.mean_us


def _tail(*args, **kwargs) -> float:
    return _latency(*args, **kwargs)[0]


@dataclass(frozen=True)
class Fig10Config(BackendConfig):
    """Fig. 10 settings; ``panel`` = "a" (FB) or "b" (PC + imbalance).

    ``trace`` runs the panel under a causal tracer (repro.obs.trace)
    and appends the per-mechanism latency decomposition to the notes.
    ``backend`` selects event (exact) / vec / surrogate execution; see
    docs/vectorized.md for the tolerance contract.
    """

    panel: str = "a"
    trace: bool = False

    def __post_init__(self):
        super().__post_init__()
        if self.panel not in ("a", "b"):
            raise ValueError(f"unknown Fig. 10 panel {self.panel!r}; use a/b")


def run(config: Optional[Fig10Config] = None) -> ExperimentResult:
    """Reproduce one Fig. 10 panel."""
    config = config or Fig10Config()
    panel = {"a": _fig10a, "b": _fig10b}[config.panel]
    return run_with_tracing(config, lambda: panel(config))


def _vec_latencies(config: Fig10Config, cells, result: ExperimentResult):
    """(p99_us, mean_us) per cell via the vec / surrogate path.

    ``cells`` is a sequence of (system, shape, cluster_cores, load,
    imbalance) tuples; one batched engine pass covers them all. The
    surrogate backend fits a tail predictor on the vec output, predicts
    the p99 column from the fit (means pass through from vec), and
    spot-checks against the exact simulator.
    """
    from repro.vec.arrays import SweepPoint, compile_points
    from repro.vec.backend import latency_grid, vec_provenance

    points = [
        SweepPoint(
            "packet-encapsulation",
            shape,
            NUM_QUEUES,
            mechanism=system,
            num_cores=NUM_CORES,
            cluster_cores=cluster_cores,
            load=load,
            imbalance=imbalance,
        )
        for (system, shape, cluster_cores, load, imbalance) in cells
    ]
    compiled = compile_points(points)
    res = latency_grid(compiled, seed=config.seed)
    p99 = res.p99_us
    oracle = None
    if config.backend == "surrogate":
        from repro.vec.surrogate import LatencySurrogate, validate_against_oracle

        surrogate = LatencySurrogate()
        fit = surrogate.fit(compiled, p99)
        p99 = surrogate.predict(compiled)
        oracle = validate_against_oracle(
            surrogate,
            compiled,
            samples=2 if config.fast else 4,
            seed=config.seed,
            target_completions=1500 if config.fast else 3000,
        )
        result.notes.append(
            f"surrogate fit over {fit.num_points} points: max training "
            f"residual {fit.max_rel_error:.1%}; oracle spot-check max "
            f"error {oracle.max_rel_error:.1%} (tolerance "
            f"{oracle.tolerance:.0%})"
        )
    result.vec_info = vec_provenance(backend=config.backend, oracle=oracle)
    result.notes.append(
        f"backend={config.backend}: {len(points)} sweep points batched "
        "(tolerance contract: repro.vec.oracle; see docs/vectorized.md)"
    )
    return [(float(p99[i]), float(res.mean_us[i])) for i in range(len(cells))]


def _fig10a(config: Fig10Config) -> ExperimentResult:
    """Fig. 10(a): FB traffic, three organisations per system."""
    fast, seed = config.fast, config.seed
    loads: Sequence[float] = FAST_LOADS if fast else FULL_LOADS
    completions = 3000 if fast else 8000
    result = ExperimentResult(
        "fig10a", "Fig 10(a): 99% tail latency (us), FB, 4 cores, 400 queues"
    )
    organisations = ((1, "out"), (2, "up2"), (4, "up4"))
    if config.backend != "event":
        cells = [
            (system, "FB", cluster_cores, load, 0.0)
            for load in loads
            for cluster_cores, _label in organisations
            for system in ("spinning", "hyperplane")
        ]
        latencies = iter(_vec_latencies(config, cells, result))
        for load in loads:
            row = {"load": load}
            for _cluster_cores, label in organisations:
                row[f"spin_{label}"] = next(latencies)[0]
                row[f"hp_{label}"] = next(latencies)[0]
            result.rows.append(row)
    else:
        for load in loads:
            row = {"load": load}
            for cluster_cores, label in organisations:
                row[f"spin_{label}"] = _tail(
                    "spinning", "FB", cluster_cores, load, seed, completions
                )
                row[f"hp_{label}"] = _tail(
                    "hyperplane", "FB", cluster_cores, load, seed, completions
                )
            result.rows.append(row)
    mid = min(result.rows, key=lambda r: abs(r["load"] - 0.5))
    result.notes.append(
        f"at 50% load: scale-out HyperPlane cuts tail {mid['spin_out'] / mid['hp_out']:.1f}x "
        f"(paper: 3.2x); scale-up-4 spinning is {mid['spin_up4'] / mid['spin_out']:.1f}x "
        "worse than scale-out spinning (sync + wider scans), while scale-up-4 "
        f"HyperPlane is the best configuration ({mid['hp_up4']:.1f} us)"
    )
    return result


def _fig10b(config: Fig10Config) -> ExperimentResult:
    """Fig. 10(b): PC traffic with 10% static scale-out imbalance."""
    fast, seed = config.fast, config.seed
    loads: Sequence[float] = FAST_LOADS if fast else FULL_LOADS
    # The imbalance contrast needs more samples than Fig. 10(a): the
    # effect lives in the overloaded cluster's tail.
    completions = 6000 if fast else 12000
    result = ExperimentResult(
        "fig10b", "Fig 10(b): 99% tail latency (us), PC, 4 cores, 400 queues"
    )
    cells = {
        "spin_out": ("spinning", 1, 0.0),
        "spin_out_imb": ("spinning", 1, 0.10),
        "spin_up2": ("spinning", 2, 0.0),
        "hp_out": ("hyperplane", 1, 0.0),
        "hp_out_imb": ("hyperplane", 1, 0.10),
        "hp_up2": ("hyperplane", 2, 0.0),
    }
    if config.backend != "event":
        flat = [
            (system, "PC", cluster_cores, load, imbalance)
            for load in loads
            for (system, cluster_cores, imbalance) in cells.values()
        ]
        latencies = iter(_vec_latencies(config, flat, result))
        for load in loads:
            row = {"load": load}
            for name in cells:
                p99, mean = next(latencies)
                row[name] = p99
                row[f"{name}_avg"] = mean
            result.rows.append(row)
    else:
        for load in loads:
            row = {"load": load}
            for name, (system, cluster_cores, imbalance) in cells.items():
                p99, mean = _latency(
                    system, "PC", cluster_cores, load, seed, completions,
                    imbalance=imbalance,
                )
                row[name] = p99
                row[f"{name}_avg"] = mean
            result.rows.append(row)
    high = max(result.rows, key=lambda r: r["load"])
    result.notes.append(
        "imbalance inflates scale-out latency only (scale-up is immune): at "
        f"{high['load']:.0%} load, spin scale-out mean {high['spin_out_avg']:.1f} -> "
        f"{high['spin_out_imb_avg']:.1f} us with 10% imbalance; HP scale-up-2 "
        f"p99 stays at {high['hp_up2']:.0f} us"
    )
    return result
