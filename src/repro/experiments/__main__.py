"""CLI: ``python -m repro.experiments [list | all | <id>...] [options]``.

Also installed as the ``repro-experiments`` console script. With
``--metrics-out DIR`` every experiment runs fully instrumented and
emits, per experiment id:

- ``<id>.manifest.json`` — the validated run manifest;
- ``<id>.metrics.jsonl`` / ``.csv`` / ``.prom`` — the collected
  metrics in each exporter format (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.dist import DistError, WireError
from repro.experiments.base import UsageError, backend_names
from repro.experiments.registry import REGISTRY, run_experiment
from repro.obs.dash import DashboardQuit


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment ids (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grids (slow) instead of the fast defaults",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed threaded into every simulation (default 0)",
    )
    parser.add_argument(
        "--backend",
        default="event",
        help=f"execution backend, one of {list(backend_names())} (default "
        "'event'; vec/surrogate need numpy — see docs/vectorized.md; "
        "dist spawns a multi-process fleet — see docs/distributed.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="dist backend: worker processes per fleet (default: the "
        "experiment's own; capped at the server count)",
    )
    parser.add_argument(
        "--transport",
        choices=("unix", "tcp"),
        default=None,
        help="dist backend: worker socket family (default: the "
        "experiment's own, normally unix; tcp exercises the "
        "loopback-TCP path CI matrixes over)",
    )
    parser.add_argument(
        "--speed-factor",
        type=float,
        default=None,
        help="dist backend: replay pacing vs wall clock (1 = real time; "
        "default 0 = max speed)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        default=None,
        help="dist backend: stream live telemetry frames from the "
        "workers into a fleet bus (bit-exact with telemetry off; see "
        "docs/live-telemetry.md)",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="dist backend: write every live telemetry frame to PATH "
        "as JSONL (implies --telemetry)",
    )
    parser.add_argument(
        "--dash",
        action="store_true",
        default=None,
        help="dist backend: paint the live terminal dashboard while "
        "the fleet runs (pairs well with --speed-factor; implies "
        "--telemetry; see also the repro-dash console script)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write <DIR>/<experiment>.json for each result",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        help="run instrumented; write manifest + JSONL/CSV/Prometheus "
        "metrics per experiment (forces serial sweeps)",
    )
    args = parser.parse_args(argv)

    targets = args.experiments
    if targets == ["list"]:
        print("available experiments:")
        for experiment_id, spec in REGISTRY.items():
            print(f"  {experiment_id:16s} {spec.summary}")
        return 0
    if targets == ["all"]:
        targets = list(REGISTRY)

    for directory in (args.json, args.metrics_out):
        if directory:
            os.makedirs(directory, exist_ok=True)

    for experiment_id in targets:
        metrics = None
        if args.metrics_out:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry(enabled=True)
        started = time.time()
        try:
            result = run_experiment(
                experiment_id,
                fast=not args.full,
                seed=args.seed,
                metrics=metrics,
                backend=args.backend,
                workers=args.workers,
                speed_factor=args.speed_factor,
                transport=args.transport,
                telemetry=args.telemetry,
                telemetry_out=args.telemetry_out,
                dash=args.dash,
            )
        except DashboardQuit:
            # The user pressed q in the live dashboard: a clean exit,
            # not a failure (partial results are discarded).
            print("dashboard: quit")
            return 0
        except UsageError as exc:
            # Unknown experiment / backend / unsupported combination /
            # bad dist flag: the message lists the valid choices.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            # A config rejected a value (same class of mistake).
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except WireError as exc:
            # The fleet ran but a worker failed past the failover
            # budget: a runtime fault, not a usage mistake.
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except DistError as exc:
            # Worker spawn / fleet runtime failure: exit 1, not 2.
            print(f"error: {exc}", file=sys.stderr)
            return 1
        elapsed = time.time() - started
        print(result.format_table())
        print(f"({experiment_id} finished in {elapsed:.1f} s)")
        print()
        if args.json:
            path = os.path.join(args.json, f"{experiment_id}.json")
            with open(path, "w") as handle:
                handle.write(result.to_json())
        if args.metrics_out:
            from repro.obs import validate_manifest, write_exports

            manifest_path = os.path.join(
                args.metrics_out, f"{experiment_id}.manifest.json"
            )
            validate_manifest(result.manifest.to_dict())
            with open(manifest_path, "w") as handle:
                handle.write(result.manifest.to_json())
            paths = write_exports(metrics, args.metrics_out, experiment_id)
            emitted = ", ".join(
                os.path.basename(path) for path in (manifest_path, *paths.values())
            )
            print(f"[metrics] {args.metrics_out}: {emitted}")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
