"""CLI: ``python -m repro.experiments [list | all | <id>...] [--full]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment ids (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grids (slow) instead of the fast defaults",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write <DIR>/<experiment>.json for each result",
    )
    args = parser.parse_args(argv)

    targets = args.experiments
    if targets == ["list"]:
        print("available experiments:")
        for experiment_id in REGISTRY:
            doc = (REGISTRY[experiment_id].__doc__ or "").strip().splitlines()[0]
            print(f"  {experiment_id:16s} {doc}")
        return 0
    if targets == ["all"]:
        targets = list(REGISTRY)

    if args.json:
        import os

        os.makedirs(args.json, exist_ok=True)

    for experiment_id in targets:
        started = time.time()
        result = run_experiment(experiment_id, fast=not args.full)
        elapsed = time.time() - started
        print(result.format_table())
        print(f"({experiment_id} finished in {elapsed:.1f} s)")
        print()
        if args.json:
            import os

            path = os.path.join(args.json, f"{experiment_id}.json")
            with open(path, "w") as handle:
                handle.write(result.to_json())
    return 0


if __name__ == "__main__":
    sys.exit(main())
