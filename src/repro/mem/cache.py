"""Set-associative cache model with LRU replacement.

Structural only: tracks which lines are present, not their timing. The
hierarchy composes these models and assigns latencies; the cost-model
derivation (:mod:`repro.mem.costmodel`) extracts steady-state hit rates
for the fast SDP simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.address import CACHE_LINE_BYTES, line_address


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0


class SetAssociativeCache:
    """An LRU set-associative cache of line addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    ways:
        Associativity; ``size_bytes / (ways * line_bytes)`` must be a
        power-of-two set count (as in real indexing).
    line_bytes:
        Cache line size (64 B in Table I).
    name:
        Label for diagnostics.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = CACHE_LINE_BYTES,
        name: str = "cache",
    ):
        if size_bytes % (ways * line_bytes):
            raise ValueError("capacity must be a whole number of sets")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.name = name
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        # Each set is an LRU-ordered list of line addresses, most recent last.
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    def _set_index(self, line: int) -> int:
        return (line // self.line_bytes) & (self.num_sets - 1)

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident (no LRU update)."""
        line = line_address(addr, self.line_bytes)
        return line in self._sets.get(self._set_index(line), ())

    def access(self, addr: int) -> bool:
        """Touch ``addr``: returns True on hit; on miss, fills the line.

        A miss evicts the LRU line of the set if the set is full; the
        evicted line address is recorded in :attr:`last_evicted`.
        """
        line = line_address(addr, self.line_bytes)
        index = self._set_index(line)
        ways = self._sets.setdefault(index, [])
        self.last_evicted: Optional[int] = None
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.ways:
            self.last_evicted = ways.pop(0)
            self.stats.evictions += 1
        ways.append(line)
        return False

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``; returns whether it was present."""
        line = line_address(addr, self.line_bytes)
        ways = self._sets.get(self._set_index(line))
        if ways and line in ways:
            ways.remove(line)
            self.stats.invalidations += 1
            return True
        return False

    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(ways) for ways in self._sets.values())

    def flush(self) -> None:
        """Empty the cache (stats preserved)."""
        self._sets.clear()


@dataclass
class CacheConfig:
    """Geometry for one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = CACHE_LINE_BYTES

    def build(self, name: str) -> SetAssociativeCache:
        """Instantiate a cache with this geometry."""
        return SetAssociativeCache(self.size_bytes, self.ways, self.line_bytes, name)

    @property
    def capacity_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    # Table I geometries.

    @classmethod
    def l1d(cls) -> "CacheConfig":
        """Private 32 KB, 4-way, 64 B lines (Table I)."""
        return cls(size_bytes=32 * 1024, ways=4)

    @classmethod
    def llc_per_core(cls) -> "CacheConfig":
        """1 MB per core, 16-way, 64 B lines (Table I)."""
        return cls(size_bytes=1024 * 1024, ways=16)
