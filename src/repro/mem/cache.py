"""Set-associative cache model with LRU replacement.

Structural only: tracks which lines are present, not their timing. The
hierarchy composes these models and assigns latencies; the cost-model
derivation (:mod:`repro.mem.costmodel`) extracts steady-state hit rates
for the fast SDP simulation.

Fast-path layout
----------------
Structural accesses dominate execution-driven simulation (one per
doorbell poll), so the per-set storage is a single preallocated flat
tag array — set ``s`` owns slots ``[s * ways, (s + 1) * ways)`` in LRU
order, least recent first — plus a per-set fill count. A hit rotates
the tag to the MRU slot in place; a hit that is *already* MRU (the
steady-state polling case: each doorbell line alone in its set) is a
single compare with no data movement. No ``dict.setdefault``, no
``list.remove`` scan, no per-access allocation.

Behaviour is bit-identical to the dict-of-LRU-lists reference model
(:class:`repro.mem._reference.ReferenceSetAssociativeCache`), which the
differential fuzz suite enforces: same hits/misses/evictions/
invalidations, same ``last_evicted`` values, same residency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mem.address import CACHE_LINE_BYTES


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0


# Flat-array empty-slot sentinel; line addresses are always >= 0.
_EMPTY = -1


class SetAssociativeCache:
    """An LRU set-associative cache of line addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    ways:
        Associativity; ``size_bytes / (ways * line_bytes)`` must be a
        power-of-two set count (as in real indexing).
    line_bytes:
        Cache line size (64 B in Table I).
    name:
        Label for diagnostics.
    """

    __slots__ = (
        "size_bytes",
        "ways",
        "line_bytes",
        "name",
        "num_sets",
        "stats",
        "last_evicted",
        "_tags",
        "_fill",
        "_set_mask",
    )

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = CACHE_LINE_BYTES,
        name: str = "cache",
    ):
        if size_bytes % (ways * line_bytes):
            raise ValueError("capacity must be a whole number of sets")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.name = name
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self._set_mask = self.num_sets - 1
        # Flat tag array: set s owns slots [s*ways, (s+1)*ways), LRU
        # first / MRU last; _fill[s] slots are occupied from the base.
        self._tags: List[int] = [_EMPTY] * (self.num_sets * ways)
        self._fill: List[int] = [0] * self.num_sets
        self.stats = CacheStats()
        # Address of the line evicted by the most recent access(), or
        # None. Initialised here, not lazily inside access(), so it is
        # safe to inspect a cache that has never been touched.
        self.last_evicted: Optional[int] = None

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    def _set_index(self, line: int) -> int:
        return (line // self.line_bytes) & self._set_mask

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident (no LRU update)."""
        line_bytes = self.line_bytes
        line = addr - addr % line_bytes
        index = (line // line_bytes) & self._set_mask
        base = index * self.ways
        tags = self._tags
        for slot in range(base, base + self._fill[index]):
            if tags[slot] == line:
                return True
        return False

    def access(self, addr: int) -> bool:
        """Touch ``addr``: returns True on hit; on miss, fills the line.

        A miss evicts the LRU line of the set if the set is full; the
        evicted line address is recorded in :attr:`last_evicted`.
        """
        line_bytes = self.line_bytes
        line = addr - addr % line_bytes
        index = (line // line_bytes) & self._set_mask
        ways = self.ways
        base = index * ways
        tags = self._tags
        fill = self._fill
        n = fill[index]
        self.last_evicted = None
        stats = self.stats
        if n:
            top = base + n - 1
            if tags[top] == line:
                # Already MRU: nothing to rotate.
                stats.hits += 1
                return True
            slot = base
            while slot < top:
                if tags[slot] == line:
                    # Hit mid-set: rotate [slot..top] left one place so
                    # the line lands in the MRU slot — same reordering
                    # as the reference's remove + append.
                    while slot < top:
                        tags[slot] = tags[slot + 1]
                        slot += 1
                    tags[top] = line
                    stats.hits += 1
                    return True
                slot += 1
        stats.misses += 1
        if n >= ways:
            self.last_evicted = tags[base]
            stats.evictions += 1
            slot = base
            top = base + ways - 1
            while slot < top:
                tags[slot] = tags[slot + 1]
                slot += 1
            tags[top] = line
            return False
        tags[base + n] = line
        fill[index] = n + 1
        return False

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``; returns whether it was present."""
        line_bytes = self.line_bytes
        line = addr - addr % line_bytes
        index = (line // line_bytes) & self._set_mask
        base = index * self.ways
        tags = self._tags
        n = self._fill[index]
        top = base + n - 1
        slot = base
        while slot <= top:
            if tags[slot] == line:
                # Close the gap, preserving LRU order of the rest.
                while slot < top:
                    tags[slot] = tags[slot + 1]
                    slot += 1
                tags[top] = _EMPTY
                self._fill[index] = n - 1
                self.stats.invalidations += 1
                return True
            slot += 1
        return False

    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(self._fill)

    def flush(self) -> None:
        """Empty the cache (stats preserved)."""
        self._tags = [_EMPTY] * (self.num_sets * self.ways)
        self._fill = [0] * self.num_sets


@dataclass
class CacheConfig:
    """Geometry for one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = CACHE_LINE_BYTES

    def build(self, name: str) -> SetAssociativeCache:
        """Instantiate a cache with this geometry."""
        return SetAssociativeCache(self.size_bytes, self.ways, self.line_bytes, name)

    @property
    def capacity_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    # Table I geometries.

    @classmethod
    def l1d(cls) -> "CacheConfig":
        """Private 32 KB, 4-way, 64 B lines (Table I)."""
        return cls(size_bytes=32 * 1024, ways=4)

    @classmethod
    def llc_per_core(cls) -> "CacheConfig":
        """1 MB per core, 16-way, 64 B lines (Table I)."""
        return cls(size_bytes=1024 * 1024, ways=16)
