"""Physical addresses and the reserved doorbell region.

HyperPlane's kernel driver reserves a pinned physical address range for
queue doorbells (paper, Section III-B/IV-A) so the monitoring set only
needs to snoop coherence traffic within that range. This module provides
the range bookkeeping plus generic address/line helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

CACHE_LINE_BYTES = 64


def line_address(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Return the address of the cache line containing ``addr``."""
    return addr - (addr % line_bytes)


def line_offset(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Return the byte offset of ``addr`` within its cache line."""
    return addr % line_bytes


@dataclass
class DoorbellRegion:
    """The pinned address range doorbells are allocated from.

    Parameters
    ----------
    base:
        First byte of the region (line-aligned).
    size_bytes:
        Region size; bounds how many doorbells can exist.
    doorbells_per_line:
        How many doorbell words share one cache line. The paper's driver
        can pack doorbells or spread them one-per-line; packing creates
        false sharing, which QWAIT-VERIFY then filters. Default is one
        doorbell per line (the sane production layout).
    """

    base: int = 0x1000_0000
    size_bytes: int = 1 << 20
    doorbells_per_line: int = 1
    _next_slot: int = field(default=0, repr=False)
    _freed: List[int] = field(default_factory=list, repr=False)
    _allocated: Set[int] = field(default_factory=set, repr=False)

    def __post_init__(self):
        if self.base % CACHE_LINE_BYTES:
            raise ValueError("doorbell region base must be line-aligned")
        if not 1 <= self.doorbells_per_line <= CACHE_LINE_BYTES // 8:
            raise ValueError("doorbells_per_line out of range")

    @property
    def capacity(self) -> int:
        """Maximum number of doorbells this region can hold."""
        return (self.size_bytes // CACHE_LINE_BYTES) * self.doorbells_per_line

    @property
    def limit(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside the reserved range."""
        return self.base <= addr < self.limit

    def allocate(self) -> int:
        """Allocate one doorbell address (8-byte word)."""
        if self._freed:
            slot = self._freed.pop()
        else:
            if self._next_slot >= self.capacity:
                raise MemoryError("doorbell region exhausted")
            slot = self._next_slot
            self._next_slot += 1
        addr = self._slot_address(slot)
        self._allocated.add(addr)
        return addr

    def free(self, addr: int) -> None:
        """Release a previously allocated doorbell address."""
        if addr not in self._allocated:
            raise ValueError(f"address {addr:#x} was not allocated here")
        self._allocated.remove(addr)
        self._freed.append(self._address_slot(addr))

    @property
    def allocated_count(self) -> int:
        """Number of live doorbells."""
        return len(self._allocated)

    def _slot_address(self, slot: int) -> int:
        line_index, within = divmod(slot, self.doorbells_per_line)
        stride = CACHE_LINE_BYTES // self.doorbells_per_line
        return self.base + line_index * CACHE_LINE_BYTES + within * stride

    def _address_slot(self, addr: int) -> int:
        offset = addr - self.base
        line_index, within_bytes = divmod(offset, CACHE_LINE_BYTES)
        stride = CACHE_LINE_BYTES // self.doorbells_per_line
        return line_index * self.doorbells_per_line + within_bytes // stride


class AddressAllocator:
    """Bump allocator for non-doorbell memory (queue storage, task data).

    Keeps the doorbell region and the data region disjoint so the
    monitoring set's snoop filter (``region.contains``) is meaningful.
    """

    def __init__(self, base: int = 0x4000_0000, doorbell_region: Optional[DoorbellRegion] = None):
        self.doorbell_region = doorbell_region or DoorbellRegion()
        if self.doorbell_region.contains(base):
            raise ValueError("data base overlaps the doorbell region")
        self._next = base

    def allocate(self, size_bytes: int, align: int = CACHE_LINE_BYTES) -> int:
        """Allocate ``size_bytes`` of data memory, aligned to ``align``."""
        if size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        self._next = addr + size_bytes
        if self.doorbell_region.contains(addr) or self.doorbell_region.contains(self._next - 1):
            raise MemoryError("data allocation ran into the doorbell region")
        return addr
