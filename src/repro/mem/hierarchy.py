"""Per-core L1s + shared LLC + directory, wired together.

:class:`MemoryHierarchy` combines the structural caches (which lines are
resident, with LRU capacity pressure) with the MESI directory (who may
read/write what). Every access returns a latency in cycles; the fast SDP
simulation does not call this per-access but uses cost curves derived
from it (:mod:`repro.mem.costmodel`).

Fast-path layout
----------------
:meth:`MemoryHierarchy.access_stream` batches many accesses by one core
into a single Python call — the structural doorbell scan and the
cost-curve derivation both issue one call per sweep instead of ~30
Python-level calls per poll. The steady-state polling case (directory
hit + line already MRU in both its L1 set and the LLC set) is recognised
with non-mutating probes and committed inline: two stat increments and
one interned :class:`AccessResult` append, nothing else. Anything less
common falls back to the general :meth:`read`/:meth:`write` path
*before* any state is touched, so the observable sequence of results,
stats, evictions and snoops is bit-identical to issuing the accesses one
by one (enforced by ``tests/test_mem_fastpath_differential.py`` against
:class:`repro.mem._reference.ReferenceMemoryHierarchy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.coherence import (
    AccessResult,
    Directory,
    LatencyConfig,
    SnoopCallback,
    _result,
)


@dataclass(frozen=True)
class MemConfig:
    """Hierarchy geometry + latencies (Table I defaults)."""

    num_cores: int = 16
    l1: CacheConfig = field(default_factory=CacheConfig.l1d)
    llc_per_core: CacheConfig = field(default_factory=CacheConfig.llc_per_core)
    latencies: LatencyConfig = field(default_factory=LatencyConfig)

    @property
    def llc_total_bytes(self) -> int:
        """Shared LLC capacity: 1 MB per core (Table I)."""
        return self.llc_per_core.size_bytes * self.num_cores


class MemoryHierarchy:
    """A CMP memory system for ``config.num_cores`` cores.

    The LLC is modelled as one shared cache of the aggregate capacity
    (Table I: "1 MB per core"); the directory is co-located with it.
    """

    __slots__ = ("config", "l1s", "llc", "directory", "_line_bytes", "_r_llc_refill")

    def __init__(self, config: Optional[MemConfig] = None):
        self.config = config or MemConfig()
        cfg = self.config
        self.l1s: List[SetAssociativeCache] = [
            cfg.l1.build(f"l1-{core}") for core in range(cfg.num_cores)
        ]
        # Real indexed caches need a power-of-two set count; round the
        # aggregate LLC up (e.g. 3 cores x 1 MB indexes as 4 MB of sets).
        ways = cfg.llc_per_core.ways
        line = cfg.l1.line_bytes
        sets = max(1, cfg.llc_total_bytes // (ways * line))
        rounded_sets = 1 << (sets - 1).bit_length()
        self.llc = SetAssociativeCache(rounded_sets * ways * line, ways, line, "llc")
        self.directory = Directory(cfg.num_cores, cfg.latencies)
        self._line_bytes = line
        # Interned "permission hit but structurally evicted" refill result.
        self._r_llc_refill = _result(cfg.latencies.llc_hit, "LLC", False, 0)

    # -- snoop passthrough -------------------------------------------------

    def add_snooper(self, address_filter: Callable[[int], bool], callback: SnoopCallback) -> None:
        """Register a coherence snooper (see :class:`Directory`)."""
        self.directory.add_snooper(address_filter, callback)

    # -- accesses ----------------------------------------------------------

    def read(self, core: int, addr: int) -> AccessResult:
        """Core ``core`` loads ``addr``; returns latency and level."""
        return self._access(core, addr, is_write=False)

    def write(self, core: int, addr: int) -> AccessResult:
        """Core ``core`` stores to ``addr``; returns latency and level."""
        return self._access(core, addr, is_write=True)

    def _access(self, core: int, addr: int, is_write: bool) -> AccessResult:
        line = addr - addr % self._line_bytes
        l1 = self.l1s[core]
        llc = self.llc
        structurally_present = l1.contains(line)
        in_llc = llc.contains(line)
        if is_write:
            result = self.directory.write(core, line, in_llc)
        else:
            result = self.directory.read(core, line, in_llc)
        if result.hit and not structurally_present:
            # Permission said hit but the line was evicted for capacity:
            # treat as an LLC refill (the directory still lists us).
            if result.invalidated:
                result = _result(
                    self.config.latencies.llc_hit, "LLC", False, result.invalidated
                )
            else:
                result = self._r_llc_refill
        # Maintain structural residency (and propagate capacity evictions
        # to the directory so state stays consistent).
        l1.access(line)
        if l1.last_evicted is not None:
            self.directory.evict(core, l1.last_evicted)
        llc.access(line)
        if result.invalidated:
            self._drop_remote_copies(core, line)
        return result

    def access_stream(
        self,
        core: int,
        addrs: Sequence[int],
        write: bool = False,
        cycle_budget: Optional[int] = None,
    ) -> List[AccessResult]:
        """Issue ``addrs`` for ``core`` in order; one call, many accesses.

        Equivalent — result-for-result and state-for-state — to calling
        :meth:`read` (or :meth:`write`) once per address. Reads that the
        probes prove are steady-state hits (directory permission hit and
        the line already MRU in both its L1 set and LLC set) are
        committed inline; every other access takes the general path
        untouched. Hit counters for a run of consecutive fast-path polls
        are folded in at the run's end — no callback can execute inside
        such a run, so the deferral is unobservable (any fallback access,
        which may fire snoop callbacks, sees fully up-to-date counters).

        When ``cycle_budget`` is given, the stream stops early — after
        the access whose latency makes the cumulative total reach the
        budget — and returns the results so far. At least one access is
        always issued. This lets callers with a time horizon issue one
        call for "as many accesses as provably fit" without knowing the
        individual latencies in advance.
        """
        l1 = self.l1s[core]
        results: List[AccessResult] = []
        if write:
            access_write = self.write
            for addr in addrs:
                result = access_write(core, addr)
                results.append(result)
                if cycle_budget is not None:
                    cycle_budget -= result.latency
                    if cycle_budget <= 0:
                        break
            return results
        append = results.append
        read = self.read
        line_bytes = self._line_bytes
        llc = self.llc
        directory = self.directory
        dir_lines = directory._lines
        r_l1_hit = directory._r_l1_hit
        l1_lat = r_l1_hit.latency
        l1_tags = l1._tags
        l1_fill = l1._fill
        l1_mask = l1._set_mask
        l1_ways = l1.ways
        llc_tags = llc._tags
        llc_fill = llc._fill
        llc_mask = llc._set_mask
        llc_ways = llc.ways
        l1_stats = l1.stats
        llc_stats = llc.stats
        budgeted = cycle_budget is not None
        acc = 0
        pending = 0  # deferred fast-path hit count
        fast_tail = False  # whether the latest access took the fast path
        for addr in addrs:
            line = addr - addr % line_bytes
            line_no = line // line_bytes
            # Non-mutating probes first; fall back before touching state.
            entry = dir_lines.get(line)
            if entry is not None and (entry[0] == core or core in entry[2]):
                set_idx = line_no & l1_mask
                n = l1_fill[set_idx]
                if n and l1_tags[set_idx * l1_ways + n - 1] == line:
                    set_idx = line_no & llc_mask
                    n = llc_fill[set_idx]
                    if n and llc_tags[set_idx * llc_ways + n - 1] == line:
                        # Steady-state poll: both caches hit with the
                        # line already MRU.
                        pending += 1
                        fast_tail = True
                        append(r_l1_hit)
                        if budgeted:
                            acc += l1_lat
                            if acc >= cycle_budget:
                                break
                        continue
            if pending:
                l1_stats.hits += pending
                llc_stats.hits += pending
                pending = 0
            fast_tail = False
            result = read(core, addr)
            append(result)
            if budgeted:
                acc += result.latency
                if acc >= cycle_budget:
                    break
        if pending:
            l1_stats.hits += pending
            llc_stats.hits += pending
        if fast_tail:
            l1.last_evicted = None
            llc.last_evicted = None
        return results

    def all_steady_reads(self, core: int, addrs: Sequence[int]) -> bool:
        """Non-mutating: would every read in ``addrs`` take the fast path?

        True iff each address holds a directory permission hit for
        ``core`` with the line MRU in both its L1 set and its LLC set —
        i.e. reading it would change no model state beyond the L1/LLC
        hit counters. Because the fast path mutates nothing the probes
        depend on, a True verdict stays valid for any number of repeated
        reads of these addresses (until some *other* access intervenes);
        :meth:`commit_steady_reads` then folds such reads in wholesale.
        """
        l1 = self.l1s[core]
        line_bytes = self._line_bytes
        llc = self.llc
        dir_lines = self.directory._lines
        l1_tags = l1._tags
        l1_fill = l1._fill
        l1_mask = l1._set_mask
        l1_ways = l1.ways
        llc_tags = llc._tags
        llc_fill = llc._fill
        llc_mask = llc._set_mask
        llc_ways = llc.ways
        for addr in addrs:
            line = addr - addr % line_bytes
            line_no = line // line_bytes
            entry = dir_lines.get(line)
            if entry is None or (entry[0] != core and core not in entry[2]):
                return False
            set_idx = line_no & l1_mask
            n = l1_fill[set_idx]
            if not n or l1_tags[set_idx * l1_ways + n - 1] != line:
                return False
            set_idx = line_no & llc_mask
            n = llc_fill[set_idx]
            if not n or llc_tags[set_idx * llc_ways + n - 1] != line:
                return False
        return True

    def commit_steady_reads(self, core: int, count: int) -> None:
        """Fold in ``count`` reads proven fast-path by :meth:`all_steady_reads`.

        State-identical to issuing them individually: each such read
        increments the L1 and LLC hit counters and leaves
        ``last_evicted`` cleared; nothing else changes.
        """
        l1 = self.l1s[core]
        l1.stats.hits += count
        self.llc.stats.hits += count
        l1.last_evicted = None
        self.llc.last_evicted = None

    def _drop_remote_copies(self, writer: int, line: int) -> None:
        for core, l1 in enumerate(self.l1s):
            if core != writer:
                l1.invalidate(line)

    # -- diagnostics ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Directory SWMR plus L1/directory residency consistency."""
        self.directory.check_invariants()

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.stats.reset()
        self.llc.stats.reset()
