"""Per-core L1s + shared LLC + directory, wired together.

:class:`MemoryHierarchy` combines the structural caches (which lines are
resident, with LRU capacity pressure) with the MESI directory (who may
read/write what). Every access returns a latency in cycles; the fast SDP
simulation does not call this per-access but uses cost curves derived
from it (:mod:`repro.mem.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.mem.address import CACHE_LINE_BYTES, line_address
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.coherence import (
    AccessResult,
    Directory,
    LatencyConfig,
    SnoopCallback,
)


@dataclass(frozen=True)
class MemConfig:
    """Hierarchy geometry + latencies (Table I defaults)."""

    num_cores: int = 16
    l1: CacheConfig = field(default_factory=CacheConfig.l1d)
    llc_per_core: CacheConfig = field(default_factory=CacheConfig.llc_per_core)
    latencies: LatencyConfig = field(default_factory=LatencyConfig)

    @property
    def llc_total_bytes(self) -> int:
        """Shared LLC capacity: 1 MB per core (Table I)."""
        return self.llc_per_core.size_bytes * self.num_cores


class MemoryHierarchy:
    """A CMP memory system for ``config.num_cores`` cores.

    The LLC is modelled as one shared cache of the aggregate capacity
    (Table I: "1 MB per core"); the directory is co-located with it.
    """

    def __init__(self, config: Optional[MemConfig] = None):
        self.config = config or MemConfig()
        cfg = self.config
        self.l1s: List[SetAssociativeCache] = [
            cfg.l1.build(f"l1-{core}") for core in range(cfg.num_cores)
        ]
        # Real indexed caches need a power-of-two set count; round the
        # aggregate LLC up (e.g. 3 cores x 1 MB indexes as 4 MB of sets).
        ways = cfg.llc_per_core.ways
        line = cfg.l1.line_bytes
        sets = max(1, cfg.llc_total_bytes // (ways * line))
        rounded_sets = 1 << (sets - 1).bit_length()
        self.llc = SetAssociativeCache(rounded_sets * ways * line, ways, line, "llc")
        self.directory = Directory(cfg.num_cores, cfg.latencies)

    # -- snoop passthrough -------------------------------------------------

    def add_snooper(self, address_filter: Callable[[int], bool], callback: SnoopCallback) -> None:
        """Register a coherence snooper (see :class:`Directory`)."""
        self.directory.add_snooper(address_filter, callback)

    # -- accesses ----------------------------------------------------------

    def read(self, core: int, addr: int) -> AccessResult:
        """Core ``core`` loads ``addr``; returns latency and level."""
        return self._access(core, addr, is_write=False)

    def write(self, core: int, addr: int) -> AccessResult:
        """Core ``core`` stores to ``addr``; returns latency and level."""
        return self._access(core, addr, is_write=True)

    def _access(self, core: int, addr: int, is_write: bool) -> AccessResult:
        line = line_address(addr, self.config.l1.line_bytes)
        l1 = self.l1s[core]
        structurally_present = l1.contains(line)
        in_llc = self.llc.contains(line)
        if is_write:
            result = self.directory.write(core, line, in_llc)
        else:
            result = self.directory.read(core, line, in_llc)
        if result.hit and not structurally_present:
            # Permission said hit but the line was evicted for capacity:
            # treat as an LLC refill (the directory still lists us).
            result = AccessResult(
                latency=self.config.latencies.llc_hit,
                level="LLC",
                hit=False,
                invalidated=result.invalidated,
            )
        # Maintain structural residency (and propagate capacity evictions
        # to the directory so state stays consistent).
        l1.access(line)
        if l1.last_evicted is not None:
            self.directory.evict(core, l1.last_evicted)
        self.llc.access(line)
        if result.invalidated:
            self._drop_remote_copies(core, line)
        return result

    def _drop_remote_copies(self, writer: int, line: int) -> None:
        for core, l1 in enumerate(self.l1s):
            if core != writer:
                l1.invalidate(line)

    # -- diagnostics ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Directory SWMR plus L1/directory residency consistency."""
        self.directory.check_invariants()

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.stats.reset()
        self.llc.stats.reset()
