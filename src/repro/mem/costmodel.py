"""Cycle-cost extraction from the structural memory models.

The figure sweeps (1000 queues, millions of polls) cannot afford a
structural cache access per poll in Python, so the SDP simulation runs on
a :class:`CostModel`: a table of per-operation cycle costs plus the
*empty-poll cost curve* — average cycles to interrogate one empty queue
head, as a function of the total doorbell count. The curve is derived by
actually running a polling loop through :class:`MemoryHierarchy`, so L1
capacity, associativity conflicts, and LLC pressure come from the model
rather than hand-waving.
"""

from __future__ import annotations

import os
from dataclasses import astuple, dataclass, replace
from typing import Dict, Optional, Tuple

from repro.mem.address import CACHE_LINE_BYTES
from repro.mem.hierarchy import MemConfig, MemoryHierarchy

# Paper constants (Section IV-C / V-D), in cycles at 3 GHz where stated in ns.
QWAIT_LATENCY_CYCLES = 50  # "conservatively considered ... 50 cycles"
MONITORING_LOOKUP_CYCLES = 5  # "within 5 CPU cycles"
READY_SET_SELECT_NS = 12.25  # RTL-reported ready-set latency
C1_WAKEUP_US = 0.5  # C1 -> C0 transition (paper V-D, ~0.5 us)


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs consumed by the fast SDP simulation."""

    l1_hit: int = 4
    llc_hit: int = 50
    dram: int = 210
    remote_transfer: int = 80
    atomic_rmw: int = 20
    # Polling loop bookkeeping per queue visited (index arithmetic,
    # branch) on an aggressive OoO core.
    poll_loop_overhead: int = 2
    # Dequeue of one work item from a ring (head/tail update + item read).
    dequeue: int = 30
    # Doorbell decrement by the consumer (atomic on an L1-resident line).
    doorbell_update: int = 24
    # Spinlock acquire/release given the lock line is already local.
    lock_uncontended: int = 40
    # HyperPlane instruction costs.
    qwait: int = QWAIT_LATENCY_CYCLES
    qwait_verify: int = 12
    qwait_reconsider: int = 12
    monitoring_lookup: int = MONITORING_LOOKUP_CYCLES
    # C1 wake-up penalty, in cycles (filled in by derive_cost_model).
    c1_wakeup: int = 1500

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every memory-ish cost scaled by ``factor``."""
        return replace(
            self,
            llc_hit=round(self.llc_hit * factor),
            dram=round(self.dram * factor),
            remote_transfer=round(self.remote_transfer * factor),
        )


def derive_cost_model(
    mem_config: Optional[MemConfig] = None,
    frequency_hz: float = 3.0e9,
) -> CostModel:
    """Build a :class:`CostModel` grounded in a hierarchy's latencies."""
    cfg = mem_config or MemConfig()
    lat = cfg.latencies
    return CostModel(
        l1_hit=lat.l1_hit,
        llc_hit=lat.directory_lookup + lat.llc_hit,
        dram=lat.directory_lookup + lat.dram,
        remote_transfer=lat.directory_lookup + lat.remote_transfer,
        c1_wakeup=round(C1_WAKEUP_US * 1e-6 * frequency_hz),
    )


# -- derivation memo ---------------------------------------------------------
#
# Curve derivation is by far the most expensive step of building a
# data-plane system (hundreds of thousands of structural cache accesses),
# and figure sweeps rebuild systems with identical derivation inputs at
# every grid point. The derivation is a pure function of its inputs, so
# one process-wide memo collapses a sweep's N derivations into one. Each
# memo entry also stores the aggregate hierarchy-counter snapshot, so a
# cache hit folds the same ``mem.*`` increments into an active metrics
# registry that a fresh measurement would have — instrumented runs see
# identical metrics either way. Set ``REPRO_CURVE_CACHE=0`` to disable
# (the regression suites use it to prove cached == derived).

_CURVE_CACHE: Dict[tuple, Tuple[Dict[int, float], Dict[str, float]]] = {}
_CURVE_CACHE_STATS = {"hits": 0, "misses": 0}


def _curve_cache_enabled() -> bool:
    return os.environ.get("REPRO_CURVE_CACHE", "1") != "0"


def _mem_config_key(cfg: MemConfig) -> tuple:
    """A hashable identity for a hierarchy geometry + latency table."""
    return (
        cfg.num_cores,
        (cfg.l1.size_bytes, cfg.l1.ways, cfg.l1.line_bytes),
        (cfg.llc_per_core.size_bytes, cfg.llc_per_core.ways, cfg.llc_per_core.line_bytes),
        astuple(cfg.latencies),
    )


def clear_curve_cache() -> None:
    """Drop every memoized curve (tests and calibration sweeps)."""
    _CURVE_CACHE.clear()
    _CURVE_CACHE_STATS["hits"] = 0
    _CURVE_CACHE_STATS["misses"] = 0


def curve_cache_info() -> Dict[str, int]:
    """Memo occupancy and hit/miss counts since the last clear."""
    return {"entries": len(_CURVE_CACHE), **_CURVE_CACHE_STATS}


def empty_poll_cost_curve(
    queue_counts,
    mem_config: Optional[MemConfig] = None,
    llc_doorbell_resident_fraction: float = 1.0,
    warmup_rounds: int = 2,
    measure_rounds: int = 2,
) -> Dict[int, float]:
    """Average cycles per empty-queue poll vs. total doorbell count.

    For each queue count ``n`` this runs a single core round-robin-polling
    ``n`` doorbell lines (one per cache line, as the driver lays them out)
    through the structural hierarchy, and averages the measured read
    latency over the steady-state rounds.

    ``llc_doorbell_resident_fraction`` models competition for LLC capacity
    from task data: the fraction of doorbell-line LLC refs that actually
    hit (Fig. 8's FB/PC droop comes from this fraction falling once task
    data exceeds the LLC).

    Derivations are memoized process-wide by their full input identity;
    see the module notes above.
    """
    if not 0.0 <= llc_doorbell_resident_fraction <= 1.0:
        raise ValueError("resident fraction must be within [0, 1]")
    # The fast simulation never touches the structural models at run
    # time — these derivation runs are where mem.* cache/coherence
    # behaviour is actually measured, so fold each measured hierarchy's
    # counters into the ambient registry (if observability is on).
    from repro.obs.runtime import get_active_registry

    registry = get_active_registry()
    cfg = mem_config or MemConfig(num_cores=1)

    counts = tuple(queue_counts)
    use_cache = _curve_cache_enabled()
    key = (
        counts,
        _mem_config_key(cfg),
        llc_doorbell_resident_fraction,
        warmup_rounds,
        measure_rounds,
    )
    if use_cache:
        cached = _CURVE_CACHE.get(key)
        if cached is not None:
            _CURVE_CACHE_STATS["hits"] += 1
            curve, stats = cached
            if registry is not None:
                from repro.obs.probes import replay_hierarchy_stats

                replay_hierarchy_stats(registry, stats)
            return dict(curve)
        _CURVE_CACHE_STATS["misses"] += 1

    results: Dict[int, float] = {}
    aggregate_stats: Dict[str, float] = {}
    for count in counts:
        if count <= 0:
            raise ValueError("queue counts must be positive")
        hierarchy = MemoryHierarchy(cfg)
        base = 0x1000_0000
        addrs = [base + i * CACHE_LINE_BYTES for i in range(count)]
        # One batched call per polling round (identical results to
        # per-address hierarchy.read(0, addr) — see access_stream).
        for _ in range(warmup_rounds):
            hierarchy.access_stream(0, addrs)
        total = 0
        samples = 0
        for _ in range(measure_rounds):
            for result in hierarchy.access_stream(0, addrs):
                latency = result.latency
                if result.level == "LLC" and llc_doorbell_resident_fraction < 1.0:
                    # Expected latency when some LLC refs spill to DRAM.
                    lat = cfg.latencies
                    llc = lat.directory_lookup + lat.llc_hit
                    dram = lat.directory_lookup + lat.dram
                    latency = (
                        llc_doorbell_resident_fraction * llc
                        + (1.0 - llc_doorbell_resident_fraction) * dram
                    )
                total += latency
                samples += 1
        results[count] = total / samples

        from repro.obs.probes import hierarchy_stats_snapshot

        stats = hierarchy_stats_snapshot(hierarchy)
        for name, value in stats.items():
            aggregate_stats[name] = aggregate_stats.get(name, 0.0) + value
        if registry is not None:
            from repro.obs.probes import replay_hierarchy_stats

            replay_hierarchy_stats(registry, stats)
    if use_cache:
        _CURVE_CACHE[key] = (dict(results), aggregate_stats)
    return results


def interpolate_poll_cost(curve: Dict[int, float], count: int) -> float:
    """Piecewise-linear lookup into a poll-cost curve."""
    if count in curve:
        return curve[count]
    keys = sorted(curve)
    if count <= keys[0]:
        return curve[keys[0]]
    if count >= keys[-1]:
        return curve[keys[-1]]
    for low, high in zip(keys, keys[1:]):
        if low < count < high:
            span = high - low
            weight = (count - low) / span
            return curve[low] * (1 - weight) + curve[high] * weight
    raise AssertionError("unreachable")  # pragma: no cover
