"""Reference memory-hierarchy models (the pre-fast-path implementations).

The production classes in :mod:`repro.mem.cache`, :mod:`repro.mem.coherence`
and :mod:`repro.mem.hierarchy` are rebuilt for speed (flat-array LRU sets,
table-driven MESI dispatch on small ints, interned results, batched access
streams) under a **bit-identicality contract**: same `AccessResult`
sequences, same stats and transaction counters, same snoop-callback
invocation order. This module preserves the original, straightforward
implementations — dict-of-lists caches, enum-dispatch directory — as the
oracle those fast paths are differentially fuzzed against
(``tests/test_mem_fastpath_differential.py``).

Nothing outside the tests should import this module; it is deliberately
unoptimised so that its behaviour stays easy to audit by eye.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.mem.address import CACHE_LINE_BYTES, line_address
from repro.mem.cache import CacheConfig, CacheStats
from repro.mem.coherence import (
    AccessResult,
    LatencyConfig,
    MESIState,
    SnoopCallback,
    TransactionKind,
)


class ReferenceSetAssociativeCache:
    """The original LRU set-associative cache: dict of per-set lists.

    Semantics are the contract the fast flat-array cache must match:
    each set is an LRU-ordered list of line addresses (most recent
    last), a hit re-appends, a miss on a full set pops index 0 into
    :attr:`last_evicted`.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = CACHE_LINE_BYTES,
        name: str = "cache",
    ):
        if size_bytes % (ways * line_bytes):
            raise ValueError("capacity must be a whole number of sets")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.name = name
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()
        self.last_evicted: Optional[int] = None

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _set_index(self, line: int) -> int:
        return (line // self.line_bytes) & (self.num_sets - 1)

    def contains(self, addr: int) -> bool:
        line = line_address(addr, self.line_bytes)
        return line in self._sets.get(self._set_index(line), ())

    def access(self, addr: int) -> bool:
        line = line_address(addr, self.line_bytes)
        index = self._set_index(line)
        ways = self._sets.setdefault(index, [])
        self.last_evicted = None
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.ways:
            self.last_evicted = ways.pop(0)
            self.stats.evictions += 1
        ways.append(line)
        return False

    def invalidate(self, addr: int) -> bool:
        line = line_address(addr, self.line_bytes)
        ways = self._sets.get(self._set_index(line))
        if ways and line in ways:
            ways.remove(line)
            self.stats.invalidations += 1
            return True
        return False

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())

    def flush(self) -> None:
        self._sets.clear()


class _LineEntry:
    """Directory entry: owner (M/E), dirty flag, sharer set."""

    __slots__ = ("owner", "dirty", "sharers")

    def __init__(self):
        self.owner: Optional[int] = None
        self.dirty = False
        self.sharers: set = set()


class ReferenceDirectory:
    """The original enum-dispatch MESI directory."""

    def __init__(self, num_cores: int, latencies: Optional[LatencyConfig] = None):
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.latencies = latencies or LatencyConfig()
        self._lines: Dict[int, _LineEntry] = {}
        self._snoopers: List[Tuple[Callable[[int], bool], SnoopCallback]] = []
        self.transactions: Dict[TransactionKind, int] = {kind: 0 for kind in TransactionKind}

    def add_snooper(self, address_filter: Callable[[int], bool], callback: SnoopCallback) -> None:
        self._snoopers.append((address_filter, callback))

    def _notify(self, line: int, requester: int, kind: TransactionKind) -> None:
        self.transactions[kind] += 1
        for address_filter, callback in self._snoopers:
            if address_filter(line):
                callback(line, requester, kind)

    def state_of(self, core: int, line: int) -> MESIState:
        entry = self._lines.get(line)
        if entry is None:
            return MESIState.INVALID
        if entry.owner == core:
            return MESIState.MODIFIED if entry.dirty else MESIState.EXCLUSIVE
        if core in entry.sharers:
            return MESIState.SHARED
        return MESIState.INVALID

    def read(self, core: int, line: int, in_llc: bool) -> AccessResult:
        self._check_core(core)
        entry = self._lines.get(line)
        lat = self.latencies
        if entry is not None and (entry.owner == core or core in entry.sharers):
            return AccessResult(latency=lat.l1_hit, level="L1", hit=True)
        self._notify(line, core, TransactionKind.GET_S)
        if entry is None:
            entry = self._lines.setdefault(line, _LineEntry())
        if entry.owner is not None and entry.owner != core:
            previous_owner = entry.owner
            entry.sharers.add(previous_owner)
            entry.owner = None
            entry.dirty = False
            entry.sharers.add(core)
            return AccessResult(
                latency=lat.directory_lookup + lat.remote_transfer,
                level="remote-L1",
                hit=False,
            )
        if not entry.sharers and entry.owner is None:
            entry.owner = core
            entry.dirty = False
        else:
            entry.sharers.add(core)
        if in_llc:
            return AccessResult(latency=lat.directory_lookup + lat.llc_hit, level="LLC", hit=False)
        return AccessResult(latency=lat.directory_lookup + lat.dram, level="DRAM", hit=False)

    def write(self, core: int, line: int, in_llc: bool) -> AccessResult:
        self._check_core(core)
        entry = self._lines.get(line)
        lat = self.latencies
        if entry is not None and entry.owner == core:
            entry.dirty = True
            return AccessResult(latency=lat.l1_hit, level="L1", hit=True)
        kind = (
            TransactionKind.UPGRADE
            if entry is not None and core in entry.sharers
            else TransactionKind.GET_M
        )
        self._notify(line, core, kind)
        if entry is None:
            entry = self._lines.setdefault(line, _LineEntry())
        invalidated = 0
        level = "LLC" if in_llc else "DRAM"
        latency = lat.directory_lookup + (lat.llc_hit if in_llc else lat.dram)
        if entry.owner is not None and entry.owner != core:
            invalidated += 1
            level = "remote-L1"
            latency = lat.directory_lookup + lat.remote_transfer
        invalidated += len(entry.sharers - {core})
        if kind is TransactionKind.UPGRADE:
            level = "L1"
            latency = lat.directory_lookup + (lat.remote_transfer if invalidated else 0)
        entry.owner = core
        entry.dirty = True
        entry.sharers.clear()
        return AccessResult(latency=latency, level=level, hit=False, invalidated=invalidated)

    def evict(self, core: int, line: int) -> None:
        entry = self._lines.get(line)
        if entry is None:
            return
        if entry.owner == core:
            if entry.dirty:
                self._notify(line, core, TransactionKind.PUT_M)
            entry.owner = None
            entry.dirty = False
        entry.sharers.discard(core)
        if entry.owner is None and not entry.sharers:
            del self._lines[line]

    def check_invariants(self) -> None:
        for line, entry in self._lines.items():
            if entry.owner is not None:
                if entry.sharers - {entry.owner}:
                    raise AssertionError(
                        f"line {line:#x}: owner {entry.owner} coexists with "
                        f"sharers {entry.sharers}"
                    )
                if not 0 <= entry.owner < self.num_cores:
                    raise AssertionError(f"line {line:#x}: bogus owner {entry.owner}")
            for sharer in entry.sharers:
                if not 0 <= sharer < self.num_cores:
                    raise AssertionError(f"line {line:#x}: bogus sharer {sharer}")

    def sharer_count(self, line: int) -> int:
        entry = self._lines.get(line)
        if entry is None:
            return 0
        return len(entry.sharers) + (1 if entry.owner is not None else 0)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core id {core} out of range")


class ReferenceMemoryHierarchy:
    """The original per-call hierarchy wiring over the reference models."""

    def __init__(self, config=None):
        from repro.mem.hierarchy import MemConfig

        self.config = config or MemConfig()
        cfg = self.config
        self.l1s: List[ReferenceSetAssociativeCache] = [
            ReferenceSetAssociativeCache(
                cfg.l1.size_bytes, cfg.l1.ways, cfg.l1.line_bytes, f"l1-{core}"
            )
            for core in range(cfg.num_cores)
        ]
        ways = cfg.llc_per_core.ways
        line = cfg.l1.line_bytes
        sets = max(1, cfg.llc_total_bytes // (ways * line))
        rounded_sets = 1 << (sets - 1).bit_length()
        self.llc = ReferenceSetAssociativeCache(rounded_sets * ways * line, ways, line, "llc")
        self.directory = ReferenceDirectory(cfg.num_cores, cfg.latencies)

    def add_snooper(self, address_filter: Callable[[int], bool], callback: SnoopCallback) -> None:
        self.directory.add_snooper(address_filter, callback)

    def read(self, core: int, addr: int) -> AccessResult:
        return self._access(core, addr, is_write=False)

    def write(self, core: int, addr: int) -> AccessResult:
        return self._access(core, addr, is_write=True)

    def _access(self, core: int, addr: int, is_write: bool) -> AccessResult:
        line = line_address(addr, self.config.l1.line_bytes)
        l1 = self.l1s[core]
        structurally_present = l1.contains(line)
        in_llc = self.llc.contains(line)
        if is_write:
            result = self.directory.write(core, line, in_llc)
        else:
            result = self.directory.read(core, line, in_llc)
        if result.hit and not structurally_present:
            result = AccessResult(
                latency=self.config.latencies.llc_hit,
                level="LLC",
                hit=False,
                invalidated=result.invalidated,
            )
        l1.access(line)
        if l1.last_evicted is not None:
            self.directory.evict(core, l1.last_evicted)
        self.llc.access(line)
        if result.invalidated:
            self._drop_remote_copies(core, line)
        return result

    def _drop_remote_copies(self, writer: int, line: int) -> None:
        for core, l1 in enumerate(self.l1s):
            if core != writer:
                l1.invalidate(line)

    def check_invariants(self) -> None:
        self.directory.check_invariants()

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.stats.reset()
        self.llc.stats.reset()


# Build helper so the fuzz tests can assemble matching geometry pairs.
def build_reference_pair(config):
    """Return (fast, reference) hierarchies with identical geometry."""
    from repro.mem.hierarchy import MemoryHierarchy

    return MemoryHierarchy(config), ReferenceMemoryHierarchy(config)


__all__ = [
    "CacheConfig",
    "ReferenceDirectory",
    "ReferenceMemoryHierarchy",
    "ReferenceSetAssociativeCache",
    "build_reference_pair",
]
