"""Directory-based MESI coherence.

The directory tracks, per cache line, which core owns it (M/E) or which
cores share it (S). It exposes snoop hooks: callbacks fired when a write
transaction (GetM / upgrade) is observed for a line — this is exactly the
interface HyperPlane's monitoring set uses (paper, Section III-B: "the
monitoring set snoops the write transactions ... conceptually implemented
as part of the directory").

The model is state-exact (who has what, who gets invalidated) with a
simple additive latency model; it is deliberately not a message-level
protocol simulator. Invariants (single owner, owner implies no sharers)
are enforced and property-tested.

Fast-path layout
----------------
The public API keeps :class:`MESIState` / :class:`TransactionKind`
enums, but the hot path never touches them: transactions are counted in
a flat list indexed by small ints, line entries are plain 3-slot lists
``[owner, dirty, sharers]``, and the latency/level outcome of every
transition is read from a table precomputed in ``__init__`` rather than
recomputed from ``LatencyConfig`` per access. `AccessResult` values are
interned — the distinct outcomes of a given latency table are few — so
the common case allocates nothing. The snooper scan is skipped outright
when no snooper is registered; with snoopers, each one memoizes its
per-line filter verdict (filters are pure functions of the line
address). All of it is differentially fuzzed against
:class:`repro.mem._reference.ReferenceDirectory` for bit-identical
results, counters, and snoop-callback order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

# ruff: noqa: E741


class MESIState(enum.Enum):
    """Per-core line state as tracked by the directory."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class TransactionKind(enum.Enum):
    """Coherence transaction types visible to snoopers."""

    GET_S = "GetS"
    GET_M = "GetM"
    UPGRADE = "Upgrade"
    PUT_M = "PutM"


# Small-int transaction codes used on the hot path; `_KIND_BY_INT`
# recovers the public enum for snoop callbacks and the counter view.
_GET_S, _GET_M, _UPGRADE, _PUT_M = range(4)
_KIND_BY_INT = (
    TransactionKind.GET_S,
    TransactionKind.GET_M,
    TransactionKind.UPGRADE,
    TransactionKind.PUT_M,
)

# Line-entry slots (plain lists beat attribute access here).
_OWNER, _DIRTY, _SHARERS = range(3)

# A snooper receives (line address, requesting core, transaction kind).
SnoopCallback = Callable[[int, int, TransactionKind], None]


@dataclass(frozen=True)
class LatencyConfig:
    """Additive latency components, in core cycles.

    Defaults follow Table I-class machines: 4-cycle L1D, ~40-cycle LLC,
    ~200-cycle DRAM, ~70-cycle dirty remote-L1 transfer through the
    directory.
    """

    l1_hit: int = 4
    llc_hit: int = 40
    dram: int = 200
    remote_transfer: int = 70
    directory_lookup: int = 10


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one load/store through the coherence layer.

    Instances are interned (equal outcomes share one object), so
    identity comparisons may succeed where only equality is promised;
    rely on equality.
    """

    latency: int
    level: str  # "L1", "remote-L1", "LLC", "DRAM"
    hit: bool
    invalidated: int = 0  # how many remote copies were invalidated


# Process-wide intern table: the distinct results for any latency table
# are bounded by a handful of levels x invalidation counts <= num_cores.
_RESULT_INTERN: Dict[Tuple[int, str, bool, int], AccessResult] = {}


def _result(latency: int, level: str, hit: bool, invalidated: int = 0) -> AccessResult:
    key = (latency, level, hit, invalidated)
    cached = _RESULT_INTERN.get(key)
    if cached is None:
        cached = _RESULT_INTERN[key] = AccessResult(latency, level, hit, invalidated)
    return cached


# Transition-table row indices for the miss outcomes of read()/write().
# Rows map outcome -> (latency, level); they are precomputed per
# Directory from its LatencyConfig, so the hot path does one tuple
# index instead of re-deriving "directory_lookup + ..." arithmetic.
_T_FILL_LLC, _T_FILL_DRAM, _T_REMOTE, _T_UPG_SILENT, _T_UPG_INV = range(5)


class Directory:
    """MESI directory for ``num_cores`` private L1 caches.

    The directory is purely a permission/ownership tracker; structural
    L1/LLC presence lives in :class:`repro.mem.hierarchy.MemoryHierarchy`,
    which calls :meth:`read` / :meth:`write` and combines the results.
    """

    __slots__ = (
        "num_cores",
        "latencies",
        "_lines",
        "_snoopers",
        "_txn",
        "_table",
        "_r_l1_hit",
        "_r_read_remote",
        "_r_read_llc",
        "_r_read_dram",
    )

    def __init__(self, num_cores: int, latencies: Optional[LatencyConfig] = None):
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.latencies = latencies or LatencyConfig()
        self._lines: Dict[int, list] = {}
        # Each snooper: [filter, callback, per-line verdict memo].
        self._snoopers: List[list] = []
        self._txn = [0, 0, 0, 0]
        lat = self.latencies
        look = lat.directory_lookup
        # Precomputed transition table: outcome row -> (latency, level).
        self._table = (
            (look + lat.llc_hit, "LLC"),  # _T_FILL_LLC
            (look + lat.dram, "DRAM"),  # _T_FILL_DRAM
            (look + lat.remote_transfer, "remote-L1"),  # _T_REMOTE
            (look, "L1"),  # _T_UPG_SILENT
            (look + lat.remote_transfer, "L1"),  # _T_UPG_INV
        )
        # Interned results for the fixed-shape outcomes.
        self._r_l1_hit = _result(lat.l1_hit, "L1", True)
        self._r_read_remote = _result(look + lat.remote_transfer, "remote-L1", False)
        self._r_read_llc = _result(look + lat.llc_hit, "LLC", False)
        self._r_read_dram = _result(look + lat.dram, "DRAM", False)

    # -- snooping ---------------------------------------------------------

    @property
    def transactions(self) -> Dict[TransactionKind, int]:
        """Cumulative transaction counts (a snapshot view, enum-keyed)."""
        txn = self._txn
        return {kind: txn[code] for code, kind in enumerate(_KIND_BY_INT)}

    def add_snooper(self, address_filter: Callable[[int], bool], callback: SnoopCallback) -> None:
        """Register ``callback`` for transactions whose line passes the filter."""
        self._snoopers.append([address_filter, callback, {}])

    def _notify(self, line: int, requester: int, kind_code: int) -> None:
        self._txn[kind_code] += 1
        snoopers = self._snoopers
        if not snoopers:
            return
        kind = _KIND_BY_INT[kind_code]
        for snooper in snoopers:
            memo = snooper[2]
            verdict = memo.get(line)
            if verdict is None:
                verdict = memo[line] = 1 if snooper[0](line) else 0
            if verdict:
                snooper[1](line, requester, kind)

    # -- core-visible operations ------------------------------------------

    def state_of(self, core: int, line: int) -> MESIState:
        """The MESI state of ``line`` in ``core``'s L1, per the directory."""
        entry = self._lines.get(line)
        if entry is None:
            return MESIState.INVALID
        if entry[_OWNER] == core:
            return MESIState.MODIFIED if entry[_DIRTY] else MESIState.EXCLUSIVE
        if core in entry[_SHARERS]:
            return MESIState.SHARED
        return MESIState.INVALID

    def read(self, core: int, line: int, in_llc: bool) -> AccessResult:
        """Core ``core`` loads from ``line``.

        ``in_llc`` is whether the structural LLC currently holds the line
        (decides LLC-hit vs DRAM latency on a clean miss).
        """
        if core < 0 or core >= self.num_cores:
            raise ValueError(f"core id {core} out of range")
        entry = self._lines.get(line)
        if entry is not None:
            owner = entry[_OWNER]
            if owner == core or core in entry[_SHARERS]:
                return self._r_l1_hit
            # L1 miss: GetS to the directory.
            self._notify(line, core, _GET_S)
            sharers = entry[_SHARERS]
            if owner is not None:
                # Dirty (or exclusive) remote copy: downgrade owner to
                # sharer (owner != core here — owner hit returned above).
                sharers.add(owner)
                entry[_OWNER] = None
                entry[_DIRTY] = False
                sharers.add(core)
                return self._r_read_remote
            if sharers:
                sharers.add(core)
            else:
                # No other copies: grant Exclusive.
                entry[_OWNER] = core
                entry[_DIRTY] = False
            return self._r_read_llc if in_llc else self._r_read_dram
        self._notify(line, core, _GET_S)
        self._lines[line] = [core, False, set()]
        return self._r_read_llc if in_llc else self._r_read_dram

    def write(self, core: int, line: int, in_llc: bool) -> AccessResult:
        """Core ``core`` stores to ``line`` (obtains M)."""
        if core < 0 or core >= self.num_cores:
            raise ValueError(f"core id {core} out of range")
        entry = self._lines.get(line)
        if entry is None:
            self._notify(line, core, _GET_M)
            self._lines[line] = [core, True, set()]
            latency, level = self._table[_T_FILL_LLC if in_llc else _T_FILL_DRAM]
            return _result(latency, level, False, 0)
        owner = entry[_OWNER]
        if owner == core:
            entry[_DIRTY] = True
            return self._r_l1_hit
        sharers = entry[_SHARERS]
        upgrade = core in sharers
        self._notify(line, core, _UPGRADE if upgrade else _GET_M)
        invalidated = len(sharers) - (1 if upgrade else 0)
        if owner is not None:
            # Remote M/E copy (owner != core): transfer + invalidate.
            invalidated += 1
            outcome = _T_REMOTE
        else:
            outcome = _T_FILL_LLC if in_llc else _T_FILL_DRAM
        if upgrade:
            # Already had the data; only invalidations are needed.
            outcome = _T_UPG_INV if invalidated else _T_UPG_SILENT
        latency, level = self._table[outcome]
        entry[_OWNER] = core
        entry[_DIRTY] = True
        sharers.clear()
        return _result(latency, level, False, invalidated)

    def evict(self, core: int, line: int) -> None:
        """Core ``core``'s L1 drops ``line`` (capacity eviction / PutM)."""
        entry = self._lines.get(line)
        if entry is None:
            return
        if entry[_OWNER] == core:
            if entry[_DIRTY]:
                self._notify(line, core, _PUT_M)
            entry[_OWNER] = None
            entry[_DIRTY] = False
        entry[_SHARERS].discard(core)
        if entry[_OWNER] is None and not entry[_SHARERS]:
            del self._lines[line]

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert SWMR: an owner excludes sharers; owner is a valid core."""
        for line, entry in self._lines.items():
            owner, _dirty, sharers = entry
            if owner is not None:
                if sharers - {owner}:
                    raise AssertionError(
                        f"line {line:#x}: owner {owner} coexists with "
                        f"sharers {sharers}"
                    )
                if not 0 <= owner < self.num_cores:
                    raise AssertionError(f"line {line:#x}: bogus owner {owner}")
            for sharer in sharers:
                if not 0 <= sharer < self.num_cores:
                    raise AssertionError(f"line {line:#x}: bogus sharer {sharer}")

    def sharer_count(self, line: int) -> int:
        """Number of cores with any valid copy of ``line``."""
        entry = self._lines.get(line)
        if entry is None:
            return 0
        return len(entry[_SHARERS]) + (1 if entry[_OWNER] is not None else 0)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core id {core} out of range")
