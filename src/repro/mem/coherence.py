"""Directory-based MESI coherence.

The directory tracks, per cache line, which core owns it (M/E) or which
cores share it (S). It exposes snoop hooks: callbacks fired when a write
transaction (GetM / upgrade) is observed for a line — this is exactly the
interface HyperPlane's monitoring set uses (paper, Section III-B: "the
monitoring set snoops the write transactions ... conceptually implemented
as part of the directory").

The model is state-exact (who has what, who gets invalidated) with a
simple additive latency model; it is deliberately not a message-level
protocol simulator. Invariants (single owner, owner implies no sharers)
are enforced and property-tested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple


class MESIState(enum.Enum):
    """Per-core line state as tracked by the directory."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class TransactionKind(enum.Enum):
    """Coherence transaction types visible to snoopers."""

    GET_S = "GetS"
    GET_M = "GetM"
    UPGRADE = "Upgrade"
    PUT_M = "PutM"


# A snooper receives (line address, requesting core, transaction kind).
SnoopCallback = Callable[[int, int, TransactionKind], None]


@dataclass(frozen=True)
class LatencyConfig:
    """Additive latency components, in core cycles.

    Defaults follow Table I-class machines: 4-cycle L1D, ~40-cycle LLC,
    ~200-cycle DRAM, ~70-cycle dirty remote-L1 transfer through the
    directory.
    """

    l1_hit: int = 4
    llc_hit: int = 40
    dram: int = 200
    remote_transfer: int = 70
    directory_lookup: int = 10


@dataclass
class AccessResult:
    """Outcome of one load/store through the coherence layer."""

    latency: int
    level: str  # "L1", "remote-L1", "LLC", "DRAM"
    hit: bool
    invalidated: int = 0  # how many remote copies were invalidated


@dataclass
class _LineEntry:
    owner: Optional[int] = None  # core id holding M or E
    dirty: bool = False  # owner's copy is M (vs E)
    sharers: Set[int] = field(default_factory=set)


class Directory:
    """MESI directory for ``num_cores`` private L1 caches.

    The directory is purely a permission/ownership tracker; structural
    L1/LLC presence lives in :class:`repro.mem.hierarchy.MemoryHierarchy`,
    which calls :meth:`read` / :meth:`write` and combines the results.
    """

    def __init__(self, num_cores: int, latencies: Optional[LatencyConfig] = None):
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.latencies = latencies or LatencyConfig()
        self._lines: Dict[int, _LineEntry] = {}
        self._snoopers: List[Tuple[Callable[[int], bool], SnoopCallback]] = []
        self.transactions: Dict[TransactionKind, int] = {kind: 0 for kind in TransactionKind}

    # -- snooping ---------------------------------------------------------

    def add_snooper(self, address_filter: Callable[[int], bool], callback: SnoopCallback) -> None:
        """Register ``callback`` for transactions whose line passes the filter."""
        self._snoopers.append((address_filter, callback))

    def _notify(self, line: int, requester: int, kind: TransactionKind) -> None:
        self.transactions[kind] += 1
        for address_filter, callback in self._snoopers:
            if address_filter(line):
                callback(line, requester, kind)

    # -- core-visible operations ------------------------------------------

    def state_of(self, core: int, line: int) -> MESIState:
        """The MESI state of ``line`` in ``core``'s L1, per the directory."""
        entry = self._lines.get(line)
        if entry is None:
            return MESIState.INVALID
        if entry.owner == core:
            return MESIState.MODIFIED if entry.dirty else MESIState.EXCLUSIVE
        if core in entry.sharers:
            return MESIState.SHARED
        return MESIState.INVALID

    def read(self, core: int, line: int, in_llc: bool) -> AccessResult:
        """Core ``core`` loads from ``line``.

        ``in_llc`` is whether the structural LLC currently holds the line
        (decides LLC-hit vs DRAM latency on a clean miss).
        """
        self._check_core(core)
        entry = self._lines.get(line)
        lat = self.latencies
        if entry is not None and (entry.owner == core or core in entry.sharers):
            return AccessResult(latency=lat.l1_hit, level="L1", hit=True)
        # L1 miss: GetS to the directory.
        self._notify(line, core, TransactionKind.GET_S)
        if entry is None:
            entry = self._lines.setdefault(line, _LineEntry())
        if entry.owner is not None and entry.owner != core:
            # Dirty (or exclusive) remote copy: downgrade owner to sharer.
            previous_owner = entry.owner
            entry.sharers.add(previous_owner)
            entry.owner = None
            entry.dirty = False
            entry.sharers.add(core)
            return AccessResult(
                latency=lat.directory_lookup + lat.remote_transfer,
                level="remote-L1",
                hit=False,
            )
        if not entry.sharers and entry.owner is None:
            # No other copies: grant Exclusive.
            entry.owner = core
            entry.dirty = False
        else:
            entry.sharers.add(core)
        if in_llc:
            return AccessResult(latency=lat.directory_lookup + lat.llc_hit, level="LLC", hit=False)
        return AccessResult(latency=lat.directory_lookup + lat.dram, level="DRAM", hit=False)

    def write(self, core: int, line: int, in_llc: bool) -> AccessResult:
        """Core ``core`` stores to ``line`` (obtains M)."""
        self._check_core(core)
        entry = self._lines.get(line)
        lat = self.latencies
        if entry is not None and entry.owner == core:
            entry.dirty = True
            return AccessResult(latency=lat.l1_hit, level="L1", hit=True)
        kind = (
            TransactionKind.UPGRADE
            if entry is not None and core in entry.sharers
            else TransactionKind.GET_M
        )
        self._notify(line, core, kind)
        if entry is None:
            entry = self._lines.setdefault(line, _LineEntry())
        invalidated = 0
        level = "LLC" if in_llc else "DRAM"
        latency = lat.directory_lookup + (lat.llc_hit if in_llc else lat.dram)
        if entry.owner is not None and entry.owner != core:
            invalidated += 1
            level = "remote-L1"
            latency = lat.directory_lookup + lat.remote_transfer
        invalidated += len(entry.sharers - {core})
        if kind is TransactionKind.UPGRADE:
            # Already had the data; only invalidations are needed.
            level = "L1"
            latency = lat.directory_lookup + (lat.remote_transfer if invalidated else 0)
        entry.owner = core
        entry.dirty = True
        entry.sharers.clear()
        return AccessResult(latency=latency, level=level, hit=False, invalidated=invalidated)

    def evict(self, core: int, line: int) -> None:
        """Core ``core``'s L1 drops ``line`` (capacity eviction / PutM)."""
        entry = self._lines.get(line)
        if entry is None:
            return
        if entry.owner == core:
            if entry.dirty:
                self._notify(line, core, TransactionKind.PUT_M)
            entry.owner = None
            entry.dirty = False
        entry.sharers.discard(core)
        if entry.owner is None and not entry.sharers:
            del self._lines[line]

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert SWMR: an owner excludes sharers; owner is a valid core."""
        for line, entry in self._lines.items():
            if entry.owner is not None:
                if entry.sharers - {entry.owner}:
                    raise AssertionError(
                        f"line {line:#x}: owner {entry.owner} coexists with "
                        f"sharers {entry.sharers}"
                    )
                if not 0 <= entry.owner < self.num_cores:
                    raise AssertionError(f"line {line:#x}: bogus owner {entry.owner}")
            for sharer in entry.sharers:
                if not 0 <= sharer < self.num_cores:
                    raise AssertionError(f"line {line:#x}: bogus sharer {sharer}")

    def sharer_count(self, line: int) -> int:
        """Number of cores with any valid copy of ``line``."""
        entry = self._lines.get(line)
        if entry is None:
            return 0
        return len(entry.sharers) + (1 if entry.owner is not None else 0)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core id {core} out of range")
