"""Memory-hierarchy substrate.

Structural (state-exact, not timing-exact) models of the parts of the
chip that the paper's effects depend on:

- :mod:`repro.mem.address` — physical address helpers and the reserved
  doorbell address range that HyperPlane's kernel driver manages.
- :mod:`repro.mem.cache` — set-associative caches with LRU replacement.
- :mod:`repro.mem.coherence` — a directory-based MESI protocol with snoop
  hooks (the monitoring set observes GetM transactions through these).
- :mod:`repro.mem.hierarchy` — per-core L1s + shared LLC + directory +
  DRAM, returning a latency in cycles for every access.
- :mod:`repro.mem.costmodel` — derives the per-operation cycle costs the
  fast SDP simulation uses, by running microbenchmarks through the
  structural models.
"""

from repro.mem.address import (
    CACHE_LINE_BYTES,
    AddressAllocator,
    DoorbellRegion,
    line_address,
)
from repro.mem.cache import SetAssociativeCache
from repro.mem.coherence import AccessResult, Directory, MESIState
from repro.mem.costmodel import CostModel, derive_cost_model, empty_poll_cost_curve
from repro.mem.hierarchy import MemConfig, MemoryHierarchy

__all__ = [
    "CACHE_LINE_BYTES",
    "AccessResult",
    "AddressAllocator",
    "CostModel",
    "Directory",
    "DoorbellRegion",
    "MESIState",
    "MemConfig",
    "MemoryHierarchy",
    "SetAssociativeCache",
    "derive_cost_model",
    "empty_poll_cost_curve",
    "line_address",
]
