"""HyperPlane (MICRO 2020) reproduction.

A complete Python implementation of the paper's notification accelerator
for software data planes, plus every substrate its evaluation depends
on. The public API most users need imports from here:

>>> from repro import SDPConfig, run_spinning, run_hyperplane
>>> config = SDPConfig(num_queues=1000, workload="packet-encapsulation", shape="SQ")
>>> run_hyperplane(config, closed_loop=True).throughput_mtps  # doctest: +SKIP

Experiments and observability share the same front door:

>>> from repro import MetricsRegistry, run_experiment
>>> registry = MetricsRegistry(enabled=True)
>>> result = run_experiment("fig9a", metrics=registry)  # doctest: +SKIP
>>> result.manifest.config_hash  # doctest: +SKIP

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — HyperPlane itself (the paper's contribution);
- :mod:`repro.sdp` — the shared data-plane runtime and the spinning,
  MWAIT, and interrupt baselines;
- :mod:`repro.sim`, :mod:`repro.mem`, :mod:`repro.queueing`,
  :mod:`repro.traffic`, :mod:`repro.workloads` — substrates;
- :mod:`repro.cluster` — rack-scale multi-server scale-out;
- :mod:`repro.obs` — metrics registry, probes, exporters, manifests;
- :mod:`repro.structural` — execution-driven validation mode;
- :mod:`repro.power`, :mod:`repro.smt`, :mod:`repro.dpdk` — side models;
- :mod:`repro.experiments` — one module per paper table/figure
  (``python -m repro.experiments list``).
"""

# Version first: repro.obs.manifest reads it back lazily when stamping
# run manifests, so it must exist before the imports below execute.
# 2.0.0: the v1 run_figX()/run_hwcost()/... deprecation shims and the
# repro.sdp.tracing compatibility tracer are gone (docs/api.md has the
# migration table); backends live in a registry (repro.experiments.base)
# and the dist backend runs racks across worker processes (repro.dist).
__version__ = "2.0.0"

from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.rack import Rack, run_cluster
from repro.core.runner import run_hyperplane
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import run_experiment
from repro.obs.manifest import RunManifest
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import active_registry
from repro.sdp.config import SDPConfig
from repro.sdp.metrics import RunMetrics
from repro.sdp.runner import run_interrupts, run_mwait, run_spinning
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.rng import RandomStreams

__all__ = [
    "Clock",
    "ClusterConfig",
    "ClusterMetrics",
    "Event",
    "ExperimentConfig",
    "ExperimentResult",
    "MetricsRegistry",
    "Process",
    "Rack",
    "RandomStreams",
    "RunManifest",
    "RunMetrics",
    "SDPConfig",
    "Simulator",
    "active_registry",
    "run_cluster",
    "run_experiment",
    "run_hyperplane",
    "run_interrupts",
    "run_mwait",
    "run_spinning",
    "__version__",
]
