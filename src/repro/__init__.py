"""HyperPlane (MICRO 2020) reproduction.

A complete Python implementation of the paper's notification accelerator
for software data planes, plus every substrate its evaluation depends
on. The public API most users need:

>>> from repro import SDPConfig, run_spinning, run_hyperplane
>>> config = SDPConfig(num_queues=1000, workload="packet-encapsulation", shape="SQ")
>>> run_hyperplane(config, closed_loop=True).throughput_mtps  # doctest: +SKIP

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — HyperPlane itself (the paper's contribution);
- :mod:`repro.sdp` — the shared data-plane runtime and the spinning,
  MWAIT, and interrupt baselines;
- :mod:`repro.sim`, :mod:`repro.mem`, :mod:`repro.queueing`,
  :mod:`repro.traffic`, :mod:`repro.workloads` — substrates;
- :mod:`repro.structural` — execution-driven validation mode;
- :mod:`repro.power`, :mod:`repro.smt`, :mod:`repro.dpdk` — side models;
- :mod:`repro.experiments` — one module per paper table/figure
  (``python -m repro.experiments list``).
"""

from repro.core.runner import run_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.runner import run_interrupts, run_mwait, run_spinning

__version__ = "1.0.0"

__all__ = [
    "SDPConfig",
    "run_hyperplane",
    "run_interrupts",
    "run_mwait",
    "run_spinning",
    "__version__",
]
