"""Latency-decomposition reports over collected traces.

This is the "where did the tail go" renderer: it folds the per-request
cycle breakdowns that :mod:`repro.obs.trace_probes` attached to
``request``/``rpc`` spans into one row per *mechanism* (the
``mechanism`` span attribute: ``spinning/scale-out``,
``hyperplane/scale-out/hw``, ...), with mean microseconds and share per
category. ``repro-trace`` prints this table; the figure experiments
append its one-line form to their notes when run with ``trace=True``.

:func:`sum_problems` is the exactness audit CI runs: every breakdown's
fixed-order category sum must reproduce the span's cycle duration
bit-for-bit — any span where it does not is reported.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.obs.trace import CATEGORIES, Span, Tracer, breakdown_sum
from repro.sim.clock import DEFAULT_CLOCK, Clock

Source = Union[Tracer, Iterable[Span]]


def _breakdown_spans(source: Source) -> List[Span]:
    spans = source.spans if isinstance(source, Tracer) else source
    return [span for span in spans if span.cycles is not None and span.end is not None]


def sum_problems(source: Source, clock: Optional[Clock] = None) -> List[str]:
    """Spans whose breakdown does not sum bit-exactly (empty = all exact).

    For each span carrying a cycle breakdown, the canonical fixed-order
    category sum must equal ``clock.seconds_to_cycles(span.duration)``
    to the last bit.
    """
    clock = clock or DEFAULT_CLOCK
    problems = []
    for span in _breakdown_spans(source):
        expected = clock.seconds_to_cycles(span.duration)
        actual = breakdown_sum(span.cycles)
        if actual != expected:
            problems.append(
                f"span {span.span_id} ({span.name!r}): breakdown sums to "
                f"{actual!r} cycles, duration is {expected!r}"
            )
    return problems


def decomposition_rows(
    source: Source, clock: Optional[Clock] = None
) -> List[Dict[str, object]]:
    """One row per mechanism: request count, mean latency, mean µs and
    share per cycle category. Rows are sorted by mechanism name."""
    clock = clock or DEFAULT_CLOCK
    groups: Dict[str, List[Span]] = {}
    for span in _breakdown_spans(source):
        mechanism = str(span.attributes.get("mechanism", "unlabeled"))
        groups.setdefault(mechanism, []).append(span)
    rows = []
    for mechanism in sorted(groups):
        spans = groups[mechanism]
        count = len(spans)
        total_cycles = sum(breakdown_sum(span.cycles) for span in spans)
        row: Dict[str, object] = {
            "mechanism": mechanism,
            "requests": count,
            "mean_us": clock.cycles_to_us(total_cycles) / count,
        }
        for category in CATEGORIES:
            category_cycles = sum(span.cycles[category] for span in spans)
            row[f"{category}_us"] = clock.cycles_to_us(category_cycles) / count
            row[f"{category}_share"] = (
                category_cycles / total_cycles if total_cycles else 0.0
            )
        rows.append(row)
    return rows


def format_decomposition(rows: List[Dict[str, object]]) -> str:
    """A terminal table of :func:`decomposition_rows` output."""
    if not rows:
        return "(no spans with cycle breakdowns)"
    width = max(len(str(row["mechanism"])) for row in rows)
    width = max(width, len("mechanism"))
    header = f"{'mechanism':{width}s} {'requests':>8s} {'mean_us':>9s}"
    for category in CATEGORIES:
        header += f" {category + '_us':>12s} {'%':>5s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        line = (
            f"{str(row['mechanism']):{width}s} {row['requests']:8d} "
            f"{row['mean_us']:9.2f}"
        )
        for category in CATEGORIES:
            line += (
                f" {row[f'{category}_us']:12.3f}"
                f" {row[f'{category}_share'] * 100.0:5.1f}"
            )
        lines.append(line)
    return "\n".join(lines)


def breakdown_notes(
    source: Source, clock: Optional[Clock] = None
) -> List[str]:
    """One-line-per-mechanism decomposition summaries (experiment notes)."""
    notes = []
    for row in decomposition_rows(source, clock):
        shares = ", ".join(
            f"{category} {row[f'{category}_share'] * 100.0:.0f}%"
            for category in CATEGORIES
        )
        notes.append(
            f"trace[{row['mechanism']}]: {row['requests']} requests, "
            f"mean {row['mean_us']:.2f} us = {shares}"
        )
    return notes
