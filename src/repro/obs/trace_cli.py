"""CLI: ``repro-trace [<experiment>...] [options]``.

Runs registered experiments under an ambient causal tracer
(:mod:`repro.obs.trace`), prints the per-mechanism latency
decomposition table, audits the bit-exact breakdown invariant, and
optionally writes the trace in every exporter format.

Experiments are named either by registry id (``fig9a``,
``cluster_scaleout``) or by module alias (``fig9_zero_load`` expands to
``fig9a`` + ``fig9b``) — ``repro-trace list`` shows both.

Exit status is non-zero when ``--check`` finds a span whose cycle
breakdown does not sum bit-exactly to its duration (the CI trace smoke
gate).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

from repro.experiments.registry import REGISTRY
from repro.obs.trace import Tracer, active_tracer
from repro.obs.trace_export import write_trace_exports
from repro.obs.trace_report import (
    decomposition_rows,
    format_decomposition,
    sum_problems,
)


def module_aliases() -> Dict[str, List[str]]:
    """Module-basename alias -> registry ids it expands to."""
    aliases: Dict[str, List[str]] = {}
    for experiment_id, spec in REGISTRY.items():
        module = spec.runner.__module__.rsplit(".", 1)[-1]
        aliases.setdefault(module, []).append(experiment_id)
    return aliases


def resolve_experiments(names: List[str]) -> List[str]:
    """Expand registry ids and module aliases; reject unknown names."""
    aliases = module_aliases()
    resolved: List[str] = []
    for name in names:
        if name in REGISTRY:
            targets = [name]
        elif name in aliases:
            targets = aliases[name]
        else:
            known = sorted(set(REGISTRY) | set(aliases))
            raise ValueError(f"unknown experiment {name!r}; known: {known}")
        for experiment_id in targets:
            if experiment_id not in resolved:
                resolved.append(experiment_id)
    return resolved


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Run experiments with causal tracing and render the "
        "latency decomposition per notification mechanism.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment ids or module aliases (see 'list')",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grids (slow) instead of the fast defaults",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="fraction of traces kept, decided deterministically per "
        "request key (default 1.0 = everything)",
    )
    parser.add_argument(
        "--max-spans",
        type=int,
        default=None,
        help="span retention cap per experiment (default %s)"
        % "250,000",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="write <DIR>/<experiment>.{trace.json,collapsed,spans.jsonl}",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every span's cycle breakdown sums "
        "bit-exactly to its duration (the CI gate)",
    )
    args = parser.parse_args(argv)

    targets = args.experiments
    if targets == ["list"]:
        print("available experiments (id or module alias):")
        for experiment_id, spec in REGISTRY.items():
            print(f"  {experiment_id:16s} {spec.summary}")
        print("aliases:")
        for alias, ids in sorted(module_aliases().items()):
            if len(ids) > 1 or alias not in REGISTRY:
                print(f"  {alias:24s} -> {', '.join(ids)}")
        return 0
    if targets == ["all"]:
        targets = list(REGISTRY)
    try:
        resolved = resolve_experiments(targets)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.out:
        os.makedirs(args.out, exist_ok=True)

    # Imported here so `repro-trace list` stays instant.
    from repro.experiments.registry import run_experiment

    failures = 0
    for experiment_id in resolved:
        kwargs = {} if args.max_spans is None else {"max_spans": args.max_spans}
        tracer = Tracer(seed=args.seed, sample_rate=args.sample_rate, **kwargs)
        started = time.time()
        with active_tracer(tracer):
            result = run_experiment(experiment_id, fast=not args.full, seed=args.seed)
        tracer.finalize()
        elapsed = time.time() - started

        print(result.format_table())
        print()
        rows = decomposition_rows(tracer)
        print(f"latency decomposition — {experiment_id} "
              f"({len(tracer.spans)} spans, {elapsed:.1f} s)")
        print(format_decomposition(rows))
        if tracer.dropped_traces:
            print(f"(span cap hit: {tracer.dropped_traces} spans dropped)")

        problems = sum_problems(tracer)
        if problems:
            failures += 1
            print(f"BREAKDOWN SUM MISMATCH ({len(problems)} spans):",
                  file=sys.stderr)
            for line in problems[:10]:
                print(f"  {line}", file=sys.stderr)
        elif args.check:
            print(f"breakdown sums: all {len(rows) and sum(r['requests'] for r in rows)} "
                  "request breakdowns bit-exact")

        if args.out:
            paths = write_trace_exports(tracer, args.out, experiment_id)
            print(f"[trace] {args.out}: "
                  + ", ".join(os.path.basename(p) for p in paths.values()))
        print()
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
