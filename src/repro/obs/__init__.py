"""repro.obs — simulation-wide observability.

A first-class instrumentation layer decoupled from the models (the
pattern Akita and gem5's stats plumbing converge on): a
:class:`MetricsRegistry` of counters, gauges, sim-time histograms, and
bounded timeseries probes; standard probes for each layer
(:mod:`repro.obs.probes`); JSONL / CSV / Prometheus exporters with
round-trip parsers (:mod:`repro.obs.export`); and the
:class:`RunManifest` provenance record every experiment result carries
(:mod:`repro.obs.manifest`). Alongside the aggregate metrics sits the
causal tracing layer (:mod:`repro.obs.trace`): per-request span trees
with bit-exact simulated-cycle attribution, exporters
(:mod:`repro.obs.trace_export`), and the latency-decomposition report
(:mod:`repro.obs.trace_report`) behind the ``repro-trace`` CLI.

Quick start::

    from repro import MetricsRegistry
    from repro.obs import active_registry

    registry = MetricsRegistry()
    with active_registry(registry):
        metrics = run_hyperplane(config, load=0.5)   # self-instruments
    registry.as_dict()["sdp.queue_depth"]            # the timeline

Disabled observability is free: with no active registry (the default),
no hook, probe, or sampler is installed anywhere.
"""

from repro.obs.export import (
    parse_csv,
    parse_jsonl,
    parse_prometheus,
    to_csv,
    to_jsonl,
    to_prometheus,
    write_exports,
)
from repro.obs.live import (
    TELEMETRY_SCHEMA_VERSION,
    JsonlTelemetrySink,
    TelemetryBus,
    TelemetryError,
    TelemetrySampler,
    parse_telemetry_jsonl,
    validate_frame,
    write_prometheus_textfile,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_digest,
    manifest_problems,
    validate_manifest,
)
from repro.obs.probes import (
    instrument_hierarchy,
    instrument_rack,
    instrument_simulator,
    instrument_system,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
    snapshot_delta,
    validate_metric_name,
)
from repro.obs.runtime import active_registry, get_active_registry, set_active_registry
from repro.obs.trace import (
    CATEGORIES,
    NULL_TRACER,
    Span,
    Tracer,
    active_tracer,
    get_active_tracer,
    set_active_tracer,
)
from repro.obs.trace_export import write_trace_exports

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTelemetrySink",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_TRACER",
    "RunManifest",
    "Span",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryBus",
    "TelemetryError",
    "TelemetrySampler",
    "Timeseries",
    "Tracer",
    "active_registry",
    "active_tracer",
    "config_digest",
    "get_active_registry",
    "get_active_tracer",
    "instrument_hierarchy",
    "instrument_rack",
    "instrument_simulator",
    "instrument_system",
    "manifest_problems",
    "parse_csv",
    "parse_jsonl",
    "parse_prometheus",
    "parse_telemetry_jsonl",
    "set_active_registry",
    "set_active_tracer",
    "snapshot_delta",
    "to_csv",
    "to_jsonl",
    "to_prometheus",
    "validate_frame",
    "validate_manifest",
    "validate_metric_name",
    "write_exports",
    "write_prometheus_textfile",
    "write_trace_exports",
]
