"""Exporters (and their inverse parsers) for collected metrics.

Three formats over the same canonical records
(:meth:`~repro.obs.registry.MetricsRegistry.collect`):

- **JSONL** — one record per line, lossless, the archival format;
- **CSV** — one *scalar* per row (``name,type,key,time,value``),
  lossless, for spreadsheets and pandas;
- **Prometheus text format** — for scraping dashboards. Counters,
  gauges, and histograms are lossless; a timeseries probe is summarised
  as ``<name>_last`` / ``<name>_samples`` gauges (Prometheus has no
  native notion of an embedded timeline — the full series lives in the
  JSONL/CSV exports).

Metric names are dotted (``sdp.queue_depth``); the Prometheus exporter
maps ``.`` to ``:`` (legal in Prometheus names, forbidden in ours), so
the mapping is reversible and ``parse_prometheus`` can round-trip.

Every exporter takes either a registry or an already-collected record
list, so archived JSONL can be re-exported without re-running anything.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Dict, Iterable, List, Union

from repro.obs.registry import MetricsRegistry

Records = List[Dict[str, Any]]
Source = Union[MetricsRegistry, Records]


def _records(source: Source) -> Records:
    if isinstance(source, MetricsRegistry):
        return source.collect()
    return list(source)


# -- JSONL ------------------------------------------------------------------


def to_jsonl(source: Source) -> str:
    """One canonical record per line."""
    return "\n".join(json.dumps(record, sort_keys=True) for record in _records(source))


def parse_jsonl(text: str) -> Records:
    """Inverse of :func:`to_jsonl`."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- CSV --------------------------------------------------------------------

_CSV_HEADER = ("name", "type", "key", "time", "value")


def to_csv(source: Source) -> str:
    """Flatten records to ``name,type,key,time,value`` rows.

    Scalars use key ``value``; histograms emit ``sum``, ``count``, and
    one cumulative ``le:<bound>`` row per bucket; timeseries emit one
    ``sample`` row per point with the sim time in the ``time`` column
    plus a ``stride`` row. Floats are written with ``repr`` so parsing
    back is exact.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_HEADER)
    for record in _records(source):
        name, kind = record["name"], record["type"]
        if kind in ("counter", "gauge"):
            writer.writerow([name, kind, "value", "", repr(float(record["value"]))])
        elif kind == "histogram":
            writer.writerow([name, kind, "sum", "", repr(float(record["sum"]))])
            writer.writerow([name, kind, "count", "", repr(float(record["count"]))])
            for bound, cumulative in record["buckets"]:
                writer.writerow(
                    [name, kind, f"le:{bound!r}", "", repr(float(cumulative))]
                )
        elif kind == "timeseries":
            writer.writerow([name, kind, "stride", "", repr(float(record["stride"]))])
            for time, value in record["samples"]:
                writer.writerow([name, kind, "sample", repr(float(time)), repr(float(value))])
        else:
            raise ValueError(f"cannot export record type {kind!r}")
    return buffer.getvalue()


def parse_csv(text: str) -> Records:
    """Inverse of :func:`to_csv`: reconstruct canonical records."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header != list(_CSV_HEADER):
        raise ValueError(f"unexpected CSV header {header!r}")
    records: Dict[str, Dict[str, Any]] = {}
    for name, kind, key, time, value in reader:
        if kind in ("counter", "gauge"):
            records[name] = {"name": name, "type": kind, "value": float(value)}
            continue
        if kind == "histogram":
            record = records.setdefault(
                name, {"name": name, "type": kind, "buckets": [], "sum": 0.0, "count": 0}
            )
            if key == "sum":
                record["sum"] = float(value)
            elif key == "count":
                record["count"] = int(float(value))
            elif key.startswith("le:"):
                record["buckets"].append([float(key[3:]), int(float(value))])
            else:
                raise ValueError(f"unexpected histogram row key {key!r}")
            continue
        if kind == "timeseries":
            record = records.setdefault(
                name, {"name": name, "type": kind, "stride": 1, "samples": []}
            )
            if key == "stride":
                record["stride"] = int(float(value))
            elif key == "sample":
                record["samples"].append([float(time), float(value)])
            else:
                raise ValueError(f"unexpected timeseries row key {key!r}")
            continue
        raise ValueError(f"cannot parse record type {kind!r}")
    return list(records.values())


# -- Prometheus text format -------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", ":")


def _repro_name(prom_name: str) -> str:
    return prom_name.replace(":", ".")


def _fmt(value: float) -> str:
    return repr(float(value))


def to_prometheus(source: Source) -> str:
    """Prometheus exposition text (``# TYPE`` lines included)."""
    lines: List[str] = []
    for record in _records(source):
        name, kind = _prom_name(record["name"]), record["type"]
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {_fmt(record['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in record["buckets"]:
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {record["count"]}')
            lines.append(f"{name}_sum {_fmt(record['sum'])}")
            lines.append(f"{name}_count {record['count']}")
        elif kind == "timeseries":
            samples = record["samples"]
            lines.append(f"# TYPE {name}_last gauge")
            lines.append(f"{name}_last {_fmt(samples[-1][1] if samples else 0.0)}")
            lines.append(f"# TYPE {name}_samples gauge")
            lines.append(f"{name}_samples {len(samples)}")
        else:
            raise ValueError(f"cannot export record type {kind!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Records:
    """Parse :func:`to_prometheus` output back into canonical records.

    Counters, gauges, and histograms round-trip exactly. Timeseries
    summaries come back as the two gauges they were exported as (the
    full series is only in JSONL/CSV).
    """
    records: Dict[str, Dict[str, Any]] = {}
    declared: Dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
            continue
        metric, value_text = line.rsplit(" ", 1)
        if "{" in metric:
            base, label = metric.split("{", 1)
            if not base.endswith("_bucket"):
                raise ValueError(f"unexpected labelled sample {metric!r}")
            name = _repro_name(base[: -len("_bucket")])
            record = records.setdefault(
                name, {"name": name, "type": "histogram", "buckets": [], "sum": 0.0, "count": 0}
            )
            bound_text = label.split('"')[1]
            if bound_text != "+Inf":
                record["buckets"].append([float(bound_text), int(float(value_text))])
            continue
        if metric.endswith("_sum") and declared.get(metric[: -len("_sum")]) == "histogram":
            name = _repro_name(metric[: -len("_sum")])
            records[name]["sum"] = float(value_text)
            continue
        if metric.endswith("_count") and declared.get(metric[: -len("_count")]) == "histogram":
            name = _repro_name(metric[: -len("_count")])
            records[name]["count"] = int(float(value_text))
            continue
        kind = declared.get(metric)
        if kind not in ("counter", "gauge"):
            raise ValueError(f"sample {metric!r} lacks a # TYPE declaration")
        name = _repro_name(metric)
        records[name] = {"name": name, "type": kind, "value": float(value_text)}
    return list(records.values())


# -- file convenience -------------------------------------------------------

EXPORTERS = {
    "jsonl": to_jsonl,
    "csv": to_csv,
    "prom": to_prometheus,
}


def write_exports(source: Source, directory: str, stem: str) -> Dict[str, str]:
    """Write ``<stem>.metrics.{jsonl,csv,prom}`` under ``directory``.

    Returns ``{format: path}``. Records are collected once so the three
    files describe the same instant.
    """
    records = _records(source)
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for suffix, exporter in EXPORTERS.items():
        path = os.path.join(directory, f"{stem}.metrics.{suffix}")
        with open(path, "w") as handle:
            handle.write(exporter(records))
        paths[suffix] = path
    return paths
