"""Run provenance: who produced a result, from what, and at what cost.

Every :class:`~repro.experiments.base.ExperimentResult` produced through
:func:`repro.experiments.registry.run_experiment` carries a
:class:`RunManifest`: the experiment id, the full configuration and its
content hash, the root seed, the repo version, wall time, and (when
metrics were enabled) the total simulation event count. Manifests are
what make an archived ``BENCH_*.json`` row reproducible — the config
hash pins *exactly* which knobs produced the numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

MANIFEST_SCHEMA_VERSION = 1

# Required manifest fields and their accepted types, for validation.
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "schema": (int,),
    "experiment_id": (str,),
    "config": (dict,),
    "config_hash": (str,),
    "root_seed": (int,),
    "repro_version": (str,),
    "started_at": (int, float),
    "wall_seconds": (int, float),
    "sim_events": (int,),
    "metrics_enabled": (bool,),
}

# Optional fields: absent in manifests written by older builds.
# ``backend`` names the execution backend ("event" / "vec" /
# "surrogate" / "dist"); ``vec`` is the vec-backend provenance record
# (numpy version, oracle spot-check summary) from
# :func:`repro.vec.backend.vec_provenance`; ``dist`` is the dist-backend
# fleet record (worker count, transport, per-node manifests, worker
# faults) merged by :func:`repro.dist.run_cluster_dist` callers.
_OPTIONAL_FIELDS: Dict[str, tuple] = {
    "env_overrides": (dict,),
    "backend": (str,),
    "vec": (dict,),
    "dist": (dict,),
}

ENV_OVERRIDE_PREFIX = "REPRO_"


def env_overrides(environ: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """The ``REPRO_*`` environment overrides in effect, sorted by name.

    These knobs (``REPRO_PROCESSES``, ``REPRO_CURVE_CACHE``, ...) change
    how a run executes without appearing in its config, so a manifest
    that omits them under-specifies the run.
    """
    source = os.environ if environ is None else environ
    return {
        key: str(source[key])
        for key in sorted(source)
        if key.startswith(ENV_OVERRIDE_PREFIX)
    }


def config_digest(experiment_id: str, config: Dict[str, Any]) -> str:
    """A stable sha256 over the experiment id + canonicalised config."""
    canonical = json.dumps(
        {"experiment_id": experiment_id, "config": config},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _repro_version() -> str:
    # Imported lazily: repro/__init__ imports this package at load time.
    try:
        import repro

        return repro.__version__
    except Exception:  # pragma: no cover - degenerate import orders
        return "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one experiment run."""

    experiment_id: str
    config: Dict[str, Any]
    config_hash: str
    root_seed: int
    repro_version: str
    started_at: float
    wall_seconds: float
    sim_events: int = 0
    metrics_enabled: bool = False
    env_overrides: Dict[str, str] = field(default_factory=dict)
    backend: Optional[str] = None
    vec: Optional[Dict[str, Any]] = None
    dist: Optional[Dict[str, Any]] = None
    schema: int = MANIFEST_SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        experiment_id: str,
        config: Dict[str, Any],
        root_seed: int,
        wall_seconds: float,
        started_at: Optional[float] = None,
        sim_events: int = 0,
        metrics_enabled: bool = False,
        environ: Optional[Dict[str, str]] = None,
        backend: Optional[str] = None,
        vec: Optional[Dict[str, Any]] = None,
        dist: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Build a manifest, deriving hash, version, timestamp, and the
        ``REPRO_*`` environment overrides in effect."""
        if started_at is None:
            started_at = now_wall()
        return cls(
            experiment_id=experiment_id,
            config=dict(config),
            config_hash=config_digest(experiment_id, config),
            root_seed=root_seed,
            repro_version=_repro_version(),
            started_at=started_at,
            wall_seconds=wall_seconds,
            sim_events=sim_events,
            metrics_enabled=metrics_enabled,
            env_overrides=env_overrides(environ),
            backend=backend,
            vec=vec,
            dist=dist,
        )

    def to_dict(self) -> Dict[str, Any]:
        # Optional provenance that was not recorded is omitted rather
        # than serialised as null, so older readers see the old shape.
        data = asdict(self)
        for key in ("backend", "vec", "dist"):
            if data.get(key) is None:
                del data[key]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        problems = manifest_problems(data)
        if problems:
            raise ValueError("invalid manifest: " + "; ".join(problems))
        known = set(_REQUIRED_FIELDS) | set(_OPTIONAL_FIELDS)
        return cls(**{key: value for key, value in data.items() if key in known})


def now_wall() -> float:
    """Wall-clock time for manifest stamps (isolated for testability)."""
    return time.time()


def manifest_problems(data: Any) -> List[str]:
    """Schema violations in a parsed manifest dict (empty = valid)."""
    if not isinstance(data, dict):
        return [f"manifest must be a JSON object, got {type(data).__name__}"]
    problems = []
    for key, types in _REQUIRED_FIELDS.items():
        if key not in data:
            problems.append(f"missing field {key!r}")
            continue
        value = data[key]
        # bool is an int subclass; only accept it where bool is expected.
        well_typed = isinstance(value, types) and (
            not isinstance(value, bool) or bool in types
        )
        if not well_typed:
            problems.append(
                f"field {key!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    for key, types in _OPTIONAL_FIELDS.items():
        if key in data and not isinstance(data[key], types):
            problems.append(
                f"field {key!r} has type {type(data[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems:
        if data["schema"] > MANIFEST_SCHEMA_VERSION or data["schema"] < 1:
            problems.append(
                f"unsupported schema version {data['schema']} "
                f"(this build reads 1..{MANIFEST_SCHEMA_VERSION})"
            )
        expected = config_digest(data["experiment_id"], data["config"])
        if data["config_hash"] != expected:
            problems.append(
                f"config_hash mismatch: manifest says {data['config_hash'][:12]}..., "
                f"config hashes to {expected[:12]}..."
            )
    return problems


def validate_manifest(data: Any) -> Dict[str, Any]:
    """Raise ``ValueError`` on an invalid manifest; return it otherwise."""
    problems = manifest_problems(data)
    if problems:
        raise ValueError("invalid manifest: " + "; ".join(problems))
    return data
