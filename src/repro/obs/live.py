"""repro.obs.live — streaming telemetry for the distributed runtime.

The offline observability layers (PR 2 metrics, PR 4 traces) only
surface after a run finishes; a multi-process fleet is a black box
until the final manifest merge. This module makes the fleet observable
*while it runs* without touching simulation state:

- **Worker side** (:class:`TelemetrySampler`): each worker owns a
  dedicated :class:`~repro.obs.registry.MetricsRegistry` of live
  instruments (completion/dispatch/loss counters, a fixed-bucket
  latency histogram, pull gauges for queue depth and event count) that
  the dist hooks record into. On a configurable simulated-time cadence
  the sampler snapshots the registry and emits a compact **telemetry
  frame** — the :func:`~repro.obs.registry.snapshot_delta` since the
  previous frame plus any buffered event records (faults, failover).
  Frames piggyback on existing ``step_ok``/heartbeat replies: no new
  sockets, no new simulation events, no random-stream reads — runs are
  bit-exact with telemetry on or off.
- **Coordinator side** (:class:`TelemetryBus`): frames fold back into
  per-worker registries via the ordinary snapshot-merge machinery (so
  the fleet view is worker-count independent for counters and
  histograms), plus a merged fleet summary where gauges *sum* across
  workers (fleet queue depth is the total, not the last worker seen).
  Consumers subscribe for per-frame callbacks: the ``repro-dash``
  terminal dashboard (:mod:`repro.obs.dash`), the
  :class:`JsonlTelemetrySink`, and :func:`write_prometheus_textfile`.
- **Flight recorder**: every per-worker view keeps a bounded ring of
  recent raw frames. On a worker crash the coordinator attaches the
  dead worker's window to the fault record and dumps the whole ring
  set to a post-mortem JSONL file referenced from ``RunManifest.dist``
  (see docs/live-telemetry.md for the workflow).

Disabled telemetry is free twice over: with no bus attached the
capability is never negotiated and workers build nothing; with a bus
attached but ``interval_s=0`` workers build a *null* sampler whose
instruments are the shared no-op singletons — the bench scenario
``telemetry_overhead`` and its CI gate pin both paths.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Union

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    snapshot_delta,
)

TELEMETRY_SCHEMA_VERSION = 1

# Sampling cadence in *simulated* seconds. 1 ms against the default
# 2 ms coordinator check chunk means at most one frame per window —
# cheap, but fresh every exchange.
DEFAULT_TELEMETRY_INTERVAL_S = 1e-3

# Flight-recorder ring depth (frames retained per worker) and dashboard
# history depth (derived points retained per worker).
DEFAULT_FLIGHT_RING = 64
DEFAULT_HISTORY = 240
DEFAULT_EVENT_LOG = 256

_METRIC_KINDS = ("counter", "gauge", "histogram", "timeseries")


class TelemetryError(ValueError):
    """A telemetry frame failed validation."""


def validate_frame(frame: Any) -> Dict[str, Any]:
    """Return ``frame`` if it is a well-formed telemetry frame, else raise.

    This is the schema contract the CI telemetry leg checks on emitted
    JSONL: schema version, non-negative ``worker``/``seq`` ints, a
    numeric simulated timestamp, metric deltas that are snapshot dicts
    of a known kind, and event records that are dicts with a ``kind``.
    """
    if not isinstance(frame, dict):
        raise TelemetryError(f"telemetry frame must be a dict, got {type(frame).__name__}")
    if frame.get("v") != TELEMETRY_SCHEMA_VERSION:
        raise TelemetryError(
            f"telemetry frame schema version {frame.get('v')!r} != "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    for key in ("worker", "seq"):
        value = frame.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise TelemetryError(f"telemetry frame {key!r} must be a non-negative int")
    t = frame.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
        raise TelemetryError("telemetry frame 't' must be a non-negative number")
    metrics = frame.get("metrics")
    if not isinstance(metrics, dict):
        raise TelemetryError("telemetry frame 'metrics' must be a dict of snapshots")
    for name, snap in metrics.items():
        if not isinstance(snap, dict) or snap.get("kind") not in _METRIC_KINDS:
            raise TelemetryError(
                f"telemetry frame metric {name!r} is not a snapshot of a known kind"
            )
    events = frame.get("events")
    if not isinstance(events, list):
        raise TelemetryError("telemetry frame 'events' must be a list")
    for event in events:
        if not isinstance(event, dict) or "kind" not in event:
            raise TelemetryError("telemetry frame events must be dicts with a 'kind'")
    return frame


class TelemetrySampler:
    """Worker-side frame producer over a dedicated live registry.

    The live registry is separate from the run's merged metrics
    registry on purpose: live instruments stream incrementally and must
    never contaminate the final merged results. ``interval_s <= 0``
    builds the null variant — every instrument is the shared no-op
    singleton and :meth:`maybe_sample` returns immediately, so a
    negotiated-but-disabled worker prices like one with no telemetry at
    all (the ``telemetry_overhead`` bench's *disabled* leg).
    """

    def __init__(
        self,
        worker_id: int,
        interval_s: float = DEFAULT_TELEMETRY_INTERVAL_S,
        queue_depth_fn: Optional[Callable[[], float]] = None,
        sim_events_fn: Optional[Callable[[], float]] = None,
    ):
        self.worker_id = int(worker_id)
        self.interval_s = float(interval_s)
        self.enabled = self.interval_s > 0.0
        self.registry = MetricsRegistry(enabled=self.enabled)
        registry = self.registry
        self.completions = registry.counter(
            "live.completions", help="requests completed on this worker"
        )
        self.dispatches = registry.counter(
            "live.dispatches", help="requests dispatched to this worker's servers"
        )
        self.losses = registry.counter(
            "live.losses", help="requests lost to modelled server crashes"
        )
        self.rejects = registry.counter(
            "live.rejects", help="requests rejected at full queues"
        )
        self.redispatches = registry.counter(
            "live.redispatches", help="requests re-dispatched after a modelled crash"
        )
        self.latency = registry.histogram(
            "live.latency_s",
            help="end-to-end request latency (seconds)",
            buckets=DEFAULT_BUCKETS,
        )
        if queue_depth_fn is not None:
            registry.gauge(
                "live.queue_depth",
                help="tasks queued across this worker's servers",
                fn=queue_depth_fn,
            )
        if sim_events_fn is not None:
            registry.gauge(
                "live.sim_events",
                help="simulation events dispatched on this worker",
                fn=sim_events_fn,
            )
        # First frame is a keyframe: delta against {} carries the full
        # instrument set, so the coordinator's view is self-describing
        # from frame zero.
        self._prev: Dict[str, Dict[str, Any]] = {}
        self._events: List[Dict[str, Any]] = []
        self._pending: List[Dict[str, Any]] = []
        self._seq = 0
        self._next_sample_t = self.interval_s if self.enabled else math.inf

    def record_event(self, kind: str, **fields: Any) -> None:
        """Buffer an event record (fault, failover) for the next frame."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {"kind": str(kind)}
        event.update(fields)
        self._events.append(event)

    def maybe_sample(self, now: float) -> None:
        """Emit a frame if simulated time crossed the cadence boundary."""
        if now < self._next_sample_t:
            return
        self.sample(now)

    def sample(self, now: float) -> Optional[Dict[str, Any]]:
        """Force one frame at simulated time ``now``."""
        if not self.enabled:
            return None
        current = self.registry.snapshot()
        metrics = snapshot_delta(current, self._prev)
        self._prev = current
        events, self._events = self._events, []
        frame = {
            "v": TELEMETRY_SCHEMA_VERSION,
            "worker": self.worker_id,
            "seq": self._seq,
            "t": float(now),
            "metrics": metrics,
            "events": events,
        }
        self._seq += 1
        self._pending.append(frame)
        # Next boundary strictly after now: idle stretches skip ahead
        # instead of emitting a burst of empty catch-up frames.
        self._next_sample_t = (math.floor(now / self.interval_s) + 1) * self.interval_s
        return frame

    def drain(self) -> List[Dict[str, Any]]:
        """Hand off (and clear) the pending frames."""
        frames, self._pending = self._pending, []
        return frames

    def flush(self, now: float) -> List[Dict[str, Any]]:
        """Emit a final frame regardless of cadence, then drain."""
        self.sample(now)
        return self.drain()


class WorkerView:
    """Coordinator-side state for one worker's telemetry stream."""

    def __init__(
        self,
        worker_id: int,
        ring_frames: int = DEFAULT_FLIGHT_RING,
        history: int = DEFAULT_HISTORY,
    ):
        self.worker_id = worker_id
        self.registry = MetricsRegistry(enabled=True)
        # The flight-recorder ring: raw frames, bounded, newest last.
        self.frames: "deque[Dict[str, Any]]" = deque(maxlen=ring_frames)
        # Derived per-frame points for sparklines, bounded separately.
        self.history: "deque[Dict[str, float]]" = deque(maxlen=history)
        self.last_t = 0.0
        self.last_seq = -1
        self.frames_seen = 0

    def counter_value(self, name: str) -> float:
        instrument = self.registry.get(name)
        return float(instrument.value) if instrument is not None else 0.0

    def gauge_value(self, name: str) -> float:
        instrument = self.registry.get(name)
        return float(instrument.read()) if instrument is not None else 0.0

    def p99_s(self) -> float:
        histogram = self.registry.get("live.latency_s")
        if histogram is None or histogram.count == 0:
            return 0.0
        return float(histogram.quantile(0.99))


class TelemetryBus:
    """Coordinator-side fold of the fleet's telemetry streams.

    :meth:`ingest` validates each frame, merges its metric deltas into
    the worker's registry (ordinary snapshot-merge, so the per-worker
    and fleet aggregates are independent of how events were sharded
    across workers), appends the raw frame to the worker's
    flight-recorder ring, derives a history point for the dashboard,
    and fans the frame out to subscribed consumers.
    """

    def __init__(
        self,
        ring_frames: int = DEFAULT_FLIGHT_RING,
        history: int = DEFAULT_HISTORY,
        event_log: int = DEFAULT_EVENT_LOG,
    ):
        if ring_frames < 1:
            raise ValueError("ring_frames must be at least 1")
        self.ring_frames = ring_frames
        self.history = history
        self.workers: Dict[int, WorkerView] = {}
        self.events: "deque[Dict[str, Any]]" = deque(maxlen=event_log)
        self.frames_seen = 0
        # Workers that could not stream (capability missing or sampling
        # negotiated off) — surfaced in fault records and the manifest.
        self.no_telemetry_workers: set = set()
        self._consumers: List[Callable[[Dict[str, Any]], None]] = []

    def subscribe(self, consumer: Callable[[Dict[str, Any]], None]) -> None:
        """Register a per-frame callback (called after the fold)."""
        self._consumers.append(consumer)

    def worker(self, worker_id: int) -> WorkerView:
        view = self.workers.get(worker_id)
        if view is None:
            view = WorkerView(worker_id, self.ring_frames, self.history)
            self.workers[worker_id] = view
        return view

    def worker_ids(self) -> List[int]:
        return sorted(self.workers)

    def ingest(self, frame: Dict[str, Any]) -> None:
        validate_frame(frame)
        view = self.worker(int(frame["worker"]))
        prev_completions = view.counter_value("live.completions")
        prev_t = view.last_t
        view.registry.merge_snapshot(frame["metrics"])
        view.frames.append(frame)
        view.frames_seen += 1
        t = float(frame["t"])
        view.last_t = max(view.last_t, t)
        view.last_seq = int(frame["seq"])
        dt = t - prev_t
        completed = view.counter_value("live.completions") - prev_completions
        view.history.append(
            {
                "t": t,
                "completions": completed,
                "throughput": completed / dt if dt > 0 else 0.0,
                "queue_depth": view.gauge_value("live.queue_depth"),
                "p99_us": view.p99_s() * 1e6,
            }
        )
        for event in frame["events"]:
            entry = dict(event)
            entry["worker"] = view.worker_id
            entry.setdefault("t", t)
            self.events.append(entry)
        self.frames_seen += 1
        for consumer in self._consumers:
            consumer(frame)

    def ingest_all(self, frames: Optional[Iterable[Dict[str, Any]]]) -> None:
        """Fold an iterable of frames (tolerates ``None``)."""
        if not frames:
            return
        for frame in frames:
            self.ingest(frame)

    # -- fleet aggregation ---------------------------------------------------

    def fleet_registry(self) -> MetricsRegistry:
        """The merged fleet view.

        Counters, histograms, and timeseries fold via the snapshot
        machinery in worker-id order (associative — worker-count
        independent); gauges *sum* across workers, because merge's
        newest-wins semantics would report one worker's queue depth as
        the fleet's.
        """
        merged = MetricsRegistry(enabled=True)
        gauge_totals: Dict[str, float] = {}
        gauge_help: Dict[str, str] = {}
        for worker_id in self.worker_ids():
            snapshot = self.workers[worker_id].registry.snapshot()
            additive = {}
            for name, snap in snapshot.items():
                if snap["kind"] == "gauge":
                    gauge_totals[name] = gauge_totals.get(name, 0.0) + snap["value"]
                    gauge_help.setdefault(name, snap.get("help", ""))
                else:
                    additive[name] = snap
            merged.merge_snapshot(additive)
        for name in sorted(gauge_totals):
            merged.gauge(name, help=gauge_help[name]).set(gauge_totals[name])
        return merged

    def fleet_summary(self) -> Dict[str, Any]:
        """Headline fleet numbers for the dashboard header."""
        registry = self.fleet_registry()

        def value(name: str) -> float:
            instrument = registry.get(name)
            return float(instrument.value) if instrument is not None else 0.0

        histogram = registry.get("live.latency_s")
        p99_us = 0.0
        if histogram is not None and histogram.count:
            p99_us = histogram.quantile(0.99) * 1e6
        return {
            "workers": len(self.workers),
            "frames": self.frames_seen,
            "t": max((view.last_t for view in self.workers.values()), default=0.0),
            "completions": value("live.completions"),
            "dispatches": value("live.dispatches"),
            "losses": value("live.losses"),
            "rejects": value("live.rejects"),
            "redispatches": value("live.redispatches"),
            "queue_depth": value("live.queue_depth"),
            "p99_us": p99_us,
            "events": len(self.events),
        }

    # -- flight recorder -----------------------------------------------------

    def flight_window(self, worker_id: int) -> List[Dict[str, Any]]:
        """The retained frame ring for one worker (oldest first)."""
        view = self.workers.get(int(worker_id))
        if view is None:
            return []
        return list(view.frames)

    def dump_flight_recorder(self, path: str, reason: str = "post-mortem") -> str:
        """Write the retained rings as a post-mortem JSONL file.

        Line 1 is a header record (``record: flight-recorder`` with the
        reason, worker ids, frame counts, and the fault-event log);
        every following line is one retained frame, workers in id
        order, oldest frame first.
        """
        with open(path, "w") as handle:
            header = {
                "record": "flight-recorder",
                "v": TELEMETRY_SCHEMA_VERSION,
                "reason": reason,
                "workers": self.worker_ids(),
                "frames": {
                    str(worker_id): len(self.workers[worker_id].frames)
                    for worker_id in self.worker_ids()
                },
                "no_telemetry_workers": sorted(self.no_telemetry_workers),
                "events": list(self.events),
            }
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            for worker_id in self.worker_ids():
                for frame in self.workers[worker_id].frames:
                    handle.write(json.dumps(frame, separators=(",", ":")) + "\n")
        return path


# -- sinks -------------------------------------------------------------------


class JsonlTelemetrySink:
    """A bus consumer writing each frame as one JSON line, in ingest order.

    Accepts a path (opened and owned) or any writable text stream (only
    flushed). Subscribe it: ``bus.subscribe(sink)``.
    """

    def __init__(self, destination: Union[str, IO[str]]):
        if hasattr(destination, "write"):
            self._handle: IO[str] = destination  # type: ignore[assignment]
            self._owns = False
        else:
            self._handle = open(destination, "w")
            self._owns = True
        self.frames = 0

    def __call__(self, frame: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(frame, separators=(",", ":")) + "\n")
        self.frames += 1

    def close(self) -> None:
        if self._owns:
            self._handle.close()
        else:
            self._handle.flush()


def parse_telemetry_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse and validate a JSONL telemetry stream (inverse of the sink).

    Flight-recorder header lines (``record: flight-recorder``) are
    skipped, so the same parser reads live-sink output and post-mortem
    dumps.
    """
    frames = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if isinstance(record, dict) and record.get("record") == "flight-recorder":
            continue
        frames.append(validate_frame(record))
    return frames


def write_prometheus_textfile(bus: TelemetryBus, path: str) -> str:
    """One-shot Prometheus textfile export of the merged fleet view.

    Reuses the PR 2 exporter, so the output parses with
    :func:`repro.obs.export.parse_prometheus` and drops straight into a
    node-exporter textfile collector directory.
    """
    from repro.obs.export import to_prometheus

    text = to_prometheus(bus.fleet_registry())
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path
