"""The active-registry context: how instrumentation reaches the models.

Threading a registry argument through every constructor in the repo
would churn dozens of signatures, so observability uses an ambient
context instead: :func:`active_registry` installs a
:class:`~repro.obs.registry.MetricsRegistry` for the duration of a
``with`` block, and instrumentable components
(:class:`~repro.sdp.system.DataPlaneSystem`,
:class:`~repro.cluster.rack.Rack`, the cost-model derivation) check
:func:`get_active_registry` at build time and self-instrument only when
an *enabled* registry is active.

When nothing is active — the default — the check is one module-level
read returning ``None`` and no hook, probe, or sampler is installed:
uninstrumented simulations pay nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import MetricsRegistry

_ACTIVE: Optional[MetricsRegistry] = None


def get_active_registry() -> Optional[MetricsRegistry]:
    """The enabled registry components should record into, or ``None``."""
    if _ACTIVE is not None and _ACTIVE.enabled:
        return _ACTIVE
    return None


def set_active_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the ambient registry; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def active_registry(registry: Optional[MetricsRegistry]) -> Iterator[Optional[MetricsRegistry]]:
    """Scope ``registry`` as the ambient registry for a ``with`` block."""
    previous = set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)
