"""Trace probes: turn completed work items into causal span trees.

Each ``trace_*`` function wires one model layer into a
:class:`~repro.obs.trace.Tracer`:

=============================  ===========================================
probe                          layer
=============================  ===========================================
:func:`trace_system`           a :class:`~repro.sdp.system.DataPlaneSystem`
:func:`trace_structural_machine`  a :class:`~repro.structural.machine.StructuralMachine`
:func:`trace_rack`             a :class:`~repro.cluster.rack.Rack`
=============================  ===========================================

Layers self-trace when built inside an
:func:`repro.obs.trace.active_tracer` scope, exactly like the metrics
probes in :mod:`repro.obs.probes` self-instrument under
``active_registry``.

The cardinal rule (the bit-identical acceptance criterion): **probes
observe, they never schedule.** Everything here runs from hooks that
already exist — doorbell write hooks, dequeue hooks, and a wrapper
around ``complete`` — and all span construction happens at completion
time from fields the models filled in anyway (``arrival_time``,
``dequeue_time``, ``completion_time``, ``service_time``). No event is
added, removed, or reordered, so a traced run's simulated results are
bit-identical to an untraced run, including across spin fast-forward
batching and both scheduler backends.

Per-request cycle attribution (all on the root ``request`` span):

``notify_wait``
    Doorbell ring of an idle queue → that item's dequeue (the
    ``ready_since`` bookkeeping of :class:`repro.obs.probes._SystemProbeState`),
    clamped into the item's wait. This is the component the
    notification mechanism (spin / MWAIT / interrupt / HyperPlane)
    determines.
``queueing``
    The rest of the pre-dequeue wait: the item sat behind other work.
``coherence``
    Fast model: the hierarchy-derived ``task_data_stall`` cycles.
    Structural model: the *measured* dequeue memory cycles (doorbell
    write + ring-head write + slot read through the coherence model).
``service``
    The workload model's drawn service time, in cycles.
``overhead``
    The residual, closed by
    :meth:`~repro.obs.trace.Span.attribute_cycles` so the fixed-order
    category sum equals the span's cycle duration bit-exactly.

The mechanism label (``metrics.label``) only exists after a runner
finishes, so probes stamp the ``mechanism`` attribute from a tracer
finalizer — call :meth:`Tracer.finalize` after the run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.obs.trace import Span, Tracer


def _clamped_wake(wake: float, wait: float) -> float:
    """Notification wait clamped into the item's total pre-dequeue wait."""
    if wait <= 0.0:
        return 0.0
    return min(max(wake, 0.0), wait)


class _SystemTraceState:
    """Hook-side state for one traced data-plane system."""

    __slots__ = (
        "tracer",
        "system",
        "ready_since",
        "pending_wakes",
        "request_spans",
        "parent_resolver",
        "default_label",
        "_original_complete",
    )

    def __init__(self, tracer: Tracer, system):
        self.tracer = tracer
        self.system = system
        self.default_label = "unlabeled"
        # qid -> time its doorbell first rang while it was idle.
        self.ready_since: Dict[int, float] = {}
        # qid -> notification waits of dequeues not yet completed, in
        # dequeue order (bounded by items in flight).
        self.pending_wakes: Dict[int, Deque[float]] = {}
        self.request_spans: list = []
        # Installed by the rack probe: item -> parent span (or None to
        # skip — the enclosing rpc was not sampled).
        self.parent_resolver: Optional[Callable[[Any], Optional[Span]]] = None
        self._original_complete = system.complete
        system.complete = self.on_complete

    # -- hooks ---------------------------------------------------------------

    def on_doorbell_write(self, doorbell) -> None:
        if doorbell.qid not in self.ready_since:
            self.ready_since[doorbell.qid] = self.system.sim.now

    def on_dequeue(self, qid: int) -> None:
        ready_at = self.ready_since.pop(qid, None)
        now = self.system.sim.now
        wake = now - ready_at if ready_at is not None else 0.0
        self.pending_wakes.setdefault(qid, deque()).append(wake)

    def coherence_cycles(self, item) -> float:
        """Fast model: the constant hierarchy-derived per-task stall."""
        return float(self.system.task_data_stall)

    def on_complete(self, item) -> None:
        self._original_complete(item)
        # Keep the per-queue wake pairing exact whether or not this
        # item is sampled.
        wakes = self.pending_wakes.get(item.qid)
        wake = wakes.popleft() if wakes else 0.0
        tracer = self.tracer
        parent = None
        if self.parent_resolver is not None:
            parent = self.parent_resolver(item)
            if parent is None:
                return
        elif not tracer.sampled(f"item:{item.item_id}"):
            return
        self._build_spans(item, wake, parent)

    # -- span construction ---------------------------------------------------

    def _build_spans(self, item, wake: float, parent: Optional[Span]) -> None:
        tracer = self.tracer
        arrival = item.arrival_time
        completion = item.completion_time
        dequeue = item.dequeue_time if item.dequeue_time is not None else completion
        root = tracer.begin(
            "request", arrival, parent=parent, item_id=item.item_id, qid=item.qid
        )
        wait_s = dequeue - arrival
        wake_s = _clamped_wake(wake, wait_s)

        queue_span = tracer.begin("queue.wait", arrival, parent=root)
        if wake_s > 0.0:
            queue_span.add_event(dequeue - wake_s, "doorbell_ready")
        tracer.end(queue_span, dequeue)
        service_span = tracer.begin("service", dequeue, parent=root)
        tracer.end(service_span, completion)
        tracer.end(root, completion)

        clock = self.system.clock
        root.attribute_cycles(
            clock.seconds_to_cycles(completion - arrival),
            notify_wait=clock.seconds_to_cycles(wake_s),
            queueing=clock.seconds_to_cycles(max(wait_s - wake_s, 0.0)),
            coherence=self.coherence_cycles(item),
            service=clock.seconds_to_cycles(item.service_time),
        )
        # Only remember spans the tracer actually retained (cap-aware).
        if tracer.spans and tracer.spans[-1] is root:
            self.request_spans.append(root)

    # -- finalization --------------------------------------------------------

    def _mechanism_label(self) -> str:
        return self.system.metrics.label or self.default_label

    def finalize(self) -> None:
        label = self._mechanism_label()
        for span in self.request_spans:
            span.set_attribute("mechanism", label)


def trace_system(tracer: Tracer, system) -> _SystemTraceState:
    """Trace one :class:`~repro.sdp.system.DataPlaneSystem`.

    Installs a doorbell-write hook and a dequeue hook (both
    observation-only) and wraps ``system.complete``; per completed item
    a ``request`` root span with ``queue.wait`` / ``service`` children
    and a closed cycle breakdown is recorded, subject to the tracer's
    head sampling by item id.
    """
    state = _SystemTraceState(tracer, system)
    system.doorbell_write_hooks.append(state.on_doorbell_write)
    system.on_dequeue_hooks.append(state.on_dequeue)
    tracer.add_finalizer(state.finalize)
    return state


class _StructuralTraceState(_SystemTraceState):
    """Trace state for the execution-driven structural machine.

    Differences from the fast model: there is no dequeue hook, so the
    wrapper around :meth:`StructuralMachine.dequeue_memory_cycles`
    (called exactly once per dequeue, at the dequeue instant) doubles
    as one; and coherence cycles are the *measured* memory latency of
    that dequeue rather than a derived constant.
    """

    __slots__ = ("pending_coherence", "_coherence_now", "_original_dequeue_cycles")

    def __init__(self, tracer: Tracer, machine):
        super().__init__(tracer, machine)
        self.pending_coherence: Dict[int, Deque[float]] = {}
        self._coherence_now = 0.0
        self._original_dequeue_cycles = machine.dequeue_memory_cycles
        machine.dequeue_memory_cycles = self.on_dequeue_memory_cycles

    def on_dequeue_memory_cycles(self, core: int, qid: int) -> int:
        cycles = self._original_dequeue_cycles(core, qid)
        self.on_dequeue(qid)
        self.pending_coherence.setdefault(qid, deque()).append(float(cycles))
        return cycles

    def coherence_cycles(self, item) -> float:
        return self._coherence_now

    def on_complete(self, item) -> None:
        self._original_complete(item)
        # Pop both per-queue stashes unconditionally (FIFO pairing must
        # stay exact whether or not this item is sampled).
        wakes = self.pending_wakes.get(item.qid)
        wake = wakes.popleft() if wakes else 0.0
        pending = self.pending_coherence.get(item.qid)
        self._coherence_now = pending.popleft() if pending else 0.0
        if self.tracer.sampled(f"item:{item.item_id}"):
            self._build_spans(item, wake, None)

    def _mechanism_label(self) -> str:
        return self.system.metrics.label or "structural"


def trace_structural_machine(tracer: Tracer, machine) -> _StructuralTraceState:
    """Trace one :class:`~repro.structural.machine.StructuralMachine`."""
    state = _StructuralTraceState(tracer, machine)
    for doorbell in machine.doorbells:
        doorbell.add_write_hook(state.on_doorbell_write)
    tracer.add_finalizer(state.finalize)
    return state


class _RackTraceState:
    """Fleet-level trace state: rpc roots, link spans, redispatches."""

    __slots__ = ("tracer", "rack", "open", "rpc_spans")

    # Entries for requests that never complete (rejections we could not
    # observe, in-flight work at the deadline) are bounded by this.
    MAX_OPEN = 100_000

    def __init__(self, tracer: Tracer, rack):
        self.tracer = tracer
        self.rack = rack
        # (flow, arrival_time) -> {"root": Span, "link": Optional[Span]}
        self.open: Dict[Tuple[int, float], Dict[str, Optional[Span]]] = {}
        self.rpc_spans: list = []

    def wrap_dispatch(self, original):
        def dispatch(flow, arrival_time, base_service=None):
            tracer = self.tracer
            key = (flow, arrival_time)
            entry = self.open.get(key)
            if entry is None:
                if len(self.open) < self.MAX_OPEN and tracer.sampled(
                    f"rpc:{flow}:{arrival_time!r}"
                ):
                    root = tracer.begin("rpc", arrival_time, flow=flow)
                    entry = {"root": root, "link": None}
                    self.open[key] = entry
            else:
                entry["root"].add_event(self.rack.sim.now, "redispatch")
            server_id = original(flow, arrival_time, base_service)
            if entry is not None:
                entry["root"].set_attribute("server", server_id)
                entry["link"] = tracer.begin(
                    "dispatch.link",
                    self.rack.sim.now,
                    parent=entry["root"],
                    server=server_id,
                )
            return server_id

        return dispatch

    def wrap_enqueue(self, server, original):
        def enqueue(flow, arrival_time, base_service):
            entry = self.open.get((flow, arrival_time))
            if entry is not None and entry["link"] is not None:
                self.tracer.end(entry["link"], self.rack.sim.now)
                entry["link"] = None
            rejected_before = self.rack.metrics.rejected
            original(flow, arrival_time, base_service)
            if (
                entry is not None
                and self.rack.metrics.rejected > rejected_before
            ):
                # Dropped at a full ring: close the rpc here — no
                # completion will ever arrive for it.
                root = self.open.pop((flow, arrival_time))["root"]
                root.set_attribute("rejected", True)
                self.tracer.end(root, self.rack.sim.now)

        return enqueue

    def wrap_complete(self, server, original):
        def complete(item):
            original(item)
            payload = item.payload
            if not (isinstance(payload, tuple) and len(payload) == 3):
                return
            entry = self.open.pop((payload[0], item.arrival_time), None)
            if entry is None:
                return
            if entry["link"] is not None:
                self.tracer.end(entry["link"], self.rack.sim.now)
            root = entry["root"]
            self.tracer.end(root, self.rack.sim.now)
            if self.tracer.spans and self.tracer.spans[-1] is root:
                self.rpc_spans.append(root)

        return complete

    def parent_for(self, item) -> Optional[Span]:
        payload = item.payload
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return None
        entry = self.open.get((payload[0], item.arrival_time))
        return entry["root"] if entry is not None else None

    def finalize(self) -> None:
        notification = self.rack.config.notification
        for span in self.rpc_spans:
            span.set_attribute("mechanism", f"cluster/{notification}")


def trace_rack(tracer: Tracer, rack) -> _RackTraceState:
    """Trace one :class:`~repro.cluster.rack.Rack`.

    The per-server systems self-traced at build time (same ambient
    tracer); this layer adds what only the fleet sees — an ``rpc`` root
    per sampled request covering dispatch → client-visible completion,
    ``dispatch.link`` child spans per wire transfer (one per
    redispatch), rejection closure — and parents each server-side
    ``request`` span under its rpc, so one trace spans balancer, link,
    queue, notification, and service.
    """
    state = _RackTraceState(tracer, rack)
    rack.dispatch = state.wrap_dispatch(rack.dispatch)
    for server in rack.servers:
        server.enqueue = state.wrap_enqueue(server, server.enqueue)
        server.system.complete = state.wrap_complete(server, server.system.complete)
        probe = getattr(server.system, "_trace_probe", None)
        if probe is not None:
            probe.parent_resolver = state.parent_for
            probe.default_label = f"{rack.config.notification}/server{server.index}"
    tracer.add_finalizer(state.finalize)
    return state


def maybe_trace_system(system) -> Optional[_SystemTraceState]:
    """Self-tracing entry point for :class:`DataPlaneSystem`."""
    from repro.obs.trace import get_active_tracer

    tracer = get_active_tracer()
    if tracer is None:
        return None
    return trace_system(tracer, system)


def maybe_trace_structural_machine(machine) -> Optional[_StructuralTraceState]:
    """Self-tracing entry point for :class:`StructuralMachine`."""
    from repro.obs.trace import get_active_tracer

    tracer = get_active_tracer()
    if tracer is None:
        return None
    return trace_structural_machine(tracer, machine)


def maybe_trace_rack(rack) -> Optional[_RackTraceState]:
    """Self-tracing entry point for :class:`Rack`."""
    from repro.obs.trace import get_active_tracer

    tracer = get_active_tracer()
    if tracer is None:
        return None
    return trace_rack(tracer, rack)
