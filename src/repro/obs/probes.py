"""Standard probes for each model layer.

Each ``instrument_*`` function wires one component into a
:class:`~repro.obs.registry.MetricsRegistry` under a stable prefix:

========  =====================================================
prefix    component
========  =====================================================
``sim``   the discrete-event engine (events, heap depth, wakes)
``sdp``   a data-plane system (occupancy, queue depth, wake latency)
``mem``   the structural memory models (hits, misses, coherence)
``cluster``  a rack (per-server and fleet rollups)
========  =====================================================

Components self-instrument when built inside an
:func:`repro.obs.runtime.active_registry` scope, so these functions are
mostly called by the models themselves; call them directly to
instrument hand-built systems.

Probe naming scheme (see ``docs/observability.md``): dotted lower-case
paths, ``<layer>.<component>.<quantity>``, with per-instance components
numbered (``sdp.core0.busy_cycles``). Pull gauges read their source at
collect time and cost nothing while the simulation runs; counters,
histograms, and timeseries record from hooks that only exist when a
registry is enabled.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry

# Exponential sim-time latency buckets: 100 ns .. ~0.1 s.
LATENCY_BUCKETS = tuple(1e-7 * (10 ** (i / 2)) for i in range(13))


def instrument_simulator(registry: MetricsRegistry, sim, prefix: str = "sim") -> None:
    """Pull gauges over an engine's native accounting (zero run cost)."""
    registry.gauge(
        f"{prefix}.events_dispatched",
        help="callbacks executed by the event loop",
        fn=lambda: sim.events_dispatched,
    )
    registry.gauge(
        f"{prefix}.heap_depth",
        help="callbacks currently pending in the heap",
        fn=lambda: sim.pending,
    )
    registry.gauge(
        f"{prefix}.process_wakes",
        help="generator-process resumptions",
        fn=lambda: sim.process_wakes,
    )
    registry.gauge(
        f"{prefix}.now_seconds", help="current simulated time", fn=lambda: sim.now
    )


def instrument_system(registry: MetricsRegistry, system, prefix: str = "sdp") -> None:
    """Instrument one :class:`~repro.sdp.system.DataPlaneSystem`.

    Installs doorbell/dequeue hooks (enqueue and dequeue counters, an
    incrementally-tracked queue-depth timeline, and a notification
    wake-latency histogram), per-core occupancy pull gauges, and engine
    gauges for the system's simulator. The queue-depth timeline is
    sampled *on change* from the hooks — no sampler process is
    scheduled, so instrumentation never perturbs event ordering or run
    termination.
    """
    instrument_simulator(registry, system.sim, prefix="sim")

    enqueues = registry.counter(
        f"{prefix}.enqueues", help="doorbell writes observed (one per enqueue)"
    )
    dequeues = registry.counter(f"{prefix}.dequeues", help="items taken by cores")
    depth_series = registry.timeseries(
        f"{prefix}.queue_depth",
        help="total queued items across all queues (periodic samples)",
    )
    wake_latency = registry.histogram(
        f"{prefix}.notification_wake_latency_seconds",
        help="doorbell write of an idle queue -> first dequeue from it",
        buckets=LATENCY_BUCKETS,
    )
    registry.gauge(
        f"{prefix}.completions",
        help="post-warm-up completions recorded",
        fn=lambda: system.metrics.latency.count,
    )
    registry.gauge(
        f"{prefix}.spurious_wakeups",
        help="QWAIT-VERIFY-filtered wake-ups",
        fn=lambda: system.metrics.spurious_wakeups,
    )

    for index, activity in enumerate(system.metrics.activities):
        core = f"{prefix}.core{index}"
        registry.gauge(
            f"{core}.busy_cycles",
            help="cycles doing task work or polling",
            fn=(lambda a: lambda: a.busy_cycles)(activity),
        )
        registry.gauge(
            f"{core}.halted_cycles",
            help="cycles halted in QWAIT",
            fn=(lambda a: lambda: a.halted_cycles)(activity),
        )
        registry.gauge(
            f"{core}.occupancy",
            help="busy fraction of total cycles",
            fn=(lambda a: lambda: (a.busy_cycles / a.total_cycles if a.total_cycles else 0.0))(
                activity
            ),
        )
        registry.gauge(
            f"{core}.tasks",
            help="tasks completed by this core",
            fn=(lambda a: lambda: a.tasks)(activity),
        )

    state = _SystemProbeState(registry, system, depth_series, wake_latency, enqueues, dequeues)
    system.doorbell_write_hooks.append(state.on_doorbell_write)
    system.on_dequeue_hooks.append(state.on_dequeue)


class _SystemProbeState:
    """Hook-side state for one instrumented data-plane system."""

    __slots__ = (
        "registry",
        "system",
        "depth_series",
        "wake_latency",
        "enqueues",
        "dequeues",
        "depth",
        "ready_since",
    )

    def __init__(self, registry, system, depth_series, wake_latency, enqueues, dequeues):
        self.registry = registry
        self.system = system
        self.depth_series = depth_series
        self.wake_latency = wake_latency
        self.enqueues = enqueues
        self.dequeues = dequeues
        self.depth = 0
        # qid -> time its doorbell first rang while it was idle.
        self.ready_since: Dict[int, float] = {}

    def on_doorbell_write(self, doorbell) -> None:
        self.enqueues.inc()
        self.depth += 1
        self.depth_series.sample(self.system.sim.now, float(self.depth))
        if doorbell.qid not in self.ready_since:
            self.ready_since[doorbell.qid] = self.system.sim.now

    def on_dequeue(self, qid: int) -> None:
        self.dequeues.inc()
        self.depth -= 1
        self.depth_series.sample(self.system.sim.now, float(self.depth))
        ready_at = self.ready_since.pop(qid, None)
        if ready_at is not None:
            self.wake_latency.observe(self.system.sim.now - ready_at)


def hierarchy_stats_snapshot(hierarchy) -> Dict[str, float]:
    """A plain-dict snapshot of a hierarchy's cumulative counters.

    The snapshot is what :func:`instrument_hierarchy` records, detached
    from the live objects — picklable, mergeable by addition, and
    replayable into a registry later. The cost-curve memo
    (:mod:`repro.mem.costmodel`) stores one per derivation so cache
    hits fold in the *same* ``mem.*`` increments a fresh derivation
    would have.
    """
    from repro.mem.coherence import TransactionKind

    stats = {
        "l1.hits": float(sum(l1.stats.hits for l1 in hierarchy.l1s)),
        "l1.misses": float(sum(l1.stats.misses for l1 in hierarchy.l1s)),
        "llc.hits": float(hierarchy.llc.stats.hits),
        "llc.misses": float(hierarchy.llc.stats.misses),
        "llc.evictions": float(hierarchy.llc.stats.evictions),
    }
    for kind in TransactionKind:
        stats[f"coherence.{kind.name.lower()}"] = float(
            hierarchy.directory.transactions[kind]
        )
    return stats


_STATS_HELP = {
    "l1.hits": "L1 hits (all cores)",
    "l1.misses": "L1 misses (all cores)",
    "llc.hits": "LLC hits",
    "llc.misses": "LLC misses",
    "llc.evictions": "LLC evictions",
}


def replay_hierarchy_stats(
    registry: MetricsRegistry, stats: Dict[str, float], prefix: str = "mem"
) -> None:
    """Fold a :func:`hierarchy_stats_snapshot` into ``registry``.

    Registers the same counters and hit-rate gauges as instrumenting the
    live hierarchy would, so memoized and freshly-measured derivations
    are indistinguishable in the collected metrics.
    """
    for name, value in stats.items():
        help_text = _STATS_HELP.get(name)
        if help_text is None and name.startswith("coherence."):
            help_text = f"directory {name.split('.', 1)[1]} transactions"
        registry.counter(f"{prefix}.{name}", help=help_text or "").inc(value)

    def hit_rate(hits_name: str, misses_name: str):
        def read() -> float:
            hits = registry.get(hits_name).value
            misses = registry.get(misses_name).value
            total = hits + misses
            return hits / total if total else 0.0

        return read

    registry.gauge(
        f"{prefix}.l1.hit_rate",
        help="cumulative L1 hit rate over all measured hierarchies",
        fn=hit_rate(f"{prefix}.l1.hits", f"{prefix}.l1.misses"),
    )
    registry.gauge(
        f"{prefix}.llc.hit_rate",
        help="cumulative LLC hit rate over all measured hierarchies",
        fn=hit_rate(f"{prefix}.llc.hits", f"{prefix}.llc.misses"),
    )


def instrument_hierarchy(registry: MetricsRegistry, hierarchy, prefix: str = "mem") -> None:
    """Fold a structural :class:`~repro.mem.hierarchy.MemoryHierarchy`'s
    counters into the registry (cumulative across hierarchies).

    The fast SDP simulation runs on cost curves *derived* from these
    structural models (:mod:`repro.mem.costmodel`), so the derivation
    calls this on every curve it measures: the ``mem.*`` probes describe
    the cache behaviour that produced the cycle costs in use.
    """
    replay_hierarchy_stats(registry, hierarchy_stats_snapshot(hierarchy), prefix=prefix)


def instrument_rack(registry: MetricsRegistry, rack, prefix: str = "cluster") -> None:
    """Fleet rollups and per-server gauges for one :class:`~repro.cluster.rack.Rack`.

    The per-server data planes instrument themselves (shared ``sdp.*``
    aggregates — they run on the rack's shared timeline); this layer adds
    what only the fleet view knows: client-visible tails, loss and
    failover accounting, and per-server health/completion gauges.
    """
    instrument_simulator(registry, rack.sim, prefix="sim")
    metrics = rack.metrics
    fleet = f"{prefix}.fleet"
    registry.gauge(f"{fleet}.p50_latency_us", help="client-visible P2 median",
                   fn=lambda: metrics.p50_us)
    registry.gauge(f"{fleet}.p99_latency_us", help="client-visible P2 99th percentile",
                   fn=lambda: metrics.p99_us)
    registry.gauge(f"{fleet}.p999_latency_us", help="client-visible P2 99.9th percentile",
                   fn=lambda: metrics.p999_us)
    registry.gauge(f"{fleet}.throughput_mtps", help="client-visible completion rate",
                   fn=lambda: metrics.throughput_mtps)
    registry.gauge(f"{fleet}.completed", help="client-visible completions",
                   fn=lambda: metrics.count)
    registry.gauge(f"{fleet}.dispatched", help="requests steered by the balancer",
                   fn=lambda: metrics.dispatched)
    registry.gauge(f"{fleet}.lost", help="responses lost to crashes/staleness",
                   fn=lambda: metrics.lost)
    registry.gauge(f"{fleet}.redispatched", help="failover re-dispatches",
                   fn=lambda: metrics.redispatched)
    registry.gauge(f"{fleet}.rejected", help="requests dropped at full queues",
                   fn=lambda: metrics.rejected)
    registry.gauge(f"{fleet}.hottest_share", help="largest per-server completion share",
                   fn=lambda: metrics.hottest_share)
    for index, server in enumerate(rack.servers):
        base = f"{prefix}.server{index}"
        registry.gauge(f"{base}.up", help="1 while in the balancer pool",
                       fn=(lambda s: lambda: 1.0 if s.up else 0.0)(server))
        registry.gauge(f"{base}.completed", help="client-visible completions served",
                       fn=(lambda s: lambda: s.completed_ok)(server))
        registry.gauge(f"{base}.dispatched", help="requests steered to this server",
                       fn=(lambda s: lambda: s.dispatched)(server))


def maybe_instrument_system(system) -> Optional[MetricsRegistry]:
    """Self-instrumentation entry point for :class:`DataPlaneSystem`."""
    from repro.obs.runtime import get_active_registry

    registry = get_active_registry()
    if registry is not None:
        instrument_system(registry, system)
    return registry


def maybe_instrument_rack(rack) -> Optional[MetricsRegistry]:
    """Self-instrumentation entry point for :class:`Rack`."""
    from repro.obs.runtime import get_active_registry

    registry = get_active_registry()
    if registry is not None:
        instrument_rack(registry, rack)
    return registry
