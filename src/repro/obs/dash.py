"""repro-dash — a stdlib-only ANSI terminal dashboard over the TelemetryBus.

One row per worker (throughput and queue-depth sparklines, current
p99), a fleet aggregate header, and a tail of recent fault events. The
renderer is a pure function of the bus (:func:`render_dashboard`), so
tests assert on strings; :class:`Dashboard` adds the terminal loop:
subscribe to a bus, repaint in place (cursor-home + clear) at a capped
wall-clock rate, and quit on ``q``.

Pairs naturally with paced replays: ``--speed-factor`` pins the
coordinator to per-window exchanges, so frames arrive steadily at
replay speed instead of as fast as the CPU can simulate.

Console entry point::

    repro-dash --workers 4 --servers 8 --speed-factor 25

which is sugar for ``repro-experiments dist_replay --dash`` with a
paced default.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Optional, TextIO

from repro.obs.live import (
    DEFAULT_TELEMETRY_INTERVAL_S,
    TelemetryBus,
)

SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

DEFAULT_SPARK_WIDTH = 24
DEFAULT_FPS = 12.0


class DashboardQuit(Exception):
    """Raised from the key poller when the user quits; unwinds the run."""


def sparkline(values: Iterable[float], width: int = DEFAULT_SPARK_WIDTH) -> str:
    """Render the last ``width`` values as unicode block glyphs.

    Scaled against the window maximum; an all-zero (or empty) window
    renders flat.
    """
    window = [max(0.0, float(value)) for value in list(values)[-width:]]
    if not window:
        return ""
    top = max(window)
    if top <= 0.0:
        return SPARK_GLYPHS[0] * len(window)
    scale = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(scale, int(value / top * scale + 0.5))] for value in window
    )


def _format_event(event: Dict[str, Any]) -> str:
    t_ms = float(event.get("t", 0.0)) * 1e3
    extras = " ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in ("kind", "worker", "t")
    )
    line = f"  [{t_ms:9.3f} ms] w{event.get('worker', '?')} {event.get('kind', '?')}"
    return f"{line} {extras}" if extras else line


def render_dashboard(
    bus: TelemetryBus,
    spark_width: int = DEFAULT_SPARK_WIDTH,
    event_rows: int = 5,
) -> str:
    """The full dashboard as a string — pure, testable, no ANSI codes."""
    summary = bus.fleet_summary()
    rule = "-" * (2 * spark_width + 40)
    lines = [
        (
            f"repro-dash  t={summary['t'] * 1e3:9.3f} ms  "
            f"workers={summary['workers']}  frames={summary['frames']}"
        ),
        (
            f"fleet  done={int(summary['completions'])}  "
            f"queue={int(summary['queue_depth'])}  "
            f"p99={summary['p99_us']:.1f} us  "
            f"lost={int(summary['losses'])}  "
            f"rejected={int(summary['rejects'])}  "
            f"redispatched={int(summary['redispatches'])}"
        ),
        rule,
    ]
    for worker_id in bus.worker_ids():
        view = bus.workers[worker_id]
        throughput = [point["throughput"] for point in view.history]
        depth = [point["queue_depth"] for point in view.history]
        current = view.history[-1] if view.history else {}
        lines.append(
            f"w{worker_id:<3d}"
            f" thr {sparkline(throughput, spark_width):<{spark_width}s}"
            f" {current.get('throughput', 0.0):9.0f}/s"
            f"  q {sparkline(depth, spark_width):<{spark_width}s}"
            f" {int(current.get('queue_depth', 0.0)):5d}"
            f"  p99 {current.get('p99_us', 0.0):9.1f} us"
        )
    if bus.events:
        lines.append(rule)
        lines.append("events:")
        lines.extend(_format_event(event) for event in list(bus.events)[-event_rows:])
    lines.append(rule)
    lines.append("q = quit")
    return "\n".join(lines)


class Dashboard:
    """A TelemetryBus consumer painting the fleet view in place.

    Subscribe with :meth:`attach`; each ingested frame triggers at most
    one repaint per ``1/fps`` wall seconds. On a TTY, repaints home the
    cursor and clear below (no flicker, no scrollback spam); on a pipe
    each paint is a plain text block, so redirected output stays
    greppable. The key poller raises :class:`DashboardQuit` on ``q``.
    """

    def __init__(
        self,
        out: Optional[TextIO] = None,
        fps: float = DEFAULT_FPS,
        interactive: Optional[bool] = None,
        spark_width: int = DEFAULT_SPARK_WIDTH,
    ):
        self.out = out if out is not None else sys.stdout
        self.min_period = 1.0 / fps if fps > 0 else 0.0
        self.spark_width = spark_width
        if interactive is None:
            isatty = getattr(self.out, "isatty", None)
            interactive = bool(isatty()) if callable(isatty) else False
        self.interactive = interactive
        self.bus: Optional[TelemetryBus] = None
        self.paints = 0
        self._last_paint = 0.0
        self._painted = False

    def attach(self, bus: TelemetryBus) -> "Dashboard":
        self.bus = bus
        bus.subscribe(self)
        return self

    def __call__(self, frame: Dict[str, Any]) -> None:
        now = time.monotonic()
        if self._painted and now - self._last_paint < self.min_period:
            return
        self._last_paint = now
        self._poll_keys()
        self.paint()

    def paint(self) -> None:
        if self.bus is None:
            return
        text = render_dashboard(self.bus, spark_width=self.spark_width)
        if self.interactive:
            # Full clear on the first paint, cursor-home + clear-below
            # after: in-place repaint without flicker.
            self.out.write("\x1b[H\x1b[J" if self._painted else "\x1b[2J\x1b[H")
            self.out.write(text + "\n")
        else:
            self.out.write(text + "\n\n")
        self.out.flush()
        self.paints += 1
        self._painted = True

    def final(self) -> None:
        """One last paint so the end-of-run state is what remains visible."""
        if self.bus is not None and self.bus.frames_seen:
            self.paint()

    def _poll_keys(self) -> None:
        if not self.interactive:
            return
        import select

        try:
            ready, _, _ = select.select([sys.stdin], [], [], 0)
        except (OSError, ValueError):
            return
        if ready:
            key = sys.stdin.read(1)
            if key and key.lower() == "q":
                raise DashboardQuit()


@contextmanager
def _cbreak_stdin():
    """Put a TTY stdin into cbreak so single keypresses arrive unbuffered.

    A no-op off-TTY or where termios is unavailable.
    """
    try:
        import termios
        import tty

        if not sys.stdin.isatty():
            yield
            return
        fd = sys.stdin.fileno()
        saved = termios.tcgetattr(fd)
    except Exception:
        yield
        return
    try:
        tty.setcbreak(fd)
        yield
    finally:
        termios.tcsetattr(fd, termios.TCSADRAIN, saved)


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dash",
        description=(
            "Live terminal dashboard over a paced dist_replay run: "
            "per-worker throughput/queue/p99 sparklines, fleet header, "
            "fault-event log. Stdlib only."
        ),
    )
    parser.add_argument("--servers", type=int, default=4, help="rack size (default 4)")
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    parser.add_argument(
        "--speed-factor",
        type=float,
        default=25.0,
        help=(
            "replay pacing: simulated seconds advance per wall second "
            "(default 25; 0 = as fast as possible)"
        ),
    )
    parser.add_argument(
        "--transport", choices=("unix", "tcp"), default="unix",
        help="worker socket transport (default unix)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="synthesised trace length (default: experiment fast-mode size)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay a recorded JSONL trace instead of synthesising one",
    )
    parser.add_argument(
        "--interval", type=float, default=DEFAULT_TELEMETRY_INTERVAL_S,
        help="telemetry cadence in simulated seconds (default 1e-3)",
    )
    parser.add_argument(
        "--jsonl-out", default=None, metavar="PATH",
        help="also stream frames to a JSONL file",
    )
    parser.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="write a Prometheus textfile of the final fleet view",
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed (default 0)")
    parser.add_argument(
        "--full", action="store_true", help="full-size run instead of fast mode"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    from repro.dist import DistError, WireError
    from repro.experiments.base import UsageError
    from repro.experiments.dist_replay import DistReplayConfig
    from repro.experiments.dist_replay import run as run_dist_replay

    try:
        config = DistReplayConfig(
            fast=not args.full,
            seed=args.seed,
            servers=args.servers,
            workers=args.workers,
            speed_factor=args.speed_factor,
            transport=args.transport,
            requests=args.requests,
            trace_path=args.trace,
            telemetry=True,
            dash=True,
            telemetry_interval_s=args.interval,
            telemetry_out=args.jsonl_out,
            telemetry_prom_out=args.prom_out,
        )
    except (UsageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _cbreak_stdin():
            result = run_dist_replay(config)
    except DashboardQuit:
        print("\nrepro-dash: quit")
        return 0
    except (UsageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (WireError, DistError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for note in result.notes:
        print(f"- {note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
