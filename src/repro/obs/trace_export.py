"""Exporters (and inverse parsers) for causal traces.

Three formats over :class:`~repro.obs.trace.Span` trees:

- **Chrome trace events** — ``"X"`` (complete) slices per span plus
  instant events for span events; loads in ``chrome://tracing`` /
  Perfetto. :func:`validate_chrome_trace` checks the event-format
  schema invariants the viewers rely on.
- **Collapsed stacks** — Brendan Gregg's ``frame;frame;frame weight``
  text, weighted by simulated cycles (or microseconds), which
  speedscope and flamegraph.pl both import directly: a sim-time
  flamegraph of where cycles went. Lossy by design (aggregation);
  :func:`parse_collapsed` inverts the aggregation text itself.
- **JSONL** — one span per line, lossless; the archival format.
  :func:`parse_spans_jsonl` inverts :func:`spans_to_jsonl` exactly,
  including non-ASCII attribute values (escaped with ``ensure_ascii``
  so the files survive any transport encoding).

Every exporter takes a tracer or a plain span list, so archived traces
re-export without re-running anything.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.trace import CATEGORIES, Span, Tracer

Spans = List[Span]
Source = Union[Tracer, Iterable[Span]]

# Chrome trace-event phases this exporter emits (and the validator
# accepts): complete slices, instants, and metadata.
_CHROME_PHASES = {"X", "i", "M"}


def _spans(source: Source) -> Spans:
    if isinstance(source, Tracer):
        return list(source.spans)
    return list(source)


# -- Chrome trace events -----------------------------------------------------


def chrome_instant(name: str, time_us: float, tid: int, args: Optional[Dict] = None) -> Dict:
    """One instant event dict (shared with the legacy tracer shim)."""
    entry: Dict[str, Any] = {
        "name": name,
        "ph": "i",
        "ts": time_us,
        "pid": 0,
        "tid": tid,
        "s": "t",
    }
    if args:
        entry["args"] = args
    return entry


def chrome_slice(
    name: str, start_us: float, dur_us: float, tid: int, args: Optional[Dict] = None
) -> Dict:
    """One complete-slice event dict (shared with the legacy tracer shim)."""
    entry: Dict[str, Any] = {
        "name": name,
        "ph": "X",
        "ts": start_us,
        "dur": dur_us,
        "pid": 0,
        "tid": tid,
    }
    if args:
        entry["args"] = args
    return entry


def to_chrome_trace(source: Source) -> Dict[str, Any]:
    """The trace in Chrome trace-event JSON form (as a dict).

    Each span becomes a complete slice on a per-trace track
    (``tid`` = trace id), carrying its attributes and cycle breakdown
    in ``args``; span events become instants on the same track.
    Timestamps are microseconds, as the format requires.
    """
    events: List[Dict[str, Any]] = []
    for span in _spans(source):
        if span.end is None:
            continue
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attributes:
            args.update(span.attributes)
        if span.cycles is not None:
            args["cycles"] = span.cycles
        events.append(
            chrome_slice(
                span.name,
                span.start * 1e6,
                span.duration * 1e6,
                tid=span.trace_id,
                args=args,
            )
        )
        for time, name, attrs in span.events:
            events.append(
                chrome_instant(name, time * 1e6, tid=span.trace_id, args=attrs or None)
            )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(source: Source, path: str) -> int:
    """Write Chrome trace-event JSON; returns the number of events."""
    payload = to_chrome_trace(source)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])


def chrome_trace_problems(payload: Any) -> List[str]:
    """Event-format schema violations in a parsed trace (empty = valid).

    Checks the invariants the viewers actually depend on: a
    ``traceEvents`` list; per event a string ``name``, a known ``ph``,
    numeric non-negative ``ts``; slices (``"X"``) need numeric
    non-negative ``dur``; instants need a scope ``s`` of g/p/t.
    """
    if not isinstance(payload, dict):
        return [f"trace must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    problems: List[str] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _CHROME_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: bad 'ts' {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append(f"{where}: bad 'dur' {dur!r}")
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant scope must be g/p/t")
    return problems


def validate_chrome_trace(payload: Any) -> Any:
    """Raise ``ValueError`` on schema problems; return the payload."""
    problems = chrome_trace_problems(payload)
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems))
    return payload


# -- collapsed stacks (speedscope / flamegraph.pl import format) -------------


def _stack_of(span: Span, by_id: Dict[Tuple[int, int], Span]) -> List[str]:
    frames = [span.name]
    seen = {span.span_id}
    current = span
    while current.parent_id is not None:
        parent = by_id.get((current.trace_id, current.parent_id))
        if parent is None or parent.span_id in seen:
            break
        frames.append(parent.name)
        seen.add(parent.span_id)
        current = parent
    frames.reverse()
    return frames


def to_collapsed(source: Source, weight: str = "cycles") -> str:
    """Collapsed-stack text: ``root;child;leaf <weight>`` per line.

    ``weight="cycles"`` expands leaf spans carrying a cycle breakdown
    into one frame per category (the sim-time flamegraph of where
    cycles went); ``weight="us"`` weighs each span by its *self* time in
    microseconds. Identical stacks aggregate by summation, and lines are
    sorted so output is deterministic. Both speedscope (File > Import)
    and flamegraph.pl read this format directly.
    """
    if weight not in ("cycles", "us"):
        raise ValueError(f"unknown weight {weight!r}; use 'cycles' or 'us'")
    spans = [span for span in _spans(source) if span.end is not None]
    by_id = {(span.trace_id, span.span_id): span for span in spans}
    stacks: Dict[str, float] = {}

    def add(frames: List[str], amount: float) -> None:
        if amount > 0:
            key = ";".join(frames)
            stacks[key] = stacks.get(key, 0.0) + amount

    if weight == "cycles":
        for span in spans:
            if span.cycles is None:
                continue
            frames = _stack_of(span, by_id)
            for category in CATEGORIES:
                add(frames + [category], span.cycles.get(category, 0.0))
    else:
        child_time: Dict[Tuple[int, int], float] = {}
        for span in spans:
            if span.parent_id is not None:
                key = (span.trace_id, span.parent_id)
                child_time[key] = child_time.get(key, 0.0) + span.duration
        for span in spans:
            self_time = span.duration - child_time.get(
                (span.trace_id, span.span_id), 0.0
            )
            add(_stack_of(span, by_id), self_time * 1e6)
    lines = [f"{key} {stacks[key]:.6f}" for key in sorted(stacks)]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], float]:
    """Parse collapsed-stack text back to ``{(frame, ...): weight}``."""
    stacks: Dict[Tuple[str, ...], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        frames_text, _, weight_text = line.rpartition(" ")
        if not frames_text:
            raise ValueError(f"bad collapsed-stack line {line!r}")
        stacks[tuple(frames_text.split(";"))] = float(weight_text)
    return stacks


# -- JSONL -------------------------------------------------------------------


def spans_to_jsonl(source: Source) -> str:
    """One span per line (lossless; inverse: :func:`parse_spans_jsonl`).

    ``ensure_ascii`` keeps non-ASCII attribute values escaped, so the
    byte stream is plain ASCII whatever the attributes contain.
    """
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True, ensure_ascii=True)
        for span in _spans(source)
    )


def parse_spans_jsonl(text: str) -> Spans:
    """Inverse of :func:`spans_to_jsonl`."""
    return [
        Span.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# -- file convenience --------------------------------------------------------

TRACE_EXPORTERS = {
    "trace.json": lambda source: json.dumps(to_chrome_trace(source)),
    "collapsed": to_collapsed,
    "spans.jsonl": spans_to_jsonl,
}


def write_trace_exports(source: Source, directory: str, stem: str) -> Dict[str, str]:
    """Write ``<stem>.{trace.json,collapsed,spans.jsonl}`` under ``directory``.

    Returns ``{suffix: path}``. Spans are snapshotted once so the three
    files describe the same instant.
    """
    import os

    spans = _spans(source)
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for suffix, exporter in TRACE_EXPORTERS.items():
        path = os.path.join(directory, f"{stem}.{suffix}")
        with open(path, "w") as handle:
            handle.write(exporter(spans))
        paths[suffix] = path
    return paths
