"""repro.obs.trace — causal span tracing with simulated-cycle attribution.

Where :mod:`repro.obs.registry` answers "how much, in aggregate", this
module answers "where did *this* request's time go". A **trace** is one
request's causal timeline: a tree of :class:`Span`\\ s (trace id,
parent/child links, span events, attributes) whose leaves carry a
**cycle breakdown** — simulated cycles attributed to the named
categories in :data:`CATEGORIES` (notification wait, queueing delay,
coherence/cache-miss stalls, service, overhead) that sums *bit-exactly*
to the span's duration in cycles.

Design constraints, in priority order (mirroring the metrics registry):

1. **Free when disabled.** With no ambient tracer (the default) the
   model layers install no hook at all; the shared :data:`NULL_TRACER`
   exists for direct callers and allocates nothing per call. A traced
   run's *simulated* results are bit-identical to an untraced run:
   probes observe, they never schedule.
2. **Deterministic.** Span ids are sequential, timestamps are simulated
   time, and head-based sampling is keyed off
   :func:`repro.sim.rng.derive_seed` — the same seed samples the same
   requests on every run, whatever the host does.
3. **Bounded.** ``max_spans`` caps retention; past it, whole traces are
   dropped (and counted) rather than truncated mid-tree.
4. **Exact.** :func:`attribute_residual` closes each breakdown so the
   fixed-order category sum reproduces the span's cycle duration to the
   last bit — the property ``repro-trace`` and CI assert.

Ambient installation mirrors :func:`repro.obs.runtime.active_registry`::

    from repro.obs.trace import Tracer, active_tracer

    tracer = Tracer(seed=config.seed)
    with active_tracer(tracer):
        metrics = run_hyperplane(config, load=0.5)   # self-traces
    tracer.finalize()
    tracer.roots()[0].cycles                          # the breakdown
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.rng import derive_seed

# Cycle-attribution categories, in canonical summation order. The
# breakdown invariant (sum(cycles[c] for c in CATEGORIES) == duration
# cycles, bit-exactly) is always evaluated in this order.
CATEGORY_NOTIFY_WAIT = "notify_wait"
CATEGORY_QUEUEING = "queueing"
CATEGORY_COHERENCE = "coherence"
CATEGORY_SERVICE = "service"
CATEGORY_OVERHEAD = "overhead"
CATEGORIES = (
    CATEGORY_NOTIFY_WAIT,
    CATEGORY_QUEUEING,
    CATEGORY_COHERENCE,
    CATEGORY_SERVICE,
    CATEGORY_OVERHEAD,
)

DEFAULT_MAX_SPANS = 250_000

_SAMPLE_DENOM = float(1 << 64)


def breakdown_sum(cycles: Dict[str, float]) -> float:
    """The canonical fixed-order sum of a cycle breakdown."""
    total = 0.0
    for category in CATEGORIES:
        total += cycles.get(category, 0.0)
    return total


def attribute_residual(total_cycles: float, cycles: Dict[str, float]) -> Dict[str, float]:
    """Close a partial breakdown so its fixed-order sum is ``total_cycles``.

    Every category except :data:`CATEGORY_OVERHEAD` is taken as given;
    overhead is set to the residual. Because floating-point addition
    does not telescope (``a + (b - a) != b`` in general), the naive
    residual can land one or two ulps off — the correction loop nudges
    it until the canonical sum is *bit-exactly* ``total_cycles``. The
    loop converges in one step in practice; the bound is a safety net.
    """
    closed = {category: float(cycles.get(category, 0.0)) for category in CATEGORIES}
    partial = 0.0
    for category in CATEGORIES[:-1]:
        partial += closed[category]
    closed[CATEGORY_OVERHEAD] = total_cycles - partial
    for _ in range(8):
        error = total_cycles - breakdown_sum(closed)
        if error == 0.0:
            break
        closed[CATEGORY_OVERHEAD] += error
    return closed


class Span:
    """One timed operation in a trace tree.

    ``start``/``end`` are simulated seconds; ``cycles`` (optional) is
    the per-category simulated-cycle breakdown of this span's duration;
    ``events`` are point-in-time annotations ``(time, name, attrs)``.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "events",
        "cycles",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        name: str,
        start: float,
        parent_id: Optional[int] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []
        self.cycles: Optional[Dict[str, float]] = None

    @property
    def duration(self) -> float:
        """Span duration in simulated seconds (requires the span ended)."""
        if self.end is None:
            raise ValueError(f"span {self.name!r} not ended yet")
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, time: float, name: str, **attrs: Any) -> None:
        self.events.append((time, name, attrs))

    def attribute_cycles(
        self, total_cycles: float, **partial: float
    ) -> Dict[str, float]:
        """Attach a breakdown closed to ``total_cycles`` (see module doc).

        Unknown category names are rejected so typos cannot silently
        leak cycles into the residual.
        """
        unknown = set(partial) - set(CATEGORIES)
        if unknown:
            raise ValueError(
                f"unknown cycle categories {sorted(unknown)}; known: {CATEGORIES}"
            )
        self.cycles = attribute_residual(total_cycles, partial)
        return self.cycles

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready plain-dict form (see trace_export.spans_to_jsonl)."""
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attributes:
            record["attributes"] = self.attributes
        if self.events:
            record["events"] = [
                {"time": time, "name": name, **({"attributes": attrs} if attrs else {})}
                for time, name, attrs in self.events
            ]
        if self.cycles is not None:
            record["cycles"] = self.cycles
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        span = cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            name=record["name"],
            start=record["start"],
            parent_id=record.get("parent_id"),
        )
        span.end = record.get("end")
        span.attributes = dict(record.get("attributes") or {})
        span.events = [
            (event["time"], event["name"], dict(event.get("attributes") or {}))
            for event in record.get("events") or []
        ]
        cycles = record.get("cycles")
        span.cycles = dict(cycles) if cycles is not None else None
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ended = f"..{self.end}" if self.end is not None else " (open)"
        return f"<Span {self.name!r} trace={self.trace_id} {self.start}{ended}>"


class Tracer:
    """Collects spans for one run, with deterministic head sampling.

    Parameters
    ----------
    seed:
        Root seed for the sampling decision stream. Use the run's root
        seed so sampled runs stay reproducible.
    sample_rate:
        Fraction of traces kept, decided per trace key at the *head*
        (before any span is built): ``1.0`` keeps everything, ``0.0``
        nothing. The decision for a key never changes within a run.
    max_spans:
        Retention cap; once reached, new traces are dropped whole and
        counted in :attr:`dropped_traces`.
    """

    def __init__(
        self,
        seed: int = 0,
        sample_rate: float = 1.0,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate!r}")
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.enabled = True
        self.seed = seed
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_traces = 0
        self._next_span_id = 0
        self._finalizers: List[Callable[[], None]] = []

    # -- sampling ------------------------------------------------------------

    def sampled(self, trace_key: Any) -> bool:
        """Deterministic head-based sampling decision for one trace key.

        Keyed off :func:`~repro.sim.rng.derive_seed` so the decision
        depends only on ``(seed, trace_key)`` — never on host state or
        on how many traces were seen before this one.
        """
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        draw = derive_seed(self.seed, f"trace-sample:{trace_key}") / _SAMPLE_DENOM
        return draw < self.sample_rate

    # -- span lifecycle ------------------------------------------------------

    def begin(
        self,
        name: str,
        start: float,
        trace_id: Optional[int] = None,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span. With ``parent`` given, the span joins its trace."""
        if parent is not None:
            trace_id = parent.trace_id
        elif trace_id is None:
            trace_id = self._next_span_id
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            name=name,
            start=start,
            parent_id=parent.span_id if parent is not None else None,
        )
        self._next_span_id += 1
        if attributes:
            span.attributes.update(attributes)
        return span

    def end(self, span: Span, end: float) -> Span:
        """Close a span and retain it (subject to the span cap)."""
        span.end = end
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_traces += 1
        return span

    def record(self, span: Span) -> Span:
        """Retain an already-closed span (exporters' re-import path)."""
        if span.end is None:
            raise ValueError(f"span {span.name!r} must be ended before record()")
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_traces += 1
        return span

    # -- finalization --------------------------------------------------------

    def add_finalizer(self, fn: Callable[[], None]) -> None:
        """Register a post-run hook (probes use this to stamp attributes
        that only exist after the run, e.g. the mechanism label)."""
        self._finalizers.append(fn)

    def finalize(self) -> "Tracer":
        """Drain pending finalizers; returns self for chaining.

        Each registered finalizer runs exactly once, but finalize() may
        be called repeatedly: finalizers registered after one call run
        on the next, so several runs can share one tracer.
        """
        while self._finalizers:
            self._finalizers.pop(0)()
        return self

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> List[Span]:
        """All spans with no parent (one per retained trace), in order."""
        return [span for span in self.spans if span.parent_id is None]

    def trace(self, trace_id: int) -> List[Span]:
        """All spans of one trace, in recording order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def children(self, span: Span) -> List[Span]:
        return [
            candidate
            for candidate in self.spans
            if candidate.parent_id == span.span_id
            and candidate.trace_id == span.trace_id
        ]


class NullTracer(Tracer):
    """The shared do-nothing tracer: every operation is a no-op.

    ``begin``/``end`` hand back a single preallocated span so direct
    callers can stay unconditional without allocating per call. Model
    layers never reach even this: with no ambient *enabled* tracer they
    skip installing hooks entirely.
    """

    def __init__(self):
        super().__init__(seed=0, sample_rate=0.0, max_spans=1)
        self.enabled = False
        self._null_span = Span(trace_id=-1, span_id=-1, name="null", start=0.0)
        self._null_span.end = 0.0

    def sampled(self, trace_key: Any) -> bool:
        return False

    def begin(self, name, start, trace_id=None, parent=None, **attributes) -> Span:
        return self._null_span

    def end(self, span: Span, end: float) -> Span:
        return span

    def record(self, span: Span) -> Span:
        return span

    def add_finalizer(self, fn: Callable[[], None]) -> None:
        pass


NULL_TRACER = NullTracer()


# -- ambient tracer context (mirrors repro.obs.runtime) ----------------------

_ACTIVE: Optional[Tracer] = None


def get_active_tracer() -> Optional[Tracer]:
    """The enabled tracer components should trace into, or ``None``."""
    if _ACTIVE is not None and _ACTIVE.enabled:
        return _ACTIVE
    return None


def set_active_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the ambient tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def active_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scope ``tracer`` as the ambient tracer for a ``with`` block."""
    previous = set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)
