"""The metrics registry: counters, gauges, histograms, timeseries probes.

One :class:`MetricsRegistry` holds every probe of one run. Instruments
are get-or-create by dotted name (``sdp.queue_depth``), so independent
components can share an aggregate counter without coordination.

Design constraints, in priority order:

1. **Free when disabled.** A registry built with ``enabled=False``
   hands out shared null instruments whose record methods are empty
   (no attribute writes, no allocation), and the model layers skip
   installing hooks entirely when no enabled registry is active — the
   simulation hot path is bit-identical to an uninstrumented run.
2. **Deterministic.** Instruments record simulated time only; two runs
   with the same seed collect byte-identical output. Wall-clock state
   lives in :class:`~repro.obs.manifest.RunManifest`, never here.
3. **Bounded.** Timeseries probes cap their sample count by doubling
   their sampling stride, so arbitrarily long runs cannot exhaust
   memory.
4. **Mergeable.** Every instrument serialises to a plain-dict snapshot
   (:meth:`MetricsRegistry.snapshot`) and folds back in
   (:meth:`MetricsRegistry.merge_snapshot`): counters sum, histograms
   add bucket-wise, timeseries interleave by time, gauges freeze to
   their newest value. Parallel sweeps run each worker under its own
   registry and merge the snapshots in submission order, making the
   result independent of worker count and completion order (see
   ``docs/observability.md``).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

# Dotted lower-case metric names: components of [a-z0-9_] joined by ".".
# ":" is forbidden so the Prometheus exporter can use it reversibly.
_NAME_PATTERN = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

# Default histogram bounds: exponential 100 ns .. 0.1 s (latencies are
# recorded in seconds throughout the repo).
DEFAULT_BUCKETS = tuple(1e-7 * (10 ** (i / 2)) for i in range(13))

DEFAULT_TIMESERIES_CAPACITY = 4096


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it follows the probe naming scheme, else raise."""
    if not _NAME_PATTERN.match(name):
        raise ValueError(
            f"bad metric name {name!r}: expected dotted lower-case "
            "components like 'sdp.queue_depth'"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def record(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind, "value": self.value}

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}

    def merge(self, snap: Dict[str, Any]) -> None:
        self.value += snap["value"]


class Gauge:
    """A point-in-time value, set directly or pulled from a callable.

    A pull gauge (``fn`` given) reads its source at collect time, so it
    costs nothing while the simulation runs. Re-registering a pull gauge
    rebinds it to the newest source (the common case: one metric name,
    many short-lived systems — the gauge tracks the latest).
    """

    __slots__ = ("name", "help", "value", "fn")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value

    def record(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind, "value": self.read()}

    def snapshot(self) -> Dict[str, Any]:
        # Pull gauges freeze to their current reading: live sources do
        # not cross process boundaries.
        return {"kind": self.kind, "help": self.help, "value": self.read()}

    def merge(self, snap: Dict[str, Any]) -> None:
        # Newest-source-wins, mirroring the rebind semantics above; the
        # merged value replaces any live pull binding.
        self.fn = None
        self.value = snap["value"]


class Histogram:
    """Fixed-bound bucket histogram (Prometheus-style, cumulative export).

    Buckets are upper bounds; a sample lands in the first bucket whose
    bound is >= the value, or overflows past the last bound. ``record``
    exports cumulative counts plus a ``+Inf`` terminal bucket.
    """

    __slots__ = ("name", "help", "bounds", "counts", "overflow", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, bound in enumerate(self.bounds):
            running += self.counts[index]
            if running >= target:
                return bound
        return self.bounds[-1]

    def record(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            cumulative.append([bound, running])
        return {
            "name": self.name,
            "type": self.kind,
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        if tuple(snap["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bucket "
                f"bounds {snap['bounds']!r} into {list(self.bounds)!r}"
            )
        self.counts = [a + b for a, b in zip(self.counts, snap["counts"])]
        self.overflow += snap["overflow"]
        self.sum += snap["sum"]
        self.count += snap["count"]


class Timeseries:
    """A bounded (sim_time, value) sample stream.

    When the buffer fills, every second retained sample is dropped and
    the sampling stride doubles, so the series keeps covering the whole
    run at progressively coarser resolution instead of truncating.
    """

    __slots__ = ("name", "help", "capacity", "samples", "stride", "_skip")
    kind = "timeseries"

    def __init__(self, name: str, help: str = "", capacity: int = DEFAULT_TIMESERIES_CAPACITY):
        if capacity < 8:
            raise ValueError("timeseries capacity must be at least 8")
        self.name = name
        self.help = help
        self.capacity = capacity
        self.samples: List[Tuple[float, float]] = []
        self.stride = 1
        self._skip = 0

    def sample(self, time: float, value: float) -> None:
        if self._skip:
            self._skip -= 1
            return
        self._skip = self.stride - 1
        self.samples.append((time, value))
        if len(self.samples) >= self.capacity:
            self.samples = self.samples[::2]
            self.stride *= 2

    @property
    def count(self) -> int:
        return len(self.samples)

    def record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "stride": self.stride,
            "samples": [[t, v] for t, v in self.samples],
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "capacity": self.capacity,
            "stride": self.stride,
            "samples": [[t, v] for t, v in self.samples],
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Interleave another stream by simulated time (stable: existing
        samples sort before incoming ones at equal times), keep the
        coarser stride, and re-downsample to this series' capacity."""
        merged = list(self.samples) + [(t, v) for t, v in snap["samples"]]
        merged.sort(key=lambda sample: sample[0])
        self.stride = max(self.stride, snap["stride"])
        while len(merged) >= self.capacity:
            merged = merged[::2]
            self.stride *= 2
        self.samples = merged
        self._skip = 0


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimeseries(Timeseries):
    __slots__ = ()

    def sample(self, time: float, value: float) -> None:
        pass


# Shared no-op instruments: a disabled registry always returns these, so
# the record path allocates nothing, ever.
NULL_COUNTER = _NullCounter("disabled")
NULL_GAUGE = _NullGauge("disabled")
NULL_HISTOGRAM = _NullHistogram("disabled")
NULL_TIMESERIES = _NullTimeseries("disabled")


class MetricsRegistry:
    """All probes of one run, keyed by dotted metric name.

    >>> registry = MetricsRegistry()
    >>> registry.counter("sdp.completions").inc()
    >>> registry.collect()[0]["value"]
    1.0
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Any] = {}

    # -- instrument factories (get-or-create) -------------------------------

    def _get_or_create(self, cls, name: str, kwargs: Dict[str, Any]):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        instrument = cls(validate_metric_name(name), **kwargs)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(Counter, name, {"help": help})

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        gauge = self._get_or_create(Gauge, name, {"help": help})
        if fn is not None:
            gauge.fn = fn  # rebind to the newest source
        return gauge

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(Histogram, name, {"help": help, "buckets": buckets})

    def timeseries(
        self, name: str, help: str = "", capacity: int = DEFAULT_TIMESERIES_CAPACITY
    ) -> Timeseries:
        if not self.enabled:
            return NULL_TIMESERIES
        return self._get_or_create(Timeseries, name, {"help": help, "capacity": capacity})

    # -- merging -------------------------------------------------------------

    _SNAPSHOT_CLASSES: Dict[str, Any] = {}  # populated below the class body

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Detach every instrument into a picklable plain-dict form.

        The snapshot carries everything :meth:`merge_snapshot` needs to
        reconstruct and fold the instruments into another registry —
        parallel workers return these to the submitting process. Pull
        gauges freeze to their current reading.
        """
        return {name: metric.snapshot() for name, metric in self._metrics.items()}

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters sum; histograms add bucket-wise (bounds must match);
        timeseries interleave by simulated time and re-downsample;
        gauges take the incoming value (newest-source-wins, the same
        semantics as rebinding a pull gauge). Merging is associative
        over counters/histograms, so folding worker snapshots in
        submission order yields worker-count-independent results.
        """
        for name in sorted(snapshot):
            snap = snapshot[name]
            cls = self._SNAPSHOT_CLASSES[snap["kind"]]
            existing = self._metrics.get(name)
            if existing is None:
                kwargs: Dict[str, Any] = {"help": snap.get("help", "")}
                if snap["kind"] == "histogram":
                    kwargs["buckets"] = snap["bounds"]
                elif snap["kind"] == "timeseries":
                    kwargs["capacity"] = snap["capacity"]
                existing = self._get_or_create(cls, name, kwargs)
            elif not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot merge a {snap['kind']} into it"
                )
            existing.merge(snap)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        self.merge_snapshot(other.snapshot())

    # -- introspection -------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def collect(self) -> List[Dict[str, Any]]:
        """A sorted list of canonical metric records (see exporters)."""
        return [self._metrics[name].record() for name in sorted(self._metrics)]

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Records keyed by name — handy for assertions in tests."""
        return {record["name"]: record for record in self.collect()}


MetricsRegistry._SNAPSHOT_CLASSES = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    Histogram.kind: Histogram,
    Timeseries.kind: Timeseries,
}


def snapshot_delta(
    current: Dict[str, Dict[str, Any]],
    previous: Dict[str, Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """The incremental change from ``previous`` to ``current`` snapshot.

    The delta is itself a valid snapshot: merging it (via
    :meth:`MetricsRegistry.merge_snapshot`) into a registry that holds
    ``previous``'s state reproduces ``current`` — counters and
    histograms carry differences, gauges carry their newest value when
    it changed, and timeseries carry only the samples appended since
    ``previous`` (full samples as a fallback when the stream
    re-downsampled in between, which a receiver cannot replay exactly).
    Instruments absent from ``previous`` pass through whole, so a delta
    against ``{}`` is a keyframe. Unchanged instruments are omitted,
    which is what makes telemetry frames compact.
    """
    delta: Dict[str, Dict[str, Any]] = {}
    for name in sorted(current):
        cur = current[name]
        prev = previous.get(name)
        if prev is None:
            delta[name] = cur
            continue
        kind = cur["kind"]
        if prev["kind"] != kind:
            raise TypeError(
                f"metric {name!r} changed kind between snapshots: "
                f"{prev['kind']} -> {kind}"
            )
        if kind == Counter.kind:
            change = cur["value"] - prev["value"]
            if change:
                delta[name] = {"kind": kind, "help": cur.get("help", ""), "value": change}
        elif kind == Gauge.kind:
            if cur["value"] != prev["value"]:
                delta[name] = dict(cur)
        elif kind == Histogram.kind:
            if cur["count"] != prev["count"] or cur["overflow"] != prev["overflow"]:
                delta[name] = {
                    "kind": kind,
                    "help": cur.get("help", ""),
                    "bounds": list(cur["bounds"]),
                    "counts": [a - b for a, b in zip(cur["counts"], prev["counts"])],
                    "overflow": cur["overflow"] - prev["overflow"],
                    "sum": cur["sum"] - prev["sum"],
                    "count": cur["count"] - prev["count"],
                }
        elif kind == Timeseries.kind:
            if cur["stride"] == prev["stride"] and len(cur["samples"]) >= len(
                prev["samples"]
            ):
                appended = cur["samples"][len(prev["samples"]):]
                if appended:
                    delta[name] = {
                        "kind": kind,
                        "help": cur.get("help", ""),
                        "capacity": cur["capacity"],
                        "stride": cur["stride"],
                        "samples": [list(sample) for sample in appended],
                    }
            else:
                delta[name] = dict(cur)
        else:
            raise TypeError(f"metric {name!r}: unknown snapshot kind {kind!r}")
    return delta
