"""SMT co-runner interference model (paper, Fig. 11b)."""

from repro.smt.corunner import CoRunnerModel, MatrixMultiplyCoRunner

__all__ = ["CoRunnerModel", "MatrixMultiplyCoRunner"]
