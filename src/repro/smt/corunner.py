"""SMT co-runner IPC under data-plane interference.

Paper, Fig. 11(b): a matrix-multiply application shares a 2-way SMT core
with the data plane. Issue slots are arbitrated ICOUNT-style, so the
co-runner's throughput depends on how many slots (and how much L1
bandwidth) the data-plane thread consumes:

- Against a *spinning* plane, the co-runner does worst at **low** load:
  the spin loop commits at high IPC and monopolises issue slots; real
  task work at high load stalls more and frees slots ("spinning is a
  more severe antagonist than performing actual work").
- Against HyperPlane, the data-plane thread is halted when idle, so the
  co-runner owns the core at low load and degrades as load rises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sdp.metrics import CoreActivity

# Issue width of the modelled SMT core and the co-runner's solo IPC
# (dense matrix multiply sustains high ILP).
CORE_ISSUE_WIDTH = 8.0
CORUNNER_SOLO_IPC = 2.4
# How strongly the partner thread's issue pressure displaces co-runner
# slots under ICOUNT (loss per unit of partner-IPC/solo-IPC ratio).
SLOT_CONTENTION = 0.35
# Extra degradation per unit of partner L1-bandwidth pressure: spin
# loops hammer the L1 ports continuously.
L1_PRESSURE_PENALTY = 0.12


@dataclass
class CoRunnerModel:
    """Predicts a co-runner's IPC from the data-plane thread's activity."""

    solo_ipc: float = CORUNNER_SOLO_IPC
    slot_contention: float = SLOT_CONTENTION
    l1_penalty: float = L1_PRESSURE_PENALTY

    def corunner_ipc(self, dataplane: CoreActivity) -> float:
        """Expected co-runner IPC given the data-plane thread's behaviour.

        Halted partner cycles cost the co-runner nothing (the paper's
        SMT-priority scheme only issues the background thread when the
        foreground QWAIT thread is halted — here the foreground is halted,
        so the background gets the whole core).
        """
        total = dataplane.total_cycles
        if total == 0:
            return self.solo_ipc
        busy_fraction = dataplane.busy_cycles / total
        partner_ipc = (
            (dataplane.useful_instructions + dataplane.useless_instructions)
            / dataplane.busy_cycles
            if dataplane.busy_cycles
            else 0.0
        )
        # While the partner is busy, contention scales with its issue rate
        # and its L1 pressure (poll-heavy phases touch the L1 every cycle).
        poll_share = (
            dataplane.useless_instructions
            / (dataplane.useful_instructions + dataplane.useless_instructions)
            if (dataplane.useful_instructions + dataplane.useless_instructions)
            else 0.0
        )
        degraded = self.solo_ipc * (
            1.0
            - self.slot_contention * (partner_ipc / self.solo_ipc)
            - self.l1_penalty * poll_share
        )
        degraded = max(0.2 * self.solo_ipc, degraded)
        return busy_fraction * degraded + (1.0 - busy_fraction) * self.solo_ipc


class MatrixMultiplyCoRunner:
    """A real blocked matrix multiply used by the examples/tests to give
    the co-runner model a concrete workload (and to sanity-check that
    its solo IPC assumption corresponds to a compute-bound kernel)."""

    def __init__(self, size: int = 64):
        if size <= 0:
            raise ValueError("matrix size must be positive")
        self.size = size

    def multiply(self, a, b):
        """Naive blocked multiply on nested lists (no numpy, on purpose:
        this models CPU work, not vectorised math)."""
        n = self.size
        if len(a) != n or len(b) != n:
            raise ValueError("matrix dimensions must match the model size")
        result = [[0.0] * n for _ in range(n)]
        block = 16
        for ii in range(0, n, block):
            for kk in range(0, n, block):
                for jj in range(0, n, block):
                    for i in range(ii, min(ii + block, n)):
                        row_a = a[i]
                        row_r = result[i]
                        for k in range(kk, min(kk + block, n)):
                            aik = row_a[k]
                            row_b = b[k]
                            for j in range(jj, min(jj + block, n)):
                                row_r[j] += aik * row_b[j]
        return result
