"""Traffic generation: shapes, arrival processes, and generators.

The paper evaluates four traffic shapes (Sections II-C and V-A):

- **FB** (fully balanced) — traffic through all queues;
- **PC** (proportionally concentrated) — 20% of queues hot all the time,
  the rest carrying traffic with probability 5%;
- **NC** (non-proportionally concentrated) — a fixed 100 queues hot, the
  rest at 5%;
- **SQ** (single queue) — everything through one queue.

Arrivals are open-loop Poisson (the paper notes "our arrivals follow a
Poisson process"); peak-throughput experiments use a closed-loop refill
generator that keeps the shape's hot set saturated.
"""

from repro.traffic.arrivals import (
    DeterministicArrivals,
    PoissonArrivals,
    load_to_rate,
)
from repro.traffic.generator import ClosedLoopRefill, OpenLoopGenerator
from repro.traffic.shapes import (
    SHAPES,
    FullyBalanced,
    NonproportionallyConcentrated,
    ProportionallyConcentrated,
    SingleQueue,
    TrafficShape,
    shape_by_name,
)

__all__ = [
    "SHAPES",
    "ClosedLoopRefill",
    "DeterministicArrivals",
    "FullyBalanced",
    "NonproportionallyConcentrated",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "ProportionallyConcentrated",
    "SingleQueue",
    "TrafficShape",
    "load_to_rate",
    "shape_by_name",
]
