"""Arrival processes.

Open-loop arrivals are Poisson (memoryless inter-arrival times, as in the
paper's evaluation); a deterministic process is provided for tests and
for isolating queueing variance from arrival variance.
"""

from __future__ import annotations

import abc
import random


class ArrivalProcess(abc.ABC):
    """Draws successive inter-arrival times, in seconds."""

    @abc.abstractmethod
    def next_interarrival(self) -> float:
        """Time until the next arrival."""

    @property
    @abc.abstractmethod
    def rate(self) -> float:
        """Mean arrival rate (per second)."""


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times with the given mean rate."""

    def __init__(self, rate: float, rng: random.Random):
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self._rate = rate
        self._rng = rng

    @property
    def rate(self) -> float:
        return self._rate

    def next_interarrival(self) -> float:
        return self._rng.expovariate(self._rate)


class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival times (rate = 1/interval)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self._rate = rate

    @property
    def rate(self) -> float:
        return self._rate

    def next_interarrival(self) -> float:
        return 1.0 / self._rate


def load_to_rate(load: float, mean_service_seconds: float, servers: int = 1) -> float:
    """Convert a utilisation target to an arrival rate.

    ``load`` is the paper's x-axis (0..1 of saturation); saturation for
    ``servers`` cores is ``servers / mean_service``. Notification overheads
    push true saturation slightly below this, which is faithful to how the
    paper normalises load (to the *ideal* service capacity).
    """
    if not 0.0 < load:
        raise ValueError("load must be positive")
    if mean_service_seconds <= 0:
        raise ValueError("mean service time must be positive")
    return load * servers / mean_service_seconds
