"""Bursty (ON/OFF modulated Poisson) traffic.

The paper's motivation for unbalanced traffic (Section I): "tenant
applications/VMs typically experience bursty activity patterns at
different times." This module models each queue as an independent
ON/OFF source (a 2-state MMPP): exponential ON and OFF sojourns, Poisson
arrivals at ``burst_rate`` while ON, silence while OFF.

At equal mean rate, burstier traffic concentrates arrivals in time and
across fewer simultaneously-active queues — inflating spinning tails
(deep per-queue backlogs behind scans) far more than HyperPlane's
(scale-up pooling absorbs the bursts).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.queueing.taskqueue import TaskQueue, WorkItem
from repro.sim.engine import Simulator
from repro.traffic.generator import ServiceSampler
from repro.traffic.shapes import TrafficShape


class OnOffSource:
    """One queue's ON/OFF modulated Poisson arrival process."""

    def __init__(
        self,
        sim: Simulator,
        queue: TaskQueue,
        mean_rate: float,
        burstiness: float,
        on_fraction: float,
        mean_on_seconds: float,
        service_sampler: ServiceSampler,
        rng: random.Random,
        item_id_base: int = 0,
    ):
        if mean_rate < 0:
            raise ValueError("mean rate must be non-negative")
        if not 0.0 < on_fraction <= 1.0:
            raise ValueError("on_fraction must be in (0, 1]")
        if burstiness < 1.0:
            raise ValueError("burstiness >= 1 (1 = plain Poisson)")
        self.sim = sim
        self.queue = queue
        self.mean_rate = mean_rate
        # While ON, the source fires at burst_rate so the long-run mean
        # stays mean_rate: burst_rate = mean_rate * burstiness, with the
        # ON fraction set to 1/burstiness.
        self.on_fraction = min(on_fraction, 1.0 / burstiness) if burstiness > 1 else on_fraction
        self.burst_rate = mean_rate / self.on_fraction if mean_rate > 0 else 0.0
        self.mean_on = mean_on_seconds
        self.mean_off = mean_on_seconds * (1.0 - self.on_fraction) / self.on_fraction
        self.service_sampler = service_sampler
        self.rng = rng
        self.generated = 0
        self.dropped = 0
        self._next_id = item_id_base
        if mean_rate > 0:
            self.process = sim.spawn(self._run(), name=f"onoff-q{queue.qid}")

    def _run(self):
        rng = self.rng
        while True:
            # OFF sojourn (skipped when always-on).
            if self.mean_off > 0:
                yield rng.expovariate(1.0 / self.mean_off)
            # ON sojourn: Poisson arrivals at the burst rate.
            on_remaining = rng.expovariate(1.0 / self.mean_on)
            while on_remaining > 0:
                gap = rng.expovariate(self.burst_rate)
                if gap > on_remaining:
                    yield on_remaining
                    break
                yield gap
                on_remaining -= gap
                item = WorkItem(
                    item_id=self._next_id,
                    qid=self.queue.qid,
                    arrival_time=self.sim.now,
                    service_time=self.service_sampler(),
                )
                self._next_id += 1
                self.generated += 1
                if not self.queue.enqueue(item):
                    self.dropped += 1


class BurstyGenerator:
    """Per-queue independent ON/OFF sources following a traffic shape.

    Parameters
    ----------
    total_rate:
        Long-run aggregate arrival rate across all queues.
    burstiness:
        Peak-to-mean ratio while a source is ON (1.0 = plain Poisson).
    mean_on_seconds:
        Average burst duration.
    """

    def __init__(
        self,
        sim: Simulator,
        queues: Sequence[TaskQueue],
        shape: TrafficShape,
        total_rate: float,
        service_sampler: ServiceSampler,
        rng_factory,
        burstiness: float = 4.0,
        mean_on_seconds: float = 200e-6,
    ):
        weights = shape.normalized_weights(len(queues))
        self.sources: List[OnOffSource] = []
        base = 0
        for qid, queue in enumerate(queues):
            rate = total_rate * weights[qid]
            if rate <= 0:
                continue
            source = OnOffSource(
                sim=sim,
                queue=queue,
                mean_rate=rate,
                burstiness=burstiness,
                on_fraction=1.0 / burstiness,
                mean_on_seconds=mean_on_seconds,
                service_sampler=service_sampler,
                rng=rng_factory(f"onoff-{qid}"),
                item_id_base=base,
            )
            base += 1 << 24  # disjoint item-id spaces per queue
            self.sources.append(source)

    @property
    def generated(self) -> int:
        return sum(source.generated for source in self.sources)

    @property
    def dropped(self) -> int:
        return sum(source.dropped for source in self.sources)


def attach_bursty_traffic(
    system,
    load: float,
    burstiness: float = 4.0,
    mean_on_seconds: float = 200e-6,
) -> BurstyGenerator:
    """Attach bursty open-loop traffic to a DataPlaneSystem."""
    from repro.traffic.arrivals import load_to_rate

    total_rate = load_to_rate(
        load, system.config.workload.mean_service_seconds, system.config.num_cores
    )
    generator = BurstyGenerator(
        sim=system.sim,
        queues=system.queues,
        shape=system.shape,
        total_rate=total_rate,
        service_sampler=system.service_model,
        rng_factory=system.streams.stream,
        burstiness=burstiness,
        mean_on_seconds=mean_on_seconds,
    )
    system.generators.append(generator)
    return generator
