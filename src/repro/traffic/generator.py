"""Work-item generators: open-loop Poisson producers and closed-loop refill.

Open loop models the latency experiments (Figs. 3b, 9, 10, 12b): items
arrive at an offered rate regardless of the data plane's progress.
Closed loop models peak-throughput experiments (Figs. 3a, 8, 13): the
generator keeps the shape's hot queues saturated, so measured completion
rate is the data plane's capacity.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.queueing.taskqueue import TaskQueue, WorkItem
from repro.sim.engine import Simulator
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.shapes import TrafficShape

ServiceSampler = Callable[[], float]


class OpenLoopGenerator:
    """A producer that enqueues Poisson (or other) arrivals across queues.

    Parameters
    ----------
    sim, queues:
        The simulation and the full set of device-side queues.
    shape:
        Traffic shape deciding the per-arrival destination queue.
    arrivals:
        Inter-arrival process (aggregate across all queues).
    service_sampler:
        Draws the processing time (seconds) for each item.
    rng:
        Stream for destination sampling.
    max_items:
        Stop after this many arrivals (``None`` = unbounded; bound the
        simulation with ``sim.run(until=...)`` instead).
    """

    def __init__(
        self,
        sim: Simulator,
        queues: Sequence[TaskQueue],
        shape: TrafficShape,
        arrivals: ArrivalProcess,
        service_sampler: ServiceSampler,
        rng: random.Random,
        max_items: Optional[int] = None,
    ):
        self.sim = sim
        self.queues = list(queues)
        self.arrivals = arrivals
        self.service_sampler = service_sampler
        self.max_items = max_items
        self._draw_queue = shape.sampler(len(self.queues), rng)
        self.generated = 0
        self.dropped = 0
        self.process = sim.spawn(self._run(), name="open-loop-generator")

    def _run(self):
        while self.max_items is None or self.generated < self.max_items:
            yield self.arrivals.next_interarrival()
            qid = self._draw_queue()
            item = WorkItem(
                item_id=self.generated,
                qid=qid,
                arrival_time=self.sim.now,
                service_time=self.service_sampler(),
            )
            self.generated += 1
            if not self.queues[qid].enqueue(item):
                self.dropped += 1


class ClosedLoopRefill:
    """Keeps each hot queue's depth constant for saturation measurements.

    The generator pre-fills every hot queue to ``depth``; the data plane
    calls :meth:`notify_dequeue` after each dequeue, and the item is
    immediately replaced (modelling an I/O device that always has backlog,
    i.e. offered load beyond saturation). Items carry ``arrival_time`` of
    the refill instant; latency is meaningless here — closed loop is for
    throughput only.
    """

    def __init__(
        self,
        sim: Simulator,
        queues: Sequence[TaskQueue],
        shape: TrafficShape,
        service_sampler: ServiceSampler,
        depth: int = 4,
    ):
        if depth < 1:
            raise ValueError("refill depth must be at least 1")
        self.sim = sim
        self.queues = list(queues)
        self.service_sampler = service_sampler
        self.depth = depth
        self.hot_ids: List[int] = shape.hot_queue_ids(len(self.queues))
        self._next_id = 0
        self.generated = 0
        for qid in self.hot_ids:
            for _ in range(depth):
                self._enqueue(qid)

    def _enqueue(self, qid: int) -> None:
        item = WorkItem(
            item_id=self._next_id,
            qid=qid,
            arrival_time=self.sim.now,
            service_time=self.service_sampler(),
        )
        self._next_id += 1
        self.generated += 1
        if not self.queues[qid].enqueue(item):
            raise RuntimeError(f"closed-loop refill overflowed queue {qid}")

    def notify_dequeue(self, qid: int) -> None:
        """Replace a consumed item on a hot queue (cold queues stay cold)."""
        if qid in self._hot_set:
            self._enqueue(qid)

    @property
    def _hot_set(self):
        cached = getattr(self, "_hot_set_cache", None)
        if cached is None:
            cached = frozenset(self.hot_ids)
            self._hot_set_cache = cached
        return cached
