"""The paper's four traffic shapes.

A shape maps a queue count to per-queue arrival weights. "Hot" queues
carry traffic all the time; "cold" queues carry traffic with probability
5% (paper, Section II-C). In steady state that makes a cold queue's
arrival weight 5% of a hot queue's.

Shapes also report their *hot set* — the queues that are essentially
always ready at saturation — which the closed-loop peak-throughput
generator keeps filled, and from which the expected number of empty
polls per task follows (n ~= 5 for PC, n = total for SQ, ...).
"""

from __future__ import annotations

import abc
import random
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Sequence, Type

COLD_ACTIVITY = 0.05  # cold queues see traffic 5% of the time


class TrafficShape(abc.ABC):
    """Base class: per-queue arrival weights for a given queue count."""

    name: str = "abstract"

    @abc.abstractmethod
    def weights(self, num_queues: int) -> List[float]:
        """Unnormalised per-queue arrival weights (length ``num_queues``)."""

    @abc.abstractmethod
    def hot_queue_ids(self, num_queues: int) -> List[int]:
        """Queues that carry traffic continuously."""

    def normalized_weights(self, num_queues: int) -> List[float]:
        """Weights scaled to sum to 1 (a probability distribution)."""
        raw = self.weights(num_queues)
        total = sum(raw)
        if total <= 0:
            raise ValueError(f"shape {self.name}: weights sum to zero")
        return [w / total for w in raw]

    def sampler(self, num_queues: int, rng: random.Random):
        """Return a zero-argument callable drawing a queue id per arrival."""
        cumulative = list(accumulate(self.weights(num_queues)))
        total = cumulative[-1]

        def draw() -> int:
            return bisect_right(cumulative, rng.random() * total)

        return draw

    def empty_polls_per_task(self, num_queues: int) -> float:
        """Expected empty queue heads a spinning core interrogates per task
        at saturation (the paper's ``n``: ~5 for PC, 1 for FB, total/hot
        for SQ and NC)."""
        hot = len(self.hot_queue_ids(num_queues))
        if hot == 0:
            raise ValueError("shape has no hot queues")
        return (num_queues - hot) / hot

    def _validate(self, num_queues: int) -> None:
        if num_queues <= 0:
            raise ValueError("queue count must be positive")


class FullyBalanced(TrafficShape):
    """FB: traffic through every queue, equally."""

    name = "FB"

    def weights(self, num_queues: int) -> List[float]:
        self._validate(num_queues)
        return [1.0] * num_queues

    def hot_queue_ids(self, num_queues: int) -> List[int]:
        self._validate(num_queues)
        return list(range(num_queues))


class ProportionallyConcentrated(TrafficShape):
    """PC: 20% of queues hot; the rest at 5% activity."""

    name = "PC"
    hot_fraction = 0.20

    def weights(self, num_queues: int) -> List[float]:
        self._validate(num_queues)
        hot = set(self.hot_queue_ids(num_queues))
        return [1.0 if q in hot else COLD_ACTIVITY for q in range(num_queues)]

    def hot_queue_ids(self, num_queues: int) -> List[int]:
        self._validate(num_queues)
        count = max(1, round(num_queues * self.hot_fraction))
        # Spread the hot queues evenly across the id space so scale-out
        # partitions receive proportionate hot sets by default.
        stride = num_queues / count
        ids = sorted({min(num_queues - 1, int(i * stride)) for i in range(count)})
        return ids


class NonproportionallyConcentrated(TrafficShape):
    """NC: a fixed 100 queues hot; the rest at 5% activity."""

    name = "NC"
    hot_count = 100

    def weights(self, num_queues: int) -> List[float]:
        self._validate(num_queues)
        hot = set(self.hot_queue_ids(num_queues))
        return [1.0 if q in hot else COLD_ACTIVITY for q in range(num_queues)]

    def hot_queue_ids(self, num_queues: int) -> List[int]:
        self._validate(num_queues)
        count = min(self.hot_count, num_queues)
        stride = num_queues / count
        return sorted({min(num_queues - 1, int(i * stride)) for i in range(count)})


class SingleQueue(TrafficShape):
    """SQ: everything through queue 0."""

    name = "SQ"

    def weights(self, num_queues: int) -> List[float]:
        self._validate(num_queues)
        return [1.0] + [0.0] * (num_queues - 1)

    def hot_queue_ids(self, num_queues: int) -> List[int]:
        self._validate(num_queues)
        return [0]


SHAPES: Dict[str, Type[TrafficShape]] = {
    cls.name: cls
    for cls in (
        FullyBalanced,
        ProportionallyConcentrated,
        NonproportionallyConcentrated,
        SingleQueue,
    )
}


def shape_by_name(name: str) -> TrafficShape:
    """Instantiate a shape from its paper abbreviation (FB/PC/NC/SQ)."""
    try:
        return SHAPES[name.upper()]()
    except KeyError:
        raise ValueError(f"unknown traffic shape {name!r}; expected one of {sorted(SHAPES)}")
