"""Closed-form performance models of both data planes.

An analytic mirror of the simulator: first-order predictions of peak
throughput and latency for the spinning and HyperPlane designs, built
from the same cost model and locality curves the simulation charges.
Two uses:

1. **Validation** — ``tests/test_analysis_models.py`` pins simulation
   results to these predictions (a different axis from the queueing-
   theory and structural-mode validations).
2. **Insight** — the formulas make the paper's trends legible: e.g.
   spinning peak throughput is ``1 / (S + stall + polls_per_task x
   poll_cost)`` with ``polls_per_task = (n - hot) / hot``, which is the
   entire Fig. 8 story in one line.
"""

from repro.analysis.models import (
    AnalyticInputs,
    hyperplane_peak_throughput,
    hyperplane_response_time,
    hyperplane_zero_load_latency,
    spinning_peak_throughput,
    spinning_zero_load_latency,
)

__all__ = [
    "AnalyticInputs",
    "hyperplane_peak_throughput",
    "hyperplane_response_time",
    "hyperplane_zero_load_latency",
    "spinning_peak_throughput",
    "spinning_zero_load_latency",
]
