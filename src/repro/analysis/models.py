"""First-order closed forms for both data planes.

All predictions consume an :class:`AnalyticInputs` bundle derived from
the same :class:`~repro.mem.costmodel.CostModel` and
:class:`~repro.sdp.locality.LocalityModel` the simulator charges, so
any disagreement between formula and simulation is a modelling error,
not a constants mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.costmodel import CostModel, derive_cost_model
from repro.queueing.theory import mmc_mean_wait, mmc_wait_percentile
from repro.sdp.locality import LocalityModel
from repro.sim.clock import Clock
from repro.traffic.shapes import TrafficShape, shape_by_name
from repro.workloads.service import WorkloadSpec, workload_by_name

# Mirrors of the simulator's fixed per-task overheads (cycles).
_HP_SELECTION_NS = 12.25


@dataclass
class AnalyticInputs:
    """Everything the closed forms need, derived once."""

    workload: WorkloadSpec
    shape: TrafficShape
    num_queues: int
    num_cores: int = 1
    clock: Clock = field(default_factory=Clock)
    cost_model: CostModel = field(default_factory=derive_cost_model)
    locality: Optional[LocalityModel] = None

    def __post_init__(self):
        if isinstance(self.workload, str):
            self.workload = workload_by_name(self.workload)
        if isinstance(self.shape, str):
            self.shape = shape_by_name(self.shape)
        if self.locality is None:
            self.locality = LocalityModel(self.cost_model)

    # -- shared pieces ------------------------------------------------------------

    @property
    def service_cycles(self) -> float:
        return self.clock.seconds_to_cycles(self.workload.mean_service_seconds)

    @property
    def stall_cycles(self) -> float:
        return self.locality.task_data_stall_cycles(self.num_queues)

    @property
    def queues_per_cluster(self) -> int:
        # Closed forms model the single-cluster (scale-up) organisation.
        return self.num_queues

    @property
    def empty_poll_cycles(self) -> float:
        return self.locality.empty_poll_cost(self.queues_per_cluster, self.num_queues)

    @property
    def ready_poll_cycles(self) -> float:
        return self.cost_model.remote_transfer + self.cost_model.poll_loop_overhead

    @property
    def dequeue_path_cycles(self) -> float:
        return self.cost_model.dequeue + self.cost_model.doorbell_update

    def cycles_to_seconds(self, cycles: float) -> float:
        return self.clock.cycles_to_seconds(cycles)


# -- spinning data plane ---------------------------------------------------------------


def spinning_peak_throughput(inputs: AnalyticInputs) -> float:
    """Saturation completions/second of one spinning core.

    At saturation the shape's hot queues are always ready, so each task
    costs the service time, the LLC-pressure stall, the dequeue path,
    one ready-queue poll, and ``(n - hot) / hot`` empty polls — the
    paper's ``n ~= 5 for PC, 1 for FB`` observation (Section V-B).
    """
    empty_polls = inputs.shape.empty_polls_per_task(inputs.num_queues)
    per_task_cycles = (
        inputs.service_cycles
        + inputs.stall_cycles
        + inputs.dequeue_path_cycles
        + inputs.ready_poll_cycles
        + empty_polls * inputs.empty_poll_cycles
    )
    return 1.0 / inputs.cycles_to_seconds(per_task_cycles)


def spinning_zero_load_latency(
    inputs: AnalyticInputs, percentile: Optional[float] = None
) -> float:
    """Zero-load response time of the spinning plane, in seconds.

    An arrival lands a uniformly random distance ahead of the iterator:
    the mean scan skips ``n/2`` empty heads; the p-th percentile skips
    ``p*n``. Service and the fixed dequeue path are added on top.
    """
    n = inputs.queues_per_cluster
    if percentile is None:
        skipped = n / 2.0
    else:
        if not 0.0 < percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        skipped = percentile * n
    cycles = (
        skipped * inputs.empty_poll_cycles
        + inputs.ready_poll_cycles
        + inputs.dequeue_path_cycles
        + inputs.service_cycles
        + inputs.stall_cycles
    )
    return inputs.cycles_to_seconds(cycles)


# -- HyperPlane -------------------------------------------------------------------------


def _hyperplane_overhead_cycles(inputs: AnalyticInputs) -> float:
    cm = inputs.cost_model
    selection = inputs.clock.ns_to_cycles(_HP_SELECTION_NS)
    return (
        cm.qwait
        + selection
        + cm.qwait_verify
        + cm.qwait_reconsider
        + inputs.dequeue_path_cycles
    )


def hyperplane_task_time_seconds(inputs: AnalyticInputs) -> float:
    """Mean per-task occupancy of a HyperPlane core."""
    cycles = (
        inputs.service_cycles
        + inputs.stall_cycles
        + _hyperplane_overhead_cycles(inputs)
    )
    return inputs.cycles_to_seconds(cycles)


def hyperplane_peak_throughput(inputs: AnalyticInputs) -> float:
    """Saturation completions/second of one HyperPlane core: queue-count
    independent except for the LLC-pressure stall."""
    return 1.0 / hyperplane_task_time_seconds(inputs)


def hyperplane_zero_load_latency(
    inputs: AnalyticInputs, power_optimized: bool = False
) -> float:
    """Zero-load response time: task time plus monitoring-set snoop, plus
    the C1 wake-up when power-optimised."""
    extra = inputs.cost_model.monitoring_lookup
    if power_optimized:
        extra += inputs.cost_model.c1_wakeup
    return hyperplane_task_time_seconds(inputs) + inputs.cycles_to_seconds(extra)


def hyperplane_response_time(
    inputs: AnalyticInputs, load: float, percentile: Optional[float] = None
) -> float:
    """Open-loop response time under load: M/M/c on the effective
    per-task time across the configured cores (scale-up pooling).

    ``load`` is the paper's axis (fraction of *ideal* capacity); the
    fixed overheads raise effective utilisation, which the formula
    accounts for. Returns mean response time, or the p-th percentile
    when ``percentile`` is given.
    """
    if not 0.0 < load < 1.0:
        raise ValueError("load must be in (0, 1)")
    task_time = hyperplane_task_time_seconds(inputs)
    arrival_rate = load * inputs.num_cores / inputs.workload.mean_service_seconds
    service_rate = 1.0 / task_time
    if arrival_rate >= inputs.num_cores * service_rate:
        raise ValueError("effective utilisation exceeds capacity")
    if percentile is None:
        wait = mmc_mean_wait(arrival_rate, service_rate, inputs.num_cores)
    else:
        wait = mmc_wait_percentile(
            arrival_rate, service_rate, inputs.num_cores, percentile
        )
    return wait + task_time
