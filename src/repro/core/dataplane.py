"""The HyperPlane data-plane core: Algorithm 1.

Each core loops: QWAIT (halt if nothing ready), QWAIT-VERIFY (filter
spurious wake-ups), dequeue, QWAIT-RECONSIDER (re-arm or re-activate),
process, notify the tenant. Cycle costs come from the cost model; the
power-optimised mode adds the C1 wake-up penalty to QWAIT returns that
interrupted a sufficiently long halt.

Three optional behaviours from the paper are supported:

- **batching** (Section III-B: "the dequeue operation can retrieve a
  batch of items provided it correspondingly decrements the doorbell
  counter") — ``batch_size > 1`` drains up to that many items per QWAIT;
- **in-order mode** (Section III-B: for flow-stateful applications,
  "lines 18 and 19 should be swapped") — ``in_order=True`` finishes
  processing before RECONSIDER, forbidding intra-queue concurrency;
- **work stealing** (Section III-B, deferred future work for NUMA) —
  ``work_stealing=True`` lets a core whose local ready set is empty pull
  a QID from a remote cluster's ready set at an inter-socket penalty.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.accelerator import HyperPlaneAccelerator
from repro.sdp.config import QWAIT_PATH_INSTRUCTIONS, SDPConfig, USEFUL_TASK_IPC
from repro.sdp.system import Cluster, DataPlaneSystem

# A halt shorter than this does not reach C1 (entry takes time), so it
# pays no wake-up penalty in the power-optimised mode.
C1_RESIDENCY_MIN_SECONDS = 1.0e-6

# Instructions on the HyperPlane dequeue/completion path (ring update,
# doorbell decrement, tenant doorbell write) — same work as the spinning
# plane's path.
DEQUEUE_PATH_INSTRUCTIONS = 60

# Extra cycles to fetch a QID from a remote socket's ready set
# (inter-socket hop, ~100 ns at 3 GHz).
STEAL_PENALTY_CYCLES = 300


class HyperPlaneCore:
    """One QWAIT-driven data-plane core bound to a cluster."""

    def __init__(
        self,
        system: DataPlaneSystem,
        accelerator: HyperPlaneAccelerator,
        core_id: int,
        cluster: Cluster,
        batch_size: int = 1,
        in_order: bool = False,
        work_stealing: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.system = system
        self.accelerator = accelerator
        self.core_id = core_id
        self.cluster = cluster
        self.batch_size = batch_size
        self.in_order = in_order
        self.work_stealing = work_stealing
        self.activity = system.metrics.activities[core_id]
        self.spurious_filtered = 0
        self.steals = 0
        self.servicing: Optional[int] = None
        self.process = system.sim.spawn(self._run(), name=f"hp-core-{core_id}")

    def _run(self):
        sim = self.system.sim
        clock = self.system.clock
        cost_model = self.system.cost_model
        config = self.system.config
        accelerator = self.accelerator
        ready_set = accelerator.ready_set_of(self.cluster)
        activity = self.activity
        while True:
            # ---- QWAIT ------------------------------------------------------
            wake_penalty = 0.0
            steal_penalty = 0.0

            def select():
                nonlocal steal_penalty
                found = ready_set.select_and_take()
                if found is None and self.work_stealing:
                    found = accelerator.qwait_steal(self.cluster)
                    if found is not None:
                        self.steals += 1
                        steal_penalty = STEAL_PENALTY_CYCLES
                return found

            qid = select()
            while qid is None:
                event = accelerator.halt(self.cluster, self.core_id)
                halt_start = sim.now
                yield event
                halted = clock.seconds_to_cycles(sim.now - halt_start)
                activity.halted_cycles += halted
                activity.wakeups += 1
                if config.power_optimized and (
                    sim.now - halt_start >= C1_RESIDENCY_MIN_SECONDS
                ):
                    activity.c1_cycles += halted
                    wake_penalty = float(cost_model.c1_wakeup)
                qid = select()
            # The ready bit is consumed from here until RECONSIDER runs:
            # the queue is "held" by this core for invariant purposes.
            self.servicing = qid
            qwait_cycles = (
                cost_model.qwait
                + ready_set.selection_cycles(clock)
                + wake_penalty
                + steal_penalty
            )
            yield clock.cycles_to_seconds(qwait_cycles)
            activity.busy_cycles += qwait_cycles
            activity.useful_instructions += QWAIT_PATH_INSTRUCTIONS

            # ---- QWAIT-VERIFY (atomic: empty-test + re-arm) -------------------
            yield clock.cycles_to_seconds(cost_model.qwait_verify)
            activity.busy_cycles += cost_model.qwait_verify
            if not accelerator.qwait_verify(qid):
                self.spurious_filtered += 1
                self.system.metrics.spurious_wakeups += 1
                self.servicing = None
                continue

            # ---- dequeue (single item or a batch) ------------------------------
            queue = self.system.queues[qid]
            take = min(self.batch_size, len(queue))
            items = [queue.dequeue(sim.now) for _ in range(take)]
            for _ in items:
                self.system.notify_dequeue(qid)
            dequeue_cycles = cost_model.dequeue * len(items)
            yield clock.cycles_to_seconds(dequeue_cycles)
            activity.busy_cycles += dequeue_cycles

            if self.in_order:
                # Flow-stateful mode: finish processing before the queue
                # may be handed to another core (lines 18/19 swapped).
                yield from self._process(items)
                yield from self._reconsider(qid)
            else:
                yield from self._reconsider(qid)
                yield from self._process(items)

    def _reconsider(self, qid: int):
        clock = self.system.clock
        cost_model = self.system.cost_model
        yield clock.cycles_to_seconds(cost_model.qwait_reconsider)
        self.activity.busy_cycles += cost_model.qwait_reconsider
        self.accelerator.qwait_reconsider(qid)
        self.servicing = None

    def _process(self, items):
        clock = self.system.clock
        cost_model = self.system.cost_model
        activity = self.activity
        for item in items:
            service_cycles = (
                clock.seconds_to_cycles(item.service_time)
                + self.system.task_data_stall
            )
            tail = service_cycles + cost_model.doorbell_update
            yield clock.cycles_to_seconds(tail)
            self.system.complete(item)
            activity.busy_cycles += tail
            activity.useful_instructions += (
                service_cycles * USEFUL_TASK_IPC + DEQUEUE_PATH_INSTRUCTIONS
            )
            activity.tasks += 1


def build_hyperplane(
    system: DataPlaneSystem,
    policy: str = "rr",
    weights=None,
    software_ready_set: bool = False,
    batch_size: int = 1,
    in_order: bool = False,
    work_stealing: bool = False,
) -> tuple:
    """Attach an accelerator and spawn one HyperPlane core per config'd core.

    Returns ``(accelerator, cores)``.
    """
    accelerator = HyperPlaneAccelerator(
        system,
        policy=policy,
        weights=weights,
        software_ready_set=software_ready_set,
    )
    accelerator.work_stealing_enabled = work_stealing
    cores: List[HyperPlaneCore] = []
    for cluster in system.clusters:
        for core_id in cluster.plan.core_ids:
            cores.append(
                HyperPlaneCore(
                    system,
                    accelerator,
                    core_id,
                    cluster,
                    batch_size=batch_size,
                    in_order=in_order,
                    work_stealing=work_stealing,
                )
            )
    return accelerator, cores
