"""HyperPlane: the paper's contribution.

A hardware notification accelerator for software data planes:

- :mod:`repro.core.ppa` — Programmable Priority Arbiter models: the
  bit-slice ripple design of Fig. 7 and the thermometer-coded
  Brent–Kung parallel-prefix design (Section IV-B), equivalence-tested.
- :mod:`repro.core.policies` — round-robin, weighted round-robin and
  strict-priority service policies.
- :mod:`repro.core.ready_set` — the hardware ready set (Fig. 6: ready
  bits, mask bits, PPA select) and the software-iterator alternative
  evaluated in Fig. 13.
- :mod:`repro.core.monitoring_set` — the ZCache-style Cuckoo-hash
  monitoring set (Section IV-A) that snoops doorbell writes.
- :mod:`repro.core.accelerator` — wiring: driver setup (QWAIT_init /
  QWAIT-ADD with conflict reallocation), snoop path, halted-core
  wake-up, power-optimised (C1) mode.
- :mod:`repro.core.dataplane` — the QWAIT-based data-plane core loop
  (Algorithm 1), including QWAIT-VERIFY and QWAIT-RECONSIDER.
"""

from repro.core.accelerator import HyperPlaneAccelerator
from repro.core.banked import BankedMonitoringSet, spread_doorbells
from repro.core.dataplane import HyperPlaneCore, build_hyperplane
from repro.core.monitoring_set import CuckooMonitoringSet, MonitoringEntry
from repro.core.policies import (
    RoundRobinPolicy,
    ServicePolicy,
    StrictPriorityPolicy,
    WeightedRoundRobinPolicy,
    policy_by_name,
)
from repro.core.ppa import brent_kung_ppa, ppa_select, ripple_ppa
from repro.core.ready_set import HardwareReadySet, ReadySet, SoftwareReadySet
from repro.core.runner import run_hyperplane

__all__ = [
    "BankedMonitoringSet",
    "CuckooMonitoringSet",
    "HardwareReadySet",
    "HyperPlaneAccelerator",
    "HyperPlaneCore",
    "MonitoringEntry",
    "ReadySet",
    "RoundRobinPolicy",
    "ServicePolicy",
    "SoftwareReadySet",
    "StrictPriorityPolicy",
    "WeightedRoundRobinPolicy",
    "brent_kung_ppa",
    "build_hyperplane",
    "policy_by_name",
    "ppa_select",
    "ripple_ppa",
    "run_hyperplane",
    "spread_doorbells",
]
