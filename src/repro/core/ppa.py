"""Programmable Priority Arbiter (PPA) models.

The ready set's selector (paper, Fig. 6/7): given a *ready* bit vector
and a one-hot *current priority* vector, produce a one-hot *select*
vector — the first ready bit at or after the priority position, wrapping
around.

Two implementations are modelled:

- :func:`ripple_ppa` — the bit-slice ripple design of Fig. 7(b):
  priority propagates cell by cell, giving linear delay (and the
  combinational wrap-around loop the paper criticises).
- :func:`brent_kung_ppa` — the modern design (Section IV-B): thermometer
  coding removes the wrap-around, and a Brent–Kung parallel-prefix
  network reduces delay to logarithmic.

Both return ``(select_vector, gate_delay)``; tests assert they agree on
the selection for all inputs. The delay figures feed the hardware cost
model (:mod:`repro.experiments.hwcost`).
"""

from __future__ import annotations

from typing import List, Tuple


def _check_inputs(ready: int, priority: int, width: int) -> None:
    if width <= 0:
        raise ValueError("width must be positive")
    limit = 1 << width
    if not 0 <= ready < limit:
        raise ValueError("ready vector wider than the arbiter")
    if not 0 <= priority < limit:
        raise ValueError("priority vector wider than the arbiter")
    if priority and priority & (priority - 1):
        raise ValueError("priority vector must be one-hot (or zero)")


def ripple_ppa(ready: int, priority: int, width: int) -> Tuple[int, int]:
    """Bit-slice ripple PPA (Fig. 7).

    Each cell selects if its ready bit is set and it holds priority
    (directly or rippled from the previous cell); otherwise it passes
    priority on. Delay is the number of cells the priority traversed —
    linear in ``width`` in the worst case.
    """
    _check_inputs(ready, priority, width)
    if priority == 0:
        priority = 1  # reset state: highest priority at bit 0
    start = priority.bit_length() - 1
    for steps in range(width):
        index = (start + steps) % width
        if ready & (1 << index):
            return 1 << index, steps + 1
    return 0, width


def _prefix_or_brent_kung(bits: List[bool]) -> Tuple[List[bool], int]:
    """Exclusive prefix-OR via an explicit Brent–Kung network.

    Returns (prefix, stage_count): ``prefix[i]`` is the OR of
    ``bits[0..i-1]``. The network is built stage by stage (up-sweep then
    down-sweep) so the returned stage count is the real circuit depth.
    """
    n = len(bits)
    width = 1
    while width < n:
        width <<= 1
    values = list(bits) + [False] * (width - n)
    stages = 0
    # Up-sweep: values[k] accumulates OR of its subtree.
    gap = 1
    while gap < width:
        for right in range(2 * gap - 1, width, 2 * gap):
            values[right] = values[right] or values[right - gap]
        stages += 1
        gap <<= 1
    # Down-sweep for the exclusive prefix.
    values[width - 1] = False
    gap = width >> 1
    while gap >= 1:
        for right in range(2 * gap - 1, width, 2 * gap):
            left = right - gap
            temp = values[left]
            values[left] = values[right]
            values[right] = values[right] or temp
        stages += 1
        gap >>= 1
    return values[:n], stages


def brent_kung_ppa(ready: int, priority: int, width: int) -> Tuple[int, int]:
    """Thermometer-coded PPA with a Brent–Kung prefix network.

    The request vector is conceptually rotated so the priority position
    is bit 0 (thermometer coding eliminates the wrap-around connection);
    the first set bit is then ``request & ~prefix_or(request)`` and the
    select vector is rotated back. Delay is the prefix network's stage
    count (2 log2 width) plus the fixed rotate/mask stages.
    """
    _check_inputs(ready, priority, width)
    if priority == 0:
        priority = 1
    start = priority.bit_length() - 1
    full = (1 << width) - 1
    rotated = ((ready >> start) | (ready << (width - start))) & full
    bits = [(rotated >> i) & 1 == 1 for i in range(width)]
    prefix, stages = _prefix_or_brent_kung(bits)
    select_rotated = 0
    for i in range(width):
        if bits[i] and not prefix[i]:
            select_rotated = 1 << i
            break
    select = ((select_rotated << start) | (select_rotated >> (width - start))) & full
    rotate_and_mask_stages = 3  # barrel rotate in/out + the AND-NOT mask
    return select, stages + rotate_and_mask_stages


def ppa_select(ready: int, priority: int, width: int) -> int:
    """Fast-path selection used by the simulation (no delay modelling).

    Bit-trick equivalent of both hardware models; the property tests in
    ``tests/test_core_ppa.py`` pin all three to identical selections.
    """
    _check_inputs(ready, priority, width)
    if ready == 0:
        return 0
    if priority == 0:
        priority = 1
    start = priority.bit_length() - 1
    ahead = ready >> start
    if ahead:
        return 1 << (start + ((ahead & -ahead).bit_length() - 1))
    behind = ready & ((1 << start) - 1)
    return behind & -behind
