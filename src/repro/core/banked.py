"""Banked monitoring set for distributed directories.

Paper, Section IV-A: "In the case of distributed directories, the
monitoring set must also be banked, attached to individual directory
banks. In such cases, the driver must spread doorbell addresses across
banks."

:class:`BankedMonitoringSet` presents the same interface as
:class:`~repro.core.monitoring_set.CuckooMonitoringSet` but shards
entries across per-directory-bank tables by the same address-interleave
a banked LLC/directory uses (line-address bits above the offset).
:func:`spread_doorbells` is the driver-side helper that re-allocates
doorbell addresses until every bank carries a near-even share.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.monitoring_set import CuckooMonitoringSet, MonitoringEntry
from repro.mem.address import CACHE_LINE_BYTES, DoorbellRegion, line_address


class BankedMonitoringSet:
    """N per-bank Cuckoo tables behind one monitoring-set interface.

    Parameters
    ----------
    capacity:
        Total entries across banks (Table I: 1024).
    num_banks:
        Directory banks; must divide ``capacity``. Bank selection uses
        line-address bits (``line // 64 % num_banks``), matching the
        usual directory interleave.
    """

    def __init__(
        self,
        capacity: int = 1024,
        num_banks: int = 4,
        ways: int = 4,
        max_walk: int = 64,
        seed: int = 0,
    ):
        if num_banks <= 0 or capacity % num_banks:
            raise ValueError("capacity must be a positive multiple of num_banks")
        if num_banks & (num_banks - 1):
            raise ValueError("bank count must be a power of two (address interleave)")
        self.capacity = capacity
        self.num_banks = num_banks
        self.banks: List[CuckooMonitoringSet] = [
            CuckooMonitoringSet(
                capacity=capacity // num_banks,
                ways=ways,
                max_walk=max_walk,
                seed=seed + bank,
            )
            for bank in range(num_banks)
        ]

    def bank_of(self, tag: int) -> int:
        """The directory bank responsible for a line address."""
        return (tag // CACHE_LINE_BYTES) % self.num_banks

    # -- CuckooMonitoringSet-compatible interface -----------------------------------

    def insert(self, tag: int, qid: int, armed: bool = True) -> bool:
        """Insert into the owning bank; False on that bank's conflict.

        Note the failure mode the paper's driver guidance exists for: a
        *bank* can fill while others are near-empty, so the driver must
        spread doorbell addresses (see :func:`spread_doorbells`).
        """
        return self.banks[self.bank_of(tag)].insert(tag, qid, armed)

    def remove(self, tag: int) -> bool:
        return self.banks[self.bank_of(tag)].remove(tag)

    def lookup(self, tag: int) -> Optional[MonitoringEntry]:
        return self.banks[self.bank_of(tag)].lookup(tag)

    def snoop_write(self, tag: int) -> Optional[int]:
        """Only the owning bank sees the transaction — that is the point
        of banking: each bank snoops its directory slice's traffic."""
        return self.banks[self.bank_of(tag)].snoop_write(tag)

    def arm(self, tag: int) -> None:
        self.banks[self.bank_of(tag)].arm(tag)

    def is_armed(self, tag: int) -> bool:
        return self.banks[self.bank_of(tag)].is_armed(tag)

    @property
    def occupancy(self) -> int:
        return sum(bank.occupancy for bank in self.banks)

    @property
    def load_factor(self) -> float:
        return self.occupancy / self.capacity

    @property
    def snoop_hits(self) -> int:
        return sum(bank.snoop_hits for bank in self.banks)

    @property
    def snoop_misses(self) -> int:
        return sum(bank.snoop_misses for bank in self.banks)

    def bank_occupancies(self) -> List[int]:
        """Per-bank entry counts (for balance diagnostics)."""
        return [bank.occupancy for bank in self.banks]

    def check_invariants(self) -> None:
        """Per-bank table invariants plus tag-to-bank placement."""
        for bank_index, bank in enumerate(self.banks):
            bank.check_invariants()
            for way_rows in bank._table:
                for entry in way_rows:
                    if entry is not None and self.bank_of(entry.tag) != bank_index:
                        raise AssertionError(
                            f"tag {entry.tag:#x} stored in wrong bank {bank_index}"
                        )


def spread_doorbells(
    region: DoorbellRegion,
    monitoring: BankedMonitoringSet,
    num_queues: int,
    max_attempts_per_queue: int = 64,
) -> Dict[int, int]:
    """Driver-side allocation: give every queue a doorbell address whose
    bank accepts it, re-allocating on per-bank conflicts.

    Returns {qid: doorbell address}. Because the region hands out
    consecutive lines, consecutive queues naturally interleave across
    banks; the retry loop only triggers when a bank saturates.
    """
    assignment: Dict[int, int] = {}
    for qid in range(num_queues):
        # Hold failed addresses until placement succeeds: freeing one
        # immediately would make the allocator hand the same slot back.
        failed: List[int] = []
        addr = region.allocate()
        while not monitoring.insert(line_address(addr), qid):
            failed.append(addr)
            if len(failed) >= max_attempts_per_queue:
                for rejected in failed:
                    region.free(rejected)
                raise RuntimeError(
                    f"could not place doorbell for queue {qid}: banks full"
                )
            addr = region.allocate()
        for rejected in failed:
            region.free(rejected)
        assignment[qid] = addr
    return assignment
