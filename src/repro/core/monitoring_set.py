"""The monitoring set: a ZCache-style Cuckoo hash of doorbell tags.

Paper, Section IV-A. The structure maps cache-line tags (doorbell line
addresses) to QIDs with a *monitoring bit* (armed = watching for write
transactions). Lookups probe one row per way (2 ways here, as in the
paper's cost analysis: "similar to the tag array of a 2-way associative
cache"); insertions may perform a Cuckoo table walk, displacing entries
between ways. Walks happen only on QWAIT-ADD (tenant connect), never on
arm/disarm.

Conflicts (walk exhaustion) surface to the driver, which reallocates a
different doorbell address for the QID — also as in the paper; 5–10%
over-provisioning makes this negligibly rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

_GOLDEN64 = 0x9E3779B97F4A7C15


def _mix(value: int, seed: int) -> int:
    """A splitmix64-style mixer for the way hash functions."""
    value = (value + seed + _GOLDEN64) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass
class MonitoringEntry:
    """One monitoring-set entry: tag, QID, monitoring bit."""

    tag: int
    qid: int
    armed: bool = True


class CuckooMonitoringSet:
    """A ``ways``-way Cuckoo hash of :class:`MonitoringEntry`.

    Parameters
    ----------
    capacity:
        Total entries (Table I: 1024). Rows per way = capacity / ways.
    ways:
        Hash functions / ways. Data-path lookups still probe only the
        tag's candidate rows (cheap, as in the paper's "2-way lookup"
        cost analysis), but the *walk* needs >= 4 hash choices for the
        5-10% over-provisioning claim to hold: a plain 2-choice Cuckoo
        table saturates near 50% load factor, which is exactly the gap
        ZCache's decoupled ways/associativity closes.
    max_walk:
        Displacement-chain bound before an insert reports a conflict.
    seed:
        Hash seed (determinism across runs).
    """

    def __init__(self, capacity: int = 1024, ways: int = 4, max_walk: int = 64, seed: int = 0):
        if capacity <= 0 or ways <= 0 or capacity % ways:
            raise ValueError("capacity must be a positive multiple of ways")
        self.capacity = capacity
        self.ways = ways
        self.rows = capacity // ways
        self.max_walk = max_walk
        self._seeds = [_mix(seed, way + 1) for way in range(ways)]
        self._table: List[List[Optional[MonitoringEntry]]] = [
            [None] * self.rows for _ in range(ways)
        ]
        self._location: Dict[int, Tuple[int, int]] = {}  # tag -> (way, row)
        self.inserts = 0
        self.failed_inserts = 0
        self.total_walk_length = 0
        self.snoop_hits = 0
        self.snoop_misses = 0

    def _row(self, tag: int, way: int) -> int:
        return _mix(tag, self._seeds[way]) % self.rows

    # -- driver-facing operations (QWAIT-ADD / QWAIT-REMOVE) -----------------

    def insert(self, tag: int, qid: int, armed: bool = True) -> bool:
        """QWAIT-ADD: add a doorbell tag; False on a Cuckoo conflict.

        On conflict the table is restored to its pre-insert state so the
        driver can retry with a different doorbell address.
        """
        if tag in self._location:
            raise ValueError(f"tag {tag:#x} already monitored")
        if len(self._location) >= self.capacity:
            self.failed_inserts += 1
            return False
        entry = MonitoringEntry(tag, qid, armed)
        moves: List[Tuple[int, int, MonitoringEntry]] = []
        walk_state = _mix(tag, 0xA5A5)
        way = walk_state % self.ways
        for step in range(self.max_walk):
            # Prefer any empty candidate row for the entry in hand.
            empty_way = next(
                (w for w in range(self.ways) if self._table[w][self._row(entry.tag, w)] is None),
                None,
            )
            if empty_way is not None:
                way = empty_way
            row = self._row(entry.tag, way)
            occupant = self._table[way][row]
            self._table[way][row] = entry
            self._location[entry.tag] = (way, row)
            moves.append((way, row, entry))
            if occupant is None:
                self.inserts += 1
                self.total_walk_length += step + 1
                return True
            del self._location[occupant.tag]
            entry = occupant
            # Random-walk eviction: displace into a pseudo-random other way
            # (a ZCache-style walk explores instead of cycling).
            walk_state = _mix(walk_state, step)
            way = (way + 1 + walk_state % (self.ways - 1)) % self.ways if self.ways > 1 else 0
        # Walk exhausted: undo the displacement chain exactly. Each
        # displaced occupant's original slot is the slot its displacer
        # took, and the final homeless occupant is `entry`.
        chain = [moved for _, _, moved in moves] + [entry]
        for index in reversed(range(len(moves))):
            way_index, row_index, _ = moves[index]
            occupant = chain[index + 1]
            self._table[way_index][row_index] = occupant
            self._location[occupant.tag] = (way_index, row_index)
        self._location.pop(tag, None)
        self.failed_inserts += 1
        return False

    def remove(self, tag: int) -> bool:
        """QWAIT-REMOVE: drop a tag; returns whether it was present."""
        location = self._location.pop(tag, None)
        if location is None:
            return False
        way, row = location
        self._table[way][row] = None
        return True

    # -- data-path operations -------------------------------------------------

    def lookup(self, tag: int) -> Optional[MonitoringEntry]:
        """Probe the ways for a tag (the 2-way lookup of Section IV-C)."""
        location = self._location.get(tag)
        if location is None:
            return None
        way, row = location
        return self._table[way][row]

    def snoop_write(self, tag: int) -> Optional[int]:
        """A write transaction hit this line: if armed, disarm + return QID."""
        entry = self.lookup(tag)
        if entry is not None and entry.armed:
            entry.armed = False
            self.snoop_hits += 1
            return entry.qid
        self.snoop_misses += 1
        return None

    def arm(self, tag: int) -> None:
        """Re-arm a tag (QWAIT-VERIFY / QWAIT-RECONSIDER empty path)."""
        entry = self.lookup(tag)
        if entry is None:
            raise KeyError(f"tag {tag:#x} is not monitored")
        entry.armed = True

    def is_armed(self, tag: int) -> bool:
        entry = self.lookup(tag)
        return entry is not None and entry.armed

    # -- diagnostics -----------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._location)

    @property
    def load_factor(self) -> float:
        return self.occupancy / self.capacity

    @property
    def mean_walk_length(self) -> float:
        if not self.inserts:
            return 0.0
        return self.total_walk_length / self.inserts

    def check_invariants(self) -> None:
        """Location index and table must agree; tags placed at a hash row."""
        seen = 0
        for way, rows in enumerate(self._table):
            for row, entry in enumerate(rows):
                if entry is None:
                    continue
                seen += 1
                if self._location.get(entry.tag) != (way, row):
                    raise AssertionError(f"index out of sync for tag {entry.tag:#x}")
                if self._row(entry.tag, way) != row:
                    raise AssertionError(f"tag {entry.tag:#x} in a non-hash row")
        if seen != len(self._location):
            raise AssertionError("orphaned index entries")
