"""HyperPlane accelerator wiring.

Connects the monitoring set to the system's doorbell write path (the
fast-simulation equivalent of snooping GetM transactions at the
directory), maintains one ready set per cluster (the paper's partitioned
comparison: scale-out / scale-up-2 HyperPlane only returns a core's own
queue subset), and manages halted cores: when a monitored doorbell
fires, the matched QID is activated in its cluster's ready set and one
halted core of that cluster is woken.

Also implements the control plane: QWAIT_init (doorbell address range +
service policy), QWAIT-ADD with driver-side reallocation on a Cuckoo
conflict, and QWAIT-REMOVE.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.monitoring_set import CuckooMonitoringSet
from repro.core.policies import policy_by_name
from repro.core.ready_set import HardwareReadySet, ReadySet, SoftwareReadySet
from repro.mem.address import line_address
from repro.queueing.doorbell import Doorbell
from repro.sdp.system import Cluster, DataPlaneSystem
from repro.sim.events import Event

# Monitoring set over-provisioning vs. the live doorbell count
# (Section IV-A: 5-10% over-provisioning makes conflicts negligible).
OVERPROVISION = 1.10


class HyperPlaneAccelerator:
    """The shared notification subsystem.

    Parameters
    ----------
    system:
        The data-plane substrate to attach to.
    policy:
        Service policy name: "rr" (default), "wrr", or "strict".
    weights:
        Per-QID weights for the "wrr" policy.
    software_ready_set:
        Use the software iterator implementation (Fig. 13 comparison).
    monitoring_entries:
        Monitoring-set capacity; default is Table I's 1024 entries or
        10%-over-provisioned queue count, whichever is larger.
    """

    def __init__(
        self,
        system: DataPlaneSystem,
        policy: str = "rr",
        weights: Optional[Dict[int, int]] = None,
        software_ready_set: bool = False,
        monitoring_entries: Optional[int] = None,
    ):
        self.system = system
        config = system.config
        if monitoring_entries is None:
            needed = int(config.num_queues * OVERPROVISION) + 4
            monitoring_entries = max(1024, needed + (-needed % 4))
        self.monitoring = CuckooMonitoringSet(
            capacity=monitoring_entries, ways=4, seed=config.seed
        )
        self.policy_name = policy
        ready_cls = SoftwareReadySet if software_ready_set else HardwareReadySet
        self.ready_sets: Dict[int, ReadySet] = {}
        self._cluster_of_qid: Dict[int, Cluster] = {}
        width = config.num_queues
        for cluster in system.clusters:
            self.ready_sets[cluster.plan.cluster_id] = ready_cls(
                capacity=width, policy=policy_by_name(policy, width, weights)
            )
            for qid in cluster.plan.queue_ids:
                self._cluster_of_qid[qid] = cluster

        # Halted cores, per cluster: (core_id, wake event) FIFO.
        self._halted: Dict[int, Deque[Tuple[int, Event]]] = {
            cluster.plan.cluster_id: deque() for cluster in system.clusters
        }
        self._tag_of_qid: Dict[int, int] = {}
        # When any core runs with work stealing, activations may wake
        # halted cores in *other* clusters (set by build_hyperplane).
        self.work_stealing_enabled = False
        self.reallocations = 0
        self.spurious_injected = 0
        self._spurious_rng = system.streams.stream("spurious-wakes")

        self._register_doorbells()
        system.doorbell_write_hooks.append(self._on_doorbell_write)

    # -- control plane ---------------------------------------------------------

    def _register_doorbells(self) -> None:
        """QWAIT-ADD every queue's doorbell, reallocating on conflict."""
        for doorbell in self.system.doorbells:
            tag = line_address(doorbell.address)
            attempts = 0
            while not self.monitoring.insert(tag, doorbell.qid, armed=True):
                # Driver-side conflict handling: allocate a fresh doorbell
                # address and retry (paper, Section IV-A).
                attempts += 1
                if attempts > 64:
                    raise RuntimeError("monitoring set cannot place doorbell")
                self.system.doorbell_region.free(doorbell.address)
                doorbell.address = self.system.doorbell_region.allocate()
                tag = line_address(doorbell.address)
                self.reallocations += 1
            self._tag_of_qid[doorbell.qid] = tag
            if not doorbell.is_empty():
                # The queue already has work at connect time (the driver's
                # post-ADD verify): consume the arm and activate directly,
                # as the arrival's write transaction happened before we
                # started snooping.
                self.monitoring.snoop_write(tag)
                self._activate(doorbell.qid)

    def remove_queue(self, qid: int) -> None:
        """QWAIT-REMOVE: stop monitoring a departing tenant's queue."""
        tag = self._tag_of_qid.pop(qid, None)
        if tag is None:
            raise KeyError(f"qid {qid} is not registered")
        self.monitoring.remove(tag)
        cluster = self._cluster_of_qid[qid]
        self.ready_sets[cluster.plan.cluster_id].deactivate(qid)

    # -- snoop path --------------------------------------------------------------

    def _on_doorbell_write(self, doorbell: Doorbell) -> None:
        tag = line_address(doorbell.address)
        qid = self.monitoring.snoop_write(tag)
        if qid is not None:
            self._activate(qid)
        rate = self.system.config.spurious_wake_rate
        if rate and self._spurious_rng.random() < rate:
            self._inject_spurious_wake()

    def _inject_spurious_wake(self) -> None:
        """Model a false-sharing write: activate a random armed queue that
        has no work. QWAIT-VERIFY must filter it."""
        empty_qids = [
            qid
            for qid, tag in self._tag_of_qid.items()
            if self.monitoring.is_armed(tag) and self.system.doorbells[qid].is_empty()
        ]
        if not empty_qids:
            return
        qid = self._spurious_rng.choice(empty_qids)
        self.monitoring.snoop_write(self._tag_of_qid[qid])
        self.spurious_injected += 1
        self._activate(qid)

    def _activate(self, qid: int) -> None:
        cluster = self._cluster_of_qid[qid]
        home = cluster.plan.cluster_id
        self.ready_sets[home].activate(qid)
        halted = self._halted[home]
        if not halted and self.work_stealing_enabled:
            # No local core to wake: wake a halted core elsewhere so it
            # can steal this QID (NUMA work-stealing deployment).
            for cluster_id, candidates in self._halted.items():
                if cluster_id != home and candidates:
                    halted = candidates
                    break
        if halted:
            _core_id, event = halted.popleft()
            # Decouple the wake from the producer's call stack.
            self.system.sim.schedule(0.0, event.trigger, qid)

    # -- data-plane-core interface -------------------------------------------------

    def ready_set_of(self, cluster: Cluster) -> ReadySet:
        return self.ready_sets[cluster.plan.cluster_id]

    def qwait_try(self, cluster: Cluster) -> Optional[int]:
        """Non-blocking QWAIT: next QID per policy, or None (reserved id)."""
        return self.ready_set_of(cluster).select_and_take()

    def qwait_steal(self, home_cluster: Cluster) -> Optional[int]:
        """Work stealing (Section III-B future work): pull a ready QID
        from another cluster's ready set when the local one is empty.

        The stolen QID's RECONSIDER still re-activates it in its *home*
        ready set, so ownership of the queue does not migrate.
        """
        home = home_cluster.plan.cluster_id
        for cluster_id, ready_set in self.ready_sets.items():
            if cluster_id == home:
                continue
            qid = ready_set.select_and_take()
            if qid is not None:
                return qid
        return None

    def halt(self, cluster: Cluster, core_id: int) -> Event:
        """Register a core as halted; returns the event that wakes it."""
        event = Event(f"qwait-halt-core{core_id}")
        self._halted[cluster.plan.cluster_id].append((core_id, event))
        return event

    def cancel_halt(self, cluster: Cluster, core_id: int, event: Event) -> None:
        """Remove a halt registration that did not end up waiting."""
        halted = self._halted[cluster.plan.cluster_id]
        try:
            halted.remove((core_id, event))
        except ValueError:
            pass

    # -- atomic protocol instructions ----------------------------------------------

    def qwait_verify(self, qid: int) -> bool:
        """QWAIT-VERIFY: True if the queue has work; otherwise atomically
        re-arm it in the monitoring set (spurious wake filtered)."""
        doorbell = self.system.doorbells[qid]
        if doorbell.is_empty():
            self.monitoring.arm(self._tag_of_qid[qid])
            return False
        return True

    def qwait_reconsider(self, qid: int) -> None:
        """QWAIT-RECONSIDER: atomically re-arm (empty) or re-activate
        (more work queued) after a dequeue."""
        doorbell = self.system.doorbells[qid]
        if doorbell.is_empty():
            self.monitoring.arm(self._tag_of_qid[qid])
        else:
            self._activate(qid)

    def qwait_enable(self, qid: int) -> None:
        """QWAIT-ENABLE: lift a temporary service inhibition."""
        cluster = self._cluster_of_qid[qid]
        self.ready_set_of(cluster).enable(qid)

    def qwait_disable(self, qid: int) -> None:
        """QWAIT-DISABLE: temporarily inhibit servicing a queue."""
        cluster = self._cluster_of_qid[qid]
        self.ready_set_of(cluster).disable(qid)

    # -- invariants -------------------------------------------------------------------

    def check_no_lost_wakeups(self, being_serviced: Optional[set] = None) -> None:
        """At quiescence every non-empty queue must be visible.

        A non-empty queue must either be in its ready set or be actively
        held by a core (``being_serviced``). A non-empty queue that is
        merely *armed* would sleep until the next arrival — the lost-
        wake-up bug the atomic RECONSIDER exists to prevent.
        """
        held = being_serviced or set()
        for doorbell in self.system.doorbells:
            if doorbell.is_empty() or doorbell.qid in held:
                continue
            cluster = self._cluster_of_qid[doorbell.qid]
            if not self.ready_set_of(cluster).is_ready(doorbell.qid):
                raise AssertionError(
                    f"lost wake-up: queue {doorbell.qid} has "
                    f"{doorbell.count} items but is not ready"
                )
