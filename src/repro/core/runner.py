"""Convenience driver for HyperPlane runs (mirror of repro.sdp.runner)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.dataplane import build_hyperplane
from repro.sdp.config import SDPConfig
from repro.sdp.metrics import RunMetrics
from repro.sdp.runner import (
    DEFAULT_MAX_SECONDS,
    DEFAULT_TARGET_COMPLETIONS,
    _default_warmup,
)
from repro.sdp.system import DataPlaneSystem


def run_hyperplane(
    config: SDPConfig,
    load: Optional[float] = None,
    closed_loop: bool = False,
    policy: str = "rr",
    weights: Optional[Dict[int, int]] = None,
    software_ready_set: bool = False,
    batch_size: int = 1,
    in_order: bool = False,
    work_stealing: bool = False,
    target_completions: int = DEFAULT_TARGET_COMPLETIONS,
    max_seconds: float = DEFAULT_MAX_SECONDS,
    warmup_seconds: Optional[float] = None,
    check_wakeups: bool = True,
) -> RunMetrics:
    """Run the HyperPlane data plane and return its metrics."""
    if (load is None) == (not closed_loop):
        raise ValueError("specify either load= or closed_loop=True")
    system = DataPlaneSystem(config)
    # Attach the accelerator before any traffic exists so its snoop hook
    # observes every doorbell write (mirrors driver-before-datapath
    # bring-up order).
    accelerator, cores = build_hyperplane(
        system,
        policy=policy,
        weights=weights,
        software_ready_set=software_ready_set,
        batch_size=batch_size,
        in_order=in_order,
        work_stealing=work_stealing,
    )
    if closed_loop:
        system.attach_closed_loop()
    else:
        system.attach_open_loop(load=load)
    if warmup_seconds is None:
        warmup_seconds = _default_warmup(config, load, closed_loop)
    metrics = system.run(
        duration=max_seconds,
        warmup=warmup_seconds,
        target_completions=target_completions,
    )
    variant = "sw-rs" if software_ready_set else "hw"
    metrics.label = f"hyperplane/{config.organization}/{variant}"
    system.check_invariants()
    if check_wakeups:
        accelerator.check_no_lost_wakeups(
            being_serviced={c.servicing for c in cores if c.servicing is not None}
        )
    return metrics
