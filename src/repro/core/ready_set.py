"""The ready set: tracks ready QIDs and serves QWAIT selections.

Hardware implementation (Fig. 6): a ready-bit vector, a mask-bit vector
(QWAIT-ENABLE / QWAIT-DISABLE), and a PPA that computes the one-hot
select. Selection latency is constant (12.25 ns from the paper's RTL).

Software implementation (Sections III-B / V-E): the iterator walks the
QID table in memory applying the service policy, so selection cost
scales with the number of ready QIDs — the Fig. 13 experiment.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.policies import ServicePolicy
from repro.mem.costmodel import READY_SET_SELECT_NS

# Software iterator: cycles per ready QID examined (load flag, compare,
# pointer bump, and the occasional cache miss on the list itself), plus
# a fixed entry/exit cost.
SOFTWARE_ITER_CYCLES_PER_QID = 6
SOFTWARE_ITER_BASE_CYCLES = 30


class ReadySet(abc.ABC):
    """Common interface of both ready-set implementations."""

    def __init__(self, capacity: int, policy: ServicePolicy):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy.width < capacity:
            raise ValueError("policy narrower than the ready set")
        self.capacity = capacity
        self.policy = policy
        self.ready_mask = 0
        self.enabled_mask = (1 << capacity) - 1
        self.activations = 0
        self.selections = 0

    def _check_qid(self, qid: int) -> None:
        if not 0 <= qid < self.capacity:
            raise ValueError(f"qid {qid} out of range 0..{self.capacity - 1}")

    def activate(self, qid: int) -> None:
        """Set a QID's ready bit (monitoring-set match or RECONSIDER)."""
        self._check_qid(qid)
        self.ready_mask |= 1 << qid
        self.activations += 1

    def deactivate(self, qid: int) -> None:
        """Clear a QID's ready bit without selecting it."""
        self._check_qid(qid)
        self.ready_mask &= ~(1 << qid)

    def is_ready(self, qid: int) -> bool:
        self._check_qid(qid)
        return bool(self.ready_mask & (1 << qid))

    def enable(self, qid: int) -> None:
        """QWAIT-ENABLE: allow the queue to be selected again."""
        self._check_qid(qid)
        self.enabled_mask |= 1 << qid

    def disable(self, qid: int) -> None:
        """QWAIT-DISABLE: inhibit selection (e.g. for rate limiting)."""
        self._check_qid(qid)
        self.enabled_mask &= ~(1 << qid)

    def is_enabled(self, qid: int) -> bool:
        self._check_qid(qid)
        return bool(self.enabled_mask & (1 << qid))

    @property
    def ready_count(self) -> int:
        """Number of ready (not necessarily enabled) QIDs."""
        return self.ready_mask.bit_count()

    @property
    def selectable_mask(self) -> int:
        return self.ready_mask & self.enabled_mask

    def select_and_take(self) -> Optional[int]:
        """Return the next QID per the policy, consuming its ready bit."""
        qid = self.policy.take(self.selectable_mask)
        if qid is None:
            return None
        self.ready_mask &= ~(1 << qid)
        self.selections += 1
        return qid

    @abc.abstractmethod
    def selection_cycles(self, clock) -> float:
        """Cycle cost of one QWAIT selection on this implementation."""


class HardwareReadySet(ReadySet):
    """PPA-based hardware ready set: constant selection latency."""

    def selection_cycles(self, clock) -> float:
        return clock.ns_to_cycles(READY_SET_SELECT_NS)


class SoftwareReadySet(ReadySet):
    """Software iterator: selection cost grows with the ready count.

    The iterator must walk the in-memory ready list to apply the service
    policy, so fully-balanced traffic (everything ready) pays ~4 cycles
    per monitored QID per QWAIT — which Fig. 13 shows halving throughput.
    """

    def selection_cycles(self, clock) -> float:
        examined = max(1, self.ready_count)
        return SOFTWARE_ITER_BASE_CYCLES + SOFTWARE_ITER_CYCLES_PER_QID * examined
