"""Service policies for the ready set (paper, Sections III-A and IV-B).

A policy owns the *current priority* state and decides which ready QID
QWAIT returns next:

- **round-robin** — the selected QID gets lowest priority next round;
- **weighted round-robin** — a selected queue keeps priority for
  ``weight`` consecutive services (or until it runs dry);
- **strict priority** — lowest-numbered QID always wins (the paper
  notes this starves low-priority queues and is rarely used).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

from repro.core.ppa import ppa_select


class ServicePolicy(abc.ABC):
    """Chooses the next QID from a ready mask, maintaining priority state."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("policy width must be positive")
        self.width = width

    @abc.abstractmethod
    def take(self, ready_mask: int) -> Optional[int]:
        """Select (and account) the next QID, or None if nothing ready."""

    def reset(self) -> None:
        """Restore initial priority state."""


class RoundRobinPolicy(ServicePolicy):
    """Fig. 6's rotate-on-select round robin."""

    def __init__(self, width: int):
        super().__init__(width)
        self._priority = 1  # one-hot, bit 0 initially

    def take(self, ready_mask: int) -> Optional[int]:
        select = ppa_select(ready_mask, self._priority, self.width)
        if select == 0:
            return None
        qid = select.bit_length() - 1
        # Rotate: highest priority moves to the bit after the selected one.
        next_bit = (qid + 1) % self.width
        self._priority = 1 << next_bit
        return qid

    def reset(self) -> None:
        self._priority = 1


class WeightedRoundRobinPolicy(ServicePolicy):
    """Round robin where queue ``q`` may be served ``weight[q]`` times in a
    row while it stays ready (Section IV-B's counter mechanism)."""

    def __init__(self, width: int, weights: Optional[Dict[int, int]] = None, default_weight: int = 1):
        super().__init__(width)
        if default_weight < 1:
            raise ValueError("weights must be at least 1")
        self.default_weight = default_weight
        self.weights: Dict[int, int] = {}
        for qid, weight in (weights or {}).items():
            self.set_weight(qid, weight)
        self._priority = 1
        self._current: Optional[int] = None
        self._counter = 0

    def set_weight(self, qid: int, weight: int) -> None:
        """Configure one queue's consecutive-service budget."""
        if not 0 <= qid < self.width:
            raise ValueError(f"qid {qid} out of range")
        if weight < 1:
            raise ValueError("weights must be at least 1")
        self.weights[qid] = weight

    def weight_of(self, qid: int) -> int:
        return self.weights.get(qid, self.default_weight)

    def take(self, ready_mask: int) -> Optional[int]:
        current = self._current
        if (
            current is not None
            and self._counter > 0
            and ready_mask & (1 << current)
        ):
            # Current queue still holds priority and still has work.
            self._counter -= 1
            return current
        select = ppa_select(ready_mask, self._priority, self.width)
        if select == 0:
            # Nothing ready: drop the hold so service restarts cleanly.
            self._current = None
            self._counter = 0
            return None
        qid = select.bit_length() - 1
        self._current = qid
        self._counter = self.weight_of(qid) - 1
        self._priority = 1 << ((qid + 1) % self.width)
        return qid

    def reset(self) -> None:
        self._priority = 1
        self._current = None
        self._counter = 0


class StrictPriorityPolicy(ServicePolicy):
    """Fixed priority "10...0": lower-numbered QIDs always win."""

    def take(self, ready_mask: int) -> Optional[int]:
        select = ppa_select(ready_mask, 1, self.width)
        if select == 0:
            return None
        return select.bit_length() - 1


def policy_by_name(name: str, width: int, weights: Optional[Dict[int, int]] = None) -> ServicePolicy:
    """Instantiate a policy: "rr", "wrr", or "strict"."""
    key = name.lower()
    if key in ("rr", "round-robin"):
        return RoundRobinPolicy(width)
    if key in ("wrr", "weighted-round-robin"):
        return WeightedRoundRobinPolicy(width, weights)
    if key in ("strict", "strict-priority"):
        return StrictPriorityPolicy(width)
    raise ValueError(f"unknown service policy {name!r}")
