"""The rack: N data-plane servers behind a balancer, one shared timeline.

:class:`Rack` composes existing single-server substrates — each
:class:`ClusterServer` wraps an unmodified
:class:`~repro.sdp.system.DataPlaneSystem` running spinning or
HyperPlane cores — and adds the fleet layer on top: a client flow
population, the front-end :class:`~repro.cluster.balancer.LoadBalancer`,
per-server access :class:`~repro.cluster.link.Link` delays, the fault
:class:`~repro.cluster.controller.ClusterController`, and client-visible
:class:`~repro.cluster.metrics.ClusterMetrics`.

Request lifecycle: a cluster arrival draws a flow, the balancer steers
it to a live server (sticky per flow), the request crosses the server's
link, lands in the queue the flow hashes to, and is served by that
server's own notification mechanism. Latency is measured balancer-to-
completion, so it includes link and failover delay. On a crash, the
victim's queued backlog is re-dispatched to the survivors after a
detection delay; completions a dead or stale server produces are counted
as lost, never as client successes.

Hot path
--------
The request path here is the *fast* rack: flow stickiness is memoised
through the interned tables in :mod:`repro.cluster.tables`, and — when
the run shape allows it — traffic is generated in batched delivery
sweeps, one callback per fault/chunk window instead of one heap event
per arrival. Every draw (interarrival, flow pick, balancer steering,
service demand) happens in the same order, from the same stream, with
the same floating-point expressions as the per-request path, so
:class:`ClusterMetrics`, per-server stats, and RNG stream positions are
bit-identical. The pre-fast-path request path is preserved verbatim in
:mod:`repro.cluster._reference` as the differential-fuzz oracle
(``tests/test_cluster_fastpath.py``).

The batched sweep runs only when nothing can observe the difference:
duration-bounded runs (no ``target_completions`` / ``max_items`` early
exit), deterministic steering (rss / round-robin — p2c draws from the
balancer stream per request and stays per-arrival), no crash faults
(crash re-steering depends on in-window delivery state), and no active
tracer (trace spans attach to per-arrival dispatch). Windows split at
every fault apply/revert boundary so straggler/degrade magnitude changes
land between sweeps, exactly where the per-request path would see them.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from math import log
from typing import List, Optional

from repro.cluster.balancer import AllServersDownError, LoadBalancer
from repro.cluster.config import (
    STREAM_ARRIVALS,
    STREAM_BALANCER,
    STREAM_FAULTS,
    STREAM_FLOWS,
    ClusterConfig,
)
from repro.cluster.controller import ClusterController
from repro.cluster.faults import fault_schedule
from repro.cluster.link import Link
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.tables import TWO_POW_64, cumulative_weight_table
from repro.core.dataplane import build_hyperplane
from repro.obs.runtime import get_active_registry
from repro.queueing.taskqueue import WorkItem
from repro.sdp.spinning import FastSpinningCore, build_spinning_cores
from repro.sdp.system import DataPlaneSystem, FastpathContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, derive_seed
from repro.traffic.arrivals import PoissonArrivals, load_to_rate

__all__ = [
    "TWO_POW_64",
    "flow_weights",
    "ClusterServer",
    "Rack",
    "run_cluster",
]

# Balancer policies whose steering is deterministic given the live set:
# eligible for the batched delivery sweep. p2c and least-loaded read
# per-request state (balancer stream draws / live outstanding counts
# vs. in-flight completions), so they stay on the per-arrival path.
_SWEEPABLE_POLICIES = frozenset({"rss", "round-robin"})


def flow_weights(num_flows: int, skew: float) -> List[float]:
    """Zipf-like per-flow traffic weights: weight_i = (i+1) ** -skew.

    ``skew=0`` is uniform; larger values concentrate traffic on the
    lowest-numbered flows, which is how fleet-level imbalance is
    injected (hashing a skewed population concentrates load).
    """
    if num_flows <= 0:
        raise ValueError("need at least one flow")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [(i + 1) ** -skew for i in range(num_flows)]


class ClusterServer:
    """One rack slot: an unmodified data-plane system plus fleet state."""

    __slots__ = (
        "rack",
        "index",
        "config",
        "system",
        "fastpath",
        "accelerator",
        "cores",
        "link",
        "up",
        "epoch",
        "slow_factor",
        "dispatched",
        "completed_ok",
        "lost",
        "enqueue",
        "pull_cores",
        "_weight_table",
        "_flow_queue_map",
        "_queues",
        "_original_complete",
        "_inline_complete",
    )

    def __init__(self, rack: "Rack", index: int):
        config = rack.config.server_config(index)
        self.rack = rack
        self.index = index
        self.config = config
        self.system = DataPlaneSystem(config, sim=rack.sim)
        # The delivery-tracking context must exist before the cores are
        # built: single-core spinning servers get the callback fast core,
        # which reads it on every turn.
        self.fastpath = self.system.fastpath = FastpathContext()
        if rack.config.notification == "spinning":
            self.accelerator = None
            self.cores = build_spinning_cores(self.system)
        else:
            self.accelerator, self.cores = build_hyperplane(self.system)
        # Delivery-pull routing: when every core is a callback fast core
        # (all clusters single-core, spinning), the sweep can hand
        # prebuilt items straight to the owning core's delivery deque
        # instead of scheduling one enqueue event per request.
        if all(type(core) is FastSpinningCore for core in self.cores):
            self.pull_cores = {
                qid: core
                for core in self.cores
                for qid in core.cluster.queue_ids
            }
        else:
            self.pull_cores = None
        self.link = Link(
            rack.config.link_gbps,
            rack.config.link_propagation_s,
            name=f"server{index}.link",
        )
        self.up = True
        self.epoch = 0
        self.slow_factor = 1.0
        self.dispatched = 0
        self.completed_ok = 0
        self.lost = 0
        # Flow -> queue stickiness: a per-flow uniform draw mapped through
        # the shape's queue weights, so fleet traffic respects the same
        # hot/cold structure single-server runs use. The cumulative table
        # is interned (shared across homogeneous servers) and the per-flow
        # mapping memoised per (weights, seed).
        self._weight_table = cumulative_weight_table(
            self.system.shape.weights(config.num_queues)
        )
        self._flow_queue_map = self._weight_table.flow_map(config.seed)
        self._queues = self.system.queues
        self._original_complete = self.system.complete
        # When the captured method is the plain DataPlaneSystem.complete
        # (no obs/trace wrapper got there first), _complete inlines its
        # body instead of paying the extra frame per completion.
        self._inline_complete = (
            getattr(self._original_complete, "__func__", None)
            is DataPlaneSystem.complete
        )
        self.system.complete = self._complete
        # Held as an instance attribute so the trace probe can swap in a
        # wrapped delivery path without touching the class.
        self.enqueue = self._enqueue

    def queue_for_flow(self, flow: int) -> int:
        """The (deterministic, sticky) local queue a flow maps to."""
        qid = self._flow_queue_map.get(flow)
        if qid is None:
            qid = self._flow_queue_map[flow] = self._weight_table.compute(
                self.config.seed, flow
            )
        return qid

    def _enqueue(self, flow: int, arrival_time: float, base_service: float) -> None:
        """Deliver one request (called at the link-arrival instant)."""
        fastpath = self.fastpath
        if fastpath.pending_deliveries:
            fastpath.pending_deliveries -= 1
        if not self.up:
            # The server died while the request was on the wire: the
            # client detects the failure and retries elsewhere.
            self.rack.redispatch(flow, arrival_time, base_service)
            return
        flow_map = self._flow_queue_map
        qid = flow_map.get(flow)
        if qid is None:
            qid = flow_map[flow] = self._weight_table.compute(
                self.config.seed, flow
            )
        rack = self.rack
        rack._item_ids += 1
        item = WorkItem(
            rack._item_ids,
            qid,
            arrival_time,
            base_service * self.slow_factor,
            (flow, self.epoch, base_service),
        )
        if not self._queues[qid].enqueue(item):
            rack.metrics.rejected += 1
            rack.balancer.complete(self.index)

    def _deliver_item(self, item: WorkItem) -> None:
        """Event-path delivery of a sweep-prebuilt item (pull fallback)."""
        fastpath = self.fastpath
        if fastpath.pending_deliveries:
            fastpath.pending_deliveries -= 1
        if not self.up:
            payload = item.payload
            self.rack.redispatch(payload[0], item.arrival_time, payload[2])
            return
        if not self._queues[item.qid].enqueue(item):
            rack = self.rack
            rack.metrics.rejected += 1
            rack.balancer.complete(self.index)

    def _complete(self, item: WorkItem) -> None:
        # The per-completion chain — DataPlaneSystem.complete,
        # LoadBalancer.complete, ClusterMetrics.record and its three
        # P2Quantile feeds — inlined into one frame: it runs once per
        # client-visible completion and is the rack's second-hottest
        # path after the core turn.
        rack = self.rack
        now = rack.sim._now
        if self._inline_complete:
            item.completion_time = now
            latency = now - item.arrival_time
            metrics = self.system.metrics
            metrics.completed += 1
            recorder = metrics.latency
            if now >= recorder.warmup_time:
                recorder._samples.append(latency)
        else:
            self._original_complete(item)
            latency = item.completion_time - item.arrival_time
        payload = item.payload
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        index = self.index
        # LoadBalancer.complete: clamped decrement so stale completions
        # after a crash cannot go negative.
        outstanding = rack.balancer.outstanding
        if outstanding[index] > 0:
            outstanding[index] -= 1
        if self.up and payload[1] == self.epoch:
            cm = rack.metrics
            if now >= cm.warmup_time:
                recorder = cm.latency
                if now >= recorder.warmup_time:
                    recorder._samples.append(latency)
                p = cm._p50
                if p._heights:
                    p.count += 1
                    p._update(latency)
                else:
                    p.add(latency)
                p = cm._p99
                if p._heights:
                    p.count += 1
                    p._update(latency)
                else:
                    p.add(latency)
                p = cm._p999
                if p._heights:
                    p.count += 1
                    p._update(latency)
                else:
                    p.add(latency)
                cm.per_server_completed[index] += 1
            self.completed_ok += 1
        else:
            # Completed while down, or a stale pre-crash item drained
            # after restart: the client never saw this response.
            self.lost += 1
            rack.metrics.lost += 1


class Rack:
    """N servers, a balancer, links, faults — one deterministic run."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.metrics = ClusterMetrics(config.num_servers)
        self.balancer = LoadBalancer(
            config.balancer,
            config.num_servers,
            rng=self.streams.stream(STREAM_BALANCER),
            seed=derive_seed(config.seed, "cluster.ring"),
        )
        self.servers = [
            ClusterServer(self, index) for index in range(config.num_servers)
        ]
        self.controller: Optional[ClusterController] = None
        self._cumulative_flow_weights = list(
            accumulate(flow_weights(config.num_flows, config.flow_skew))
        )
        self._flow_rng = self.streams.stream(STREAM_FLOWS)
        self._arrivals: Optional[PoissonArrivals] = None
        self._max_items: Optional[int] = None
        self._item_ids = 0
        self.generated = 0
        # Batched-sweep state: the boundary plan for the current run (or
        # None on the per-arrival path), the next undelivered arrival time
        # carried across windows/runs, and the absolute fault boundaries.
        self._chunk_plan: Optional[List[float]] = None
        self._plan_index = 0
        self._next_arrival: Optional[float] = None
        self._tick_started = False
        self._fault_base: Optional[float] = None
        self._fault_times: List[float] = []

        # Observability: the per-server systems self-instrumented above
        # (shared sdp.* aggregates on the rack timeline); add the fleet
        # rollups only this layer can see.
        self._obs = get_active_registry()
        self._obs_events_reported = 0
        if self._obs is not None:
            from repro.obs.probes import instrument_rack

            instrument_rack(self._obs, self)

        # Tracing: the per-server systems self-traced above (same
        # ambient tracer); add the fleet spans (rpc roots, link
        # transfers) and parent the server-side request spans.
        from repro.obs.trace import get_active_tracer

        self._trace_probe = None
        if get_active_tracer() is not None:
            from repro.obs.trace_probes import maybe_trace_rack

            self._trace_probe = maybe_trace_rack(self)

    # -- plumbing ------------------------------------------------------------

    def next_item_id(self) -> int:
        self._item_ids += 1
        return self._item_ids

    def _draw_flow(self) -> int:
        total = self._cumulative_flow_weights[-1]
        index = bisect_right(
            self._cumulative_flow_weights, self._flow_rng.random() * total
        )
        return min(index, self.config.num_flows - 1)

    # -- traffic -------------------------------------------------------------

    def attach_open_loop(
        self,
        load: Optional[float] = None,
        rate: Optional[float] = None,
        max_items: Optional[int] = None,
    ) -> None:
        """Attach the fleet-level Poisson client population.

        ``load`` is the utilisation of the fleet's *ideal* capacity
        (``num_servers * cores_per_server / mean_service``); ``rate`` is
        an absolute aggregate arrival rate in requests/second.
        """
        if (load is None) == (rate is None):
            raise ValueError("specify exactly one of load / rate")
        if self._arrivals is not None:
            raise RuntimeError("open loop already attached")
        if rate is None:
            mean = self.servers[0].config.workload.mean_service_seconds
            fleet_cores = self.config.num_servers * self.config.cores_per_server
            rate = load_to_rate(load, mean, fleet_cores)
        self._arrivals = PoissonArrivals(rate, self.streams.stream(STREAM_ARRIVALS))
        self._max_items = max_items
        # Same heap slot the reference's spawned traffic process occupies:
        # one zero-delay bootstrap event. run() decides per-arrival vs.
        # batched-sweep mode before the engine dispatches it.
        self.sim.schedule(0.0, self._traffic_start)

    def _traffic_start(self, _value=None) -> None:
        if self._max_items is not None and self.generated >= self._max_items:
            return
        delay = self._arrivals.next_interarrival()
        if self._chunk_plan is not None:
            self._next_arrival = self.sim.now + delay
            self._sweep_window()
        else:
            self._tick_started = True
            self.sim.schedule(delay, self._traffic_tick)

    def _traffic_tick(self, _value=None) -> None:
        """Per-arrival traffic: one event per request (reference order)."""
        self.generated += 1
        self.metrics.dispatched += 1
        self.dispatch(self._draw_flow(), self.sim.now)
        if self._max_items is None or self.generated < self._max_items:
            self.sim.schedule(self._arrivals.next_interarrival(), self._traffic_tick)

    def _sweep_window(self, _value=None) -> None:
        """Batched traffic: deliver every arrival in the current window.

        Draw order per arrival is identical to the per-arrival path —
        flow pick (flows stream), steering, service demand (target
        server's stream), next interarrival (arrivals stream) — and the
        link/latency arithmetic reuses the exact floating-point
        expressions of :meth:`dispatch` / ``Link.transfer_delay``, so
        delivery timestamps match bit for bit.
        """
        plan = self._chunk_plan
        index = self._plan_index
        bound = plan[index]
        final = index + 1 == len(plan)
        t = self._next_arrival
        sim = self.sim
        if t is not None and (t < bound or (final and t == bound)):
            config = self.config
            nbytes = config.request_bytes
            nservers = config.num_servers
            nflows = config.num_flows
            balancer = self.balancer
            policy = balancer.policy
            outstanding = balancer.outstanding
            servers = self.servers
            flow_random = self._flow_rng.random
            cum = self._cumulative_flow_weights
            total = cum[-1]
            # Interarrival draw inlined: PoissonArrivals.next_interarrival
            # is Random.expovariate(rate), which is -log(1-random())/rate
            # — same expression, same stream, two frames fewer per draw.
            arr_random = self._arrivals._rng.random
            arr_rate = self._arrivals._rate
            schedule_at = sim.schedule_at
            links = [server.link for server in servers]
            busy = [link.busy_until for link in links]
            serialization = [link.serialization_delay(nbytes) for link in links]
            propagation = [link.propagation_s * link.degrade for link in links]
            service = [server.system.service_model for server in servers]
            # Service draw inlined for the exponential (scv == 1) case:
            # ServiceTimeModel.sample is rng.expovariate(1/mean), i.e.
            # -log(1-random())/lambd with lambd hoisted (same float every
            # call). Other SCVs keep the model call.
            svc_random: List[Optional[object]] = []
            svc_lambd: List[float] = []
            for model in service:
                if model.scv == 1.0:
                    svc_random.append(model._rng.random)
                    svc_lambd.append(1.0 / model._mean)
                else:
                    svc_random.append(None)
                    svc_lambd.append(0.0)
            deliver = [server.enqueue for server in servers]
            contexts = [server.fastpath for server in servers]
            dispatched = [0] * nservers
            swept = 0
            # Delivery pull: prebuild the WorkItem at dispatch time and
            # append it to the owning fast core's deque — no enqueue
            # event, no doorbell hook chain. Legal only when nothing can
            # change what the enqueue would build or observe mid-flight:
            # no fault boundaries this run (slow_factor/epoch frozen), no
            # extra doorbell write subscribers, and a per-server budget
            # proving no ring can reach capacity (so the reference could
            # not reject either). item ids are assigned in sweep order =
            # global dispatch order, exactly as the reference assigns
            # them.
            fault_free = not self._fault_times
            item_ids = self._item_ids
            pulls: List[Optional[dict]] = []
            budgets = []
            for server in servers:
                cores = server.pull_cores
                if (
                    fault_free
                    and cores is not None
                    and not server.system.doorbell_write_hooks
                ):
                    pulls.append(cores)
                    budgets.append(
                        server.config.queue_capacity
                        - server.fastpath.pending_deliveries
                        - max(len(q._items) for q in server.system.queues)
                        - 1
                    )
                else:
                    pulls.append(None)
                    budgets.append(0)
            flow_maps = [server._flow_queue_map for server in servers]
            weight_tables = [server._weight_table for server in servers]
            seeds = [server.config.seed for server in servers]
            slows = [server.slow_factor for server in servers]
            epochs = [server.epoch for server in servers]
            wake_cores: List[FastSpinningCore] = []
            # No core turn or delivery event can interleave with this
            # loop (it is one event callback), so the per-arrival
            # pending_deliveries bumps accumulate in a local list and
            # land on the contexts in one store per server — flushed
            # early only where _flush_pull needs the true count.
            pending = [0] * nservers
            is_rss = policy == "rss"
            if is_rss:
                assignment = balancer.assignment
                live = balancer.live
                ring = balancer.ring
                ring_key = ring.key
                ring_lookup = ring.lookup
                balancer_seed = balancer.seed
            while t < bound or (final and t == bound):
                flow = bisect_right(cum, flow_random() * total)
                if flow >= nflows:
                    flow = nflows - 1
                if is_rss:
                    server_id = assignment.get(flow)
                    if server_id is None or not live[server_id]:
                        placed = ring_lookup(ring_key(flow, balancer_seed), live)
                        if server_id is not None:
                            balancer.resteers += 1
                        assignment[flow] = placed
                        server_id = placed
                else:  # round-robin over an all-live fleet
                    server_id = balancer._rotation % nservers
                    balancer._rotation += 1
                outstanding[server_id] += 1
                draw = svc_random[server_id]
                if draw is not None:
                    base_service = -log(1.0 - draw()) / svc_lambd[server_id]
                else:
                    base_service = service[server_id]()
                busy_until = busy[server_id]
                start = t if t > busy_until else busy_until
                tx = serialization[server_id]
                busy[server_id] = start + tx
                delay = (start - t) + tx + propagation[server_id]
                pending[server_id] += 1
                pull = pulls[server_id]
                if pull is not None:
                    if budgets[server_id] > 0:
                        budgets[server_id] -= 1
                        fmap = flow_maps[server_id]
                        qid = fmap.get(flow)
                        if qid is None:
                            qid = fmap[flow] = weight_tables[server_id].compute(
                                seeds[server_id], flow
                            )
                        item_ids += 1
                        core = pull[qid]
                        core_dq = core._deliveries
                        if not core_dq and core._parked:
                            wake_cores.append(core)
                        core_dq.append(
                            (
                                t + delay,
                                WorkItem(
                                    item_ids,
                                    qid,
                                    t,
                                    base_service * slows[server_id],
                                    (flow, epochs[server_id], base_service),
                                ),
                            )
                        )
                    else:
                        # Budget exhausted: a ring could fill. Hand the
                        # backlog and the rest of this server's window to
                        # the event path, whose rejections are exact.
                        # Flush the locally-batched pending count first —
                        # _flush_pull decrements the real counter.
                        pulls[server_id] = None
                        if pending[server_id]:
                            contexts[server_id].pending_deliveries += pending[
                                server_id
                            ]
                            pending[server_id] = 0
                        self._flush_pull(servers[server_id])
                        schedule_at(
                            t + delay, deliver[server_id], flow, t, base_service
                        )
                else:
                    schedule_at(t + delay, deliver[server_id], flow, t, base_service)
                dispatched[server_id] += 1
                swept += 1
                t = t + -log(1.0 - arr_random()) / arr_rate
            self._item_ids = item_ids
            self._next_arrival = t
            for server_id in range(nservers):
                if pending[server_id]:
                    contexts[server_id].pending_deliveries += pending[server_id]
            for core in wake_cores:
                if core._parked and core._deliveries:
                    schedule_at(core._deliveries[0][0], core._pull_wake)
            for server_id in range(nservers):
                count = dispatched[server_id]
                if count:
                    link = links[server_id]
                    link.busy_until = busy[server_id]
                    link.bytes_sent += count * nbytes
                    link.requests += count
                    servers[server_id].dispatched += count
            self.generated += swept
            self.metrics.dispatched += swept
        if final:
            return
        self._plan_index = index + 1
        sim.schedule_at(bound, self._sweep_window)

    def _flush_pull(self, server: ClusterServer) -> None:
        """Return a server's pulled backlog to the event delivery path.

        Due deliveries are enqueued immediately — the owning core has not
        turned since their delivery instants (otherwise it would have
        pulled them), so no dequeue happened in between and the ring
        state, verdicts, and stats match what the reference produced at
        those instants. Future deliveries become ordinary heap events.
        """
        now = self.sim.now
        fastpath = server.fastpath
        queues = server.system.queues
        schedule_at = self.sim.schedule_at
        deliver = server._deliver_item
        for core in dict.fromkeys(server.pull_cores.values()):
            deliveries = core._deliveries
            while deliveries:
                when, item = deliveries.popleft()
                if when <= now:
                    if fastpath.pending_deliveries:
                        fastpath.pending_deliveries -= 1
                    if not queues[item.qid].enqueue(item):
                        self.metrics.rejected += 1
                        self.balancer.complete(server.index)
                else:
                    schedule_at(when, deliver, item)

    def _plan_traffic(self, start: float, deadline: float, chunk: float,
                      target_completions: Optional[int]) -> None:
        """Choose the traffic mode for this run and build the window plan.

        The batched sweep pre-draws a whole window, so anything that can
        cut a run short mid-window (completion targets, ``max_items``) or
        observe per-arrival structure (tracer spans, balancer-stream or
        load-dependent steering, crash re-steering) forces the
        per-arrival path. Once per-arrival traffic has started, later
        runs stay per-arrival — the pending tick event cannot be
        retracted.
        """
        chunked = (
            self._arrivals is not None
            and target_completions is None
            and self._max_items is None
            and self._trace_probe is None
            and not self._tick_started
            and self.balancer.policy in _SWEEPABLE_POLICIES
            and all(event.kind != "crash" for event in self.controller.events)
            and all(server.up for server in self.servers)
        )
        if not chunked:
            self._chunk_plan = None
            if self._next_arrival is not None:
                # A previous run swept; hand the carried arrival to the
                # per-arrival chain (flow not yet drawn, as required).
                self.sim.schedule_at(self._next_arrival, self._traffic_tick)
                self._next_arrival = None
                self._tick_started = True
            return
        bounds = []
        bound = start
        while True:
            bound = bound + chunk
            if bound >= deadline:
                break
            bounds.append(bound)
        for fault_time in self._fault_times:
            if start < fault_time < deadline:
                bounds.append(fault_time)
        bounds.append(deadline)
        bounds.sort()
        plan: List[float] = []
        for bound in bounds:
            if not plan or bound != plan[-1]:
                plan.append(bound)
        self._chunk_plan = plan
        self._plan_index = 0
        if self._next_arrival is not None:
            # Traffic already bootstrapped in a previous swept run:
            # restart the window chain for the new plan.
            self.sim.schedule(0.0, self._sweep_window)

    def dispatch(
        self,
        flow: int,
        arrival_time: float,
        base_service: Optional[float] = None,
    ) -> int:
        """Steer one request through the balancer and its server's link."""
        server_id = self.balancer.dispatch(flow)
        server = self.servers[server_id]
        if base_service is None:
            # Drawn from the *target server's* service stream, keeping
            # per-server statistics independent and the run replayable.
            base_service = server.system.service_model()
        delay = server.link.transfer_delay(self.sim.now, self.config.request_bytes)
        server.fastpath.pending_deliveries += 1
        self.sim.schedule(delay, server.enqueue, flow, arrival_time, base_service)
        server.dispatched += 1
        return server_id

    def redispatch(self, flow: int, arrival_time: float, base_service: float) -> None:
        """Retry a failed request after the failover detection delay.

        The original ``arrival_time`` is preserved, so the recorded
        latency includes the full failover penalty the client observed.
        """
        self.metrics.redispatched += 1
        self.sim.schedule(
            self.config.failover_delay_s,
            self._redispatch_now,
            flow,
            arrival_time,
            base_service,
        )

    def _redispatch_now(self, flow: int, arrival_time: float, base_service: float) -> None:
        try:
            self.dispatch(flow, arrival_time, base_service)
        except AllServersDownError:
            self.metrics.lost += 1

    # -- failure handling ----------------------------------------------------

    def crash_server(self, index: int) -> None:
        """Kill a server: re-steer its flows, re-dispatch its backlog."""
        server = self.servers[index]
        if not server.up:
            return
        if server.pull_cores is not None:
            # Pulled deliveries are invisible to the backlog sweep below:
            # re-materialise due ones into the rings (still up — exactly
            # what the reference's enqueues did) and convert future ones
            # to events, whose down-server arrival redispatches exactly.
            self._flush_pull(server)
        server.up = False
        server.epoch += 1
        self.balancer.mark_down(index)
        for queue in server.system.queues:
            for item in queue.pending_items():
                payload = item.payload
                if not (isinstance(payload, tuple) and len(payload) == 3):
                    continue
                flow, _epoch, base_service = payload
                self.redispatch(flow, item.arrival_time, base_service)

    def restart_server(self, index: int) -> None:
        """Bring a crashed server back into the balancer pool."""
        server = self.servers[index]
        if server.up:
            return
        server.up = True
        self.balancer.mark_up(index)

    # -- running -------------------------------------------------------------

    def run(
        self,
        duration: float,
        warmup: float = 0.0,
        target_completions: Optional[int] = None,
        chunk: float = 2e-3,
    ):
        """Simulate the rack for ``duration`` seconds after ``warmup``.

        The fault schedule spans the whole run (warmup + duration).
        Returns the populated :class:`ClusterMetrics`.
        """
        if warmup < 0 or duration <= 0:
            raise ValueError("need positive duration, non-negative warmup")
        start = self.sim.now
        boundary = start + warmup
        self.metrics.warmup_time = boundary
        self.metrics.latency.warmup_time = boundary
        self.metrics.measure_start = boundary
        for server in self.servers:
            server.system.metrics.latency.warmup_time = boundary
            server.system.metrics.measure_start = boundary
        total = warmup + duration
        if self.controller is None:
            events = fault_schedule(
                self.config.fault_profile,
                self.config.num_servers,
                total,
                self.streams.stream(STREAM_FAULTS),
            )
            self.controller = ClusterController(self, events)
            self.controller.start()
        if self._fault_base is None:
            # Controller event times are relative to its start() call;
            # externally attached controllers are assumed started here.
            self._fault_base = start
            times: List[float] = []
            for event in self.controller.events:
                times.append(self._fault_base + event.time)
                times.append(self._fault_base + event.time + event.duration)
            times.sort()
            self._fault_times = times
            for server in self.servers:
                server.fastpath.set_fault_times(times)
        deadline = start + total
        self._plan_traffic(start, deadline, chunk, target_completions)
        if (
            target_completions is None
            and self._arrivals is not None
            and self._max_items is None
        ):
            # Nothing can end the run early: a single engine run replaces
            # the chunked polling loop, and idle gaps (every core
            # spin-waiting, no queued work) fast-forward natively because
            # the heap only holds the next arrival/window/fault event.
            self.sim.run(until=deadline)
        else:
            while self.sim.now < deadline and self.sim.pending:
                self.sim.run(until=min(deadline, self.sim.now + chunk))
                if (
                    target_completions is not None
                    and self.metrics.count >= target_completions
                ):
                    break
        self.metrics.measure_end = self.sim.now
        for server in self.servers:
            server.system.metrics.measure_end = self.sim.now
        if self._obs is not None:
            # Servers share this timeline and never call their own run(),
            # so the rack reports the shared simulator's retired events.
            delta = self.sim.events_dispatched - self._obs_events_reported
            self._obs_events_reported = self.sim.events_dispatched
            self._obs.counter(
                "sim.events_total", help="events retired across all runs"
            ).inc(delta)
        return self.metrics

    def check_invariants(self) -> None:
        """Queue/doorbell agreement and HyperPlane wake-up soundness."""
        for server in self.servers:
            server.system.check_invariants()
            if server.accelerator is not None:
                server.accelerator.check_no_lost_wakeups(
                    being_serviced={
                        core.servicing
                        for core in server.cores
                        if core.servicing is not None
                    }
                )


def run_cluster(
    config: ClusterConfig,
    load: Optional[float] = None,
    rate: Optional[float] = None,
    duration: float = 0.02,
    warmup: float = 0.005,
    target_completions: Optional[int] = None,
) -> Rack:
    """Build a rack, attach traffic, run it, and verify invariants.

    Returns the :class:`Rack`; client-visible results are in
    ``rack.metrics``, per-server detail in ``rack.servers[i].system``.
    """
    rack = Rack(config)
    rack.attach_open_loop(load=load, rate=rate)
    rack.run(duration=duration, warmup=warmup, target_completions=target_completions)
    rack.check_invariants()
    return rack
