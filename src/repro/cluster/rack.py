"""The rack: N data-plane servers behind a balancer, one shared timeline.

:class:`Rack` composes existing single-server substrates — each
:class:`ClusterServer` wraps an unmodified
:class:`~repro.sdp.system.DataPlaneSystem` running spinning or
HyperPlane cores — and adds the fleet layer on top: a client flow
population, the front-end :class:`~repro.cluster.balancer.LoadBalancer`,
per-server access :class:`~repro.cluster.link.Link` delays, the fault
:class:`~repro.cluster.controller.ClusterController`, and client-visible
:class:`~repro.cluster.metrics.ClusterMetrics`.

Request lifecycle: a cluster arrival draws a flow, the balancer steers
it to a live server (sticky per flow), the request crosses the server's
link, lands in the queue the flow hashes to, and is served by that
server's own notification mechanism. Latency is measured balancer-to-
completion, so it includes link and failover delay. On a crash, the
victim's queued backlog is re-dispatched to the survivors after a
detection delay; completions a dead or stale server produces are counted
as lost, never as client successes.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import List, Optional

from repro.cluster.balancer import AllServersDownError, LoadBalancer
from repro.cluster.config import (
    STREAM_ARRIVALS,
    STREAM_BALANCER,
    STREAM_FAULTS,
    STREAM_FLOWS,
    ClusterConfig,
)
from repro.cluster.controller import ClusterController
from repro.cluster.faults import fault_schedule
from repro.cluster.link import Link
from repro.cluster.metrics import ClusterMetrics
from repro.core.dataplane import build_hyperplane
from repro.obs.runtime import get_active_registry
from repro.queueing.taskqueue import WorkItem
from repro.sdp.spinning import build_spinning_cores
from repro.sdp.system import DataPlaneSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, derive_seed
from repro.traffic.arrivals import PoissonArrivals, load_to_rate

TWO_POW_64 = float(1 << 64)


def flow_weights(num_flows: int, skew: float) -> List[float]:
    """Zipf-like per-flow traffic weights: weight_i = (i+1) ** -skew.

    ``skew=0`` is uniform; larger values concentrate traffic on the
    lowest-numbered flows, which is how fleet-level imbalance is
    injected (hashing a skewed population concentrates load).
    """
    if num_flows <= 0:
        raise ValueError("need at least one flow")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [(i + 1) ** -skew for i in range(num_flows)]


class ClusterServer:
    """One rack slot: an unmodified data-plane system plus fleet state."""

    def __init__(self, rack: "Rack", index: int):
        config = rack.config.server_config(index)
        self.rack = rack
        self.index = index
        self.config = config
        self.system = DataPlaneSystem(config, sim=rack.sim)
        if rack.config.notification == "spinning":
            self.accelerator = None
            self.cores = build_spinning_cores(self.system)
        else:
            self.accelerator, self.cores = build_hyperplane(self.system)
        self.link = Link(
            rack.config.link_gbps,
            rack.config.link_propagation_s,
            name=f"server{index}.link",
        )
        self.up = True
        self.epoch = 0
        self.slow_factor = 1.0
        self.dispatched = 0
        self.completed_ok = 0
        self.lost = 0
        # Flow -> queue stickiness: a per-flow uniform draw mapped through
        # the shape's queue weights, so fleet traffic respects the same
        # hot/cold structure single-server runs use.
        self._cumulative_weights = list(
            accumulate(self.system.shape.weights(config.num_queues))
        )
        self._original_complete = self.system.complete
        self.system.complete = self._complete

    def queue_for_flow(self, flow: int) -> int:
        """The (deterministic, sticky) local queue a flow maps to."""
        u = derive_seed(self.config.seed, f"flow-queue:{flow}") / TWO_POW_64
        qid = bisect_right(
            self._cumulative_weights, u * self._cumulative_weights[-1]
        )
        return min(qid, self.config.num_queues - 1)

    def enqueue(self, flow: int, arrival_time: float, base_service: float) -> None:
        """Deliver one request (called at the link-arrival instant)."""
        if not self.up:
            # The server died while the request was on the wire: the
            # client detects the failure and retries elsewhere.
            self.rack.redispatch(flow, arrival_time, base_service)
            return
        item = WorkItem(
            item_id=self.rack.next_item_id(),
            qid=self.queue_for_flow(flow),
            arrival_time=arrival_time,
            service_time=base_service * self.slow_factor,
            payload=(flow, self.epoch, base_service),
        )
        if not self.system.queues[item.qid].enqueue(item):
            self.rack.metrics.rejected += 1
            self.rack.balancer.complete(self.index)

    def _complete(self, item: WorkItem) -> None:
        self._original_complete(item)
        payload = item.payload
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        _flow, epoch, _base_service = payload
        self.rack.balancer.complete(self.index)
        if self.up and epoch == self.epoch:
            self.rack.metrics.record(self.system.sim.now, item.latency, self.index)
            self.completed_ok += 1
        else:
            # Completed while down, or a stale pre-crash item drained
            # after restart: the client never saw this response.
            self.lost += 1
            self.rack.metrics.lost += 1


class Rack:
    """N servers, a balancer, links, faults — one deterministic run."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.metrics = ClusterMetrics(config.num_servers)
        self.balancer = LoadBalancer(
            config.balancer,
            config.num_servers,
            rng=self.streams.stream(STREAM_BALANCER),
            seed=derive_seed(config.seed, "cluster.ring"),
        )
        self.servers = [
            ClusterServer(self, index) for index in range(config.num_servers)
        ]
        self.controller: Optional[ClusterController] = None
        self._cumulative_flow_weights = list(
            accumulate(flow_weights(config.num_flows, config.flow_skew))
        )
        self._flow_rng = self.streams.stream(STREAM_FLOWS)
        self._arrivals: Optional[PoissonArrivals] = None
        self._max_items: Optional[int] = None
        self._item_ids = 0
        self.generated = 0

        # Observability: the per-server systems self-instrumented above
        # (shared sdp.* aggregates on the rack timeline); add the fleet
        # rollups only this layer can see.
        self._obs = get_active_registry()
        self._obs_events_reported = 0
        if self._obs is not None:
            from repro.obs.probes import instrument_rack

            instrument_rack(self._obs, self)

        # Tracing: the per-server systems self-traced above (same
        # ambient tracer); add the fleet spans (rpc roots, link
        # transfers) and parent the server-side request spans.
        from repro.obs.trace import get_active_tracer

        self._trace_probe = None
        if get_active_tracer() is not None:
            from repro.obs.trace_probes import maybe_trace_rack

            self._trace_probe = maybe_trace_rack(self)

    # -- plumbing ------------------------------------------------------------

    def next_item_id(self) -> int:
        self._item_ids += 1
        return self._item_ids

    def _draw_flow(self) -> int:
        total = self._cumulative_flow_weights[-1]
        index = bisect_right(
            self._cumulative_flow_weights, self._flow_rng.random() * total
        )
        return min(index, self.config.num_flows - 1)

    # -- traffic -------------------------------------------------------------

    def attach_open_loop(
        self,
        load: Optional[float] = None,
        rate: Optional[float] = None,
        max_items: Optional[int] = None,
    ) -> None:
        """Attach the fleet-level Poisson client population.

        ``load`` is the utilisation of the fleet's *ideal* capacity
        (``num_servers * cores_per_server / mean_service``); ``rate`` is
        an absolute aggregate arrival rate in requests/second.
        """
        if (load is None) == (rate is None):
            raise ValueError("specify exactly one of load / rate")
        if self._arrivals is not None:
            raise RuntimeError("open loop already attached")
        if rate is None:
            mean = self.servers[0].config.workload.mean_service_seconds
            fleet_cores = self.config.num_servers * self.config.cores_per_server
            rate = load_to_rate(load, mean, fleet_cores)
        self._arrivals = PoissonArrivals(rate, self.streams.stream(STREAM_ARRIVALS))
        self._max_items = max_items
        self.sim.spawn(self._traffic(), name="cluster-traffic")

    def _traffic(self):
        while self._max_items is None or self.generated < self._max_items:
            yield self._arrivals.next_interarrival()
            self.generated += 1
            self.metrics.dispatched += 1
            self.dispatch(self._draw_flow(), self.sim.now)

    def dispatch(
        self,
        flow: int,
        arrival_time: float,
        base_service: Optional[float] = None,
    ) -> int:
        """Steer one request through the balancer and its server's link."""
        server_id = self.balancer.dispatch(flow)
        server = self.servers[server_id]
        if base_service is None:
            # Drawn from the *target server's* service stream, keeping
            # per-server statistics independent and the run replayable.
            base_service = server.system.service_model()
        delay = server.link.transfer_delay(self.sim.now, self.config.request_bytes)
        self.sim.schedule(delay, server.enqueue, flow, arrival_time, base_service)
        server.dispatched += 1
        return server_id

    def redispatch(self, flow: int, arrival_time: float, base_service: float) -> None:
        """Retry a failed request after the failover detection delay.

        The original ``arrival_time`` is preserved, so the recorded
        latency includes the full failover penalty the client observed.
        """
        self.metrics.redispatched += 1
        self.sim.schedule(
            self.config.failover_delay_s,
            self._redispatch_now,
            flow,
            arrival_time,
            base_service,
        )

    def _redispatch_now(self, flow: int, arrival_time: float, base_service: float) -> None:
        try:
            self.dispatch(flow, arrival_time, base_service)
        except AllServersDownError:
            self.metrics.lost += 1

    # -- failure handling ----------------------------------------------------

    def crash_server(self, index: int) -> None:
        """Kill a server: re-steer its flows, re-dispatch its backlog."""
        server = self.servers[index]
        if not server.up:
            return
        server.up = False
        server.epoch += 1
        self.balancer.mark_down(index)
        for queue in server.system.queues:
            for item in queue.pending_items():
                payload = item.payload
                if not (isinstance(payload, tuple) and len(payload) == 3):
                    continue
                flow, _epoch, base_service = payload
                self.redispatch(flow, item.arrival_time, base_service)

    def restart_server(self, index: int) -> None:
        """Bring a crashed server back into the balancer pool."""
        server = self.servers[index]
        if server.up:
            return
        server.up = True
        self.balancer.mark_up(index)

    # -- running -------------------------------------------------------------

    def run(
        self,
        duration: float,
        warmup: float = 0.0,
        target_completions: Optional[int] = None,
        chunk: float = 2e-3,
    ):
        """Simulate the rack for ``duration`` seconds after ``warmup``.

        The fault schedule spans the whole run (warmup + duration).
        Returns the populated :class:`ClusterMetrics`.
        """
        if warmup < 0 or duration <= 0:
            raise ValueError("need positive duration, non-negative warmup")
        start = self.sim.now
        boundary = start + warmup
        self.metrics.warmup_time = boundary
        self.metrics.latency.warmup_time = boundary
        self.metrics.measure_start = boundary
        for server in self.servers:
            server.system.metrics.latency.warmup_time = boundary
            server.system.metrics.measure_start = boundary
        total = warmup + duration
        if self.controller is None:
            events = fault_schedule(
                self.config.fault_profile,
                self.config.num_servers,
                total,
                self.streams.stream(STREAM_FAULTS),
            )
            self.controller = ClusterController(self, events)
            self.controller.start()
        deadline = start + total
        while self.sim.now < deadline and self.sim.pending:
            self.sim.run(until=min(deadline, self.sim.now + chunk))
            if (
                target_completions is not None
                and self.metrics.count >= target_completions
            ):
                break
        self.metrics.measure_end = self.sim.now
        for server in self.servers:
            server.system.metrics.measure_end = self.sim.now
        if self._obs is not None:
            # Servers share this timeline and never call their own run(),
            # so the rack reports the shared simulator's retired events.
            delta = self.sim.events_dispatched - self._obs_events_reported
            self._obs_events_reported = self.sim.events_dispatched
            self._obs.counter(
                "sim.events_total", help="events retired across all runs"
            ).inc(delta)
        return self.metrics

    def check_invariants(self) -> None:
        """Queue/doorbell agreement and HyperPlane wake-up soundness."""
        for server in self.servers:
            server.system.check_invariants()
            if server.accelerator is not None:
                server.accelerator.check_no_lost_wakeups(
                    being_serviced={
                        core.servicing
                        for core in server.cores
                        if core.servicing is not None
                    }
                )


def run_cluster(
    config: ClusterConfig,
    load: Optional[float] = None,
    rate: Optional[float] = None,
    duration: float = 0.02,
    warmup: float = 0.005,
    target_completions: Optional[int] = None,
) -> Rack:
    """Build a rack, attach traffic, run it, and verify invariants.

    Returns the :class:`Rack`; client-visible results are in
    ``rack.metrics``, per-server detail in ``rack.servers[i].system``.
    """
    rack = Rack(config)
    rack.attach_open_loop(load=load, rate=rate)
    rack.run(duration=duration, warmup=warmup, target_completions=target_completions)
    rack.check_invariants()
    return rack
