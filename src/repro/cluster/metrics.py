"""Fleet-level metrics: merged latency quantiles and failure accounting.

Per-server :class:`~repro.sdp.metrics.RunMetrics` describe what each
server *did*; :class:`ClusterMetrics` describes what the *client* saw —
completions from live servers only, with link and failover delay
included in the latency. Tail quantiles (p50/p99/p99.9) stream through
the existing P² machinery (:mod:`repro.sdp.quantiles`), and the exact
sample list is retained for tests and offline analysis.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sdp.metrics import LatencyRecorder, MICROSECOND
from repro.sdp.quantiles import P2Quantile


class ClusterMetrics:
    """Client-observed latency and loss for one rack run."""

    def __init__(self, num_servers: int, warmup_time: float = 0.0):
        if num_servers <= 0:
            raise ValueError("need at least one server")
        self.num_servers = num_servers
        self.warmup_time = warmup_time
        self.latency = LatencyRecorder(warmup_time=warmup_time)
        self._p50 = P2Quantile(0.50)
        self._p99 = P2Quantile(0.99)
        self._p999 = P2Quantile(0.999)
        self.per_server_completed: List[int] = [0] * num_servers
        self.dispatched = 0
        self.lost = 0
        self.redispatched = 0
        self.rejected = 0
        self.measure_start = 0.0
        self.measure_end = 0.0

    # -- recording -----------------------------------------------------------

    def record(self, now: float, latency: float, server: int) -> None:
        """One client-visible completion at simulated time ``now``."""
        if now < self.warmup_time:
            return
        # LatencyRecorder.record, inlined: this is the hottest call on
        # the rack completion path (once per client-visible completion).
        if latency < 0:
            raise ValueError("negative latency")
        recorder = self.latency
        if now >= recorder.warmup_time:
            recorder._samples.append(latency)
        # P2Quantile.add, fast path inlined: once the markers exist (after
        # the first five samples), add() is just count += 1 and _update.
        p = self._p50
        if p._heights:
            p.count += 1
            p._update(latency)
        else:
            p.add(latency)
        p = self._p99
        if p._heights:
            p.count += 1
            p._update(latency)
        else:
            p.add(latency)
        p = self._p999
        if p._heights:
            p.count += 1
            p._update(latency)
        else:
            p.add(latency)
        self.per_server_completed[server] += 1

    # -- results -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self.latency.count

    @property
    def p50_us(self) -> float:
        """Streaming (P²) median estimate, microseconds."""
        return self._p50.value / MICROSECOND

    @property
    def p99_us(self) -> float:
        """Streaming (P²) 99th-percentile estimate, microseconds."""
        return self._p99.value / MICROSECOND

    @property
    def p999_us(self) -> float:
        """Streaming (P²) 99.9th-percentile estimate, microseconds."""
        return self._p999.value / MICROSECOND

    @property
    def duration(self) -> float:
        return max(0.0, self.measure_end - self.measure_start)

    @property
    def throughput_mtps(self) -> float:
        """Client-visible completions per second, in millions."""
        if self.duration == 0:
            return 0.0
        return self.count / self.duration / 1e6

    @property
    def hottest_share(self) -> float:
        """Largest per-server share of recorded completions (imbalance)."""
        if self.count == 0:
            return 0.0
        return max(self.per_server_completed) / self.count

    def summary(self) -> Dict[str, float]:
        """A flat dict for experiment tables."""
        return {
            "throughput_mtps": self.throughput_mtps,
            "avg_latency_us": self.latency.mean_us,
            "p50_latency_us": self.p50_us,
            "p99_latency_us": self.p99_us,
            "p999_latency_us": self.p999_us,
            "completed": float(self.count),
            "lost": float(self.lost),
            "redispatched": float(self.redispatched),
            "rejected": float(self.rejected),
            "hottest_share": self.hottest_share,
        }

    def fingerprint(self) -> Tuple:
        """Exact values for determinism assertions (no rounding)."""
        return (
            self.count,
            self.latency.mean,
            self._p99.value,
            self._p999.value,
            self.lost,
            self.redispatched,
            tuple(self.per_server_completed),
        )
