"""Fault profiles: deterministic schedules of fleet-level failures.

A profile maps to a list of :class:`FaultEvent`; the
:class:`~repro.cluster.controller.ClusterController` applies each event
at its start time and reverts it after ``duration``. Victim selection
draws from the cluster's named fault stream, so the same root seed
always breaks the same server at the same instant.

Profiles
--------
- ``none``: no faults (the balance/scale baseline).
- ``crash``: one server fails mid-run and restarts later. Its flows are
  re-steered and its queued backlog is re-dispatched to the survivors
  after a detection delay — the failover-induced queue spike.
- ``straggler``: one server's service times inflate by ``magnitude``
  for a window (thermal throttling, a noisy neighbour, a GC pause).
- ``link-degrade``: one server's access link slows by ``magnitude``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

PROFILES = ("none", "crash", "straggler", "link-degrade")

# Fractions of the run at which the fault window sits. Placing it after
# warm-up and ending before the run does lets both the degraded and the
# recovered regimes contribute samples.
WINDOW_START_FRACTION = 0.30
WINDOW_LENGTH_FRACTION = 0.40

STRAGGLER_MAGNITUDE = 4.0
LINK_DEGRADE_MAGNITUDE = 20.0


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: ``kind`` hits ``server`` at ``time`` for
    ``duration`` seconds with strength ``magnitude``."""

    time: float
    kind: str
    server: int
    duration: float
    magnitude: float = 1.0

    def __post_init__(self):
        if self.time < 0 or self.duration <= 0:
            raise ValueError("fault needs non-negative time, positive duration")
        if self.kind not in ("crash", "straggler", "link-degrade"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")

    @property
    def end_time(self) -> float:
        return self.time + self.duration


def fault_schedule(
    profile: str,
    num_servers: int,
    run_duration: float,
    rng: random.Random,
) -> List[FaultEvent]:
    """The fault events of a named profile over a run of given length."""
    if profile not in PROFILES:
        raise ValueError(f"unknown fault profile {profile!r}; known: {PROFILES}")
    if run_duration <= 0:
        raise ValueError("run duration must be positive")
    if profile == "none":
        return []
    if profile == "crash" and num_servers < 2:
        # A one-server fleet cannot fail over; crashing it would just
        # stall the run, so the profile degenerates to no faults.
        return []
    victim = rng.randrange(num_servers)
    start = WINDOW_START_FRACTION * run_duration
    window = WINDOW_LENGTH_FRACTION * run_duration
    if profile == "crash":
        return [FaultEvent(start, "crash", victim, duration=window)]
    if profile == "straggler":
        return [
            FaultEvent(
                start, "straggler", victim, duration=window,
                magnitude=STRAGGLER_MAGNITUDE,
            )
        ]
    return [
        FaultEvent(
            start, "link-degrade", victim, duration=window,
            magnitude=LINK_DEGRADE_MAGNITUDE,
        )
    ]
