"""Configuration of one simulated rack.

A :class:`ClusterConfig` describes a fleet of identical servers (each an
independent :class:`~repro.sdp.system.DataPlaneSystem`), the front-end
load balancer, the inter-node links, the client flow population, and the
fault profile the controller injects. Every per-server configuration and
every cluster-level random stream derives from the single root ``seed``
through :func:`repro.sim.rng.derive_seed`, so a whole rack run replays
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sdp.config import SDPConfig
from repro.sim.rng import derive_seed

NOTIFICATIONS = ("spinning", "hyperplane")

# Stream names rooted at the cluster layer (servers use their own derived
# seeds, so these never collide with per-server streams).
STREAM_ARRIVALS = "cluster.arrivals"
STREAM_FLOWS = "cluster.flows"
STREAM_BALANCER = "cluster.balancer"
STREAM_FAULTS = "cluster.faults"


@dataclass
class ClusterConfig:
    """One rack: N servers behind a load balancer.

    Parameters
    ----------
    num_servers:
        Fleet size (the scale-out axis; the paper stops at one server).
    notification:
        Per-server notification mechanism: ``spinning`` or ``hyperplane``.
    balancer:
        Front-end policy name (see :mod:`repro.cluster.balancer`).
    fault_profile:
        Named fault schedule (see :mod:`repro.cluster.faults`).
    queues_per_server, cores_per_server, cluster_cores, workload, shape:
        Forwarded into each server's :class:`~repro.sdp.config.SDPConfig`.
    num_flows:
        Client flow population size. Flows are sticky at the balancer
        (per-flow consistent hashing) and within a server (flow hash
        through the shape's queue weights).
    flow_skew:
        Zipf-like exponent of per-flow traffic weights (0 = uniform).
        Skewed flows are how fleet-level *imbalance* is injected: hashed
        placement concentrates heavy flows on a few servers, and the
        concentration worsens with fleet size.
    request_bytes:
        Wire size of one request (drives link serialization delay).
    link_gbps, link_propagation_s:
        Per-server access-link bandwidth and one-way propagation delay.
    failover_delay_s:
        Detection + retry delay before a crashed server's backlog is
        re-dispatched to the survivors.
    seed:
        Root seed for the whole rack.
    """

    num_servers: int
    notification: str = "hyperplane"
    balancer: str = "p2c"
    fault_profile: str = "none"
    queues_per_server: int = 256
    cores_per_server: int = 1
    cluster_cores: Optional[int] = None
    workload: str = "packet-encapsulation"
    shape: str = "FB"
    num_flows: int = 256
    flow_skew: float = 0.0
    request_bytes: int = 1024
    link_gbps: float = 40.0
    link_propagation_s: float = 1e-6
    failover_delay_s: float = 50e-6
    queue_capacity: int = 16384
    seed: int = 0

    def __post_init__(self):
        from repro.cluster.balancer import POLICIES
        from repro.cluster.faults import PROFILES

        if self.num_servers <= 0:
            raise ValueError("need at least one server")
        if self.notification not in NOTIFICATIONS:
            raise ValueError(
                f"unknown notification {self.notification!r}; known: {NOTIFICATIONS}"
            )
        if self.balancer not in POLICIES:
            raise ValueError(
                f"unknown balancer policy {self.balancer!r}; known: {POLICIES}"
            )
        if self.fault_profile not in PROFILES:
            raise ValueError(
                f"unknown fault profile {self.fault_profile!r}; known: {PROFILES}"
            )
        if self.num_flows <= 0:
            raise ValueError("need at least one flow")
        if self.flow_skew < 0:
            raise ValueError("flow_skew must be non-negative")
        if self.request_bytes <= 0 or self.link_gbps <= 0:
            raise ValueError("request_bytes and link_gbps must be positive")
        if self.link_propagation_s < 0 or self.failover_delay_s < 0:
            raise ValueError("link delays must be non-negative")

    def server_config(self, index: int) -> SDPConfig:
        """The :class:`SDPConfig` of server ``index`` (seed derived)."""
        if not 0 <= index < self.num_servers:
            raise ValueError(f"server index {index} out of range")
        return SDPConfig(
            num_queues=self.queues_per_server,
            num_cores=self.cores_per_server,
            cluster_cores=self.cluster_cores,
            workload=self.workload,
            shape=self.shape,
            queue_capacity=self.queue_capacity,
            seed=derive_seed(self.seed, f"cluster.server-{index}"),
        )
