"""The cluster controller: applies and reverts injected faults.

The controller owns a fault schedule (from
:func:`repro.cluster.faults.fault_schedule`) and drives the rack through
it on the shared simulation timeline: crash -> mark the server down,
re-steer its flows, re-dispatch its backlog; straggler -> inflate the
victim's service times; link-degrade -> slow the victim's access link.
Every fault reverts after its window.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cluster.faults import FaultEvent


class ClusterController:
    """Schedules fault application/reversion for one rack run."""

    def __init__(self, rack, events: Sequence[FaultEvent]):
        self.rack = rack
        self.events = list(events)
        self.applied: List[Tuple[float, FaultEvent]] = []
        self.reverted: List[Tuple[float, FaultEvent]] = []
        self._started = False

    def start(self) -> None:
        """Schedule every event relative to the current simulated time."""
        if self._started:
            raise RuntimeError("controller already started")
        self._started = True
        for event in self.events:
            self.rack.sim.schedule(event.time, self._apply, event)

    def _apply(self, event: FaultEvent) -> None:
        self.applied.append((self.rack.sim.now, event))
        if event.kind == "crash":
            self.rack.crash_server(event.server)
        elif event.kind == "straggler":
            self.rack.servers[event.server].slow_factor = event.magnitude
        else:  # link-degrade
            self.rack.servers[event.server].link.degrade = event.magnitude
        self.rack.sim.schedule(event.duration, self._revert, event)

    def _revert(self, event: FaultEvent) -> None:
        self.reverted.append((self.rack.sim.now, event))
        if event.kind == "crash":
            self.rack.restart_server(event.server)
        elif event.kind == "straggler":
            self.rack.servers[event.server].slow_factor = 1.0
        else:
            self.rack.servers[event.server].link.degrade = 1.0
