"""Inter-node links: serialization + propagation delay.

One :class:`Link` models a server's access link from the front-end
switch: requests serialize onto the wire FIFO (the egress port is a
single resource, so back-to-back dispatches queue behind each other) and
then propagate for a fixed delay. A degradation factor scales both —
the controller's ``link-degrade`` fault multiplies it to model a flapping
or congested cable.
"""

from __future__ import annotations

GIGA = 1e9


class Link:
    """A point-to-point link with FIFO serialization.

    Parameters
    ----------
    gbps:
        Line rate in gigabits per second.
    propagation_s:
        One-way propagation delay in seconds (~1 us inside a rack).
    """

    __slots__ = (
        "gbps",
        "propagation_s",
        "name",
        "degrade",
        "busy_until",
        "bytes_sent",
        "requests",
    )

    def __init__(self, gbps: float, propagation_s: float, name: str = "link"):
        if gbps <= 0:
            raise ValueError("line rate must be positive")
        if propagation_s < 0:
            raise ValueError("propagation delay must be non-negative")
        self.gbps = gbps
        self.propagation_s = propagation_s
        self.name = name
        self.degrade = 1.0
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.requests = 0

    def serialization_delay(self, nbytes: int) -> float:
        """Seconds to clock ``nbytes`` onto the wire at the current rate."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return nbytes * 8.0 / (self.gbps * GIGA) * self.degrade

    def transfer_delay(self, now: float, nbytes: int) -> float:
        """Total delay for a transfer issued at ``now``; occupies the wire.

        Returns wait-for-wire + serialization + propagation, and advances
        the link's busy horizon (FIFO egress queueing).
        """
        start = max(now, self.busy_until)
        serialization = self.serialization_delay(nbytes)
        self.busy_until = start + serialization
        self.bytes_sent += nbytes
        self.requests += 1
        return (start - now) + serialization + self.propagation_s * self.degrade
