"""Front-end load balancing: RSS hashing vs. load-aware per-request policies.

The base layer is *per-flow consistent hashing*: every flow has a
deterministic position on a virtual-node hash ring, and the ``rss``
policy steers purely by it — the software analogue of NIC RSS.
Placement is sticky (connection affinity) and ignores load entirely;
when a server fails, only its own flows move (to ring successors).

The alternative policies are classic L4 balancers that pick a server
*per request* among the live set:

- ``round-robin``: deal requests to live servers in rotation.
- ``least-loaded``: join the server with the fewest outstanding
  requests (idealised global knowledge).
- ``p2c``: power-of-two-choices — sample two distinct live servers,
  join the less loaded; near-optimal balance at O(1) cost, and the only
  practical way to absorb skewed flow weights the hash cannot see.

Hashing uses :func:`repro.sim.rng.derive_seed`, so ring positions and
flow keys are deterministic functions of the balancer seed.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Dict, List, Sequence

from repro.sim.rng import derive_seed

POLICIES = ("rss", "round-robin", "least-loaded", "p2c")


class AllServersDownError(RuntimeError):
    """Raised when a dispatch finds no live server."""


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Lookups walk clockwise from the key's position to the first virtual
    node owned by a *live* server, so removing a server moves only its
    own arc (plus ties) to the successors.
    """

    def __init__(self, num_servers: int, seed: int = 0, vnodes: int = 64):
        if num_servers <= 0:
            raise ValueError("need at least one server")
        if vnodes <= 0:
            raise ValueError("need at least one virtual node per server")
        self.num_servers = num_servers
        points = []
        for server in range(num_servers):
            for replica in range(vnodes):
                position = derive_seed(seed, f"ring:{server}:{replica}")
                points.append((position, server))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [server for _, server in points]

    def key(self, flow: int, seed: int = 0) -> int:
        """The ring position of a flow (deterministic hash)."""
        return derive_seed(seed, f"flow:{flow}")

    def lookup(self, key: int, live: Sequence[bool]) -> int:
        """The first live server at or after ``key``, clockwise."""
        count = len(self._positions)
        start = bisect_right(self._positions, key) % count
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if live[owner]:
                return owner
        raise AllServersDownError("no live server on the ring")


class LoadBalancer:
    """Request steering with a pluggable policy and failure awareness."""

    def __init__(
        self,
        policy: str,
        num_servers: int,
        rng: random.Random,
        seed: int = 0,
        vnodes: int = 64,
    ):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        self.policy = policy
        self.num_servers = num_servers
        self.rng = rng
        self.seed = seed
        self.ring = HashRing(num_servers, seed=seed, vnodes=vnodes)
        self.live: List[bool] = [True] * num_servers
        self.outstanding: List[int] = [0] * num_servers
        # Sticky flow placements (rss only; other policies are per-request).
        self.assignment: Dict[int, int] = {}
        self.resteers = 0
        self._rotation = 0

    # -- placement -----------------------------------------------------------

    def _live_servers(self) -> List[int]:
        servers = [s for s in range(self.num_servers) if self.live[s]]
        if not servers:
            raise AllServersDownError("every server is down")
        return servers

    def server_for(self, flow: int) -> int:
        """The server one request of ``flow`` is steered to right now."""
        if self.policy == "rss":
            cached = self.assignment.get(flow)
            if cached is not None and self.live[cached]:
                return cached
            placed = self.ring.lookup(self.ring.key(flow, self.seed), self.live)
            if cached is not None:
                self.resteers += 1
            self.assignment[flow] = placed
            return placed
        servers = self._live_servers()
        if self.policy == "round-robin":
            choice = servers[self._rotation % len(servers)]
            self._rotation += 1
            return choice
        if self.policy == "least-loaded":
            return min(servers, key=lambda s: (self.outstanding[s], s))
        # p2c: two distinct candidates when possible, less loaded wins.
        first = self.rng.choice(servers)
        second = self.rng.choice(servers)
        if len(servers) > 1:
            while second == first:
                second = self.rng.choice(servers)
        if self.outstanding[second] < self.outstanding[first]:
            return second
        return first

    # -- request accounting --------------------------------------------------

    def dispatch(self, flow: int) -> int:
        """Steer one request; returns the target server."""
        server = self.server_for(flow)
        self.outstanding[server] += 1
        return server

    def complete(self, server: int) -> None:
        """A request finished at ``server`` (clamped at zero so stale
        completions after a crash cannot go negative)."""
        if self.outstanding[server] > 0:
            self.outstanding[server] -= 1

    # -- membership ----------------------------------------------------------

    def mark_down(self, server: int) -> List[int]:
        """Remove a server; returns the flows whose sticky placement it
        held (empty for the per-request policies)."""
        self.live[server] = False
        orphans = [flow for flow, s in self.assignment.items() if s == server]
        for flow in orphans:
            del self.assignment[flow]
        self.outstanding[server] = 0
        return orphans

    def mark_up(self, server: int) -> None:
        """Re-admit a restarted server.

        Under ``rss`` the cached placements are flushed so flows rehash
        to their ring home (the restarted server reclaims its arc); the
        per-request policies refill it naturally.
        """
        self.live[server] = True
        if self.policy == "rss":
            self.assignment.clear()

    def load_shares(self) -> List[float]:
        """Current outstanding-request share per server (sums to ~1)."""
        total = sum(self.outstanding)
        if total == 0:
            return [0.0] * self.num_servers
        return [count / total for count in self.outstanding]
