"""The reference rack: the original per-request cluster hot path.

This module preserves the pre-fast-path :class:`~repro.cluster.rack.Rack`
request path verbatim — one generator-driven traffic process, one heap
event per arrival, a fresh ``derive_seed`` hash per enqueue, per-server
rebuilt cumulative-weight tables — exactly as it stood before the
batched delivery sweep landed. The bookkeeping substrate the hot path
optimised in place is frozen here too: the loop-form P² estimator, the
original ``ClusterMetrics`` / ``LatencyRecorder`` recording chain, the
unslotted ``WorkItem`` / ``TaskQueue``, and the original
``DataPlaneSystem`` notify/complete plumbing, all copied verbatim from
the pre-fast-path tree. The oracle therefore shares *no* hot-path code
with the fast rack beyond the simulator core and the workload/memory
models — a micro-optimisation that changes any observable bit shows up
as a differential failure, not as a change both legs silently agree on.

It exists for one purpose: to be the differential-fuzz oracle the fast
rack is checked against (mirroring :mod:`repro.mem._reference`).
``tests/test_cluster_fastpath.py`` runs both racks over the
{notification} x {balancer} x {fault} x {fleet size} matrix and asserts
identical :class:`~repro.cluster.metrics.ClusterMetrics` fingerprints,
per-server counters, and RNG stream states.

Nothing outside the tests (and the ``cluster_spin16`` /
``cluster_grid_row`` bench scenarios, which report their measured
speedup against this oracle) should import this module; it is
deliberately unoptimised and must stay that way — every micro-change to
the fast path is only trustworthy because this copy did not move.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from itertools import accumulate
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.cluster.balancer import AllServersDownError, LoadBalancer
from repro.cluster.config import (
    STREAM_ARRIVALS,
    STREAM_BALANCER,
    STREAM_FAULTS,
    STREAM_FLOWS,
    ClusterConfig,
)
from repro.cluster.controller import ClusterController
from repro.cluster.faults import fault_schedule
from repro.cluster.link import Link
from repro.cluster.rack import TWO_POW_64, flow_weights
from repro.core.dataplane import build_hyperplane
from repro.obs.runtime import get_active_registry
from repro.queueing.doorbell import Doorbell
from repro.queueing.taskqueue import QueueFullError
from repro.mem.costmodel import empty_poll_cost_curve, interpolate_poll_cost
from repro.mem.hierarchy import MemConfig
from repro.sdp.locality import _CURVE_POINTS, LocalityModel
from repro.sdp.metrics import MICROSECOND
from repro.sdp.spinning import build_spinning_cores
from repro.sdp.system import Cluster, DataPlaneSystem
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rng import RandomStreams, derive_seed
from repro.traffic.arrivals import PoissonArrivals, load_to_rate


# ---------------------------------------------------------------------------
# Frozen pre-fast-path substrate (verbatim copies; do not "optimise").
# ---------------------------------------------------------------------------


class ReferenceP2Quantile:
    """The original loop-form P² estimator (pre-unroll copy)."""

    def __init__(self, quantile: float):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = quantile
        self._initial: List[float] = []
        # Marker heights (q), positions (n), and desired positions (n').
        self._heights: List[float] = []
        self._positions: List[int] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        """Feed one observation."""
        self.count += 1
        if self._heights:
            self._update(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initial.sort()
            p = self.quantile
            self._heights = list(self._initial)
            self._positions = [1, 2, 3, 4, 5]
            self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def _update(self, value: float) -> None:
        heights = self._heights
        positions = self._positions
        # Find the cell and clamp extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = next(i for i in range(4) if heights[i] <= value < heights[i + 1])
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three middle markers.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1 and positions[i + 1] - positions[i] > 1) or (
                delta <= -1 and positions[i - 1] - positions[i] < -1
            ):
                direction = 1 if delta >= 1 else -1
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + direction * (q[i + direction] - q[i]) / (
            n[i + direction] - n[i]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return 0.0
        ordered = sorted(self._initial)
        index = min(len(ordered) - 1, int(self.quantile * len(ordered)))
        return ordered[index]


class ReferenceLatencyRecorder:
    """The original unslotted exact latency recorder."""

    def __init__(self, warmup_time: float = 0.0):
        self.warmup_time = warmup_time
        self._samples: List[float] = []

    def record(self, now: float, latency: float) -> None:
        """Record one completion at simulated time ``now``."""
        if latency < 0:
            raise ValueError("negative latency")
        if now >= self.warmup_time:
            self._samples.append(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0 if no samples)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, p: float) -> float:
        """The p-th percentile latency in seconds (p in (0, 100))."""
        if not 0.0 < p < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = p / 100.0 * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def mean_us(self) -> float:
        return self.mean / MICROSECOND


class ReferenceClusterMetrics:
    """The original client-observed rack metrics (per-call record path)."""

    def __init__(self, num_servers: int, warmup_time: float = 0.0):
        if num_servers <= 0:
            raise ValueError("need at least one server")
        self.num_servers = num_servers
        self.warmup_time = warmup_time
        self.latency = ReferenceLatencyRecorder(warmup_time=warmup_time)
        self._p50 = ReferenceP2Quantile(0.50)
        self._p99 = ReferenceP2Quantile(0.99)
        self._p999 = ReferenceP2Quantile(0.999)
        self.per_server_completed: List[int] = [0] * num_servers
        self.dispatched = 0
        self.lost = 0
        self.redispatched = 0
        self.rejected = 0
        self.measure_start = 0.0
        self.measure_end = 0.0

    def record(self, now: float, latency: float, server: int) -> None:
        """One client-visible completion at simulated time ``now``."""
        if now < self.warmup_time:
            return
        self.latency.record(now, latency)
        self._p50.add(latency)
        self._p99.add(latency)
        self._p999.add(latency)
        self.per_server_completed[server] += 1

    @property
    def count(self) -> int:
        return self.latency.count

    @property
    def p50_us(self) -> float:
        return self._p50.value / MICROSECOND

    @property
    def p99_us(self) -> float:
        return self._p99.value / MICROSECOND

    @property
    def p999_us(self) -> float:
        return self._p999.value / MICROSECOND

    @property
    def duration(self) -> float:
        return max(0.0, self.measure_end - self.measure_start)

    @property
    def throughput_mtps(self) -> float:
        if self.duration == 0:
            return 0.0
        return self.count / self.duration / 1e6

    @property
    def hottest_share(self) -> float:
        if self.count == 0:
            return 0.0
        return max(self.per_server_completed) / self.count

    def summary(self) -> Dict[str, float]:
        """A flat dict for experiment tables."""
        return {
            "throughput_mtps": self.throughput_mtps,
            "avg_latency_us": self.latency.mean_us,
            "p50_latency_us": self.p50_us,
            "p99_latency_us": self.p99_us,
            "p999_latency_us": self.p999_us,
            "completed": float(self.count),
            "lost": float(self.lost),
            "redispatched": float(self.redispatched),
            "rejected": float(self.rejected),
            "hottest_share": self.hottest_share,
        }

    def fingerprint(self) -> Tuple:
        """Exact values for determinism assertions (no rounding)."""
        return (
            self.count,
            self.latency.mean,
            self._p99.value,
            self._p999.value,
            self.lost,
            self.redispatched,
            tuple(self.per_server_completed),
        )


@dataclass
class ReferenceWorkItem:
    """The original (dict-backed) work item."""

    item_id: int
    qid: int
    arrival_time: float
    service_time: float
    payload: Any = None
    dequeue_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def latency(self) -> float:
        if self.completion_time is None:
            raise ValueError("work item not completed yet")
        return self.completion_time - self.arrival_time

    @property
    def wait(self) -> float:
        if self.dequeue_time is None:
            raise ValueError("work item not dequeued yet")
        return self.dequeue_time - self.arrival_time


@dataclass
class ReferenceQueueStats:
    """Counters for one queue (original unslotted form)."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    max_depth: int = 0


class ReferenceTaskQueue:
    """The original bounded FIFO (pre-``__slots__``, per-call ``max``)."""

    def __init__(self, qid: int, doorbell: Doorbell, capacity: int = 4096):
        if doorbell.qid != qid:
            raise ValueError("doorbell/queue qid mismatch")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.qid = qid
        self.doorbell = doorbell
        self.capacity = capacity
        self._items: Deque[ReferenceWorkItem] = deque()
        self.stats = ReferenceQueueStats()

    def __len__(self) -> int:
        return len(self._items)

    def is_empty(self) -> bool:
        return not self._items

    def enqueue(self, item: ReferenceWorkItem, drop_on_full: bool = True) -> bool:
        """Producer-side enqueue; rings the doorbell. Returns success."""
        if item.qid != self.qid:
            raise ValueError(f"item for queue {item.qid} enqueued on queue {self.qid}")
        if len(self._items) >= self.capacity:
            if drop_on_full:
                self.stats.dropped += 1
                return False
            raise QueueFullError(f"queue {self.qid} full")
        self._items.append(item)
        self.stats.enqueued += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self._items))
        self.doorbell.producer_increment()
        return True

    def dequeue(self, now: float) -> ReferenceWorkItem:
        """Consumer-side dequeue; decrements the doorbell first."""
        if not self._items:
            raise IndexError(f"dequeue from empty queue {self.qid}")
        self.doorbell.consumer_decrement()
        item = self._items.popleft()
        item.dequeue_time = now
        self.stats.dequeued += 1
        return item

    def peek_arrival_time(self) -> Optional[float]:
        return self._items[0].arrival_time if self._items else None

    def pending_items(self) -> Tuple[ReferenceWorkItem, ...]:
        return tuple(self._items)

    def check_invariants(self) -> None:
        if self.doorbell.count != len(self._items):
            raise AssertionError(
                f"queue {self.qid}: doorbell={self.doorbell.count} "
                f"ring={len(self._items)}"
            )


class ReferenceLocalityModel(LocalityModel):
    """Locality model with the original per-instance curve cache.

    Before the fast path, every server's :class:`LocalityModel` derived
    its own poll-cost curves from the structural memory hierarchy — two
    walks per server, not two per fleet. The oracle keeps that verbatim
    so the baseline pays the pre-fast-path build cost (the derived curve
    values are identical either way; only where they are cached differs).
    """

    def empty_poll_cost(
        self,
        polled_queues: int,
        total_queues: Optional[int] = None,
        idle: bool = False,
    ) -> float:
        if polled_queues <= 0:
            raise ValueError("polled_queues must be positive")
        total = total_queues if total_queues is not None else polled_queues
        resident = 1.0 if idle else round(self.llc_resident_fraction(total), 2)
        key = (resident, idle)
        curve = self._curves.get(key)
        if curve is None:
            config = MemConfig(num_cores=1) if idle else self.mem_config
            curve = empty_poll_cost_curve(
                _CURVE_POINTS,
                config,
                llc_doorbell_resident_fraction=resident,
            )
            self._curves[key] = curve
        per_line = interpolate_poll_cost(curve, self.lines_per_poll * polled_queues)
        return self.lines_per_poll * per_line + self.cost_model.poll_loop_overhead


class ReferenceCluster(Cluster):
    """Cluster with the original event-property ``notify_ready``."""

    def notify_ready(self, qid: int) -> None:
        bit = 1 << self.local_of[qid]
        self.ready_mask |= bit
        if self._arrival_event.waiter_count:
            stale = self._arrival_event
            self._arrival_event = Event(f"cluster{self.plan.cluster_id}.arrival")
            # Decouple from the producer's call stack.
            self.sim.schedule(0.0, stale.trigger, qid)


class ReferenceDataPlaneSystem(DataPlaneSystem):
    """Data-plane system on the frozen queues with original plumbing."""

    queue_cls = ReferenceTaskQueue
    cluster_cls = ReferenceCluster
    locality_cls = ReferenceLocalityModel

    def _on_doorbell_write(self, doorbell: Doorbell) -> None:
        self.cluster_of_queue[doorbell.qid].notify_ready(doorbell.qid)
        for hook in self.doorbell_write_hooks:
            hook(doorbell)

    def notify_dequeue(self, qid: int) -> None:
        """Called by cores after each dequeue (drives closed-loop refill)."""
        for hook in self.on_dequeue_hooks:
            hook(qid)

    def complete(self, item: ReferenceWorkItem) -> None:
        """Record a finished work item."""
        item.completion_time = self.sim.now
        self.metrics.completed += 1
        self.metrics.latency.record(self.sim.now, item.latency)


class ReferenceClusterServer:
    """One rack slot: an unmodified data-plane system plus fleet state."""

    def __init__(self, rack: "ReferenceRack", index: int):
        config = rack.config.server_config(index)
        self.rack = rack
        self.index = index
        self.config = config
        self.system = ReferenceDataPlaneSystem(config, sim=rack.sim)
        if rack.config.notification == "spinning":
            self.accelerator = None
            self.cores = build_spinning_cores(self.system)
        else:
            self.accelerator, self.cores = build_hyperplane(self.system)
        self.link = Link(
            rack.config.link_gbps,
            rack.config.link_propagation_s,
            name=f"server{index}.link",
        )
        self.up = True
        self.epoch = 0
        self.slow_factor = 1.0
        self.dispatched = 0
        self.completed_ok = 0
        self.lost = 0
        # Flow -> queue stickiness: a per-flow uniform draw mapped through
        # the shape's queue weights, so fleet traffic respects the same
        # hot/cold structure single-server runs use.
        self._cumulative_weights = list(
            accumulate(self.system.shape.weights(config.num_queues))
        )
        self._original_complete = self.system.complete
        self.system.complete = self._complete

    def queue_for_flow(self, flow: int) -> int:
        """The (deterministic, sticky) local queue a flow maps to."""
        u = derive_seed(self.config.seed, f"flow-queue:{flow}") / TWO_POW_64
        qid = bisect_right(
            self._cumulative_weights, u * self._cumulative_weights[-1]
        )
        return min(qid, self.config.num_queues - 1)

    def enqueue(self, flow: int, arrival_time: float, base_service: float) -> None:
        """Deliver one request (called at the link-arrival instant)."""
        if not self.up:
            # The server died while the request was on the wire: the
            # client detects the failure and retries elsewhere.
            self.rack.redispatch(flow, arrival_time, base_service)
            return
        item = ReferenceWorkItem(
            item_id=self.rack.next_item_id(),
            qid=self.queue_for_flow(flow),
            arrival_time=arrival_time,
            service_time=base_service * self.slow_factor,
            payload=(flow, self.epoch, base_service),
        )
        if not self.system.queues[item.qid].enqueue(item):
            self.rack.metrics.rejected += 1
            self.rack.balancer.complete(self.index)

    def _complete(self, item: WorkItem) -> None:
        self._original_complete(item)
        payload = item.payload
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        _flow, epoch, _base_service = payload
        self.rack.balancer.complete(self.index)
        if self.up and epoch == self.epoch:
            self.rack.metrics.record(self.system.sim.now, item.latency, self.index)
            self.completed_ok += 1
        else:
            # Completed while down, or a stale pre-crash item drained
            # after restart: the client never saw this response.
            self.lost += 1
            self.rack.metrics.lost += 1


class ReferenceRack:
    """N servers, a balancer, links, faults — one deterministic run."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.metrics = ReferenceClusterMetrics(config.num_servers)
        self.balancer = LoadBalancer(
            config.balancer,
            config.num_servers,
            rng=self.streams.stream(STREAM_BALANCER),
            seed=derive_seed(config.seed, "cluster.ring"),
        )
        self.servers = [
            ReferenceClusterServer(self, index)
            for index in range(config.num_servers)
        ]
        self.controller: Optional[ClusterController] = None
        self._cumulative_flow_weights = list(
            accumulate(flow_weights(config.num_flows, config.flow_skew))
        )
        self._flow_rng = self.streams.stream(STREAM_FLOWS)
        self._arrivals: Optional[PoissonArrivals] = None
        self._max_items: Optional[int] = None
        self._item_ids = 0
        self.generated = 0

        self._obs = get_active_registry()
        self._obs_events_reported = 0
        if self._obs is not None:
            from repro.obs.probes import instrument_rack

            instrument_rack(self._obs, self)

        from repro.obs.trace import get_active_tracer

        self._trace_probe = None
        if get_active_tracer() is not None:
            from repro.obs.trace_probes import maybe_trace_rack

            self._trace_probe = maybe_trace_rack(self)

    # -- plumbing ------------------------------------------------------------

    def next_item_id(self) -> int:
        self._item_ids += 1
        return self._item_ids

    def _draw_flow(self) -> int:
        total = self._cumulative_flow_weights[-1]
        index = bisect_right(
            self._cumulative_flow_weights, self._flow_rng.random() * total
        )
        return min(index, self.config.num_flows - 1)

    # -- traffic -------------------------------------------------------------

    def attach_open_loop(
        self,
        load: Optional[float] = None,
        rate: Optional[float] = None,
        max_items: Optional[int] = None,
    ) -> None:
        """Attach the fleet-level Poisson client population."""
        if (load is None) == (rate is None):
            raise ValueError("specify exactly one of load / rate")
        if self._arrivals is not None:
            raise RuntimeError("open loop already attached")
        if rate is None:
            mean = self.servers[0].config.workload.mean_service_seconds
            fleet_cores = self.config.num_servers * self.config.cores_per_server
            rate = load_to_rate(load, mean, fleet_cores)
        self._arrivals = PoissonArrivals(rate, self.streams.stream(STREAM_ARRIVALS))
        self._max_items = max_items
        self.sim.spawn(self._traffic(), name="cluster-traffic")

    def _traffic(self):
        while self._max_items is None or self.generated < self._max_items:
            yield self._arrivals.next_interarrival()
            self.generated += 1
            self.metrics.dispatched += 1
            self.dispatch(self._draw_flow(), self.sim.now)

    def dispatch(
        self,
        flow: int,
        arrival_time: float,
        base_service: Optional[float] = None,
    ) -> int:
        """Steer one request through the balancer and its server's link."""
        server_id = self.balancer.dispatch(flow)
        server = self.servers[server_id]
        if base_service is None:
            # Drawn from the *target server's* service stream, keeping
            # per-server statistics independent and the run replayable.
            base_service = server.system.service_model()
        delay = server.link.transfer_delay(self.sim.now, self.config.request_bytes)
        self.sim.schedule(delay, server.enqueue, flow, arrival_time, base_service)
        server.dispatched += 1
        return server_id

    def redispatch(self, flow: int, arrival_time: float, base_service: float) -> None:
        """Retry a failed request after the failover detection delay."""
        self.metrics.redispatched += 1
        self.sim.schedule(
            self.config.failover_delay_s,
            self._redispatch_now,
            flow,
            arrival_time,
            base_service,
        )

    def _redispatch_now(self, flow: int, arrival_time: float, base_service: float) -> None:
        try:
            self.dispatch(flow, arrival_time, base_service)
        except AllServersDownError:
            self.metrics.lost += 1

    # -- failure handling ----------------------------------------------------

    def crash_server(self, index: int) -> None:
        """Kill a server: re-steer its flows, re-dispatch its backlog."""
        server = self.servers[index]
        if not server.up:
            return
        server.up = False
        server.epoch += 1
        self.balancer.mark_down(index)
        for queue in server.system.queues:
            for item in queue.pending_items():
                payload = item.payload
                if not (isinstance(payload, tuple) and len(payload) == 3):
                    continue
                flow, _epoch, base_service = payload
                self.redispatch(flow, item.arrival_time, base_service)

    def restart_server(self, index: int) -> None:
        """Bring a crashed server back into the balancer pool."""
        server = self.servers[index]
        if server.up:
            return
        server.up = True
        self.balancer.mark_up(index)

    # -- running -------------------------------------------------------------

    def run(
        self,
        duration: float,
        warmup: float = 0.0,
        target_completions: Optional[int] = None,
        chunk: float = 2e-3,
    ):
        """Simulate the rack for ``duration`` seconds after ``warmup``."""
        if warmup < 0 or duration <= 0:
            raise ValueError("need positive duration, non-negative warmup")
        start = self.sim.now
        boundary = start + warmup
        self.metrics.warmup_time = boundary
        self.metrics.latency.warmup_time = boundary
        self.metrics.measure_start = boundary
        for server in self.servers:
            server.system.metrics.latency.warmup_time = boundary
            server.system.metrics.measure_start = boundary
        total = warmup + duration
        if self.controller is None:
            events = fault_schedule(
                self.config.fault_profile,
                self.config.num_servers,
                total,
                self.streams.stream(STREAM_FAULTS),
            )
            self.controller = ClusterController(self, events)
            self.controller.start()
        deadline = start + total
        while self.sim.now < deadline and self.sim.pending:
            self.sim.run(until=min(deadline, self.sim.now + chunk))
            if (
                target_completions is not None
                and self.metrics.count >= target_completions
            ):
                break
        self.metrics.measure_end = self.sim.now
        for server in self.servers:
            server.system.metrics.measure_end = self.sim.now
        if self._obs is not None:
            delta = self.sim.events_dispatched - self._obs_events_reported
            self._obs_events_reported = self.sim.events_dispatched
            self._obs.counter(
                "sim.events_total", help="events retired across all runs"
            ).inc(delta)
        return self.metrics

    def check_invariants(self) -> None:
        """Queue/doorbell agreement and HyperPlane wake-up soundness."""
        for server in self.servers:
            server.system.check_invariants()
            if server.accelerator is not None:
                server.accelerator.check_no_lost_wakeups(
                    being_serviced={
                        core.servicing
                        for core in server.cores
                        if core.servicing is not None
                    }
                )


def run_reference_cluster(
    config: ClusterConfig,
    load: Optional[float] = None,
    rate: Optional[float] = None,
    duration: float = 0.02,
    warmup: float = 0.005,
    target_completions: Optional[int] = None,
) -> ReferenceRack:
    """Build, run, and verify one reference rack (the oracle entry point)."""
    rack = ReferenceRack(config)
    rack.attach_open_loop(load=load, rate=rate)
    rack.run(duration=duration, warmup=warmup, target_completions=target_completions)
    rack.check_invariants()
    return rack
