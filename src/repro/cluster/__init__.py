"""repro.cluster — multi-server scale-out simulation of a HyperPlane rack.

Composes N single-server data planes (:mod:`repro.sdp` substrate running
spinning or :mod:`repro.core` HyperPlane cores) into one simulated rack:
a front-end load balancer with per-flow consistent hashing, inter-node
links, a fault-injecting cluster controller, and fleet-level latency
metrics. See ``docs/cluster.md`` for the topology, balancer policies,
fault model, and determinism contract.
"""

from repro.cluster.balancer import (
    POLICIES,
    AllServersDownError,
    HashRing,
    LoadBalancer,
)
from repro.cluster.config import NOTIFICATIONS, ClusterConfig
from repro.cluster.controller import ClusterController
from repro.cluster.faults import PROFILES, FaultEvent, fault_schedule
from repro.cluster.link import Link
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.rack import ClusterServer, Rack, flow_weights, run_cluster

__all__ = [
    "AllServersDownError",
    "ClusterConfig",
    "ClusterController",
    "ClusterMetrics",
    "ClusterServer",
    "FaultEvent",
    "HashRing",
    "Link",
    "LoadBalancer",
    "NOTIFICATIONS",
    "POLICIES",
    "PROFILES",
    "Rack",
    "fault_schedule",
    "flow_weights",
    "run_cluster",
]
