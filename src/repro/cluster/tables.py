"""Interned flow-steering tables shared across homogeneous servers.

Every :class:`~repro.cluster.rack.ClusterServer` (and every
:class:`~repro.dist.worker.WorkerServer` mirroring one) needs the same
two lookups on its hot path:

* the cumulative queue-weight table for its workload shape — previously
  rebuilt per server via ``list(accumulate(shape.weights(n)))`` even
  though every homogeneous server produces the identical list; and
* the sticky flow -> queue mapping, previously recomputed per *request*
  with a string-formatted ``derive_seed(f"flow-queue:{flow}")`` hash.

Both are deterministic pure functions of ``(weights, seed, flow)``, so
this module interns them: one :class:`WeightTable` per distinct weight
tuple (heterogeneous per-index ``server_config`` overrides hash to
different tuples and therefore get their own table), and one memo dict
per ``(table, seed)`` holding the flows actually seen. The mapping is
epoch-independent — crash/restart cycles reuse the same entries — and
the arithmetic is kept bit-for-bit identical to the original:

    u = derive_seed(seed, f"flow-queue:{flow}") / 2**64
    qid = min(bisect_right(cumulative, u * cumulative[-1]), n - 1)
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Dict, Iterable, List, Tuple

from repro.sim.rng import derive_seed

# derive_seed yields a uniform 64-bit integer; dividing by 2**64 maps it
# onto [0, 1) exactly as random.Random.random's mantissa construction.
TWO_POW_64 = float(1 << 64)

_TABLES: Dict[Tuple[float, ...], "WeightTable"] = {}


class WeightTable:
    """One interned cumulative-weight table plus per-seed flow memos."""

    __slots__ = ("cumulative", "total", "num_queues", "_flow_maps")

    def __init__(self, weights: Tuple[float, ...]):
        self.cumulative: List[float] = list(accumulate(weights))
        self.total: float = self.cumulative[-1]
        self.num_queues: int = len(weights)
        self._flow_maps: Dict[int, Dict[int, int]] = {}

    def compute(self, seed: int, flow: int) -> int:
        """The original per-request arithmetic, unmemoised."""
        u = derive_seed(seed, f"flow-queue:{flow}") / TWO_POW_64
        qid = bisect_right(self.cumulative, u * self.total)
        return min(qid, self.num_queues - 1)

    def flow_map(self, seed: int) -> Dict[int, int]:
        """The (shared, lazily filled) flow -> queue memo for ``seed``.

        Servers memoise into this dict directly on their hot path; two
        servers with the same seed and weights share entries.
        """
        flow_map = self._flow_maps.get(seed)
        if flow_map is None:
            flow_map = self._flow_maps[seed] = {}
        return flow_map


def cumulative_weight_table(weights: Iterable[float]) -> WeightTable:
    """Return the interned :class:`WeightTable` for ``weights``."""
    key = tuple(weights)
    table = _TABLES.get(key)
    if table is None:
        table = _TABLES[key] = WeightTable(key)
    return table


def clear_tables() -> None:
    """Drop all interned tables (test isolation hook)."""
    _TABLES.clear()
